//! Property tests: the zero-allocation warm path (`nwc_with` with a
//! reused `QueryScratch`) and the parallel `QueryEngine` batch path are
//! result- and I/O-count-identical to the plain sequential API, under
//! every optimization scheme.
//!
//! This is the safety claim of the scratch/engine layer: reusing
//! buffers or distributing queries across workers changes *when and
//! where* memory lives, never what the search does — the attributed
//! `SearchStats` (a field-for-field `Eq` comparison, including every
//! I/O counter) must come out identical.

use nwc::core::{CancelFlag, CancelKind, CancelToken, QueryScratch};
use nwc::prelude::*;
use proptest::prelude::*;

fn point_strategy() -> impl Strategy<Value = Point> {
    // Lattice plus jitter, as in oracle_equivalence: provokes boundary
    // ties that uniform floats almost never hit.
    (0u32..100, 0u32..100, 0u32..4, 0u32..4)
        .prop_map(|(x, y, jx, jy)| Point::new(x as f64 + jx as f64 * 0.25, y as f64 + jy as f64 * 0.25))
}

fn scenario() -> impl Strategy<Value = (Vec<Point>, Vec<Point>, f64, f64, usize)> {
    (
        proptest::collection::vec(point_strategy(), 8..48),
        proptest::collection::vec(point_strategy(), 2..8),
        2.0f64..24.0,
        2.0f64..24.0,
        1usize..6,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// One scratch reused across many queries (warm path) must behave
    /// exactly like a fresh allocation per query, for every scheme.
    #[test]
    fn warm_scratch_matches_plain_nwc((points, qs, l, w, n) in scenario()) {
        let index = NwcIndex::build(points);
        let spec = WindowSpec::new(l, w);
        for scheme in Scheme::TABLE3 {
            let mut scratch = QueryScratch::new();
            for &q in &qs {
                let query = NwcQuery::new(q, spec, n);
                let (want, want_stats) = index.nwc_full(&query, scheme);
                let (got, got_stats) = index.nwc_full_with(&query, scheme, &mut scratch);
                // I/O counts (and every other counter) must be unchanged
                // by scratch reuse.
                prop_assert_eq!(got_stats, want_stats, "{} stats diverged", scheme);
                match (&want, &got) {
                    (None, None) => {}
                    (Some(a), Some(b)) => {
                        prop_assert_eq!(a.ids(), b.ids(), "{} group diverged", scheme);
                        prop_assert!((a.distance - b.distance).abs() < 1e-12);
                    }
                    _ => prop_assert!(false, "{scheme}: hit/miss diverged"),
                }
            }
        }
    }

    /// Engine batches must equal the sequential API query-for-query, at
    /// several thread counts, for every scheme.
    #[test]
    fn engine_batch_matches_plain_nwc((points, qs, l, w, n) in scenario()) {
        let index = NwcIndex::build(points);
        let spec = WindowSpec::new(l, w);
        let queries: Vec<NwcQuery> = qs.iter().map(|&q| NwcQuery::new(q, spec, n)).collect();
        for scheme in Scheme::TABLE3 {
            let want: Vec<_> = queries.iter().map(|q| index.nwc_full(q, scheme)).collect();
            for threads in [1usize, 3] {
                let engine = QueryEngine::new(&index).with_threads(threads);
                let got = engine.nwc_batch(&queries, scheme);
                prop_assert_eq!(got.len(), want.len());
                for (i, ((gr, gs), (wr, ws))) in got.iter().zip(&want).enumerate() {
                    prop_assert_eq!(gs, ws, "{} t={} stats diverged at {}", scheme, threads, i);
                    prop_assert_eq!(
                        gr.as_ref().map(|r| r.ids()),
                        wr.as_ref().map(|r| r.ids()),
                        "{} t={} group diverged at {}", scheme, threads, i
                    );
                }
            }
        }
    }

    /// The anytime batch path in exact mode is the plain batch path,
    /// slot for slot — and a pre-tripped cancel flag turns every slot
    /// into a typed partial with an individually valid bound, never a
    /// blanket error.
    #[test]
    fn engine_anytime_batches_match_and_trip_per_query((points, qs, l, w, n) in scenario()) {
        let index = NwcIndex::build(points);
        let spec = WindowSpec::new(l, w);
        let queries: Vec<NwcQuery> = qs.iter().map(|&q| NwcQuery::new(q, spec, n)).collect();
        let want: Vec<_> = queries.iter().map(|q| index.nwc_full(q, Scheme::NWC_STAR)).collect();
        let engine = QueryEngine::new(&index).with_threads(3);

        // Exact mode, unarmed budget: bit-identical to the plain batch.
        let exact = engine.try_nwc_batch_cancel(&queries, Scheme::NWC_STAR, &CancelToken::none());
        prop_assert_eq!(exact.len(), want.len());
        for (i, (slot, (wr, ws))) in exact.iter().zip(&want).enumerate() {
            let a = slot.as_ref().expect("arena batches cannot fail");
            prop_assert!(a.exhausted.is_none(), "slot {}: unarmed token fired", i);
            prop_assert_eq!(&a.stats, ws, "slot {} stats diverged", i);
            prop_assert_eq!(
                a.answer.as_ref().map(|r| (r.ids(), r.distance.to_bits())),
                wr.as_ref().map(|r| (r.ids(), r.distance.to_bits())),
                "slot {} diverged", i
            );
        }

        // Pre-tripped flag: every slot is its own typed partial whose
        // bound brackets that query's true optimum from below.
        let flag = CancelFlag::new();
        flag.stop();
        let tripped =
            engine.try_nwc_batch_cancel(&queries, Scheme::NWC_STAR, &CancelToken::with_flag(&flag));
        prop_assert_eq!(tripped.len(), want.len());
        for (i, (slot, (wr, _))) in tripped.iter().zip(&want).enumerate() {
            let a = slot.as_ref().expect("a tripped flag is a partial, not an error");
            prop_assert_eq!(a.exhausted, Some(CancelKind::Stopped), "slot {}", i);
            prop_assert!(a.error_bound >= 0.0);
            match wr {
                None => prop_assert!(a.answer.is_none(), "slot {}: invented a group", i),
                Some(w_) => {
                    let tol = 1e-9 * w_.distance.abs().max(1.0);
                    prop_assert!(
                        a.lower_bound <= w_.distance + tol,
                        "slot {}: lower bound {} above optimum {}", i, a.lower_bound, w_.distance
                    );
                    if let Some(r) = &a.answer {
                        prop_assert!(r.distance >= w_.distance - tol);
                        prop_assert!(r.distance - a.error_bound <= w_.distance + tol);
                    }
                }
            }
        }

        // A per-query I/O allowance applies to each slot separately.
        let budget = Budget::none().io_limit(2);
        for (i, slot) in engine
            .try_nwc_batch_budget(&queries, Scheme::NWC_STAR, &budget, Approx::exact())
            .iter()
            .enumerate()
        {
            let a = slot.as_ref().expect("budget trips are partials");
            prop_assert!(
                a.exhausted.is_some() || a.stats.io_total <= 2,
                "slot {}: ran past its own allowance silently", i
            );
        }
    }

    /// Same for kNWC: warm scratch and engine batches agree with the
    /// plain `knwc` on groups, scores, and stats.
    #[test]
    fn knwc_warm_and_batch_match((points, qs, l, w, n) in scenario()) {
        let index = NwcIndex::build(points);
        let spec = WindowSpec::new(l, w);
        let queries: Vec<KnwcQuery> = qs
            .iter()
            .map(|&q| KnwcQuery::new(q, spec, n, 3, n.saturating_sub(1).min(1)))
            .collect();
        for scheme in [Scheme::NWC_PLUS, Scheme::NWC_STAR] {
            let want: Vec<KnwcResult> = queries.iter().map(|q| index.knwc(q, scheme)).collect();

            let mut scratch = QueryScratch::new();
            for (q, w_) in queries.iter().zip(&want) {
                let got = index.knwc_with(q, scheme, &mut scratch);
                prop_assert_eq!(got.stats, w_.stats, "{} warm stats diverged", scheme);
                prop_assert_eq!(got.groups.len(), w_.groups.len());
                for (a, b) in got.groups.iter().zip(&w_.groups) {
                    prop_assert_eq!(a.id_set(), b.id_set());
                    prop_assert!((a.distance - b.distance).abs() < 1e-12);
                }
            }

            let batch = QueryEngine::new(&index)
                .with_threads(2)
                .knwc_batch(&queries, scheme);
            for (got, w_) in batch.iter().zip(&want) {
                prop_assert_eq!(got.stats, w_.stats, "{} batch stats diverged", scheme);
                prop_assert_eq!(got.groups.len(), w_.groups.len());
                for (a, b) in got.groups.iter().zip(&w_.groups) {
                    prop_assert_eq!(a.id_set(), b.id_set());
                }
            }
        }
    }
}
