//! Chaos tests: the Table-3 schemes under injected disk faults.
//!
//! Under **transient-only** faults every scheme must return answers and
//! logical I/O bit-identical to the in-memory arena baseline — retries
//! are invisible to the paper's metric, they only show up in the new
//! `retries`/`transient_errors` counters. Under **permanent** faults the
//! `try_*` APIs must surface typed errors (no panic, no poisoned state):
//! the failing page is quarantined, every pin is released, and the index
//! keeps answering queries that avoid the dead page — including from the
//! 4-thread batch engine, where one bad page must never tear down the
//! worker scope.

use nwc::core::{oracle, ShardedNwcIndex};
use nwc::prelude::*;
use nwc_core::QueryError;
use nwc_rtree::BrowseItem;
use nwc_store::{FaultPlan, FaultStore, FileStore, RetryPolicy};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn temp_pages(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("nwc-chaos-{tag}-{}.pages", std::process::id()))
}

fn chaos_points(n: usize) -> Vec<Point> {
    (0..n)
        .map(|i| {
            let s = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            Point::new((s % 9_000) as f64 + 500.0, ((s >> 13) % 9_000) as f64 + 500.0)
        })
        .collect()
}

/// A zero-backoff retry policy so fault-heavy tests don't sleep.
fn fast_retry(max_attempts: u32) -> RetryPolicy {
    RetryPolicy {
        max_attempts,
        base_backoff: Duration::ZERO,
        max_backoff: Duration::ZERO,
    }
}

/// Saves `arena`'s tree and reopens it through a [`FaultStore`] the test
/// keeps a scripting handle to. The store starts transparent (the open
/// path has no retry in front of it); arm a plan with
/// [`FaultStore::set_plan`] or script pages after open.
fn fault_backed(
    arena: &NwcIndex,
    tag: &str,
    config: DiskIndexConfig,
) -> (NwcIndex, Arc<FaultStore<FileStore>>) {
    let path = temp_pages(tag);
    arena
        .save_tree_with_layout(&path, PageLayout::Clustered)
        .expect("save clustered");
    let store = FileStore::open(&path).expect("reopen page file");
    let fault = Arc::new(FaultStore::new(store, FaultPlan::default()));
    let disk = NwcIndex::open_disk_from_store(Box::new(Arc::clone(&fault)), config)
        .expect("open through a transparent fault store");
    std::fs::remove_file(&path).ok();
    (disk, fault)
}

fn chaos_queries() -> Vec<NwcQuery> {
    Dataset::query_points(12, 11)
        .into_iter()
        .map(|q| NwcQuery::new(q, WindowSpec::square(400.0), 4))
        .collect()
}

/// The page id of the leaf holding the entry nearest to `q` (found by
/// browsing, which charges I/O — reset counters afterwards).
fn leaf_page_near(disk: &NwcIndex, q: Point) -> u32 {
    let mut browser = disk.tree().browse(q);
    let leaf = loop {
        match browser.next() {
            Some(BrowseItem::Node { id, .. }) => browser.expand(id),
            Some(BrowseItem::Object { leaf, .. }) => break leaf,
            None => panic!("non-empty tree browsed dry without yielding an object"),
        }
    };
    disk.tree().stats().reset();
    disk.tree().storage().expect("disk-backed").reset();
    leaf.raw()
}

#[test]
fn transient_faults_keep_every_scheme_bit_identical_to_arena() {
    let arena = NwcIndex::build(chaos_points(4_000));
    let (disk, fault) = fault_backed(
        &arena,
        "transient",
        DiskIndexConfig {
            pool_capacity: Some(64),
            pool_shards: Some(2),
            prefetch: 8,
            retry: fast_retry(12),
            ..DiskIndexConfig::default()
        },
    );
    // 2% of reads start a 2-failure burst; the 12-attempt budget makes
    // non-recovery astronomically unlikely and the seed makes the
    // sequential schedule reproducible.
    fault.set_plan(FaultPlan {
        transient_rate: 0.02,
        transient_burst: 2,
        seed: 0xDEC0_DE5E,
        ..FaultPlan::default()
    });

    let queries = chaos_queries();
    let mut total_retries = 0;
    let mut total_transient = 0;
    for &scheme in Scheme::TABLE3.iter() {
        for (qi, q) in queries.iter().enumerate() {
            let (want, ws) = arena.nwc_full(q, scheme);
            let (got, gs) = disk
                .try_nwc_full(q, scheme)
                .unwrap_or_else(|e| panic!("{scheme} q{qi}: transient fault leaked: {e}"));
            match (&want, &got) {
                (None, None) => {}
                (Some(a), Some(d)) => {
                    assert_eq!(a.ids(), d.ids(), "{scheme} q{qi}");
                    assert_eq!(a.distance, d.distance, "{scheme} q{qi}");
                }
                _ => panic!("{scheme} q{qi}: one mode found a result, one did not"),
            }
            // Logical I/O is bit-identical: faults and retries live
            // entirely outside the paper's metric.
            assert_eq!(
                SearchStats { buffer_hits: 0, retries: 0, transient_errors: 0, ..gs },
                ws,
                "{scheme} q{qi}: logical I/O diverged under transient faults"
            );
            total_retries += gs.retries;
            total_transient += gs.transient_errors;
        }
    }
    assert!(total_retries > 0, "the fault schedule never fired");
    assert!(total_transient > 0, "no failure was attributed to a query");
    assert!(fault.stats().transient > 0, "the store never injected");
    assert!(
        disk.tree().storage().expect("disk-backed").quarantine().is_empty(),
        "transient faults must never quarantine a page"
    );

    // Same index, same plan, 4-thread engine: every slot still Ok and
    // identical to the arena (which reads fail now depends on thread
    // interleaving; answers and logical I/O must not).
    let engine = QueryEngine::new(&disk).with_threads(4);
    let batch = engine.try_nwc_batch(&queries, Scheme::NWC_STAR);
    for (qi, (q, slot)) in queries.iter().zip(&batch).enumerate() {
        let (got, gs) = slot
            .as_ref()
            .unwrap_or_else(|e| panic!("engine q{qi}: transient fault leaked: {e}"));
        let (want, ws) = arena.nwc_full(q, Scheme::NWC_STAR);
        assert_eq!(
            want.map(|r| r.ids()),
            got.as_ref().map(|r| r.ids()),
            "engine q{qi}"
        );
        assert_eq!(
            SearchStats { buffer_hits: 0, retries: 0, transient_errors: 0, ..*gs },
            ws,
            "engine q{qi}: logical I/O diverged"
        );
    }
}

#[test]
fn overlapped_io_stays_bit_identical_under_transient_faults() {
    // Same contract as the sync chaos test, but with readahead running
    // on completion threads: mid-descent transient faults on the demand
    // path retry as before, failed readahead runs are swallowed and
    // tallied (never retried), and answers plus logical I/O stay
    // bit-identical to the arena at 1 and 4 I/O threads.
    let arena = NwcIndex::build(chaos_points(4_000));
    let queries = chaos_queries();
    for io_threads in [1usize, 4] {
        let (disk, fault) = fault_backed(
            &arena,
            &format!("overlap{io_threads}"),
            DiskIndexConfig {
                pool_capacity: Some(64),
                pool_shards: Some(2),
                prefetch: 8,
                io_threads,
                retry: fast_retry(12),
                ..DiskIndexConfig::default()
            },
        );
        fault.set_plan(FaultPlan {
            transient_rate: 0.02,
            transient_burst: 2,
            seed: 0xDEC0_DE5E,
            ..FaultPlan::default()
        });

        for &scheme in Scheme::TABLE3.iter() {
            for (qi, q) in queries.iter().enumerate() {
                let (want, ws) = arena.nwc_full(q, scheme);
                let (got, gs) = disk.try_nwc_full(q, scheme).unwrap_or_else(|e| {
                    panic!("io{io_threads}/{scheme} q{qi}: transient fault leaked: {e}")
                });
                match (&want, &got) {
                    (None, None) => {}
                    (Some(a), Some(d)) => {
                        assert_eq!(a.ids(), d.ids(), "io{io_threads}/{scheme} q{qi}");
                        assert_eq!(a.distance, d.distance, "io{io_threads}/{scheme} q{qi}");
                    }
                    _ => panic!("io{io_threads}/{scheme} q{qi}: one mode found a result, one did not"),
                }
                assert_eq!(
                    SearchStats { buffer_hits: 0, retries: 0, transient_errors: 0, ..gs },
                    ws,
                    "io{io_threads}/{scheme} q{qi}: logical I/O diverged"
                );
            }
        }

        // 4-thread engine on top of the overlapped backend: workers and
        // completion threads share the pool; every slot still Ok.
        let engine = QueryEngine::new(&disk).with_threads(4);
        let batch = engine.try_nwc_batch(&queries, Scheme::NWC_STAR);
        for (qi, (q, slot)) in queries.iter().zip(&batch).enumerate() {
            let (got, _) = slot.as_ref().unwrap_or_else(|e| {
                panic!("io{io_threads}/engine q{qi}: transient fault leaked: {e}")
            });
            let (want, _) = arena.nwc_full(q, Scheme::NWC_STAR);
            assert_eq!(
                want.map(|r| r.ids()),
                got.as_ref().map(|r| r.ids()),
                "io{io_threads}/engine q{qi}"
            );
        }

        let storage = disk.tree().storage().expect("disk-backed");
        storage.wait_io_idle();
        assert_eq!(storage.pool_stats().pinned, 0, "io{io_threads}: leaked a pin");
        assert!(
            storage.quarantine().is_empty(),
            "io{io_threads}: transient faults must never quarantine"
        );
        assert!(fault.stats().transient > 0, "io{io_threads}: the store never injected");
    }
}

#[test]
fn overlapped_io_preserves_quarantine_on_permanent_faults() {
    // A permanently dead leaf under the overlapped backend: typed error,
    // quarantined once, no pins leaked by either the query threads or
    // the completion threads, and recovery after clearing the fault.
    let arena = NwcIndex::build(chaos_points(3_000));
    let (disk, fault) = fault_backed(
        &arena,
        "overlap-perm",
        DiskIndexConfig {
            pool_capacity: Some(64),
            prefetch: 8,
            io_threads: 2,
            retry: fast_retry(3),
            ..DiskIndexConfig::default()
        },
    );
    let near = Point::new(700.0, 700.0);
    let dead_leaf = leaf_page_near(&disk, near);
    fault.fail_page_permanently(dead_leaf);

    let q = NwcQuery::new(near, WindowSpec::square(300.0), 3);
    match disk.try_nwc(&q, Scheme::NWC_STAR) {
        Err(QueryError::Io(e)) => assert_eq!(e.page, dead_leaf),
        other => panic!("expected Io error, got {other:?}"),
    }
    let storage = disk.tree().storage().expect("disk-backed");
    storage.wait_io_idle();
    let quarantined = storage.quarantine();
    assert_eq!(quarantined.len(), 1);
    assert_eq!(quarantined[0].0, dead_leaf);
    assert_eq!(storage.pool_stats().pinned, 0, "error path leaked a pin");

    fault.clear_faults();
    storage.reset();
    disk.tree().stats().reset();
    let want = arena.nwc(&q, Scheme::NWC_STAR);
    let got = disk.try_nwc(&q, Scheme::NWC_STAR).expect("healthy again");
    assert_eq!(want.map(|r| r.ids()), got.map(|r| r.ids()), "after recovery");
}

#[test]
fn permanent_fault_returns_typed_errors_and_leaves_the_index_usable() {
    let arena = NwcIndex::build(chaos_points(3_000));
    let (disk, fault) = fault_backed(
        &arena,
        "permanent",
        DiskIndexConfig {
            pool_capacity: Some(64),
            retry: fast_retry(3),
            ..DiskIndexConfig::default()
        },
    );
    let root = disk.tree().root().raw();
    fault.fail_page_permanently(root);

    let queries = chaos_queries();
    for &scheme in Scheme::TABLE3.iter() {
        match disk.try_nwc(&queries[0], scheme) {
            Err(QueryError::Io(e)) => assert_eq!(e.page, root, "{scheme}"),
            other => panic!("{scheme}: expected Io error, got {other:?}"),
        }
    }
    let storage = disk.tree().storage().expect("disk-backed");
    let quarantined = storage.quarantine();
    assert_eq!(quarantined.len(), 1);
    assert_eq!(quarantined[0].0, root);
    // Invariants intact after every failed descent: nothing left pinned,
    // quarantined re-queries fail fast without touching the device.
    assert_eq!(storage.pool_stats().pinned, 0, "error path leaked a pin");
    let device_errors = fault.stats().errors();
    assert!(disk.try_nwc(&queries[1], Scheme::NWC_STAR).is_err());
    assert_eq!(fault.stats().errors(), device_errors, "quarantine must fail fast");

    // Lifting the fault and resetting restores full service.
    fault.clear_faults();
    storage.reset();
    disk.tree().stats().reset();
    for (qi, q) in queries.iter().enumerate() {
        let want = arena.nwc(q, Scheme::NWC_STAR);
        let got = disk.try_nwc(q, Scheme::NWC_STAR).expect("healthy again");
        assert_eq!(want.map(|r| r.ids()), got.map(|r| r.ids()), "q{qi} after recovery");
    }
}

#[test]
fn budget_exhaustion_mid_descent_under_faults_returns_sound_partials() {
    // A budget tripping mid-descent on a fault-injected disk index must
    // come back as a typed partial whose bounds bracket the brute-force
    // optimum — with every pin released, and the index healthy enough to
    // answer the exact query right afterwards. The point set is small so
    // the O(n²)-ish oracle stays cheap.
    let points = chaos_points(400);
    let arena = NwcIndex::build(points.clone());
    let (disk, fault) = fault_backed(
        &arena,
        "budget",
        DiskIndexConfig {
            pool_capacity: Some(16),
            pool_shards: Some(1),
            retry: fast_retry(8),
            ..DiskIndexConfig::default()
        },
    );
    // Transient bursts on 5% of reads plus 50 µs of device latency, so
    // both the I/O allowance and the wall-clock deadline genuinely trip
    // in the middle of faulted descents.
    fault.set_plan(FaultPlan {
        transient_rate: 0.05,
        transient_burst: 2,
        latency: Some(Duration::from_micros(50)),
        seed: 0xBAD_B0DE,
        ..FaultPlan::default()
    });
    let storage = disk.tree().storage().expect("disk-backed");

    let queries = Dataset::query_points(6, 17)
        .into_iter()
        .map(|q| NwcQuery::new(q, WindowSpec::square(2_000.0), 4))
        .collect::<Vec<_>>();
    let mut scratch = QueryScratch::new();
    let mut exhausted_runs = 0;
    for (qi, query) in queries.iter().enumerate() {
        let d_star = oracle::nwc_brute_force(&points, query).map(|r| r.distance);
        let budgets: Vec<Budget> = vec![
            Budget::none().io_limit(0),
            Budget::none().io_limit(4),
            Budget::none().io_limit(16),
            Budget::with_deadline(Instant::now() + Duration::from_micros(120)),
        ];
        for (bi, budget) in budgets.iter().enumerate() {
            let a = disk
                .try_nwc_anytime_with(query, Scheme::NWC_STAR, &mut scratch, budget, Approx::exact())
                .unwrap_or_else(|e| panic!("q{qi}/b{bi}: budget trip leaked as an error: {e}"));
            if a.exhausted.is_some() {
                exhausted_runs += 1;
            }
            assert!(a.error_bound >= 0.0, "q{qi}/b{bi}");
            assert!(a.lower_bound >= 0.0, "q{qi}/b{bi}");
            match d_star {
                None => assert!(a.answer.is_none(), "q{qi}/b{bi}: invented a group"),
                Some(d_star) => {
                    let tol = 1e-9 * d_star.abs().max(1.0);
                    assert!(
                        a.lower_bound <= d_star + tol,
                        "q{qi}/b{bi}: lower bound {} above the oracle optimum {}",
                        a.lower_bound,
                        d_star
                    );
                    if let Some(r) = &a.answer {
                        assert!(r.distance >= d_star - tol, "q{qi}/b{bi}: beat the oracle");
                        assert!(
                            r.distance - a.error_bound <= d_star + tol,
                            "q{qi}/b{bi}: error bound {} fails {} vs {}",
                            a.error_bound,
                            r.distance,
                            d_star
                        );
                    }
                }
            }
            // Every cut-off descent released its frames.
            assert_eq!(
                storage.pool_stats().pinned,
                0,
                "q{qi}/b{bi}: budget exhaustion leaked a pin"
            );
        }
    }
    assert!(exhausted_runs > 0, "no budget ever tripped — the test is vacuous");
    assert!(
        storage.quarantine().is_empty(),
        "budget trips and transient faults must never quarantine"
    );

    // Clean re-run: lift the fault plan and the same index answers the
    // exact query bit-identically to the arena, budget machinery gone.
    fault.set_plan(FaultPlan::default());
    storage.reset();
    disk.tree().stats().reset();
    for (qi, query) in queries.iter().enumerate() {
        let (want, ws) = arena.nwc_full(query, Scheme::NWC_STAR);
        let a = disk
            .try_nwc_anytime_with(
                query,
                Scheme::NWC_STAR,
                &mut scratch,
                &Budget::none(),
                Approx::exact(),
            )
            .unwrap_or_else(|e| panic!("q{qi}: clean re-run failed: {e}"));
        assert!(a.exhausted.is_none(), "q{qi}: unarmed budget expired");
        assert_eq!(
            want.map(|r| (r.ids(), r.distance.to_bits())),
            a.answer.map(|r| (r.ids(), r.distance.to_bits())),
            "q{qi}: clean re-run diverged from the arena"
        );
        assert_eq!(
            SearchStats { buffer_hits: 0, retries: 0, transient_errors: 0, ..a.stats },
            ws,
            "q{qi}: clean re-run did different logical work"
        );
    }
}

#[test]
fn budget_exhaustion_mid_scatter_degrades_the_merged_bound() {
    // Sharded scatter with shard 0 behind a fault store: a budget trip
    // or a dead page mid-scatter must degrade the merged answer's bound
    // (typed partial, shard listed in `degraded`) instead of failing the
    // query, with no pins left on any shard pool and a clean recovery.
    let points = chaos_points(400);
    let built = ShardedNwcIndex::build(points.clone(), 4);
    let dir = std::env::temp_dir().join(format!("nwc-chaos-scatter-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let no_retry = DiskIndexConfig {
        retry: fast_retry(1),
        ..DiskIndexConfig::default()
    };
    let mut shards = Vec::new();
    let mut fault = None;
    for (i, shard) in built.shards().iter().enumerate() {
        let path = dir.join(format!("shard-{i}.pages"));
        shard.save_tree(&path).expect("save shard");
        if i == 0 {
            let store = FileStore::open(&path).expect("reopen shard 0");
            let f = Arc::new(FaultStore::new(store, FaultPlan::default()));
            shards.push(
                NwcIndex::open_disk_from_store(Box::new(Arc::clone(&f)), no_retry)
                    .expect("open shard 0 through fault store"),
            );
            fault = Some(f);
        } else {
            shards.push(NwcIndex::open_disk(&path, no_retry).expect("open shard"));
        }
    }
    std::fs::remove_dir_all(&dir).ok();
    let fault = fault.expect("shard 0 is fault-backed");
    let sharded = ShardedNwcIndex::from_shards(shards, None)
        .expect("assemble")
        .with_threads(2);

    let query = NwcQuery::new(Point::new(4_000.0, 4_000.0), WindowSpec::square(2_000.0), 4);
    let d_star = oracle::nwc_brute_force(&points, &query)
        .map(|r| r.distance)
        .expect("the wide chaos query always has an answer");
    let tol = 1e-9 * d_star.abs().max(1.0);
    let check_bounds = |a: &AnytimeNwc, ctx: &str| {
        assert!(a.error_bound >= 0.0, "{ctx}");
        assert!(
            a.lower_bound <= d_star + tol,
            "{ctx}: lower bound {} above the oracle optimum {d_star}",
            a.lower_bound
        );
        if let Some(r) = &a.answer {
            assert!(r.distance >= d_star - tol, "{ctx}: beat the oracle");
            assert!(
                r.distance - a.error_bound <= d_star + tol,
                "{ctx}: error bound {} fails {} vs {d_star}",
                a.error_bound,
                r.distance
            );
        }
    };
    let assert_no_pins = |ctx: &str| {
        for (si, shard) in sharded.shards().iter().enumerate() {
            let storage = shard.tree().storage().expect("disk-backed");
            assert_eq!(storage.pool_stats().pinned, 0, "{ctx}: shard {si} leaked a pin");
        }
    };

    // Tiny I/O allowance: some shard trips mid-scatter; the merge still
    // produces a typed partial with sound bounds.
    let tight = sharded
        .try_nwc_anytime(&query, Scheme::NWC_STAR, &Budget::none().io_limit(3), Approx::exact())
        .expect("budget trip mid-scatter must not fail the query");
    assert!(
        tight.anytime.exhausted.is_some(),
        "a 3-node allowance cannot cover a 4-shard scatter"
    );
    check_bounds(&tight.anytime, "tight budget");
    assert_no_pins("tight budget");

    // Kill a page in shard 0 outright: the scatter degrades around it —
    // shard 0 shows up in `degraded`, the other shards' answer merges,
    // and the bound accounts for everything shard 0 could still hide.
    let dead_leaf = {
        let shard0 = &sharded.shards()[0];
        let mut browser = shard0.tree().browse(query.q);
        let leaf = loop {
            match browser.next() {
                Some(BrowseItem::Node { id, .. }) => browser.expand(id),
                Some(BrowseItem::Object { leaf, .. }) => break leaf,
                None => panic!("shard 0 browsed dry"),
            }
        };
        shard0.tree().stats().reset();
        shard0.tree().storage().expect("disk-backed").reset();
        leaf.raw()
    };
    fault.fail_page_permanently(dead_leaf);
    let degraded = sharded
        .try_nwc_anytime(&query, Scheme::NWC_STAR, &Budget::none(), Approx::exact())
        .expect("a dead shard degrades the bound, it does not fail the query");
    assert!(
        degraded
            .degraded
            .iter()
            .any(|(s, e)| *s == 0 && matches!(e, QueryError::Io(_))),
        "shard 0 must be listed as degraded with a typed I/O error, got {:?}",
        degraded.degraded
    );
    check_bounds(&degraded.anytime, "dead shard");
    assert_no_pins("dead shard");

    // Clean recovery: lift the fault and the exact anytime scatter
    // agrees with the exact scatter path again.
    fault.clear_faults();
    sharded.shards()[0].tree().storage().expect("disk-backed").reset();
    sharded.shards()[0].tree().stats().reset();
    let want = sharded.try_nwc(&query, Scheme::NWC_STAR).expect("healthy scatter");
    let got = sharded
        .try_nwc_anytime(&query, Scheme::NWC_STAR, &Budget::none(), Approx::exact())
        .expect("healthy anytime scatter");
    assert!(got.degraded.is_empty(), "recovered scatter still degraded");
    assert_eq!(
        want.map(|r| r.ids()),
        got.anytime.answer.map(|r| r.ids()),
        "recovered anytime scatter diverged"
    );
    assert!((got.anytime.lower_bound - d_star).abs() <= tol || got.anytime.lower_bound >= d_star - tol);
}

#[test]
fn engine_collects_per_query_errors_without_tearing_down_the_batch() {
    let arena = NwcIndex::build(chaos_points(5_000));
    let (disk, fault) = fault_backed(
        &arena,
        "engine",
        DiskIndexConfig {
            pool_capacity: Some(48),
            pool_shards: Some(4),
            prefetch: 8,
            retry: fast_retry(3),
            ..DiskIndexConfig::default()
        },
    );
    // Kill the leaf under one corner of the space: queries aimed there
    // must fail, queries in the opposite corner never read that page.
    let near = Point::new(700.0, 700.0);
    let far = Point::new(9_200.0, 9_200.0);
    let dead_leaf = leaf_page_near(&disk, near);
    fault.fail_page_permanently(dead_leaf);

    let queries: Vec<NwcQuery> = (0..8)
        .map(|i| {
            let q = if i % 2 == 0 { near } else { far };
            NwcQuery::new(q, WindowSpec::square(300.0), 3)
        })
        .collect();
    let engine = QueryEngine::new(&disk).with_threads(4);
    let batch = engine.try_nwc_batch(&queries, Scheme::NWC_STAR);
    assert_eq!(batch.len(), queries.len());

    let (mut failed, mut served) = (0, 0);
    for (qi, (q, slot)) in queries.iter().zip(&batch).enumerate() {
        match slot {
            Err(QueryError::Io(e)) => {
                assert_eq!(e.page, dead_leaf, "q{qi} failed on an unexpected page");
                failed += 1;
            }
            Err(other) => panic!("q{qi}: expected Io, got {other}"),
            Ok((got, _)) => {
                let want = arena.nwc(q, Scheme::NWC_STAR);
                assert_eq!(
                    want.map(|r| r.ids()),
                    got.as_ref().map(|r| r.ids()),
                    "q{qi} served a wrong answer next to a dead page"
                );
                served += 1;
            }
        }
    }
    assert_eq!(failed, 4, "every near-corner query descends into the dead leaf");
    assert_eq!(served, 4, "far-corner queries never touch it");

    // The failures left the shared pool coherent under 4 threads.
    let storage = disk.tree().storage().expect("disk-backed");
    assert_eq!(storage.pool_stats().pinned, 0, "a worker leaked a pin");
    let io = disk.tree().stats();
    assert_eq!(
        io.accesses(),
        io.node_reads() + io.buffer_hits(),
        "logical accesses must still decompose exactly"
    );

    // kNWC error collection rides the same machinery.
    let kq = KnwcQuery::new(near, WindowSpec::square(300.0), 3, 2, 1);
    match engine.try_knwc_batch(&[kq], Scheme::NWC_STAR).remove(0) {
        Err(QueryError::Io(e)) => assert_eq!(e.page, dead_leaf),
        other => panic!("expected Io, got {other:?}"),
    }
}
