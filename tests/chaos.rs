//! Chaos tests: the Table-3 schemes under injected disk faults.
//!
//! Under **transient-only** faults every scheme must return answers and
//! logical I/O bit-identical to the in-memory arena baseline — retries
//! are invisible to the paper's metric, they only show up in the new
//! `retries`/`transient_errors` counters. Under **permanent** faults the
//! `try_*` APIs must surface typed errors (no panic, no poisoned state):
//! the failing page is quarantined, every pin is released, and the index
//! keeps answering queries that avoid the dead page — including from the
//! 4-thread batch engine, where one bad page must never tear down the
//! worker scope.

use nwc::prelude::*;
use nwc_core::QueryError;
use nwc_rtree::BrowseItem;
use nwc_store::{FaultPlan, FaultStore, FileStore, RetryPolicy};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

fn temp_pages(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("nwc-chaos-{tag}-{}.pages", std::process::id()))
}

fn chaos_points(n: usize) -> Vec<Point> {
    (0..n)
        .map(|i| {
            let s = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            Point::new((s % 9_000) as f64 + 500.0, ((s >> 13) % 9_000) as f64 + 500.0)
        })
        .collect()
}

/// A zero-backoff retry policy so fault-heavy tests don't sleep.
fn fast_retry(max_attempts: u32) -> RetryPolicy {
    RetryPolicy {
        max_attempts,
        base_backoff: Duration::ZERO,
        max_backoff: Duration::ZERO,
    }
}

/// Saves `arena`'s tree and reopens it through a [`FaultStore`] the test
/// keeps a scripting handle to. The store starts transparent (the open
/// path has no retry in front of it); arm a plan with
/// [`FaultStore::set_plan`] or script pages after open.
fn fault_backed(
    arena: &NwcIndex,
    tag: &str,
    config: DiskIndexConfig,
) -> (NwcIndex, Arc<FaultStore<FileStore>>) {
    let path = temp_pages(tag);
    arena
        .save_tree_with_layout(&path, PageLayout::Clustered)
        .expect("save clustered");
    let store = FileStore::open(&path).expect("reopen page file");
    let fault = Arc::new(FaultStore::new(store, FaultPlan::default()));
    let disk = NwcIndex::open_disk_from_store(Box::new(Arc::clone(&fault)), config)
        .expect("open through a transparent fault store");
    std::fs::remove_file(&path).ok();
    (disk, fault)
}

fn chaos_queries() -> Vec<NwcQuery> {
    Dataset::query_points(12, 11)
        .into_iter()
        .map(|q| NwcQuery::new(q, WindowSpec::square(400.0), 4))
        .collect()
}

/// The page id of the leaf holding the entry nearest to `q` (found by
/// browsing, which charges I/O — reset counters afterwards).
fn leaf_page_near(disk: &NwcIndex, q: Point) -> u32 {
    let mut browser = disk.tree().browse(q);
    let leaf = loop {
        match browser.next() {
            Some(BrowseItem::Node { id, .. }) => browser.expand(id),
            Some(BrowseItem::Object { leaf, .. }) => break leaf,
            None => panic!("non-empty tree browsed dry without yielding an object"),
        }
    };
    disk.tree().stats().reset();
    disk.tree().storage().expect("disk-backed").reset();
    leaf.raw()
}

#[test]
fn transient_faults_keep_every_scheme_bit_identical_to_arena() {
    let arena = NwcIndex::build(chaos_points(4_000));
    let (disk, fault) = fault_backed(
        &arena,
        "transient",
        DiskIndexConfig {
            pool_capacity: Some(64),
            pool_shards: Some(2),
            prefetch: 8,
            retry: fast_retry(12),
            ..DiskIndexConfig::default()
        },
    );
    // 2% of reads start a 2-failure burst; the 12-attempt budget makes
    // non-recovery astronomically unlikely and the seed makes the
    // sequential schedule reproducible.
    fault.set_plan(FaultPlan {
        transient_rate: 0.02,
        transient_burst: 2,
        seed: 0xDEC0_DE5E,
        ..FaultPlan::default()
    });

    let queries = chaos_queries();
    let mut total_retries = 0;
    let mut total_transient = 0;
    for &scheme in Scheme::TABLE3.iter() {
        for (qi, q) in queries.iter().enumerate() {
            let (want, ws) = arena.nwc_full(q, scheme);
            let (got, gs) = disk
                .try_nwc_full(q, scheme)
                .unwrap_or_else(|e| panic!("{scheme} q{qi}: transient fault leaked: {e}"));
            match (&want, &got) {
                (None, None) => {}
                (Some(a), Some(d)) => {
                    assert_eq!(a.ids(), d.ids(), "{scheme} q{qi}");
                    assert_eq!(a.distance, d.distance, "{scheme} q{qi}");
                }
                _ => panic!("{scheme} q{qi}: one mode found a result, one did not"),
            }
            // Logical I/O is bit-identical: faults and retries live
            // entirely outside the paper's metric.
            assert_eq!(
                SearchStats { buffer_hits: 0, retries: 0, transient_errors: 0, ..gs },
                ws,
                "{scheme} q{qi}: logical I/O diverged under transient faults"
            );
            total_retries += gs.retries;
            total_transient += gs.transient_errors;
        }
    }
    assert!(total_retries > 0, "the fault schedule never fired");
    assert!(total_transient > 0, "no failure was attributed to a query");
    assert!(fault.stats().transient > 0, "the store never injected");
    assert!(
        disk.tree().storage().expect("disk-backed").quarantine().is_empty(),
        "transient faults must never quarantine a page"
    );

    // Same index, same plan, 4-thread engine: every slot still Ok and
    // identical to the arena (which reads fail now depends on thread
    // interleaving; answers and logical I/O must not).
    let engine = QueryEngine::new(&disk).with_threads(4);
    let batch = engine.try_nwc_batch(&queries, Scheme::NWC_STAR);
    for (qi, (q, slot)) in queries.iter().zip(&batch).enumerate() {
        let (got, gs) = slot
            .as_ref()
            .unwrap_or_else(|e| panic!("engine q{qi}: transient fault leaked: {e}"));
        let (want, ws) = arena.nwc_full(q, Scheme::NWC_STAR);
        assert_eq!(
            want.map(|r| r.ids()),
            got.as_ref().map(|r| r.ids()),
            "engine q{qi}"
        );
        assert_eq!(
            SearchStats { buffer_hits: 0, retries: 0, transient_errors: 0, ..*gs },
            ws,
            "engine q{qi}: logical I/O diverged"
        );
    }
}

#[test]
fn overlapped_io_stays_bit_identical_under_transient_faults() {
    // Same contract as the sync chaos test, but with readahead running
    // on completion threads: mid-descent transient faults on the demand
    // path retry as before, failed readahead runs are swallowed and
    // tallied (never retried), and answers plus logical I/O stay
    // bit-identical to the arena at 1 and 4 I/O threads.
    let arena = NwcIndex::build(chaos_points(4_000));
    let queries = chaos_queries();
    for io_threads in [1usize, 4] {
        let (disk, fault) = fault_backed(
            &arena,
            &format!("overlap{io_threads}"),
            DiskIndexConfig {
                pool_capacity: Some(64),
                pool_shards: Some(2),
                prefetch: 8,
                io_threads,
                retry: fast_retry(12),
                ..DiskIndexConfig::default()
            },
        );
        fault.set_plan(FaultPlan {
            transient_rate: 0.02,
            transient_burst: 2,
            seed: 0xDEC0_DE5E,
            ..FaultPlan::default()
        });

        for &scheme in Scheme::TABLE3.iter() {
            for (qi, q) in queries.iter().enumerate() {
                let (want, ws) = arena.nwc_full(q, scheme);
                let (got, gs) = disk.try_nwc_full(q, scheme).unwrap_or_else(|e| {
                    panic!("io{io_threads}/{scheme} q{qi}: transient fault leaked: {e}")
                });
                match (&want, &got) {
                    (None, None) => {}
                    (Some(a), Some(d)) => {
                        assert_eq!(a.ids(), d.ids(), "io{io_threads}/{scheme} q{qi}");
                        assert_eq!(a.distance, d.distance, "io{io_threads}/{scheme} q{qi}");
                    }
                    _ => panic!("io{io_threads}/{scheme} q{qi}: one mode found a result, one did not"),
                }
                assert_eq!(
                    SearchStats { buffer_hits: 0, retries: 0, transient_errors: 0, ..gs },
                    ws,
                    "io{io_threads}/{scheme} q{qi}: logical I/O diverged"
                );
            }
        }

        // 4-thread engine on top of the overlapped backend: workers and
        // completion threads share the pool; every slot still Ok.
        let engine = QueryEngine::new(&disk).with_threads(4);
        let batch = engine.try_nwc_batch(&queries, Scheme::NWC_STAR);
        for (qi, (q, slot)) in queries.iter().zip(&batch).enumerate() {
            let (got, _) = slot.as_ref().unwrap_or_else(|e| {
                panic!("io{io_threads}/engine q{qi}: transient fault leaked: {e}")
            });
            let (want, _) = arena.nwc_full(q, Scheme::NWC_STAR);
            assert_eq!(
                want.map(|r| r.ids()),
                got.as_ref().map(|r| r.ids()),
                "io{io_threads}/engine q{qi}"
            );
        }

        let storage = disk.tree().storage().expect("disk-backed");
        storage.wait_io_idle();
        assert_eq!(storage.pool_stats().pinned, 0, "io{io_threads}: leaked a pin");
        assert!(
            storage.quarantine().is_empty(),
            "io{io_threads}: transient faults must never quarantine"
        );
        assert!(fault.stats().transient > 0, "io{io_threads}: the store never injected");
    }
}

#[test]
fn overlapped_io_preserves_quarantine_on_permanent_faults() {
    // A permanently dead leaf under the overlapped backend: typed error,
    // quarantined once, no pins leaked by either the query threads or
    // the completion threads, and recovery after clearing the fault.
    let arena = NwcIndex::build(chaos_points(3_000));
    let (disk, fault) = fault_backed(
        &arena,
        "overlap-perm",
        DiskIndexConfig {
            pool_capacity: Some(64),
            prefetch: 8,
            io_threads: 2,
            retry: fast_retry(3),
            ..DiskIndexConfig::default()
        },
    );
    let near = Point::new(700.0, 700.0);
    let dead_leaf = leaf_page_near(&disk, near);
    fault.fail_page_permanently(dead_leaf);

    let q = NwcQuery::new(near, WindowSpec::square(300.0), 3);
    match disk.try_nwc(&q, Scheme::NWC_STAR) {
        Err(QueryError::Io(e)) => assert_eq!(e.page, dead_leaf),
        other => panic!("expected Io error, got {other:?}"),
    }
    let storage = disk.tree().storage().expect("disk-backed");
    storage.wait_io_idle();
    let quarantined = storage.quarantine();
    assert_eq!(quarantined.len(), 1);
    assert_eq!(quarantined[0].0, dead_leaf);
    assert_eq!(storage.pool_stats().pinned, 0, "error path leaked a pin");

    fault.clear_faults();
    storage.reset();
    disk.tree().stats().reset();
    let want = arena.nwc(&q, Scheme::NWC_STAR);
    let got = disk.try_nwc(&q, Scheme::NWC_STAR).expect("healthy again");
    assert_eq!(want.map(|r| r.ids()), got.map(|r| r.ids()), "after recovery");
}

#[test]
fn permanent_fault_returns_typed_errors_and_leaves_the_index_usable() {
    let arena = NwcIndex::build(chaos_points(3_000));
    let (disk, fault) = fault_backed(
        &arena,
        "permanent",
        DiskIndexConfig {
            pool_capacity: Some(64),
            retry: fast_retry(3),
            ..DiskIndexConfig::default()
        },
    );
    let root = disk.tree().root().raw();
    fault.fail_page_permanently(root);

    let queries = chaos_queries();
    for &scheme in Scheme::TABLE3.iter() {
        match disk.try_nwc(&queries[0], scheme) {
            Err(QueryError::Io(e)) => assert_eq!(e.page, root, "{scheme}"),
            other => panic!("{scheme}: expected Io error, got {other:?}"),
        }
    }
    let storage = disk.tree().storage().expect("disk-backed");
    let quarantined = storage.quarantine();
    assert_eq!(quarantined.len(), 1);
    assert_eq!(quarantined[0].0, root);
    // Invariants intact after every failed descent: nothing left pinned,
    // quarantined re-queries fail fast without touching the device.
    assert_eq!(storage.pool_stats().pinned, 0, "error path leaked a pin");
    let device_errors = fault.stats().errors();
    assert!(disk.try_nwc(&queries[1], Scheme::NWC_STAR).is_err());
    assert_eq!(fault.stats().errors(), device_errors, "quarantine must fail fast");

    // Lifting the fault and resetting restores full service.
    fault.clear_faults();
    storage.reset();
    disk.tree().stats().reset();
    for (qi, q) in queries.iter().enumerate() {
        let want = arena.nwc(q, Scheme::NWC_STAR);
        let got = disk.try_nwc(q, Scheme::NWC_STAR).expect("healthy again");
        assert_eq!(want.map(|r| r.ids()), got.map(|r| r.ids()), "q{qi} after recovery");
    }
}

#[test]
fn engine_collects_per_query_errors_without_tearing_down_the_batch() {
    let arena = NwcIndex::build(chaos_points(5_000));
    let (disk, fault) = fault_backed(
        &arena,
        "engine",
        DiskIndexConfig {
            pool_capacity: Some(48),
            pool_shards: Some(4),
            prefetch: 8,
            retry: fast_retry(3),
            ..DiskIndexConfig::default()
        },
    );
    // Kill the leaf under one corner of the space: queries aimed there
    // must fail, queries in the opposite corner never read that page.
    let near = Point::new(700.0, 700.0);
    let far = Point::new(9_200.0, 9_200.0);
    let dead_leaf = leaf_page_near(&disk, near);
    fault.fail_page_permanently(dead_leaf);

    let queries: Vec<NwcQuery> = (0..8)
        .map(|i| {
            let q = if i % 2 == 0 { near } else { far };
            NwcQuery::new(q, WindowSpec::square(300.0), 3)
        })
        .collect();
    let engine = QueryEngine::new(&disk).with_threads(4);
    let batch = engine.try_nwc_batch(&queries, Scheme::NWC_STAR);
    assert_eq!(batch.len(), queries.len());

    let (mut failed, mut served) = (0, 0);
    for (qi, (q, slot)) in queries.iter().zip(&batch).enumerate() {
        match slot {
            Err(QueryError::Io(e)) => {
                assert_eq!(e.page, dead_leaf, "q{qi} failed on an unexpected page");
                failed += 1;
            }
            Err(other) => panic!("q{qi}: expected Io, got {other}"),
            Ok((got, _)) => {
                let want = arena.nwc(q, Scheme::NWC_STAR);
                assert_eq!(
                    want.map(|r| r.ids()),
                    got.as_ref().map(|r| r.ids()),
                    "q{qi} served a wrong answer next to a dead page"
                );
                served += 1;
            }
        }
    }
    assert_eq!(failed, 4, "every near-corner query descends into the dead leaf");
    assert_eq!(served, 4, "far-corner queries never touch it");

    // The failures left the shared pool coherent under 4 threads.
    let storage = disk.tree().storage().expect("disk-backed");
    assert_eq!(storage.pool_stats().pinned, 0, "a worker leaked a pin");
    let io = disk.tree().stats();
    assert_eq!(
        io.accesses(),
        io.node_reads() + io.buffer_hits(),
        "logical accesses must still decompose exactly"
    );

    // kNWC error collection rides the same machinery.
    let kq = KnwcQuery::new(near, WindowSpec::square(300.0), 3, 2, 1);
    match engine.try_knwc_batch(&[kq], Scheme::NWC_STAR).remove(0) {
        Err(QueryError::Io(e)) => assert_eq!(e.page, dead_leaf),
        other => panic!("expected Io, got {other:?}"),
    }
}
