//! Property tests for the R\*-tree substrate: structural invariants and
//! query equivalence against linear scans, across build paths and
//! mutation sequences.

use nwc::geom::{Point, Rect};
use nwc::rtree::{validate, IwpIndex, RStarTree, TreeParams};
use proptest::prelude::*;

fn point_strategy() -> impl Strategy<Value = Point> {
    (0u32..1000, 0u32..1000).prop_map(|(x, y)| Point::new(x as f64 * 0.5, y as f64 * 0.5))
}

fn rect_strategy() -> impl Strategy<Value = Rect> {
    (point_strategy(), 0.0f64..200.0, 0.0f64..200.0)
        .prop_map(|(p, w, h)| Rect::new(p, Point::new(p.x + w, p.y + h)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn bulk_and_insert_build_valid_trees(
        points in proptest::collection::vec(point_strategy(), 1..400),
        fanout in 4usize..16,
    ) {
        let params = TreeParams::with_max_entries(fanout);
        let bulk = RStarTree::bulk_load_with_params(&points, params);
        validate::check_invariants(&bulk).unwrap();
        prop_assert_eq!(bulk.len(), points.len());

        let mut inc = RStarTree::with_params(params);
        for (i, &p) in points.iter().enumerate() {
            inc.insert(i as u32, p).unwrap();
        }
        validate::check_invariants(&inc).unwrap();
        validate::check_fill(&inc).unwrap();
        prop_assert_eq!(inc.len(), points.len());
    }

    #[test]
    fn window_query_equals_linear_scan(
        points in proptest::collection::vec(point_strategy(), 1..300),
        window in rect_strategy(),
    ) {
        let tree = RStarTree::bulk_load(&points);
        let mut got: Vec<u32> = tree.window_query(&window).iter().map(|e| e.id).collect();
        got.sort_unstable();
        let want: Vec<u32> = points
            .iter()
            .enumerate()
            .filter(|(_, p)| window.contains_point(p))
            .map(|(i, _)| i as u32)
            .collect();
        prop_assert_eq!(tree.window_count(&window), want.len());
        prop_assert_eq!(got, want);
    }

    #[test]
    fn knn_distances_match_sorted_scan(
        points in proptest::collection::vec(point_strategy(), 1..300),
        q in point_strategy(),
        k in 1usize..20,
    ) {
        let tree = RStarTree::bulk_load(&points);
        let got: Vec<f64> = tree.knn(q, k).iter().map(|&(d, _)| d).collect();
        let mut want: Vec<f64> = points.iter().map(|p| p.dist(&q)).collect();
        want.sort_by(f64::total_cmp);
        want.truncate(k);
        prop_assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(&want) {
            prop_assert!((g - w).abs() < 1e-9, "{got:?} vs {want:?}");
        }
    }

    #[test]
    fn browse_order_is_nondecreasing(
        points in proptest::collection::vec(point_strategy(), 1..300),
        q in point_strategy(),
    ) {
        let tree = RStarTree::bulk_load(&points);
        let mut last = -1.0f64;
        let mut count = 0usize;
        for (d, _) in tree.browse(q).objects() {
            prop_assert!(d >= last);
            last = d;
            count += 1;
        }
        prop_assert_eq!(count, points.len());
    }

    #[test]
    fn deletion_preserves_invariants_and_contents(
        points in proptest::collection::vec(point_strategy(), 2..200),
        selector in proptest::collection::vec(any::<bool>(), 2..200),
    ) {
        let mut tree = RStarTree::bulk_load_with_params(
            &points,
            TreeParams::with_max_entries(6),
        );
        let mut expected: Vec<(u32, Point)> = points
            .iter()
            .enumerate()
            .map(|(i, &p)| (i as u32, p))
            .collect();
        for (i, &del) in selector.iter().enumerate() {
            if del && i < points.len() {
                prop_assert!(tree.delete(i as u32, points[i]).unwrap());
                expected.retain(|&(id, _)| id != i as u32);
            }
        }
        validate::check_invariants(&tree).unwrap();
        prop_assert_eq!(tree.len(), expected.len());
        let mut got: Vec<u32> = tree.iter_entries().map(|e| e.id).collect();
        got.sort_unstable();
        let mut want: Vec<u32> = expected.iter().map(|&(id, _)| id).collect();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn page_file_roundtrip_preserves_tree(
        points in proptest::collection::vec(point_strategy(), 1..400),
        probe in any::<prop::sample::Index>(),
    ) {
        let tree = RStarTree::bulk_load(&points);
        let file = tree.to_page_file();
        prop_assert_eq!(file.page_count(), tree.node_count());
        let back = RStarTree::from_page_file(&file).unwrap();
        validate::check_invariants(&back).unwrap();
        prop_assert_eq!(back.len(), tree.len());
        prop_assert_eq!(back.height(), tree.height());
        // Same answers around a random probe point.
        let p = points[probe.index(points.len())];
        let window = Rect::new(
            Point::new(p.x - 30.0, p.y - 30.0),
            Point::new(p.x + 30.0, p.y + 30.0),
        );
        let mut a: Vec<u32> = tree.window_query(&window).iter().map(|e| e.id).collect();
        let mut b: Vec<u32> = back.window_query(&window).iter().map(|e| e.id).collect();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn iwp_incremental_query_equals_plain(
        points in proptest::collection::vec(point_strategy(), 30..300),
        size in 1.0f64..100.0,
        probe in any::<prop::sample::Index>(),
    ) {
        let tree = RStarTree::bulk_load_with_params(&points, TreeParams::with_max_entries(6));
        let iwp = IwpIndex::build(&tree);
        // Query around an actual object, through its own leaf — the way
        // the NWC algorithm drives IWP.
        let p = points[probe.index(points.len())];
        let leaf = {
            let mut browser = tree.browse(p);
            loop {
                match browser.next().unwrap() {
                    nwc::rtree::BrowseItem::Node { id, .. } => browser.expand(id),
                    nwc::rtree::BrowseItem::Object { dist: 0.0, leaf, .. } => {
                        break leaf
                    }
                    _ => {}
                }
            }
        };
        let window = Rect::new(
            Point::new(p.x - size, p.y - size),
            Point::new(p.x + size, p.y + size),
        );
        let mut got: Vec<u32> = iwp
            .window_query(&tree, leaf, &window)
            .iter()
            .map(|e| e.id)
            .collect();
        got.sort_unstable();
        let mut want: Vec<u32> = tree.window_query(&window).iter().map(|e| e.id).collect();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }
}
