//! Property tests for kNWC queries (paper Definition 3).
//!
//! The kNWC insertion procedure (§3.4 Steps 1–5) is order-sensitive in
//! rare eviction cascades, so these tests verify the *contract* of
//! Definition 3 — group feasibility, ascending order, pairwise overlap,
//! and optimality of the first group — rather than exact set equality
//! with a particular greedy tie-breaking.

use nwc::core::{oracle, KnwcQuery};
use nwc::prelude::*;
use proptest::prelude::*;

fn point_strategy() -> impl Strategy<Value = Point> {
    (0u32..80, 0u32..80).prop_map(|(x, y)| Point::new(x as f64, y as f64))
}

fn scenario() -> impl Strategy<Value = (Vec<Point>, Point, f64, usize, usize, usize)> {
    (
        proptest::collection::vec(point_strategy(), 10..40),
        point_strategy(),
        4.0f64..20.0,
        2usize..5, // n
        1usize..5, // k
        0usize..3, // m (validated against n below)
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn knwc_satisfies_definition3((points, q, size, n, k, m) in scenario()) {
        prop_assume!(m < n);
        let index = NwcIndex::build(points.clone());
        let query = KnwcQuery::new(q, WindowSpec::square(size), n, k, m);
        for scheme in [Scheme::NWC, Scheme::NWC_PLUS, Scheme::NWC_STAR] {
            let r = index.knwc(&query, scheme);
            prop_assert!(r.groups.len() <= k);
            // (1) every group: n distinct objects inside an l×w window.
            for g in &r.groups {
                prop_assert_eq!(g.objects.len(), n);
                let ids = g.id_set();
                prop_assert!(ids.windows(2).all(|w| w[0] < w[1]), "duplicate ids");
                prop_assert!(g.window.width() <= size + 1e-9);
                prop_assert!(g.window.height() <= size + 1e-9);
                for e in &g.objects {
                    prop_assert!(g.window.contains_point(&e.point));
                }
            }
            // (3) ascending distances.
            let d: Vec<f64> = r.groups.iter().map(|g| g.distance).collect();
            prop_assert!(d.windows(2).all(|p| p[0] <= p[1]), "{scheme}: {d:?}");
            // (2) pairwise overlap ≤ m.
            for a in 0..r.groups.len() {
                for b in a + 1..r.groups.len() {
                    let ia = r.groups[a].id_set();
                    let ib = r.groups[b].id_set();
                    let shared = ia.iter().filter(|x| ib.binary_search(x).is_ok()).count();
                    prop_assert!(shared <= m, "{scheme}: groups {a},{b} share {shared}");
                }
            }
        }
    }

    #[test]
    fn first_group_is_the_nwc_optimum((points, q, size, n, k, m) in scenario()) {
        prop_assume!(m < n);
        let index = NwcIndex::build(points.clone());
        let query = KnwcQuery::new(q, WindowSpec::square(size), n, k, m);
        let r = index.knwc(&query, Scheme::NWC_STAR);
        let nwc = index.nwc(&query.base, Scheme::NWC_STAR);
        match (r.groups.first(), nwc) {
            (None, None) => {}
            (Some(g), Some(best)) => {
                prop_assert!((g.distance - best.distance).abs() < 1e-9,
                    "kNWC first group {} vs NWC {}", g.distance, best.distance);
            }
            (a, b) => prop_assert!(false, "{:?} vs {:?}",
                a.map(|g| g.distance), b.map(|r| r.distance)),
        }
    }

    #[test]
    fn exact_mode_equals_brute_force_greedy((points, q, size, n, k, m) in scenario()) {
        prop_assume!(m < n);
        let index = NwcIndex::build(points.clone());
        let query = KnwcQuery::new(q, WindowSpec::square(size), n, k, m);
        let greedy = oracle::knwc_brute_force(&points, &query);
        // knwc_exact disables distance pruning and must reproduce the
        // brute-force greedy selection set-for-set, under every scheme
        // (DEP/IWP never drop qualified windows).
        for scheme in [Scheme::NWC, Scheme::DEP, Scheme::IWP, Scheme::NWC_STAR] {
            let r = index.knwc_exact(&query, scheme);
            prop_assert_eq!(r.groups.len(), greedy.len(), "{}", scheme);
            for (g, o) in r.groups.iter().zip(&greedy) {
                prop_assert!((g.distance - o.distance).abs() < 1e-9, "{}", scheme);
                prop_assert_eq!(g.id_set(), o.id_set(), "{}", scheme);
            }
        }
        // The pruned variant keeps the optimal first group and never
        // violates Definition 3's structural conditions (checked in
        // knwc_satisfies_definition3); its first group must agree.
        let pruned = index.knwc(&query, Scheme::NWC_STAR);
        if let (Some(g), Some(o)) = (pruned.groups.first(), greedy.first()) {
            prop_assert!((g.distance - o.distance).abs() < 1e-9);
        }
        prop_assert_eq!(pruned.groups.is_empty(), greedy.is_empty());
    }

    #[test]
    fn knwc_with_k1_equals_nwc((points, q, size, n, _k, m) in scenario()) {
        prop_assume!(m < n);
        let index = NwcIndex::build(points.clone());
        let query = KnwcQuery::new(q, WindowSpec::square(size), n, 1, m);
        let r = index.knwc(&query, Scheme::NWC_PLUS);
        let nwc = index.nwc(&query.base, Scheme::NWC_PLUS);
        match (r.groups.first(), nwc) {
            (None, None) => {}
            (Some(g), Some(best)) => prop_assert!((g.distance - best.distance).abs() < 1e-9),
            (a, b) => prop_assert!(false, "{:?} vs {:?}",
                a.map(|g| g.distance), b.map(|r| r.distance)),
        }
    }
}
