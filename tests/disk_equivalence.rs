//! The disk mode's contract, end to end:
//!
//! 1. **Equivalence** — a FileStore-backed index with an unbounded pool
//!    answers every Table-3 scheme with the *same results and the same
//!    per-query `SearchStats` I/O counts* as the in-memory arena; the
//!    arena's node reads equal the disk tree's physical reads + buffer
//!    hits.
//! 2. **Round-trip edges** — empty tree, single point, duplicate
//!    points, nodes at exactly `max_entries`, height ≥ 3 trees.
//! 3. **Corruption** — cycles, dangling children, bad tags/counts,
//!    bit flips and truncation are rejected with typed errors, never
//!    panics.

use nwc::core::IndexOpenError;
use nwc::prelude::*;
use nwc::rtree::{validate, DiskError, PageError, RStarTree, TreeParams};
use nwc::store::StoreError;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};

/// A unique temp path per call (tests run concurrently).
fn temp_pages(tag: &str) -> PathBuf {
    static COUNTER: AtomicU32 = AtomicU32::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "nwc-test-{tag}-{}-{n}.pages",
        std::process::id()
    ))
}

/// Saves `index`'s tree and reopens it disk-backed with an unbounded
/// pool, grid and IWP rebuilt (so every scheme runs).
fn reopen_disk(index: &NwcIndex, tag: &str) -> NwcIndex {
    let path = temp_pages(tag);
    index.save_tree(&path).expect("save");
    let disk = NwcIndex::open_disk(&path, DiskIndexConfig::default()).expect("open");
    std::fs::remove_file(&path).ok();
    disk
}

fn seeded_points(n: usize, seed: u64) -> Vec<Point> {
    // Lattice + deterministic jitter: duplicates and boundary ties
    // included, no RNG dependency.
    (0..n)
        .map(|i| {
            let s = (i as u64).wrapping_mul(seed | 1);
            Point::new(
                ((s % 97) * 10) as f64 + ((s >> 8) % 4) as f64 * 0.25,
                (((s >> 16) % 89) * 10) as f64 + ((s >> 24) % 4) as f64 * 0.25,
            )
        })
        .collect()
}

#[test]
fn disk_results_and_io_match_arena_for_all_schemes() {
    for (ds, n_pts, seed) in [("a", 350usize, 11u64), ("b", 900, 29), ("c", 2000, 71)] {
        let points = seeded_points(n_pts, seed);
        let arena = NwcIndex::build(points);
        let disk = reopen_disk(&arena, "equiv");
        let queries = Dataset::query_points(5, seed);
        for scheme in Scheme::TABLE3 {
            for (qi, &q) in queries.iter().enumerate() {
                for spec in [WindowSpec::square(60.0), WindowSpec::new(120.0, 40.0)] {
                    let query = NwcQuery::new(q, spec, 4);
                    let (ra, sa) = arena.nwc_full(&query, scheme);
                    let (rd, sd) = disk.nwc_full(&query, scheme);
                    // Identical answers...
                    match (&ra, &rd) {
                        (None, None) => {}
                        (Some(a), Some(d)) => {
                            assert_eq!(a.ids(), d.ids(), "{ds}/{scheme}/q{qi}");
                            assert_eq!(a.distance, d.distance, "{ds}/{scheme}/q{qi}");
                            assert_eq!(a.window, d.window, "{ds}/{scheme}/q{qi}");
                        }
                        _ => panic!("{ds}/{scheme}/q{qi}: one mode found a result, one did not"),
                    }
                    // ...and identical I/O counts: only the physical/hit
                    // split may differ, never the logical counters.
                    assert_eq!(sa.buffer_hits, 0, "arena tree must never hit a buffer");
                    assert_eq!(
                        SearchStats { buffer_hits: 0, ..sd },
                        sa,
                        "{ds}/{scheme}/q{qi}: stats diverge"
                    );
                }
            }
        }
        // Tree-level accounting: every logical access on the disk tree is
        // either a physical read or a buffer hit, and the logical total
        // matches the arena exactly.
        let io = disk.tree().stats();
        assert_eq!(
            io.accesses(),
            io.node_reads() + io.buffer_hits(),
            "accesses must decompose exactly"
        );
        let storage = disk.tree().storage().expect("disk-backed");
        let pool = storage.pool_stats();
        assert_eq!(pool.hits, io.buffer_hits(), "pool and stats disagree on hits");
        assert_eq!(pool.misses, io.node_reads(), "pool and stats disagree on misses");
        assert_eq!(storage.physical_reads(), pool.misses);
        assert_eq!(storage.io_errors(), 0);
        assert_eq!(pool.evictions, 0, "unbounded pool must not evict");
    }
}

#[test]
fn clustered_layout_and_readahead_keep_answers_and_logical_io_bit_identical() {
    // The locality stack (clustered page layout + readahead) only
    // rearranges physical I/O. Saved clustered, reopened with and
    // without readahead, every scheme must return the same answers and
    // the same per-query logical I/O as the arena — the acceptance bar
    // for the whole optimization.
    let points = seeded_points(1500, 59);
    let arena = NwcIndex::build(points);
    let path = temp_pages("clustered");
    arena
        .save_tree_with_layout(&path, PageLayout::Clustered)
        .expect("save clustered");
    let configs = [
        ("plain", DiskIndexConfig::default()),
        (
            "readahead",
            DiskIndexConfig {
                pool_capacity: Some(64),
                prefetch: 16,
                pool_shards: Some(2),
                ..DiskIndexConfig::default()
            },
        ),
    ];
    for (tag, config) in configs {
        let disk = NwcIndex::open_disk(&path, config).expect("open clustered");
        assert_eq!(
            disk.tree().storage().expect("disk-backed").layout(),
            PageLayout::Clustered,
            "{tag}: layout must round-trip through the header"
        );
        let queries = Dataset::query_points(4, 59);
        for scheme in Scheme::TABLE3 {
            for (qi, &q) in queries.iter().enumerate() {
                let query = NwcQuery::new(q, WindowSpec::square(70.0), 4);
                let (ra, sa) = arena.nwc_full(&query, scheme);
                let (rd, sd) = disk.nwc_full(&query, scheme);
                match (&ra, &rd) {
                    (None, None) => {}
                    (Some(a), Some(d)) => {
                        assert_eq!(a.ids(), d.ids(), "{tag}/{scheme}/q{qi}");
                        assert_eq!(a.distance, d.distance, "{tag}/{scheme}/q{qi}");
                    }
                    _ => panic!("{tag}/{scheme}/q{qi}: one mode found a result, one did not"),
                }
                assert_eq!(
                    SearchStats { buffer_hits: 0, ..sd },
                    sa,
                    "{tag}/{scheme}/q{qi}: logical stats diverge"
                );
            }
        }
        // Demand accounting is unchanged by readahead: prefetch reads
        // go through an uncounted path, so physical demand reads still
        // equal pool misses exactly.
        let storage = disk.tree().storage().expect("disk-backed");
        let io = disk.tree().stats();
        let pool = storage.pool_stats();
        assert_eq!(pool.hits, io.buffer_hits(), "{tag}");
        assert_eq!(pool.misses, io.node_reads(), "{tag}");
        assert_eq!(storage.physical_reads(), pool.misses, "{tag}");
        assert_eq!(io.prefetch_hits(), pool.prefetch_hits, "{tag}");
        if config.prefetch == 0 {
            assert_eq!(io.prefetch_reads(), 0, "{tag}: no readahead configured");
        } else {
            assert!(
                io.prefetch_reads() > 0,
                "{tag}: a 64-frame pool over this tree should prefetch"
            );
        }
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn overlapped_io_keeps_answers_and_logical_io_bit_identical() {
    // The overlapped backend moves readahead onto completion threads;
    // nothing about the answers or the logical I/O may change. Run the
    // full Table-3 sweep at 1 and 4 I/O threads against the arena and a
    // sync readahead open, on a cold pool each time.
    let points = seeded_points(1500, 59);
    let arena = NwcIndex::build(points);
    let path = temp_pages("overlapped");
    arena
        .save_tree_with_layout(&path, PageLayout::Clustered)
        .expect("save clustered");
    for io_threads in [1usize, 4] {
        let disk = NwcIndex::open_disk(
            &path,
            DiskIndexConfig {
                pool_capacity: Some(64),
                pool_shards: Some(2),
                prefetch: 16,
                io_threads,
                ..DiskIndexConfig::default()
            },
        )
        .expect("open overlapped");
        let storage = disk.tree().storage().expect("disk-backed");
        assert_eq!(storage.io_threads(), io_threads);
        let queries = Dataset::query_points(4, 59);
        for scheme in Scheme::TABLE3 {
            for (qi, &q) in queries.iter().enumerate() {
                let query = NwcQuery::new(q, WindowSpec::square(70.0), 4);
                let (ra, sa) = arena.nwc_full(&query, scheme);
                let (rd, sd) = disk.nwc_full(&query, scheme);
                match (&ra, &rd) {
                    (None, None) => {}
                    (Some(a), Some(d)) => {
                        assert_eq!(a.ids(), d.ids(), "io{io_threads}/{scheme}/q{qi}");
                        assert_eq!(a.distance, d.distance, "io{io_threads}/{scheme}/q{qi}");
                    }
                    _ => panic!("io{io_threads}/{scheme}/q{qi}: one mode found a result, one did not"),
                }
                assert_eq!(
                    SearchStats { buffer_hits: 0, ..sd },
                    sa,
                    "io{io_threads}/{scheme}/q{qi}: logical stats diverge"
                );
            }
        }
        // Quiesce before inspecting counters: the logical decomposition
        // must hold no matter which thread did the physical reads.
        storage.wait_io_idle();
        let io = disk.tree().stats();
        let pool = storage.pool_stats();
        assert_eq!(pool.hits, io.buffer_hits(), "io{io_threads}");
        assert_eq!(pool.misses, io.node_reads(), "io{io_threads}");
        assert_eq!(storage.physical_reads(), pool.misses, "io{io_threads}");
        assert_eq!(io.prefetch_hits(), pool.prefetch_hits, "io{io_threads}");
        assert_eq!(pool.pinned, 0, "io{io_threads}: query path leaked a pin");
        assert!(
            io.prefetch_reads() > 0,
            "io{io_threads}: overlapped readahead never ran"
        );
        assert_eq!(io.prefetch_errors(), 0, "io{io_threads}: healthy store");
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn writable_disk_mutations_commit_and_reopen_match_the_mutated_arena() {
    // The writable-mode acceptance bar: an identical insert/delete
    // script applied to an in-memory index and a shadow-paged disk
    // index must agree — while the disk overlay is still uncommitted,
    // and again after commit + cold reopen — on every Table-3 scheme's
    // answers *and* logical I/O, bit for bit.
    let base = seeded_points(900, 29);
    let mut arena = NwcIndex::build(base);
    let path = temp_pages("writable");
    arena.save_tree_writable(&path).expect("save writable");
    let mut disk =
        NwcIndex::open_disk(&path, DiskIndexConfig::default()).expect("open writable");

    for (i, &p) in seeded_points(150, 101).iter().enumerate() {
        let fresh = Point::new(p.x + 0.5, p.y + 0.5);
        let ia = arena.insert(fresh).expect("arena insert");
        let id = disk.insert(fresh).expect("disk insert");
        assert_eq!(ia, id, "backends must assign identical ids");
        if i % 3 == 0 {
            let victim = (i * 37 % 900) as u32;
            let ra = arena.remove(victim).expect("arena remove");
            let rd = disk.remove(victim).expect("disk remove");
            assert_eq!(ra, rd, "backends disagree on liveness of {victim}");
        }
    }
    assert_eq!(arena.len(), disk.len());
    // Mutations invalidate the IWP augmentation on both backends;
    // rebuild it so the full Table-3 sweep (NWC* included) runs.
    arena.rebuild_iwp();
    disk.rebuild_iwp();

    let sweep = |disk: &NwcIndex, stage: &str| {
        let queries = Dataset::query_points(5, 29);
        for scheme in Scheme::TABLE3 {
            for (qi, &q) in queries.iter().enumerate() {
                let query = NwcQuery::new(q, WindowSpec::square(60.0), 4);
                let (ra, sa) = arena.nwc_full(&query, scheme);
                let (rd, sd) = disk.nwc_full(&query, scheme);
                match (&ra, &rd) {
                    (None, None) => {}
                    (Some(a), Some(d)) => {
                        assert_eq!(a.ids(), d.ids(), "{stage}/{scheme}/q{qi}");
                        assert_eq!(a.distance, d.distance, "{stage}/{scheme}/q{qi}");
                        assert_eq!(a.window, d.window, "{stage}/{scheme}/q{qi}");
                    }
                    _ => panic!("{stage}/{scheme}/q{qi}: one mode found a result, one did not"),
                }
                assert_eq!(
                    SearchStats { buffer_hits: 0, ..sd },
                    sa,
                    "{stage}/{scheme}/q{qi}: logical I/O diverges"
                );
            }
        }
    };

    // Uncommitted: queries read through the dirty overlay.
    sweep(&disk, "overlay");
    let storage = disk.tree().storage().expect("disk-backed");
    assert!(storage.dirty_nodes() > 0, "the script never dirtied a node");

    disk.commit().expect("commit");
    assert_eq!(
        disk.tree().storage().expect("disk-backed").dirty_nodes(),
        0,
        "commit must drain the overlay"
    );
    // Shadow paging renumbered the flushed nodes, so commit dropped the
    // IWP; rebuild it over the durable page ids.
    assert!(disk.iwp().is_none(), "commit must invalidate the IWP");
    disk.rebuild_iwp();
    sweep(&disk, "committed");

    // Cold reopen from the committed file: same contract, fresh pool,
    // grid and IWP rebuilt from the durable pages alone.
    drop(disk);
    let disk = NwcIndex::open_disk(&path, DiskIndexConfig::default()).expect("reopen committed");
    std::fs::remove_file(&path).ok();
    assert_eq!(arena.len(), disk.len());
    sweep(&disk, "reopened");
}

#[test]
fn disk_knwc_matches_arena() {
    let arena = NwcIndex::build(seeded_points(700, 43));
    let disk = reopen_disk(&arena, "knwc");
    for &q in &Dataset::query_points(3, 43) {
        let query = KnwcQuery::new(q, WindowSpec::square(80.0), 4, 3, 1);
        let ka = arena.knwc(&query, Scheme::NWC_STAR);
        let kd = disk.knwc(&query, Scheme::NWC_STAR);
        assert_eq!(ka.groups.len(), kd.groups.len());
        for (ga, gd) in ka.groups.iter().zip(&kd.groups) {
            assert_eq!(ga.id_set(), gd.id_set());
            assert_eq!(ga.distance, gd.distance);
        }
        assert_eq!(
            SearchStats { buffer_hits: 0, ..kd.stats },
            ka.stats,
            "kNWC stats diverge"
        );
    }
}

#[test]
fn disk_engine_batch_matches_sequential() {
    let arena = NwcIndex::build(seeded_points(600, 17));
    let disk = reopen_disk(&arena, "engine");
    let queries: Vec<NwcQuery> = Dataset::query_points(6, 17)
        .into_iter()
        .map(|q| NwcQuery::new(q, WindowSpec::square(70.0), 3))
        .collect();
    let batch = QueryEngine::new(&disk).with_threads(2).nwc_batch(&queries, Scheme::NWC_STAR);
    for (q, (got, gs)) in queries.iter().zip(&batch) {
        let (want, ws) = arena.nwc_full(q, Scheme::NWC_STAR);
        match (&want, got) {
            (None, None) => {}
            (Some(a), Some(d)) => assert_eq!(a.ids(), d.ids()),
            _ => panic!("engine/sequential disagree"),
        }
        assert_eq!(SearchStats { buffer_hits: 0, ..*gs }, ws);
    }
}

// ---------------------------------------------------------------------
// Round-trip edge cases.
// ---------------------------------------------------------------------

/// Serialize → deserialize → structural check + full content equality.
fn roundtrip(tree: &RStarTree) -> RStarTree {
    let back = RStarTree::from_page_file(&tree.to_page_file()).expect("roundtrip");
    validate::check_invariants(&back).expect("invariants");
    assert_eq!(back.len(), tree.len());
    assert_eq!(back.height(), tree.height());
    let mut a: Vec<(u32, (u64, u64))> = tree
        .iter_entries()
        .map(|e| (e.id, (e.point.x.to_bits(), e.point.y.to_bits())))
        .collect();
    let mut b: Vec<(u32, (u64, u64))> = back
        .iter_entries()
        .map(|e| (e.id, (e.point.x.to_bits(), e.point.y.to_bits())))
        .collect();
    a.sort_unstable();
    b.sort_unstable();
    assert_eq!(a, b, "entry sets differ after round-trip");
    back
}

#[test]
fn roundtrip_empty_tree() {
    let tree = RStarTree::new();
    let back = roundtrip(&tree);
    assert!(back.is_empty());
    assert!(back.window_query(&Rect::new(Point::new(-1e9, -1e9), Point::new(1e9, 1e9))).is_empty());
}

#[test]
fn roundtrip_empty_tree_on_disk_but_index_rejects_it() {
    let tree = RStarTree::new();
    let path = temp_pages("empty");
    tree.save_to_path(&path).unwrap();
    let back = RStarTree::open_from_path(&path, None).unwrap();
    assert!(back.is_empty());
    // Release the advisory lock before reopening the same file.
    drop(back);
    // An index over zero objects is meaningless: typed error, no panic.
    match NwcIndex::open_disk(&path, DiskIndexConfig::default()) {
        Err(IndexOpenError::EmptyDataset) => {}
        other => panic!("expected EmptyDataset, got {:?}", other.err()),
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn roundtrip_single_point() {
    let mut tree = RStarTree::new();
    tree.insert(7, Point::new(3.5, -2.25)).unwrap();
    let back = roundtrip(&tree);
    let hits = back.window_query(&Rect::new(Point::new(3.0, -3.0), Point::new(4.0, -2.0)));
    assert_eq!(hits.len(), 1);
    assert_eq!(hits[0].id, 7);
}

#[test]
fn roundtrip_duplicate_points() {
    // 120 objects on 3 distinct locations: leaves full of duplicates.
    let p = [Point::new(5.0, 5.0), Point::new(5.0, 5.0), Point::new(-1.0, 2.0)];
    let points: Vec<Point> = (0..120).map(|i| p[i % 3]).collect();
    let tree = RStarTree::bulk_load(&points);
    let back = roundtrip(&tree);
    let hits = back.window_query(&Rect::new(Point::new(4.9, 4.9), Point::new(5.1, 5.1)));
    assert_eq!(hits.len(), 80);
}

#[test]
fn roundtrip_node_at_exactly_max_entries() {
    let params = TreeParams::default();
    for n in [params.max_entries, params.max_entries * 3] {
        let points: Vec<Point> =
            (0..n).map(|i| Point::new(i as f64, (i * i % 31) as f64)).collect();
        let tree = RStarTree::bulk_load_with_params(&points, params);
        roundtrip(&tree);
    }
}

#[test]
fn roundtrip_height_three_and_four() {
    // Fanout 4 forces tall trees with few points.
    let params = TreeParams::with_max_entries(4);
    for n in [40usize, 300] {
        let points: Vec<Point> =
            (0..n).map(|i| Point::new(((i * 37) % 211) as f64, ((i * 53) % 199) as f64)).collect();
        let tree = RStarTree::bulk_load_with_params(&points, params);
        assert!(tree.height() >= 3, "n={n} gave height {}", tree.height());
        roundtrip(&tree);
    }
}

// ---------------------------------------------------------------------
// Corruption: typed rejection, never a panic or a hang.
// ---------------------------------------------------------------------

/// Builds a height-≥2 page file to corrupt. Internal page layout:
/// tag(1) level(4) count(4) mbr(32), then 36-byte child entries, child
/// page id first — so the root's first child pointer is bytes 41..45.
fn corruptible() -> (nwc::rtree::PageFile, u32) {
    let points: Vec<Point> =
        (0..900).map(|i| Point::new(((i * 31) % 499) as f64, ((i * 57) % 491) as f64)).collect();
    let tree = RStarTree::bulk_load(&points);
    assert!(tree.height() >= 2);
    let file = tree.to_page_file();
    let root = file.root_page();
    (file, root)
}

#[test]
fn cycle_in_child_pointers_rejected() {
    let (mut file, root) = corruptible();
    // Root's first child now points back at the root: a cycle.
    file.page_mut(root)[41..45].copy_from_slice(&root.to_le_bytes());
    assert_eq!(
        RStarTree::from_page_file(&file).unwrap_err(),
        PageError::Cycle(root)
    );
}

#[test]
fn dangling_child_rejected() {
    let (mut file, root) = corruptible();
    file.page_mut(root)[41..45].copy_from_slice(&0xDEAD_u32.to_le_bytes());
    assert_eq!(
        RStarTree::from_page_file(&file).unwrap_err(),
        PageError::DanglingChild(0xDEAD)
    );
}

#[test]
fn level_mismatch_rejected() {
    let (mut file, root) = corruptible();
    // Claim the root sits at level 9: its leaf children no longer match.
    file.page_mut(root)[1..5].copy_from_slice(&9u32.to_le_bytes());
    assert!(matches!(
        RStarTree::from_page_file(&file).unwrap_err(),
        PageError::Invalid(_)
    ));
}

#[test]
fn bad_tag_and_overflow_rejected() {
    let (mut file, root) = corruptible();
    file.page_mut(root)[0] = 42;
    assert_eq!(RStarTree::from_page_file(&file).unwrap_err(), PageError::BadTag(42));

    let (mut file, root) = corruptible();
    file.page_mut(root)[5..9].copy_from_slice(&u32::MAX.to_le_bytes());
    assert_eq!(
        RStarTree::from_page_file(&file).unwrap_err(),
        PageError::Overflow(u32::MAX)
    );
}

#[test]
fn on_disk_bit_flip_truncation_and_garbage_rejected() {
    let points = seeded_points(500, 5);
    let tree = RStarTree::bulk_load(&points);
    let path = temp_pages("corrupt");
    tree.save_to_path(&path).unwrap();

    // Flip one data byte: the per-page checksum catches it at open.
    let mut bytes = std::fs::read(&path).unwrap();
    let mid = bytes.len() - 100;
    bytes[mid] ^= 0x40;
    std::fs::write(&path, &bytes).unwrap();
    match RStarTree::open_from_path(&path, None) {
        Err(DiskError::Store(StoreError::PageChecksum { .. })) => {}
        other => panic!("expected PageChecksum, got {:?}", other.err()),
    }

    // Truncate mid-page.
    bytes[mid] ^= 0x40; // restore
    let cut = bytes.len() - 2000;
    std::fs::write(&path, &bytes[..cut]).unwrap();
    match RStarTree::open_from_path(&path, None) {
        Err(DiskError::Store(StoreError::Truncated { .. })) => {}
        other => panic!("expected Truncated, got {:?}", other.err()),
    }

    // Not a page file at all.
    std::fs::write(&path, b"definitely not a page file").unwrap();
    match RStarTree::open_from_path(&path, None) {
        Err(DiskError::Store(StoreError::BadMagic)) => {}
        other => panic!("expected BadMagic, got {:?}", other.err()),
    }
    std::fs::remove_file(&path).ok();
}
