//! Dynamic index updates: inserts and removals must leave the index
//! answering exactly like one rebuilt from scratch over the live set.

use nwc::prelude::*;
use proptest::prelude::*;

fn point_strategy() -> impl Strategy<Value = Point> {
    (0u32..100, 0u32..100).prop_map(|(x, y)| Point::new(x as f64, y as f64))
}

/// An update script: initial points, extra inserts, and removal picks.
fn script() -> impl Strategy<Value = (Vec<Point>, Vec<Point>, Vec<prop::sample::Index>)> {
    (
        proptest::collection::vec(point_strategy(), 5..40),
        proptest::collection::vec(point_strategy(), 0..15),
        proptest::collection::vec(any::<prop::sample::Index>(), 0..15),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn updated_index_matches_fresh_rebuild(
        (initial, inserts, removals) in script(),
        q in point_strategy(),
        size in 4.0f64..25.0,
        n in 1usize..5,
    ) {
        let mut index = NwcIndex::build(initial.clone());
        let mut live: Vec<(u32, Point)> =
            initial.iter().enumerate().map(|(i, &p)| (i as u32, p)).collect();

        for &p in &inserts {
            let id = index.insert(p).unwrap();
            live.push((id, p));
        }
        for pick in &removals {
            if live.len() <= n {
                break; // keep enough objects for the query to make sense
            }
            let (id, _) = live.remove(pick.index(live.len()));
            prop_assert!(index.remove(id).unwrap());
            prop_assert!(!index.is_live(id));
            prop_assert!(!index.remove(id).unwrap(), "double-remove must fail");
        }
        prop_assert_eq!(index.len(), live.len());
        index.rebuild_iwp();
        nwc::rtree::validate::check_invariants(index.tree()).unwrap();

        // Fresh index over the surviving points.
        let fresh_points: Vec<Point> = live.iter().map(|&(_, p)| p).collect();
        let fresh = NwcIndex::build(fresh_points.clone());

        let query = NwcQuery::new(q, WindowSpec::square(size), n);
        let updated = index.nwc(&query, Scheme::NWC_STAR).map(|r| r.distance);
        let rebuilt = fresh.nwc(&query, Scheme::NWC_STAR).map(|r| r.distance);
        match (updated, rebuilt) {
            (None, None) => {}
            (Some(a), Some(b)) => prop_assert!((a - b).abs() < 1e-9, "{a} vs {b}"),
            other => prop_assert!(false, "updated vs rebuilt: {other:?}"),
        }

        // The brute-force oracle over the live set agrees too.
        let oracle = nwc::core::oracle::nwc_brute_force(&fresh_points, &query)
            .map(|g| g.distance);
        match (updated, oracle) {
            (None, None) => {}
            (Some(a), Some(b)) => prop_assert!((a - b).abs() < 1e-9),
            other => prop_assert!(false, "updated vs oracle: {other:?}"),
        }
    }

    #[test]
    fn grid_counts_track_updates(
        (initial, inserts, removals) in script(),
    ) {
        let mut index = NwcIndex::build(initial.clone());
        let mut ids: Vec<u32> = (0..initial.len() as u32).collect();
        for &p in &inserts {
            ids.push(index.insert(p).unwrap());
        }
        for pick in &removals {
            if ids.len() <= 1 {
                break;
            }
            let id = ids.remove(pick.index(ids.len()));
            index.remove(id).unwrap();
        }
        let grid = index.grid().expect("grid built by default");
        prop_assert_eq!(grid.total_objects(), index.len());
        // The grid bound over the whole space equals the live count.
        prop_assert_eq!(grid.count_upper_bound(&grid.bounds()), index.len());
    }
}

#[test]
fn removed_objects_never_appear_in_results() {
    // Remove the entire near cluster; answers must shift to the far one.
    let mut pts = vec![
        Point::new(10.0, 10.0),
        Point::new(11.0, 11.0),
        Point::new(12.0, 10.5),
    ];
    pts.extend([
        Point::new(70.0, 70.0),
        Point::new(71.0, 71.0),
        Point::new(72.0, 70.5),
    ]);
    let mut index = NwcIndex::build(pts);
    let query = NwcQuery::new(Point::new(0.0, 0.0), WindowSpec::square(6.0), 3);
    let before = index.nwc(&query, Scheme::NWC_PLUS).unwrap();
    assert_eq!(before.ids().iter().max().copied().unwrap(), 2);

    for id in 0..3 {
        assert!(index.remove(id).unwrap());
    }
    let after = index.nwc(&query, Scheme::NWC_PLUS).unwrap();
    let mut ids = after.ids();
    ids.sort_unstable();
    assert_eq!(ids, vec![3, 4, 5]);
}

#[test]
fn iwp_scheme_panics_until_rebuilt_after_update() {
    let pts: Vec<Point> = (0..100)
        .map(|i| Point::new((i % 10) as f64, (i / 10) as f64))
        .collect();
    let mut index = NwcIndex::build(pts);
    index.insert(Point::new(50.0, 50.0)).unwrap();
    assert!(index.iwp().is_none(), "update must invalidate IWP");
    let query = NwcQuery::new(Point::new(0.0, 0.0), WindowSpec::square(4.0), 2);
    let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        index.nwc(&query, Scheme::NWC_STAR)
    }))
    .is_err();
    assert!(panicked, "NWC* without IWP must refuse loudly");
    index.rebuild_iwp();
    assert!(index.nwc(&query, Scheme::NWC_STAR).is_some());
}

#[test]
fn dep_stays_correct_for_inserts_outside_the_original_space() {
    // Regression: out-of-bounds points clamp into the grid's border
    // cells; the grid bound must still see them for rects beyond the
    // bounds, or DEP would prune a qualified far-away window.
    let base: Vec<Point> = (0..50)
        .map(|i| Point::new((i % 10) as f64 * 3.0, (i / 10) as f64 * 3.0))
        .collect();
    let mut index = NwcIndex::build(base);
    // A tight cluster far outside the original bounding box.
    for d in 0..3 {
        index.insert(Point::new(500.0 + d as f64, 500.0 + d as f64)).unwrap();
    }
    index.rebuild_iwp();
    let query = NwcQuery::new(Point::new(400.0, 400.0), WindowSpec::square(8.0), 3);
    let with_dep = index.nwc(&query, Scheme::NWC_STAR).expect("cluster must be found");
    let without_dep = index.nwc(&query, Scheme::NWC_PLUS).expect("cluster must be found");
    assert!((with_dep.distance - without_dep.distance).abs() < 1e-9);
    let mut ids = with_dep.ids();
    ids.sort_unstable();
    assert_eq!(ids, vec![50, 51, 52]);
}
