//! End-to-end tests of the `nwc-cli` binary (generate → query → stats).

use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_nwc-cli"))
}

fn tmp(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("nwc_cli_tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

#[test]
fn no_args_prints_usage() {
    let out = cli().output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("nwc-cli"));
    assert!(text.contains("query"));
}

#[test]
fn unknown_command_fails() {
    let out = cli().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}

#[test]
fn gen_query_stats_pipeline() {
    let data = tmp("pipeline.csv");
    let out = cli()
        .args(["gen", "ca", "3000", data.to_str().unwrap(), "7"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("wrote 3000 points"));

    let out = cli()
        .args([
            "query",
            data.to_str().unwrap(),
            "5000",
            "5000",
            "128",
            "4",
            "nwc*",
            "max",
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        text.contains("NWC(") || text.contains("no 128x128 window"),
        "unexpected output: {text}"
    );

    let out = cli().args(["stats", data.to_str().unwrap()]).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("objects:      3000"));
    assert!(text.contains("density grid"));
    assert!(text.contains("IWP pointers"));

    let out = cli()
        .args(["maxrs", data.to_str().unwrap(), "200"])
        .output()
        .unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("MaxRS(200x200)"));

    let out = cli()
        .args([
            "knwc",
            data.to_str().unwrap(),
            "5000",
            "5000",
            "200",
            "4",
            "2",
            "1",
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("kNWC(k=2"));

    std::fs::remove_file(data).unwrap();
}

#[test]
fn knwc_rejects_overlap_bound_at_or_above_n() {
    let data = tmp("knwc_bounds.csv");
    std::fs::write(&data, "1.0,1.0\n2.0,2.0\n3.0,3.0\n").unwrap();
    let out = cli()
        .args(["knwc", data.to_str().unwrap(), "0", "0", "8", "2", "2", "5"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("overlap bound"));
    std::fs::remove_file(data).unwrap();
}

#[test]
fn query_rejects_bad_arguments() {
    let out = cli().args(["query", "/nonexistent.csv", "0", "0", "8", "8"]).output().unwrap();
    assert!(!out.status.success());

    let data = tmp("bad_args.csv");
    std::fs::write(&data, "1.0,1.0\n2.0,2.0\n").unwrap();
    let out = cli()
        .args(["query", data.to_str().unwrap(), "0", "0", "8", "abc"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot parse"));
    std::fs::remove_file(data).unwrap();
}
