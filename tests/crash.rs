//! Kill-point crash-consistency matrix for the shadow-paging commit.
//!
//! The write path promises that a crash at *any* instant leaves the page
//! file openable as exactly one of two trees: the last committed state
//! (the mutation batch is lost) or the new state (the commit landed) —
//! never a decode error, never a hybrid. The commit ordering under test:
//!
//! 1. shadow pages written (never over a page the old root reaches);
//! 2. data `sync_all`;
//! 3. inactive header slot written with the new root + generation;
//! 4. header `sync_all` — the atomic flip.
//!
//! Two attack styles: **byte surgery** (reconstruct the file as a crash
//! at each ordering point would leave it, including torn header slots
//! that must fall back to the sibling slot via the CRC) and **write
//! fault injection** (a [`FaultStore`] kills the real commit at every
//! write index in turn; each aborted commit must be retryable in
//! memory *and* recoverable by reopening from disk).

use nwc::prelude::*;
use nwc::rtree::validate;
use nwc_store::{FaultPlan, FaultStore, FileStore, PageStore, PAGE_SIZE};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

/// A unique temp path per call (tests run concurrently).
fn temp_pages(tag: &str) -> PathBuf {
    static COUNTER: AtomicU32 = AtomicU32::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("nwc-crash-{tag}-{}-{n}.pages", std::process::id()))
}

fn crash_points(n: usize) -> Vec<Point> {
    (0..n)
        .map(|i| {
            let s = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            Point::new((s % 997) as f64, ((s >> 17) % 983) as f64)
        })
        .collect()
}

/// The full logical content of a tree, in comparable form.
fn contents(tree: &RStarTree) -> Vec<(u32, (u64, u64))> {
    let mut v: Vec<_> = tree
        .iter_entries()
        .map(|e| (e.id, (e.point.x.to_bits(), e.point.y.to_bits())))
        .collect();
    v.sort_unstable();
    v
}

/// The scripted mutation batch separating state A from state B: enough
/// churn to split nodes, dissolve leaves, and allocate shadow pages.
fn mutate(tree: &mut RStarTree) {
    let points = crash_points(500);
    for (i, &p) in points.iter().enumerate().take(60) {
        tree.insert(10_000 + i as u32, Point::new(p.x + 0.125, p.y + 0.125))
            .expect("insert");
    }
    for (i, &p) in points.iter().enumerate().take(30) {
        assert!(tree.delete(i as u32, p).expect("delete"), "object {i} missing");
    }
}

/// Writes state A (a committed writable page file) at `path` and runs
/// the mutation batch + commit on a copy, returning the raw bytes of
/// both states and their expected contents.
#[allow(clippy::type_complexity)]
fn two_states(path: &PathBuf) -> (Vec<u8>, Vec<u8>, Vec<(u32, (u64, u64))>, Vec<(u32, (u64, u64))>) {
    let base = RStarTree::bulk_load(&crash_points(500));
    base.save_to_path_writable(path).expect("save writable");
    let bytes_a = std::fs::read(path).expect("read state A");
    let contents_a = contents(&base);

    let mut tree = RStarTree::open_from_path(path, None).expect("reopen writable");
    mutate(&mut tree);
    let contents_b = contents(&tree);
    tree.commit().expect("commit");
    drop(tree);
    let bytes_b = std::fs::read(path).expect("read state B");
    assert_ne!(bytes_a, bytes_b, "the commit must have changed the file");
    (bytes_a, bytes_b, contents_a, contents_b)
}

/// Writes `bytes` to `path` and opens it, asserting the reopen decodes
/// cleanly into exactly `want`.
fn reopen_must_equal(path: &PathBuf, bytes: &[u8], want: &[(u32, (u64, u64))], kill: &str) {
    std::fs::write(path, bytes).expect("write crash image");
    let tree = RStarTree::open_from_path(path, None)
        .unwrap_or_else(|e| panic!("{kill}: crash image failed to decode: {e}"));
    validate::check_invariants(&tree).unwrap_or_else(|e| panic!("{kill}: invariants: {e}"));
    assert_eq!(contents(&tree), want, "{kill}: wrong tree state after reopen");
}

#[test]
fn kill_points_yield_old_or_new_tree_never_garbage() {
    let path = temp_pages("surgery");
    let (bytes_a, bytes_b, contents_a, contents_b) = two_states(&path);

    // Kill before the data sync: shadow pages (all beyond state A's
    // extent here — the batch only grows) hit the disk torn or not at
    // all, headers untouched. Garbage-fill the grown tail to model the
    // worst torn write; reopen must trim it and serve state A.
    let mut img = bytes_b.clone();
    img[..2 * PAGE_SIZE].copy_from_slice(&bytes_a[..2 * PAGE_SIZE]);
    for b in &mut img[bytes_a.len().max(2 * PAGE_SIZE)..] {
        *b = 0xAB;
    }
    reopen_must_equal(&path, &img, &contents_a, "before-data-sync (torn shadow pages)");

    // Kill after the data sync, before the header flip: every shadow
    // page is durable but both header slots still describe state A.
    let mut img = bytes_b.clone();
    img[..2 * PAGE_SIZE].copy_from_slice(&bytes_a[..2 * PAGE_SIZE]);
    reopen_must_equal(&path, &img, &contents_a, "after-data-sync-before-flip");

    // Kill mid-flip: the new header slot itself is torn. State A was
    // created at generation 1 (slot 0); its commit wrote generation 2
    // into slot 1. Shred slot 1 at various depths — magic destroyed,
    // CRC-only mismatch, half-written — and the open must fall back to
    // slot 0 every time.
    for (tag, damage) in [
        ("zeroed", 0usize..68),
        ("magic-torn", 0..8),
        ("tail-torn", 34..68),
    ] {
        let mut img = bytes_b.clone();
        for b in &mut img[PAGE_SIZE + damage.start..PAGE_SIZE + damage.end] {
            *b ^= 0x5A;
        }
        reopen_must_equal(&path, &img, &contents_a, &format!("torn-new-slot ({tag})"));
    }

    // The *inactive* slot torn (as the next commit would tear it) with
    // the flip already durable: the newest generation wins, state B.
    let mut img = bytes_b.clone();
    for b in &mut img[0..68] {
        *b ^= 0x5A;
    }
    reopen_must_equal(&path, &img, &contents_b, "torn-inactive-slot");

    // Kill after the flip (a missing directory fsync only delays the
    // rename durability of the *initial* save; the in-place commit is
    // complete once the slot is down): clean state B.
    reopen_must_equal(&path, &bytes_b, &contents_b, "after-flip");

    // The recovered file is not merely readable — it keeps serving
    // writes: mutate and commit on top of the recovered state B.
    let mut tree = RStarTree::open_from_path(&path, None).expect("reopen recovered");
    tree.insert(99_999, Point::new(1.5, 2.5)).expect("insert after recovery");
    tree.commit().expect("commit after recovery");
    drop(tree);
    let back = RStarTree::open_from_path(&path, None).expect("final reopen");
    assert_eq!(back.len(), contents_b.len() + 1);
    drop(back);
    std::fs::remove_file(&path).ok();
}

#[test]
fn every_write_fault_injection_point_recovers_to_the_old_tree() {
    let path = temp_pages("fault-sweep");
    let (bytes_a, _, contents_a, contents_b) = two_states(&path);

    // Kill the commit at write index n for every n until one survives.
    // write_page and the header-flip commit are budgeted; grow is not
    // (a grown-but-unflipped extent is exactly what open() trims).
    let mut aborted = 0u32;
    for n in 0.. {
        std::fs::write(&path, &bytes_a).expect("restore state A");
        let store = FileStore::open(&path).expect("open state A");
        assert!(store.is_writable(), "v2 file must reopen writable");
        let fault = Arc::new(FaultStore::new(store, FaultPlan::default()));
        let mut tree =
            RStarTree::open_from_store(Box::new(Arc::clone(&fault)), None).expect("open tree");
        mutate(&mut tree);
        fault.fail_writes_after(n);
        match tree.commit() {
            Err(TreeError::Io(e)) => {
                assert!(fault.write_faults() > 0, "n={n}: commit failed without a fault: {e}");
                // Crash: drop the tree and store mid-batch, reopen cold.
                drop(tree);
                drop(fault);
                let back = RStarTree::open_from_path(&path, None)
                    .unwrap_or_else(|e| panic!("n={n}: reopen after aborted commit: {e}"));
                assert_eq!(
                    contents(&back),
                    contents_a,
                    "n={n}: aborted commit must leave state A"
                );
                aborted += 1;
            }
            Ok(()) => {
                // The full commit fit under the budget: state B landed.
                drop(tree);
                drop(fault);
                let back = RStarTree::open_from_path(&path, None).expect("reopen committed");
                assert_eq!(contents(&back), contents_b, "n={n}: committed state wrong");
                break;
            }
            Err(other) => panic!("n={n}: unexpected commit error: {other}"),
        }
    }
    assert!(aborted >= 2, "the sweep never exercised a mid-commit kill");
    std::fs::remove_file(&path).ok();
}

#[test]
fn aborted_commit_is_retryable_in_place() {
    let path = temp_pages("retry");
    let (_, _, _, contents_b) = two_states(&path);
    // Rebuild state A fresh (two_states left state B on disk).
    let base = RStarTree::bulk_load(&crash_points(500));
    base.save_to_path_writable(&path).expect("save writable");

    let store = FileStore::open(&path).expect("open");
    let fault = Arc::new(FaultStore::new(store, FaultPlan::default()));
    let mut tree =
        RStarTree::open_from_store(Box::new(Arc::clone(&fault)), None).expect("open tree");
    mutate(&mut tree);

    // First commit dies on its second write; the overlay must survive.
    fault.fail_writes_after(1);
    match tree.commit() {
        Err(TreeError::Io(_)) => {}
        other => panic!("expected an injected Io failure, got {other:?}"),
    }
    assert_eq!(contents(&tree), contents_b, "overlay lost by the failed commit");

    // Clear the fault and retry the same commit on the same handle.
    fault.clear_faults();
    tree.commit().expect("retry after transient write fault");
    drop(tree);
    drop(fault);
    let back = RStarTree::open_from_path(&path, None).expect("reopen");
    assert_eq!(contents(&back), contents_b, "retried commit landed the wrong state");
    drop(back);
    std::fs::remove_file(&path).ok();
}
