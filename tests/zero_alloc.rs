//! Proves the warm-path allocation claim: once a `QueryScratch` has
//! been warmed on a workload, `nwc_full_with` performs **zero** heap
//! allocations for a query with no qualifying group (pure traversal +
//! window queries + candidate scan), and a steady bounded number —
//! only the offered result groups — for a query with a hit.
//!
//! Uses a counting global allocator, so everything runs inside one
//! `#[test]` (parallel tests would pollute the counter).

use nwc::prelude::*;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

#[test]
fn warm_queries_do_not_allocate() {
    // A spread-out dataset: plenty of objects to visit and window-query,
    // never 30 of them inside one 12×12 window.
    let mut pts: Vec<Point> = (0..800)
        .map(|i| Point::new(((i * 37) % 211) as f64 * 5.0, ((i * 53) % 197) as f64 * 5.0))
        .collect();
    // A deliberate tight cluster so the hit query actually hits.
    pts.extend([
        Point::new(540.0, 510.0),
        Point::new(543.0, 512.0),
        Point::new(546.0, 509.0),
    ]);
    let index = NwcIndex::build(pts);
    let spec = WindowSpec::square(12.0);
    let scheme = Scheme::NWC_STAR;

    let miss = NwcQuery::new(Point::new(500.0, 480.0), spec, 30);
    let hit = NwcQuery::new(Point::new(500.0, 480.0), spec, 2);

    let mut scratch = QueryScratch::new();
    // Warm the scratch buffers to their workload high-water mark. The
    // baseline scheme runs a window query per visited object (nothing
    // pruned), so it drives the buffers hardest.
    for _ in 0..3 {
        let (r, stats) = index.nwc_full_with(&miss, Scheme::NWC, &mut scratch);
        assert!(r.is_none() && stats.objects_visited > 100, "{stats:?}");
        index.nwc_full_with(&miss, scheme, &mut scratch);
        index.nwc_full_with(&hit, scheme, &mut scratch);
    }

    // A warm no-hit query exercises the whole hot path — traversal,
    // window queries, candidate scans — and must not allocate at all.
    let before = allocs();
    let (r, stats) = index.nwc_full_with(&miss, Scheme::NWC, &mut scratch);
    let during = allocs() - before;
    assert!(r.is_none());
    assert!(stats.window_queries > 0, "{stats:?}");
    assert_eq!(during, 0, "warm miss query (baseline) allocated {during} times");

    // Same under the fully-optimized scheme (DEP prunes the window
    // queries here; the traversal itself must still be allocation-free).
    let before = allocs();
    let (r, _) = index.nwc_full_with(&miss, scheme, &mut scratch);
    let during = allocs() - before;
    assert!(r.is_none());
    assert_eq!(during, 0, "warm miss query (NWC*) allocated {during} times");

    // A warm hit query allocates only for offered result groups: the
    // count is steady across repeats (no hidden per-visit growth).
    let before = allocs();
    let (r1, _) = index.nwc_full_with(&hit, scheme, &mut scratch);
    let first = allocs() - before;
    drop(r1);
    let before = allocs();
    let (r2, _) = index.nwc_full_with(&hit, scheme, &mut scratch);
    let second = allocs() - before;
    assert!(r2.is_some());
    assert_eq!(first, second, "warm hit query allocation count not steady");
    assert!(
        second <= 16,
        "warm hit query allocated {second} times; expected only offered groups"
    );
}
