//! Property tests for the geometric foundations: the MBR algebra the
//! R\*-tree relies on and the window constructions (search regions,
//! SRR reduction, DEP extension, DIP bounds) the NWC algorithm's
//! correctness rests on.

use nwc::geom::window::{
    candidate_window, extended_mbr, node_window_lower_bound, reduced_search_region,
    search_region, window_lower_bound, WindowSpec,
};
use nwc::geom::{Point, Quadrant, Rect};
use proptest::prelude::*;

fn point_strategy() -> impl Strategy<Value = Point> {
    (-500.0f64..500.0, -500.0f64..500.0).prop_map(|(x, y)| Point::new(x, y))
}

fn rect_strategy() -> impl Strategy<Value = Rect> {
    (point_strategy(), 0.0f64..300.0, 0.0f64..300.0)
        .prop_map(|(p, w, h)| Rect::new(p, Point::new(p.x + w, p.y + h)))
}

fn spec_strategy() -> impl Strategy<Value = WindowSpec> {
    (0.5f64..100.0, 0.5f64..100.0).prop_map(|(l, w)| WindowSpec::new(l, w))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn union_contains_both(a in rect_strategy(), b in rect_strategy()) {
        let u = a.union(&b);
        prop_assert!(u.contains_rect(&a));
        prop_assert!(u.contains_rect(&b));
        // Union is the *smallest* such rect: each side is touched.
        prop_assert!(u.min.x == a.min.x.min(b.min.x));
        prop_assert!(u.max.y == a.max.y.max(b.max.y));
    }

    #[test]
    fn overlap_area_symmetric_and_bounded(a in rect_strategy(), b in rect_strategy()) {
        let o = a.overlap_area(&b);
        prop_assert!((o - b.overlap_area(&a)).abs() < 1e-9);
        prop_assert!(o >= 0.0);
        prop_assert!(o <= a.area() + 1e-9);
        prop_assert!(o <= b.area() + 1e-9);
        prop_assert_eq!(o > 0.0 || a.intersection(&b).is_some_and(|i| i.is_degenerate()),
                        a.intersects(&b));
    }

    #[test]
    fn mindist_vs_sampled_points(r in rect_strategy(), p in point_strategy()) {
        let md = r.mindist(&p);
        // No sampled rect point may be closer than MINDIST; the best
        // sample converges toward it.
        let mut best = f64::INFINITY;
        for i in 0..=8 {
            for j in 0..=8 {
                let s = Point::new(
                    r.min.x + r.width() * i as f64 / 8.0,
                    r.min.y + r.height() * j as f64 / 8.0,
                );
                prop_assert!(s.dist(&p) + 1e-9 >= md);
                best = best.min(s.dist(&p));
            }
        }
        // The clamp-based closest point achieves MINDIST exactly.
        let closest = Point::new(p.x.clamp(r.min.x, r.max.x), p.y.clamp(r.min.y, r.max.y));
        prop_assert!((closest.dist(&p) - md).abs() < 1e-9);
        prop_assert!(best + 1e-9 >= md);
    }

    #[test]
    fn maxdist_dominates_all_corners(r in rect_strategy(), p in point_strategy()) {
        let mx = r.maxdist(&p);
        for c in r.corners() {
            prop_assert!(c.dist(&p) <= mx + 1e-9);
        }
        prop_assert!(mx + 1e-9 >= r.mindist(&p));
    }

    #[test]
    fn search_region_covers_every_candidate_window(
        q in point_strategy(),
        p in point_strategy(),
        spec in spec_strategy(),
        t in 0.0f64..=1.0,
    ) {
        let quad = Quadrant::of(&q, &p);
        let sr = search_region(&p, quad, &spec);
        prop_assert!(sr.contains_point(&p));
        let partner_y = if quad.partner_on_top_edge() {
            p.y + t * spec.w
        } else {
            p.y - t * spec.w
        };
        let win = candidate_window(&p, partner_y, quad, &spec);
        prop_assert!(sr.contains_rect(&win), "{win:?} ⊄ {sr:?}");
        prop_assert!(win.contains_point(&p));
        prop_assert!((win.width() - spec.l).abs() < 1e-9);
        prop_assert!((win.height() - spec.w).abs() < 1e-9);
    }

    #[test]
    fn window_lower_bound_is_sound(
        q in point_strategy(),
        p in point_strategy(),
        spec in spec_strategy(),
        t in 0.0f64..=1.0,
    ) {
        let quad = Quadrant::of(&q, &p);
        let lb = window_lower_bound(&q, &p, &spec);
        let partner_y = if quad.partner_on_top_edge() {
            p.y + t * spec.w
        } else {
            p.y - t * spec.w
        };
        let win = candidate_window(&p, partner_y, quad, &spec);
        prop_assert!(win.mindist(&q) + 1e-9 >= lb,
            "window {win:?} at {} beats bound {lb}", win.mindist(&q));
    }

    #[test]
    fn srr_reduction_never_loses_close_windows(
        q in point_strategy(),
        p in point_strategy(),
        spec in spec_strategy(),
        dist_best in 0.0f64..500.0,
        t in 0.0f64..=1.0,
    ) {
        let quad = Quadrant::of(&q, &p);
        let partner_y = if quad.partner_on_top_edge() {
            p.y + t * spec.w
        } else {
            p.y - t * spec.w
        };
        let win = candidate_window(&p, partner_y, quad, &spec);
        if win.mindist(&q) <= dist_best {
            let sr = reduced_search_region(&q, &p, &spec, dist_best);
            let sr = sr.expect("SR' empty but a qualifying window exists");
            prop_assert!(sr.contains_rect(&win),
                "qualifying window {win:?} outside SR' {sr:?}");
        }
    }

    #[test]
    fn srr_reduction_shrinks_monotonically(
        q in point_strategy(),
        p in point_strategy(),
        spec in spec_strategy(),
        d1 in 0.0f64..400.0,
        extra in 0.0f64..200.0,
    ) {
        let tight = reduced_search_region(&q, &p, &spec, d1);
        let loose = reduced_search_region(&q, &p, &spec, d1 + extra);
        match (tight, loose) {
            (None, _) => {} // tighter bound may empty the region first
            (Some(_), None) => prop_assert!(false, "looser bound emptied the region"),
            (Some(t_), Some(l_)) => prop_assert!(l_.contains_rect(&t_)),
        }
    }

    #[test]
    fn dep_extension_covers_generated_windows(
        q in point_strategy(),
        mbr in rect_strategy(),
        spec in spec_strategy(),
        fx in 0.0f64..=1.0,
        fy in 0.0f64..=1.0,
        t in 0.0f64..=1.0,
    ) {
        let ext = extended_mbr(&q, &mbr, &spec);
        let p = Point::new(
            mbr.min.x + mbr.width() * fx,
            mbr.min.y + mbr.height() * fy,
        );
        let quad = Quadrant::of(&q, &p);
        let partner_y = if quad.partner_on_top_edge() {
            p.y + t * spec.w
        } else {
            p.y - t * spec.w
        };
        let win = candidate_window(&p, partner_y, quad, &spec);
        prop_assert!(ext.contains_rect(&win), "{win:?} escapes extension {ext:?}");
    }

    #[test]
    fn dip_bound_lower_bounds_member_objects(
        q in point_strategy(),
        mbr in rect_strategy(),
        spec in spec_strategy(),
        fx in 0.0f64..=1.0,
        fy in 0.0f64..=1.0,
    ) {
        let node_lb = node_window_lower_bound(&q, &mbr, &spec);
        let p = Point::new(
            mbr.min.x + mbr.width() * fx,
            mbr.min.y + mbr.height() * fy,
        );
        prop_assert!(window_lower_bound(&q, &p, &spec) + 1e-9 >= node_lb);
    }

    #[test]
    fn quadrant_partition_is_total(q in point_strategy(), p in point_strategy()) {
        // Exactly one quadrant claims each point.
        let quad = Quadrant::of(&q, &p);
        let claims: Vec<Quadrant> = Quadrant::ALL
            .into_iter()
            .filter(|&c| {
                let right = p.x >= q.x;
                let top = p.y >= q.y;
                match c {
                    Quadrant::I => right && top,
                    Quadrant::II => !right && top,
                    Quadrant::III => !right && !top,
                    Quadrant::IV => right && !top,
                }
            })
            .collect();
        prop_assert_eq!(claims.len(), 1);
        prop_assert_eq!(claims[0], quad);
    }
}
