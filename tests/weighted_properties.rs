//! Property tests for the weighted NWC extension.

use nwc::core::weighted::{weighted_brute_force, WeightedNwcIndex, WeightedQuery};
use nwc::prelude::*;
use proptest::prelude::*;

fn point_strategy() -> impl Strategy<Value = Point> {
    (0u32..80, 0u32..80).prop_map(|(x, y)| Point::new(x as f64, y as f64))
}

fn scenario() -> impl Strategy<Value = (Vec<Point>, Vec<f64>, Point, f64, f64)> {
    (proptest::collection::vec(point_strategy(), 5..40)).prop_flat_map(|points| {
        let n = points.len();
        (
            Just(points),
            proptest::collection::vec(0.25f64..5.0, n..=n),
            point_strategy(),
            3.0f64..20.0,  // window size
            1.0f64..15.0,  // weight threshold
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn weighted_schemes_match_oracle((points, weights, q, size, min_w) in scenario()) {
        let index = WeightedNwcIndex::build(points.clone(), weights.clone());
        let query = WeightedQuery::new(q, WindowSpec::square(size), min_w);
        let want = weighted_brute_force(&points, &weights, &query).map(|(_, s)| s);
        for scheme in Scheme::TABLE3 {
            let got = index.query(&query, scheme);
            match (&got, want) {
                (None, None) => {}
                (Some((r, total)), Some(s)) => {
                    prop_assert!((r.distance - s).abs() < 1e-9,
                        "{scheme}: {} vs oracle {s}", r.distance);
                    // The group truly reaches the threshold and is minimal
                    // under the greedy rule (dropping the farthest member
                    // goes below the threshold).
                    prop_assert!(*total >= min_w);
                    let without_last: f64 = r.objects[..r.objects.len() - 1]
                        .iter()
                        .map(|e| index.weight(e.id))
                        .sum();
                    prop_assert!(without_last < min_w);
                    // All inside a legal window.
                    prop_assert!(r.window.width() <= size + 1e-9);
                    for e in &r.objects {
                        prop_assert!(r.window.contains_point(&e.point));
                    }
                }
                other => prop_assert!(false, "{scheme}: {other:?}"),
            }
        }
    }

    #[test]
    fn unit_weights_reduce_to_plain_nwc((points, _w, q, size, _mw) in scenario()) {
        let n = 3usize.min(points.len());
        let widx = WeightedNwcIndex::build(points.clone(), vec![1.0; points.len()]);
        let idx = NwcIndex::build(points);
        let wq = WeightedQuery::new(q, WindowSpec::square(size), n as f64);
        let nq = NwcQuery::new(q, WindowSpec::square(size), n);
        let a = widx.query(&wq, Scheme::NWC_STAR).map(|(r, _)| r.distance);
        let b = idx.nwc(&nq, Scheme::NWC_STAR).map(|r| r.distance);
        match (a, b) {
            (None, None) => {}
            (Some(x), Some(y)) => prop_assert!((x - y).abs() < 1e-9, "{x} vs {y}"),
            other => prop_assert!(false, "{other:?}"),
        }
    }

    #[test]
    fn raising_threshold_never_brings_result_closer(
        (points, weights, q, size, min_w) in scenario(),
        extra in 0.5f64..10.0,
    ) {
        let index = WeightedNwcIndex::build(points, weights);
        let lo = index.query(
            &WeightedQuery::new(q, WindowSpec::square(size), min_w),
            Scheme::NWC_STAR,
        );
        let hi = index.query(
            &WeightedQuery::new(q, WindowSpec::square(size), min_w + extra),
            Scheme::NWC_STAR,
        );
        match (lo, hi) {
            (_, None) => {}
            (Some((a, _)), Some((b, _))) => {
                prop_assert!(b.distance + 1e-9 >= a.distance,
                    "harder threshold got closer: {} < {}", b.distance, a.distance);
            }
            (None, Some(_)) => prop_assert!(false, "harder threshold found a result"),
        }
    }
}
