//! Property tests for the MaxRS baseline and the density grid.

use nwc::core::maxrs::{maxrs, maxrs_brute_force};
use nwc::geom::{window::WindowSpec, Point, Rect};
use nwc::grid::DensityGrid;
use proptest::prelude::*;

fn lattice_point() -> impl Strategy<Value = Point> {
    // Integer-ish coordinates provoke boundary coincidences.
    (0u32..60, 0u32..60, 0u32..2, 0u32..2)
        .prop_map(|(x, y, jx, jy)| Point::new(x as f64 + jx as f64 * 0.5, y as f64 + jy as f64 * 0.5))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn maxrs_matches_brute_force(
        points in proptest::collection::vec(lattice_point(), 1..60),
        l in 1.0f64..20.0,
        w in 1.0f64..20.0,
    ) {
        let spec = WindowSpec::new(l, w);
        let fast = maxrs(&points, &spec).unwrap();
        let slow = maxrs_brute_force(&points, &spec).unwrap();
        prop_assert_eq!(fast.count, slow.count);
        // The reported window must achieve the reported count.
        let achieved = points.iter().filter(|p| fast.window.contains_point(p)).count();
        prop_assert_eq!(achieved, fast.count);
        // And have the right dimensions.
        prop_assert!((fast.window.width() - l).abs() < 1e-9);
        prop_assert!((fast.window.height() - w).abs() < 1e-9);
    }

    #[test]
    fn maxrs_count_is_monotone_in_window_size(
        points in proptest::collection::vec(lattice_point(), 1..60),
        l in 1.0f64..15.0,
        w in 1.0f64..15.0,
        grow in 1.0f64..10.0,
    ) {
        let small = maxrs(&points, &WindowSpec::new(l, w)).unwrap();
        let large = maxrs(&points, &WindowSpec::new(l + grow, w + grow)).unwrap();
        prop_assert!(large.count >= small.count);
    }

    #[test]
    fn grid_bound_is_safe_and_exact_on_whole_space(
        points in proptest::collection::vec(lattice_point(), 0..200),
        cells in 1usize..50,
        qx in 0.0f64..60.0,
        qy in 0.0f64..60.0,
        qw in 0.0f64..30.0,
        qh in 0.0f64..30.0,
    ) {
        let bounds = Rect::new(Point::new(0.0, 0.0), Point::new(61.0, 61.0));
        let grid = DensityGrid::build(bounds, cells, &points);
        prop_assert_eq!(grid.count_upper_bound(&bounds), points.len());
        let query = Rect::new(Point::new(qx, qy), Point::new(qx + qw, qy + qh));
        let actual = points.iter().filter(|p| query.contains_point(p)).count();
        prop_assert!(grid.count_upper_bound(&query) >= actual);
    }

    #[test]
    fn finer_grid_never_looser(
        points in proptest::collection::vec(lattice_point(), 0..150),
        qx in 0.0f64..50.0,
        qy in 0.0f64..50.0,
    ) {
        let bounds = Rect::new(Point::new(0.0, 0.0), Point::new(61.0, 61.0));
        let query = Rect::new(Point::new(qx, qy), Point::new(qx + 8.0, qy + 8.0));
        // A 2x-refined grid whose cell boundaries nest inside the coarse
        // ones can only tighten the bound.
        let coarse = DensityGrid::build(bounds, 8, &points);
        let fine = DensityGrid::build(bounds, 16, &points);
        prop_assert!(fine.count_upper_bound(&query) <= coarse.count_upper_bound(&query));
    }
}
