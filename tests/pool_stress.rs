//! Concurrency stress for the sharded buffer pool: parallel
//! [`QueryEngine`] batches hammer one shared disk-backed tree (clustered
//! layout, bounded sharded pool, readahead on) and every answer must
//! match the in-memory arena, with the aggregate pool / I/O accounting
//! exact afterwards — no access lost or double-counted across threads,
//! shards, or speculative readahead admissions.

use nwc::prelude::*;
use nwc_store::{FaultPlan, FaultStore, FileStore, RetryPolicy};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

fn temp_pages(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("nwc-stress-{tag}-{}.pages", std::process::id()))
}

fn stress_points(n: usize) -> Vec<Point> {
    (0..n)
        .map(|i| {
            let s = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            Point::new((s % 9_000) as f64 + 500.0, ((s >> 13) % 9_000) as f64 + 500.0)
        })
        .collect()
}

#[test]
fn concurrent_engine_batches_on_a_shared_disk_tree_stay_consistent() {
    let points = stress_points(6_000);
    let arena = NwcIndex::build(points);
    let path = temp_pages("engine");
    arena
        .save_tree_with_layout(&path, PageLayout::Clustered)
        .expect("save clustered");
    let disk = NwcIndex::open_disk(
        &path,
        DiskIndexConfig {
            pool_capacity: Some(48),
            prefetch: 8,
            pool_shards: Some(4),
            ..DiskIndexConfig::default()
        },
    )
    .expect("open");
    std::fs::remove_file(&path).ok();

    let queries: Vec<NwcQuery> = Dataset::query_points(24, 7)
        .into_iter()
        .map(|q| NwcQuery::new(q, WindowSpec::square(400.0), 4))
        .collect();
    let expected: Vec<_> = queries
        .iter()
        .map(|q| arena.nwc_full(q, Scheme::NWC_STAR))
        .collect();

    // Several rounds so later ones run against a warm, already-churned
    // pool — eviction, readahead admission and demand faulting all
    // interleave across the 4 worker threads.
    let engine = QueryEngine::new(&disk).with_threads(4);
    for round in 0..3 {
        let batch = engine.nwc_batch(&queries, Scheme::NWC_STAR);
        assert_eq!(batch.len(), queries.len());
        for (qi, ((want, ws), (got, gs))) in expected.iter().zip(&batch).enumerate() {
            match (want, got) {
                (None, None) => {}
                (Some(a), Some(d)) => {
                    assert_eq!(a.ids(), d.ids(), "round {round} q{qi}");
                    assert_eq!(a.distance, d.distance, "round {round} q{qi}");
                }
                _ => panic!("round {round} q{qi}: one mode found a result, one did not"),
            }
            // Per-query logical I/O attribution survives both the
            // thread pool and speculative readahead.
            assert_eq!(
                SearchStats { buffer_hits: 0, ..*gs },
                *ws,
                "round {round} q{qi}: stats diverge"
            );
        }
    }

    // Aggregate accounting after all the concurrency.
    let io = disk.tree().stats();
    let storage = disk.tree().storage().expect("disk-backed");
    let pool = storage.pool_stats();
    assert_eq!(
        io.accesses(),
        io.node_reads() + io.buffer_hits(),
        "logical accesses must decompose exactly"
    );
    assert_eq!(pool.hits, io.buffer_hits(), "pool and stats disagree on hits");
    assert_eq!(pool.misses, io.node_reads(), "pool and stats disagree on misses");
    assert_eq!(
        storage.physical_reads(),
        pool.misses,
        "readahead must not leak into demand physical reads"
    );
    assert_eq!(io.prefetch_hits(), pool.prefetch_hits);
    assert!(
        pool.prefetch_hits + pool.prefetch_waste <= pool.prefetched,
        "{}h + {}w > {} admitted",
        pool.prefetch_hits,
        pool.prefetch_waste,
        pool.prefetched
    );
    assert!(
        io.prefetch_reads() >= pool.prefetched,
        "every admission came from a speculative read"
    );
    assert!(io.prefetch_reads() > 0, "readahead never fired");
    assert!(pool.evictions > 0, "a 48-frame pool over this tree must churn");
    // Decoded-node residency stays bounded: pool capacity plus, at
    // worst, one transient (all-frames-pinned fallback) decode per
    // concurrently descending thread and level.
    let height = disk.tree().height();
    assert!(
        storage.peak_resident_nodes() <= 48 + 4 * height,
        "peak resident {} far exceeds the pool bound",
        storage.peak_resident_nodes()
    );
    assert_eq!(storage.io_errors(), 0);
}

/// Mid-descent faults must not poison the sharded pool: after a round in
/// which ~half the 4-thread batch dies on a permanently bad page, the
/// pool holds no leaked pins, the accounting still decomposes exactly,
/// and — once the fault is lifted and counters reset — a healthy re-run
/// restores the strict pool/stats equalities of the test above.
#[test]
fn pool_survives_mid_descent_faults_under_concurrency() {
    let arena = NwcIndex::build(stress_points(6_000));
    let path = temp_pages("faulted");
    arena
        .save_tree_with_layout(&path, PageLayout::Clustered)
        .expect("save clustered");
    let fault = Arc::new(FaultStore::new(
        FileStore::open(&path).expect("reopen page file"),
        FaultPlan::default(),
    ));
    let disk = NwcIndex::open_disk_from_store(
        Box::new(Arc::clone(&fault)),
        DiskIndexConfig {
            pool_capacity: Some(48),
            prefetch: 8,
            pool_shards: Some(4),
            retry: RetryPolicy {
                max_attempts: 3,
                base_backoff: Duration::ZERO,
                max_backoff: Duration::ZERO,
            },
            ..DiskIndexConfig::default()
        },
    )
    .expect("open");
    std::fs::remove_file(&path).ok();

    let queries: Vec<NwcQuery> = Dataset::query_points(24, 7)
        .into_iter()
        .map(|q| NwcQuery::new(q, WindowSpec::square(400.0), 4))
        .collect();
    let engine = QueryEngine::new(&disk).with_threads(4);
    let storage = disk.tree().storage().expect("disk-backed");

    // Round 1: kill the root — every query errors, across all 4 workers.
    let root = disk.tree().root().raw();
    fault.fail_page_permanently(root);
    let batch = engine.try_nwc_batch(&queries, Scheme::NWC_STAR);
    assert!(batch.iter().all(|r| r.is_err()), "root is unreadable");
    assert_eq!(storage.pool_stats().pinned, 0, "a failed descent leaked a pin");
    let io = disk.tree().stats();
    // Failed load attempts bump pool misses but never logical accesses,
    // so the decomposition must still hold (the strict pool == stats
    // equalities intentionally don't during a faulted round).
    assert_eq!(io.accesses(), io.node_reads() + io.buffer_hits());
    assert!(storage.io_errors() > 0, "the fault never reached the device");

    // Round 2: lift the fault, reset, and demand the healthy-run
    // invariants — the failed round must leave no residue behind.
    fault.clear_faults();
    storage.reset();
    io.reset();
    for q in &queries {
        let want = arena.nwc(q, Scheme::NWC_STAR);
        let got = disk.try_nwc(q, Scheme::NWC_STAR).expect("healthy again");
        assert_eq!(want.map(|r| r.ids()), got.map(|r| r.ids()));
    }
    let batch = engine.try_nwc_batch(&queries, Scheme::NWC_STAR);
    assert!(batch.iter().all(|r| r.is_ok()));
    let pool = storage.pool_stats();
    assert_eq!(pool.hits, io.buffer_hits(), "pool/stats hit accounting diverged");
    assert_eq!(pool.misses, io.node_reads(), "pool/stats miss accounting diverged");
    assert_eq!(storage.physical_reads(), pool.misses);
    assert_eq!(pool.pinned, 0);
    assert_eq!(storage.io_errors(), 0);
    assert_eq!(io.retries(), 0);
    assert!(storage.quarantine().is_empty());
}
