//! Demand paging end to end: with a pool of `C` frames, at most `C`
//! decoded nodes are ever resident while the Table-3 schemes run — and
//! the answers and logical I/O counters stay identical to the
//! in-memory arena, eviction or not.

use nwc::prelude::*;
use nwc::rtree::PAGE_SIZE;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};

/// A unique temp path per call (tests run concurrently).
fn temp_pages(tag: &str) -> PathBuf {
    static COUNTER: AtomicU32 = AtomicU32::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "nwc-paging-{tag}-{}-{n}.pages",
        std::process::id()
    ))
}

fn seeded_points(n: usize, seed: u64) -> Vec<Point> {
    (0..n)
        .map(|i| {
            let s = (i as u64).wrapping_mul(seed | 1);
            Point::new(
                ((s % 97) * 10) as f64 + ((s >> 8) % 4) as f64 * 0.25,
                (((s >> 16) % 89) * 10) as f64 + ((s >> 24) % 4) as f64 * 0.25,
            )
        })
        .collect()
}

/// Saves the arena index and reopens it with the given pool bound.
fn reopen_with(arena: &NwcIndex, tag: &str, config: DiskIndexConfig) -> NwcIndex {
    let path = temp_pages(tag);
    arena.save_tree(&path).expect("save");
    let disk = NwcIndex::open_disk(&path, config).expect("open");
    std::fs::remove_file(&path).ok();
    disk
}

/// Runs every Table-3 scheme on both indexes and asserts identical
/// answers and identical logical I/O (only the hit/miss split differs).
fn assert_equivalent_under_pressure(arena: &NwcIndex, disk: &NwcIndex, seed: u64) {
    for scheme in Scheme::TABLE3 {
        for (qi, &q) in Dataset::query_points(2, seed).iter().enumerate() {
            for spec in [WindowSpec::square(60.0), WindowSpec::new(120.0, 40.0)] {
                let query = NwcQuery::new(q, spec, 4);
                let (ra, sa) = arena.nwc_full(&query, scheme);
                let (rd, sd) = disk.nwc_full(&query, scheme);
                match (&ra, &rd) {
                    (None, None) => {}
                    (Some(a), Some(d)) => {
                        assert_eq!(a.ids(), d.ids(), "{scheme}/q{qi}");
                        assert_eq!(a.distance, d.distance, "{scheme}/q{qi}");
                    }
                    _ => panic!("{scheme}/q{qi}: one mode found a result, one did not"),
                }
                assert_eq!(
                    SearchStats { buffer_hits: 0, ..sd },
                    sa,
                    "{scheme}/q{qi}: logical I/O diverges under a tiny pool"
                );
            }
        }
    }
}

#[test]
fn pool_capacity_bounds_resident_nodes_across_schemes() {
    let arena = NwcIndex::build(seeded_points(1500, 13));
    // A few frames above the height: enough to pin a root-to-leaf path
    // during descent, far below the node count, so eviction is constant.
    let cap = arena.tree().height() + 2;
    let disk = reopen_with(
        &arena,
        "bound",
        DiskIndexConfig {
            pool_capacity: Some(cap),
            ..DiskIndexConfig::default()
        },
    );
    assert!(
        disk.tree().node_count() > 4 * cap,
        "tree too small to exercise eviction: {} nodes vs {cap} frames",
        disk.tree().node_count()
    );

    assert_equivalent_under_pressure(&arena, &disk, 13);

    let storage = disk.tree().storage().expect("disk-backed");
    let peak = storage.peak_resident_nodes();
    assert!(peak > 0, "queries must have faulted nodes in");
    assert!(
        peak <= cap,
        "peak resident decoded nodes {peak} exceeds pool capacity {cap}"
    );
    let pool = storage.pool_stats();
    assert!(pool.evictions > 0, "a {cap}-frame pool over this tree must evict");
    assert_eq!(storage.io_errors(), 0);
    // Every logical access decomposes into a physical read or a hit.
    let io = disk.tree().stats();
    assert_eq!(io.accesses(), io.node_reads() + io.buffer_hits());
    assert_eq!(storage.physical_reads(), pool.misses);
}

#[test]
fn memory_budget_knob_translates_to_frames() {
    let frame = 2 * PAGE_SIZE as u64; // raw page + decoded node
    let budget_only = DiskIndexConfig {
        memory_budget_bytes: Some(6 * frame),
        ..DiskIndexConfig::default()
    };
    assert_eq!(budget_only.effective_pool_capacity(), Some(6));

    // The stricter of the two bounds wins.
    let both = DiskIndexConfig {
        pool_capacity: Some(4),
        memory_budget_bytes: Some(100 * frame),
        ..DiskIndexConfig::default()
    };
    assert_eq!(both.effective_pool_capacity(), Some(4));

    // A budget below one frame still leaves a working (1-frame) pool.
    let tiny = DiskIndexConfig {
        memory_budget_bytes: Some(1),
        ..DiskIndexConfig::default()
    };
    assert_eq!(tiny.effective_pool_capacity(), Some(1));

    assert_eq!(DiskIndexConfig::default().effective_pool_capacity(), None);
}

#[test]
fn memory_budget_bounds_resident_nodes_end_to_end() {
    let arena = NwcIndex::build(seeded_points(1000, 29));
    let frames = arena.tree().height() + 2;
    let disk = reopen_with(
        &arena,
        "budget",
        DiskIndexConfig {
            memory_budget_bytes: Some(frames as u64 * 2 * PAGE_SIZE as u64),
            ..DiskIndexConfig::default()
        },
    );

    assert_equivalent_under_pressure(&arena, &disk, 29);

    let storage = disk.tree().storage().expect("disk-backed");
    assert!(storage.peak_resident_nodes() > 0);
    assert!(
        storage.peak_resident_nodes() <= frames,
        "budget of {frames} frames exceeded: peak {}",
        storage.peak_resident_nodes()
    );
}

#[test]
fn disk_backed_index_rejects_updates_with_typed_errors() {
    let arena = NwcIndex::build(seeded_points(400, 7));
    let mut disk = reopen_with(&arena, "readonly", DiskIndexConfig::default());
    let len = disk.len();

    assert_eq!(
        disk.insert(Point::new(1.0, 1.0)),
        Err(IndexUpdateError::ReadOnly)
    );
    assert_eq!(disk.remove(0), Err(IndexUpdateError::ReadOnly));
    assert_eq!(disk.len(), len, "failed updates must leave the index unchanged");

    // The error carries actionable wording, not a panic message.
    let msg = IndexUpdateError::ReadOnly.to_string();
    assert!(msg.contains("read-only"), "unhelpful message: {msg}");

    // And the index still answers queries afterwards.
    let query = NwcQuery::new(Point::new(50.0, 50.0), WindowSpec::square(80.0), 3);
    assert!(disk.nwc(&query, Scheme::NWC_STAR).is_some());
}
