//! End-to-end integration tests on realistic (scaled) datasets: scheme
//! agreement, I/O orderings the paper's evaluation depends on, and
//! storage accounting.

use nwc::core::SearchStats;
use nwc::prelude::*;

fn trio() -> Vec<Dataset> {
    Dataset::paper_trio_scaled(4_000, 6_000, 5_000, 1234)
}

fn avg_io(index: &NwcIndex, queries: &[Point], spec: WindowSpec, n: usize, scheme: Scheme) -> f64 {
    let mut acc = SearchStats::default();
    for &q in queries {
        let query = NwcQuery::new(q, spec, n);
        let (_, stats) = index.nwc_full(&query, scheme);
        acc.accumulate(&stats);
    }
    acc.io_total as f64 / queries.len() as f64
}

#[test]
fn all_schemes_agree_on_real_shaped_data() {
    let queries = Dataset::query_points(5, 99);
    for ds in trio() {
        let index = NwcIndex::build(ds.points.clone());
        for &q in &queries {
            let query = NwcQuery::new(q, WindowSpec::square(64.0), 8);
            let reference = index.nwc(&query, Scheme::NWC).map(|r| r.distance);
            for scheme in &Scheme::TABLE3[1..] {
                let got = index.nwc(&query, *scheme).map(|r| r.distance);
                match (reference, got) {
                    (None, None) => {}
                    (Some(a), Some(b)) => {
                        assert!((a - b).abs() < 1e-9, "{}: {scheme} {b} vs NWC {a}", ds.name)
                    }
                    (a, b) => panic!("{}: {scheme} {b:?} vs NWC {a:?}", ds.name),
                }
            }
        }
    }
}

#[test]
fn optimizations_beat_baseline_on_average() {
    let queries = Dataset::query_points(8, 7);
    for ds in trio() {
        let index = NwcIndex::build(ds.points.clone());
        // Large enough that even the scaled Gaussian dataset has
        // qualified windows — with none, SRR/DIP degenerate to the
        // baseline by design (paper §5.3).
        let spec = WindowSpec::square(256.0);
        let base = avg_io(&index, &queries, spec, 8, Scheme::NWC);
        let plus = avg_io(&index, &queries, spec, 8, Scheme::NWC_PLUS);
        let star = avg_io(&index, &queries, spec, 8, Scheme::NWC_STAR);
        assert!(plus < base, "{}: NWC+ {plus} !< NWC {base}", ds.name);
        assert!(star < base, "{}: NWC* {star} !< NWC {base}", ds.name);
        assert!(star <= plus * 1.05, "{}: NWC* {star} should be ≈≤ NWC+ {plus}", ds.name);
    }
}

#[test]
fn baseline_io_is_insensitive_to_n() {
    // Figure 11's flat baseline: NWC visits every object regardless of n.
    let ds = &trio()[0];
    let index = NwcIndex::build(ds.points.clone());
    let queries = Dataset::query_points(4, 5);
    let spec = WindowSpec::square(16.0);
    let io8 = avg_io(&index, &queries, spec, 8, Scheme::NWC);
    let io64 = avg_io(&index, &queries, spec, 64, Scheme::NWC);
    let ratio = io64 / io8;
    assert!(
        (0.9..=1.1).contains(&ratio),
        "baseline should be ~flat in n: {io8} vs {io64}"
    );
}

#[test]
fn dep_is_stronger_on_uniformish_data_than_clustered() {
    // §5.2: "DEP performs well in nearly uniformly distributed datasets,
    // but achieves relatively poor performance when the object
    // distribution is highly clustered."
    let sets = trio();
    let queries = Dataset::query_points(8, 21);
    let spec = WindowSpec::square(64.0);
    let reduction = |ds: &Dataset| {
        let index = NwcIndex::build(ds.points.clone());
        let base = avg_io(&index, &queries, spec, 8, Scheme::NWC);
        let dep = avg_io(&index, &queries, spec, 8, Scheme::DEP);
        1.0 - dep / base
    };
    let ny = reduction(&sets[1]); // highly clustered
    let gauss = reduction(&sets[2]); // near-uniform hump
    assert!(
        gauss > ny,
        "DEP reduction on Gaussian ({gauss:.2}) should exceed NY ({ny:.2})"
    );
}

#[test]
fn storage_overheads_are_reported() {
    let ds = Dataset::gaussian(20_000, 5_000.0, 2_000.0, 3);
    let index = NwcIndex::build(ds.points.clone());
    // DEP grid: paper reports ~312 KB for the 400×400 grid.
    let grid = index.grid().expect("grid built by default");
    assert_eq!(grid.cell_count(), 160_000);
    assert_eq!(grid.bytes(), 320_000);
    // IWP pointers: a few per leaf plus overlaps.
    let iwp = index.iwp().expect("iwp built by default");
    let s = iwp.storage();
    assert!(s.backward_pointers >= index.tree().node_count() / 2);
    assert!(s.bytes() > 0);
}

#[test]
fn knwc_runs_on_scaled_paper_datasets() {
    use nwc::core::KnwcQuery;
    for ds in &trio()[..2] {
        // CA and NY, as in Figures 13–14.
        let index = NwcIndex::build(ds.points.clone());
        for &q in &Dataset::query_points(3, 17) {
            let query = KnwcQuery::new(q, WindowSpec::square(64.0), 8, 4, 4);
            let plus = index.knwc(&query, Scheme::NWC_PLUS);
            let star = index.knwc(&query, Scheme::NWC_STAR);
            assert_eq!(plus.groups.len(), star.groups.len(), "{}", ds.name);
            for (a, b) in plus.groups.iter().zip(&star.groups) {
                assert!((a.distance - b.distance).abs() < 1e-9, "{}", ds.name);
            }
            assert!(star.stats.io_total <= plus.stats.io_total, "{}", ds.name);
        }
    }
}

#[test]
fn distance_measures_are_ordered() {
    // For any query and group: min ≤ avg ≤ max, nearest-window ≤ min.
    use nwc::core::DistanceMeasure;
    let ds = &trio()[0];
    let index = NwcIndex::build(ds.points.clone());
    for &q in &Dataset::query_points(5, 41) {
        let spec = WindowSpec::square(64.0);
        let score = |m: DistanceMeasure| {
            index
                .nwc(&NwcQuery::new(q, spec, 8).with_measure(m), Scheme::NWC_STAR)
                .map(|r| r.distance)
        };
        if let (Some(min), Some(avg), Some(max), Some(nw)) = (
            score(DistanceMeasure::Min),
            score(DistanceMeasure::Avg),
            score(DistanceMeasure::Max),
            score(DistanceMeasure::NearestWindow),
        ) {
            // Each is the optimum under its own measure, so the optimal
            // min ≤ optimal avg ≤ optimal max, and the nearest-window
            // optimum lower-bounds the min optimum.
            assert!(min <= avg + 1e-9, "min {min} > avg {avg}");
            assert!(avg <= max + 1e-9, "avg {avg} > max {max}");
            assert!(nw <= min + 1e-9, "nearest-window {nw} > min {min}");
        }
    }
}
