//! The serving layer's hard guarantees, end to end:
//!
//! - **generation atomicity** — queries racing a hot-swap return
//!   answers valid for exactly one generation, never a torn mix of
//!   both;
//! - **store lifecycle** — the old generation's page file stays
//!   advisory-locked until its last in-flight query finishes, then the
//!   swap closes it (provably: the file can be reopened) with zero
//!   pinned pool frames;
//! - **resilience** — the flip works while a [`FaultStore`] injects
//!   transient read faults under both generations;
//! - **typed refusals over the wire** — deadline-exceeded and shed
//!   requests produce typed responses, the workers survive, and the
//!   pool shows no pin leaks afterwards;
//! - **batch cancellation** — `QueryEngine`'s `*_cancel` batch APIs
//!   observe an external stop flag without tearing down the scope.

use nwc::prelude::*;
use nwc_core::{CancelFlag, CancelKind, CancelToken, QueryEngine, QueryError};
use nwc_serve::{IndexHandle, QueryOutcome, ServeClient, Server, ServerConfig};
use nwc_store::{FaultPlan, FaultStore, FileStore, RetryPolicy, StoreError};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

fn temp_pages(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("nwc-serve-swap-{tag}-{}.pages", std::process::id()))
}

/// `count` deterministic points confined to `[lo, hi)²` — two calls
/// with disjoint ranges make generations whose answers cannot be
/// confused.
fn region_points(count: usize, lo: f64, hi: f64, seed: u64) -> Vec<Point> {
    let span = hi - lo;
    (0..count)
        .map(|i| {
            let s = (i as u64 ^ seed).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            Point::new(
                lo + (s % 1_000_000) as f64 / 1_000_000.0 * span,
                lo + ((s >> 20) % 1_000_000) as f64 / 1_000_000.0 * span,
            )
        })
        .collect()
}

fn save_region(tag: &str, lo: f64, hi: f64, seed: u64) -> PathBuf {
    let path = temp_pages(tag);
    NwcIndex::build(region_points(4_000, lo, hi, seed))
        .save_tree(&path)
        .expect("saving page file");
    path
}

/// Queries racing a hot-swap must answer from exactly one generation.
/// Generation 1 lives entirely in `[0, 4500)²`, generation 2 entirely
/// in `[5500, 10000)²`; any group mixing the two regions — or any
/// untyped failure — is a torn swap.
#[test]
fn concurrent_queries_across_flip_answer_from_exactly_one_generation() {
    let gen1 = save_region("atomic-g1", 0.0, 4_500.0, 1);
    let gen2 = save_region("atomic-g2", 5_500.0, 10_000.0, 2);
    // Generous admission bounds: this test races the swap, shedding is
    // covered elsewhere and debug-mode queries are slow.
    let config = ServerConfig {
        workers: 3,
        queue_depth: 1024,
        max_estimated_wait: Duration::from_secs(120),
        allow_control_plane: true, // this test swaps over the wire
        ..ServerConfig::default()
    };
    let index = NwcIndex::open_disk(&gen1, config.swap_config).expect("open generation 1");
    let server = Server::start(Arc::new(IndexHandle::new(index)), "127.0.0.1:0", config)
        .expect("start server");
    let addr = server.local_addr();

    let verdicts: Vec<Result<(usize, usize), String>> = std::thread::scope(|scope| {
        let joins: Vec<_> = (0..4)
            .map(|t| {
                scope.spawn(move || {
                    let mut client =
                        ServeClient::connect(addr).map_err(|e| format!("connect: {e}"))?;
                    let (mut from_g1, mut from_g2) = (0usize, 0usize);
                    // Queries everywhere in the space; the serving
                    // generation decides which region answers (NWC
                    // returns the nearest cluster however far away).
                    for (i, q) in region_points(40, 500.0, 9_500.0, 77 + t).iter().enumerate() {
                        match client
                            .nwc(Scheme::NWC_STAR, q.x, q.y, 1_000.0, 1_000.0, 4, 30_000)
                            .map_err(|e| format!("query {i}: {e}"))?
                        {
                            QueryOutcome::Answer { groups, .. } => {
                                for g in &groups {
                                    let g1 = g.objects.iter().all(|o| o.x < 4_500.0 && o.y < 4_500.0);
                                    let g2 = g.objects.iter().all(|o| o.x >= 5_500.0 && o.y >= 5_500.0);
                                    if g1 {
                                        from_g1 += 1;
                                    } else if g2 {
                                        from_g2 += 1;
                                    } else {
                                        return Err(format!(
                                            "torn group mixes generations: {:?}",
                                            g.objects
                                        ));
                                    }
                                }
                            }
                            other => return Err(format!("untyped outcome: {other:?}")),
                        }
                    }
                    Ok((from_g1, from_g2))
                })
            })
            .collect();
        // Flip mid-load.
        std::thread::sleep(Duration::from_millis(15));
        let mut swapper = ServeClient::connect(addr).expect("swap connect");
        let swap = swapper
            .swap(&gen2.display().to_string())
            .expect("swap request")
            .expect("swap accepted");
        assert_eq!(swap.old_generation, 1);
        assert_eq!(swap.new_generation, 2);
        assert_eq!(swap.old_pinned, 0, "pin leak across hot-swap");
        joins
            .into_iter()
            .map(|j| j.join().unwrap_or_else(|_| Err("client panicked".into())))
            .collect()
    });

    let (mut g1_total, mut g2_total) = (0, 0);
    for v in verdicts {
        let (g1, g2) = v.expect("every query answers, from one generation");
        g1_total += g1;
        g2_total += g2;
    }
    // After the flip, a fresh query must see generation 2 only.
    let mut client = ServeClient::connect(addr).expect("reconnect");
    match client
        .nwc(Scheme::NWC_STAR, 7_000.0, 7_000.0, 1_000.0, 1_000.0, 4, 30_000)
        .expect("post-swap query")
    {
        QueryOutcome::Answer { groups, .. } => {
            assert!(groups[0].objects.iter().all(|o| o.x >= 5_500.0));
        }
        other => panic!("post-swap query failed: {other:?}"),
    }
    assert!(g2_total > 0, "no query observed the new generation");
    // g1_total may be 0 only if the swap won every race; with a 15 ms
    // head start that would mean no query ran at all.
    assert!(g1_total > 0, "no query observed the old generation");

    server.shutdown();
    std::fs::remove_file(&gen1).ok();
    std::fs::remove_file(&gen2).ok();
}

/// The swap must actually close the old store: its advisory lock is
/// held while serving (a second open fails with `StoreError::Locked`)
/// and released once the drained generation drops.
#[test]
fn swap_closes_old_store_and_releases_its_lock() {
    let gen1 = save_region("lock-g1", 0.0, 4_500.0, 3);
    let gen2 = save_region("lock-g2", 5_500.0, 10_000.0, 4);
    let handle = IndexHandle::new(
        NwcIndex::open_disk(&gen1, DiskIndexConfig::default()).expect("open generation 1"),
    );

    // Serving: the page file is exclusively locked.
    match FileStore::open(&gen1) {
        Err(StoreError::Locked { .. }) => {}
        Err(e) => panic!("expected the served file to be locked, got {e}"),
        Ok(_) => panic!("the served file must be locked"),
    }

    let report = handle.swap_index(
        NwcIndex::open_disk(&gen2, DiskIndexConfig::default()).expect("open generation 2"),
    );
    assert!(report.drained, "idle swap must drain immediately");
    assert_eq!(report.old_pinned, 0);

    // Closed: the old file reopens cleanly; the new one is now locked.
    FileStore::open(&gen1).expect("old store must be closed after the swap");
    match FileStore::open(&gen2) {
        Err(StoreError::Locked { .. }) => {}
        Err(e) => panic!("expected the new file to be locked, got {e}"),
        Ok(_) => panic!("the new file must be locked"),
    }

    drop(handle);
    std::fs::remove_file(&gen1).ok();
    std::fs::remove_file(&gen2).ok();
}

/// Opens a region dataset through a transient-fault-injecting store.
fn fault_backed(tag: &str, lo: f64, hi: f64, seed: u64, rate: f64) -> NwcIndex {
    let path = save_region(tag, lo, hi, seed);
    let store = FileStore::open(&path).expect("reopen page file");
    let fault = Arc::new(FaultStore::new(store, FaultPlan::default()));
    let index = NwcIndex::open_disk_from_store(
        Box::new(Arc::clone(&fault)),
        DiskIndexConfig {
            retry: RetryPolicy {
                max_attempts: 6,
                base_backoff: Duration::ZERO,
                max_backoff: Duration::ZERO,
            },
            ..DiskIndexConfig::default()
        },
    )
    .expect("open through a transparent fault store");
    fault.set_plan(FaultPlan::transient(rate, 0xFA_17 ^ seed));
    std::fs::remove_file(&path).ok();
    index
}

/// The flip keeps working while both generations absorb injected
/// transient read faults: queries racing the swap still only see typed
/// outcomes and single-generation answers.
#[test]
fn hot_swap_survives_transient_store_faults_under_load() {
    let handle = Arc::new(IndexHandle::new(fault_backed("faulty-g1", 0.0, 4_500.0, 5, 0.05)));
    let flag = CancelFlag::new();
    std::thread::scope(|scope| {
        let mut joins = Vec::new();
        for t in 0..3 {
            let handle = Arc::clone(&handle);
            let flag = flag.clone();
            joins.push(scope.spawn(move || {
                let mut scratch = nwc_core::QueryScratch::new();
                let queries = region_points(150, 500.0, 9_500.0, 99 + t);
                let mut answered = 0usize;
                for q in &queries {
                    if flag.is_stopped() {
                        break;
                    }
                    let generation = handle.load();
                    let query = NwcQuery::new(*q, WindowSpec::square(1_000.0), 4);
                    match generation.index.try_nwc_full_cancel(
                        &query,
                        Scheme::NWC_STAR,
                        &mut scratch,
                        &CancelToken::none(),
                    ) {
                        Ok((Some(result), _)) => {
                            let lo = result.objects.iter().all(|o| o.point.x < 4_500.0);
                            let hi = result.objects.iter().all(|o| o.point.x >= 5_500.0);
                            assert!(
                                lo || hi,
                                "torn group under faults: {:?}",
                                result.objects
                            );
                            answered += 1;
                        }
                        Ok((None, _)) => {}
                        Err(e) => panic!("transient faults must stay invisible: {e}"),
                    }
                }
                answered
            }));
        }
        std::thread::sleep(Duration::from_millis(10));
        let report = handle.swap_index(fault_backed("faulty-g2", 5_500.0, 10_000.0, 6, 0.05));
        assert_eq!(report.old_pinned, 0, "pin leak swapping under faults");
        flag.stop();
        let answered: usize = joins.into_iter().map(|j| j.join().expect("no panic")).sum();
        assert!(answered > 0, "the load never answered anything");
    });
    assert_eq!(handle.generation(), 2);
}

/// Over the wire: tight deadlines produce typed `Deadline`, a full
/// admission queue produces typed `Shed` with a retry hint, the workers
/// keep serving afterwards, and the pool ends with zero pinned frames.
#[test]
fn deadline_and_shed_are_typed_and_leak_no_pins() {
    let path = save_region("typed", 0.0, 10_000.0, 7);
    // One worker, a two-deep queue, and per-read latency injected via
    // the fault store so queries are slow enough to pile up.
    let store = FileStore::open(&path).expect("reopen page file");
    let fault = Arc::new(FaultStore::new(store, FaultPlan::default()));
    let index = NwcIndex::open_disk_from_store(
        Box::new(Arc::clone(&fault)),
        DiskIndexConfig {
            pool_capacity: Some(4),
            ..DiskIndexConfig::default()
        },
    )
    .expect("open");
    fault.set_plan(FaultPlan {
        latency: Some(Duration::from_micros(300)),
        ..FaultPlan::default()
    });
    let config = ServerConfig {
        workers: 1,
        queue_depth: 2,
        max_estimated_wait: Duration::from_secs(10),
        default_deadline: None,
        ..ServerConfig::default()
    };
    let server = Server::start(Arc::new(IndexHandle::new(index)), "127.0.0.1:0", config)
        .expect("start server");
    let addr = server.local_addr();

    // A tight deadline on a cold, latency-injected index: typed Deadline.
    let mut client = ServeClient::connect(addr).expect("connect");
    match client
        .nwc(Scheme::NWC_STAR, 5_000.0, 5_000.0, 600.0, 600.0, 6, 1)
        .expect("tight-deadline request")
    {
        QueryOutcome::Deadline | QueryOutcome::Answer { .. } => {}
        other => panic!("expected Deadline (or a very fast answer), got {other:?}"),
    }

    // Flood from 8 connections: with one slow worker and a two-deep
    // queue, some requests must shed — and every shed is typed with a
    // non-zero retry hint.
    let tallies: Vec<(usize, usize, usize)> = std::thread::scope(|scope| {
        (0..8)
            .map(|t| {
                scope.spawn(move || {
                    let mut client = ServeClient::connect(addr).expect("connect");
                    let (mut ok, mut shed, mut deadline) = (0, 0, 0);
                    for q in region_points(25, 500.0, 9_500.0, 7_000 + t) {
                        match client
                            .nwc(Scheme::NWC_STAR, q.x, q.y, 600.0, 600.0, 6, 5_000)
                            .expect("request")
                        {
                            QueryOutcome::Answer { .. } => ok += 1,
                            QueryOutcome::Shed { retry_after_ms } => {
                                assert!(retry_after_ms > 0, "shed without a retry hint");
                                shed += 1;
                            }
                            QueryOutcome::Deadline => deadline += 1,
                            other => panic!("untyped outcome: {other:?}"),
                        }
                    }
                    (ok, shed, deadline)
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|j| j.join().expect("no panic"))
            .collect()
    });
    let ok: usize = tallies.iter().map(|t| t.0).sum();
    let shed: usize = tallies.iter().map(|t| t.1).sum();
    assert!(ok > 0, "server stopped answering under load");
    assert!(shed > 0, "two-deep queue under 8 connections never shed");

    // The server is healthy afterwards: it answers, and the scrape
    // proves zero pinned frames and typed accounting.
    match client
        .nwc(Scheme::NWC_STAR, 5_000.0, 5_000.0, 600.0, 600.0, 6, 5_000)
        .expect("post-flood request")
    {
        QueryOutcome::Answer { .. } => {}
        other => panic!("post-flood query failed: {other:?}"),
    }
    let stats = client.stats().expect("scrape");
    let field = |name: &str| -> u64 {
        stats
            .lines()
            .find_map(|l| l.strip_prefix(name).and_then(|r| r.trim().parse().ok()))
            .unwrap_or_else(|| panic!("scrape is missing `{name}`:\n{stats}"))
    };
    assert_eq!(field("pool_pinned "), 0, "pin leak after deadline/shed load");
    assert!(field("server_shed_total ") >= shed as u64);
    assert!(field("server_completed_total ") >= ok as u64);

    server.shutdown();
    std::fs::remove_file(&path).ok();
}

/// Anytime requests over the wire: a budget expiry delivers a typed
/// `Partial` carrying a valid bound instead of a bare `Deadline`, a
/// zero I/O budget answers immediately with the vacuous bound, an
/// exact unlimited anytime request is indistinguishable from a plain
/// answer — and none of it leaks a pin.
#[test]
fn anytime_requests_deliver_bounded_partials_over_the_wire() {
    use nwc_serve::PartialReason;

    let path = save_region("anytime", 0.0, 10_000.0, 21);
    let store = FileStore::open(&path).expect("reopen page file");
    let fault = Arc::new(FaultStore::new(store, FaultPlan::default()));
    let index = NwcIndex::open_disk_from_store(
        Box::new(Arc::clone(&fault)),
        DiskIndexConfig {
            pool_capacity: Some(4),
            ..DiskIndexConfig::default()
        },
    )
    .expect("open");
    let server = Server::start(
        Arc::new(IndexHandle::new(index)),
        "127.0.0.1:0",
        ServerConfig::default(),
    )
    .expect("start server");
    let addr = server.local_addr();
    let mut client = ServeClient::connect(addr).expect("connect");

    // Exact + unlimited: the anytime extension must not change the
    // answer — same groups as the legacy request.
    let exact = client
        .nwc(Scheme::NWC_STAR, 5_000.0, 5_000.0, 600.0, 600.0, 6, 30_000)
        .expect("legacy request");
    let QueryOutcome::Answer { groups: exact_groups, .. } = exact else {
        panic!("legacy request failed: {exact:?}");
    };
    match client
        .nwc_anytime(
            Scheme::NWC_STAR,
            5_000.0,
            5_000.0,
            600.0,
            600.0,
            6,
            30_000,
            0.0,
            u64::MAX,
        )
        .expect("exact anytime request")
    {
        QueryOutcome::Answer { groups, .. } => {
            assert_eq!(groups, exact_groups, "exact anytime answer differs");
        }
        other => panic!("exact unlimited anytime must complete: {other:?}"),
    }
    let exact_distance = exact_groups.first().map(|g| g.distance);

    // A zero I/O budget: an immediate empty Partial with the vacuous
    // bound, never a hang or a panic.
    match client
        .nwc_anytime(
            Scheme::NWC_STAR,
            5_000.0,
            5_000.0,
            600.0,
            600.0,
            6,
            30_000,
            0.0,
            0,
        )
        .expect("zero-budget request")
    {
        QueryOutcome::Partial {
            groups,
            error_bound,
            lower_bound,
            io,
            reason,
            ..
        } => {
            assert!(groups.is_empty(), "zero budget bought an answer?");
            assert_eq!(error_bound, f64::INFINITY);
            assert_eq!(lower_bound, 0.0);
            assert_eq!(io, 0);
            assert_eq!(reason, PartialReason::IoBudget);
        }
        other => panic!("zero budget must yield an empty Partial: {other:?}"),
    }

    // A small-but-positive I/O budget under injected latency: either
    // the query finishes inside the allowance (tiny index in cache) or
    // the Partial's bound arithmetic must hold against the exact
    // answer from above.
    fault.set_plan(FaultPlan {
        latency: Some(Duration::from_micros(200)),
        ..FaultPlan::default()
    });
    for io_budget in [1u64, 2, 4, 8, 16] {
        match client
            .nwc_anytime(
                Scheme::NWC_STAR,
                5_000.0,
                5_000.0,
                600.0,
                600.0,
                6,
                30_000,
                0.0,
                io_budget,
            )
            .expect("budgeted request")
        {
            QueryOutcome::Partial {
                groups,
                error_bound,
                lower_bound,
                io,
                reason,
                ..
            } => {
                assert_eq!(reason, PartialReason::IoBudget);
                // The budget is checked between work units (node
                // expansions, candidate passes), so the unit in flight
                // when the check fires can land a few reads past the
                // allowance — bounded by one candidate evaluation,
                // never a runaway search.
                assert!(
                    io <= io_budget.saturating_add(32),
                    "spent {io} ran away past allowance {io_budget}"
                );
                assert!(lower_bound >= 0.0);
                assert!(error_bound >= 0.0 || error_bound.is_infinite());
                if let Some(d_star) = exact_distance {
                    assert!(
                        lower_bound <= d_star + 1e-9,
                        "lower bound {lower_bound} exceeds optimum {d_star}"
                    );
                    if let Some(g) = groups.first() {
                        assert!(
                            g.distance + 1e-9 >= d_star,
                            "partial answer beats the optimum"
                        );
                        assert!(
                            g.distance - error_bound <= d_star + 1e-9,
                            "error bound fails to bracket the optimum"
                        );
                    }
                }
            }
            QueryOutcome::Answer { groups, .. } => {
                assert_eq!(groups, exact_groups, "budgeted completion differs");
            }
            other => panic!("untyped outcome: {other:?}"),
        }
    }

    // A 1 ms deadline with the extension: a Partial (reason Deadline),
    // or a fast completion — never a bare `Deadline` refusal.
    match client
        .nwc_anytime(
            Scheme::NWC_STAR,
            5_000.0,
            5_000.0,
            600.0,
            600.0,
            6,
            1,
            0.0,
            u64::MAX,
        )
        .expect("tight-deadline anytime request")
    {
        QueryOutcome::Partial { reason, lower_bound, .. } => {
            assert_eq!(reason, PartialReason::Deadline);
            assert!(lower_bound >= 0.0);
        }
        QueryOutcome::Answer { .. } => {}
        other => panic!("anytime deadline must be a bounded Partial: {other:?}"),
    }

    // No pins leaked by any of the partial paths.
    let stats = client.stats().expect("scrape");
    let field = |name: &str| -> u64 {
        stats
            .lines()
            .find_map(|l| l.strip_prefix(name).and_then(|r| r.trim().parse().ok()))
            .unwrap_or_else(|| panic!("scrape is missing `{name}`:\n{stats}"))
    };
    assert_eq!(field("pool_pinned "), 0, "pin leak after anytime load");
    assert!(field("server_partial_total ") >= 6);

    server.shutdown();
    std::fs::remove_file(&path).ok();
}

/// The engine's batch APIs observe an external stop flag: a pre-stopped
/// batch yields a typed partial per query (not one blanket error), and
/// an unarmed token reproduces `try_nwc_batch` exactly.
#[test]
fn engine_batches_accept_external_cancel_flag() {
    let index = NwcIndex::build(region_points(3_000, 0.0, 10_000.0, 8));
    let engine = QueryEngine::new(&index).with_threads(3);
    let queries: Vec<NwcQuery> = region_points(24, 500.0, 9_500.0, 9)
        .into_iter()
        .map(|q| NwcQuery::new(q, WindowSpec::square(600.0), 5))
        .collect();

    // Unarmed token ≡ the plain batch API.
    let plain = engine.try_nwc_batch(&queries, Scheme::NWC_STAR);
    let unarmed = engine.try_nwc_batch_cancel(&queries, Scheme::NWC_STAR, &CancelToken::none());
    assert_eq!(plain.len(), unarmed.len());
    for (a, b) in plain.iter().zip(&unarmed) {
        let a = a.as_ref().expect("in-memory batch cannot fail");
        let b = b.as_ref().expect("unarmed cancel batch cannot fail");
        assert!(b.is_complete(), "unarmed token cannot exhaust");
        assert_eq!(b.error_bound, 0.0, "complete exact search has no gap");
        assert_eq!(
            a.0.as_ref().map(|r| r.ids()),
            b.answer.as_ref().map(|r| r.ids()),
            "unarmed token changed an answer"
        );
    }

    // A flag stopped before the batch starts: every slot is its own
    // typed partial with an individually valid (vacuous) bound, nothing
    // panics, and the engine remains usable.
    let flag = CancelFlag::new();
    flag.stop();
    let cancelled =
        engine.try_nwc_batch_cancel(&queries, Scheme::NWC_STAR, &CancelToken::with_flag(&flag));
    assert_eq!(cancelled.len(), queries.len());
    for slot in &cancelled {
        let p = slot.as_ref().expect("a tripped flag is not an error");
        assert_eq!(p.exhausted, Some(CancelKind::Stopped));
        assert!(p.answer.is_none(), "nothing ran, nothing found");
        assert_eq!(p.error_bound, f64::INFINITY);
        assert!(p.lower_bound >= 0.0);
    }

    // kNWC path too.
    let kq: Vec<KnwcQuery> = queries
        .iter()
        .take(6)
        .map(|q| KnwcQuery::new(q.q, q.spec, 4, 3, 1))
        .collect();
    let cancelled =
        engine.try_knwc_batch_cancel(&kq, Scheme::NWC_PLUS, &CancelToken::with_flag(&flag));
    for slot in &cancelled {
        let p = slot.as_ref().expect("a tripped flag is not an error");
        assert_eq!(p.exhausted, Some(CancelKind::Stopped));
        assert!(p.result.groups.is_empty());
        assert_eq!(p.error_bound, f64::INFINITY);
    }
    let fine = engine.try_knwc_batch_cancel(&kq, Scheme::NWC_PLUS, &CancelToken::none());
    assert!(fine
        .iter()
        .all(|r| r.as_ref().is_ok_and(|p| p.is_complete())));
}

/// A slow client whose frame straddles the server's 100 ms read
/// timeout must not be desynchronized: the bytes of one request,
/// dribbled in segments with inter-segment gaps longer than the
/// timeout, still assemble into that request, and the connection stays
/// framed for the next one. (Regression: the reader used to discard
/// partially-read prefix/body bytes on a timeout and reinterpret
/// mid-frame bytes as a new length prefix.)
#[test]
fn slow_client_frames_straddling_read_timeouts_stay_in_sync() {
    use nwc_serve::protocol::{
        decode_response, encode_request, encode_scheme, read_frame, OkShape, QuerySpec, Request,
        Response,
    };
    use std::io::Write;

    let path = save_region("slow", 0.0, 10_000.0, 13);
    let config = ServerConfig::default();
    let index = NwcIndex::open_disk(&path, config.swap_config).expect("open");
    let server = Server::start(Arc::new(IndexHandle::new(index)), "127.0.0.1:0", config)
        .expect("start server");
    let addr = server.local_addr();

    let mut stream = std::net::TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    let spec = QuerySpec {
        scheme_bits: encode_scheme(Scheme::NWC_STAR),
        qx: 5_000.0,
        qy: 5_000.0,
        l: 600.0,
        w: 600.0,
        n: 6,
        deadline_ms: 30_000,
    };
    let payload = encode_request(1, &Request::Nwc { spec, anytime: None });
    let mut frame = (payload.len() as u32).to_le_bytes().to_vec();
    frame.extend_from_slice(&payload);

    // Dribble the frame: split inside the length prefix AND inside the
    // body, pausing well past the server's 100 ms read timeout at each
    // cut so every segment lands in a different timed-out read.
    for chunk in [&frame[..2], &frame[2..6], &frame[6..20], &frame[20..]] {
        stream.write_all(chunk).expect("segment write");
        stream.flush().expect("flush");
        std::thread::sleep(Duration::from_millis(150));
    }

    let mut buf = Vec::new();
    read_frame(&mut stream, &mut buf).expect("response frame");
    let (id, resp) = decode_response(&buf, OkShape::Groups).expect("decodable response");
    assert_eq!(id, 1, "response for the dribbled request");
    assert!(
        matches!(resp, Response::Groups { .. }),
        "the dribbled request must execute, got {resp:?}"
    );

    // The connection is still framed: a normally-written second request
    // on the same socket answers too.
    let payload = encode_request(2, &Request::Nwc { spec, anytime: None });
    let mut frame = (payload.len() as u32).to_le_bytes().to_vec();
    frame.extend_from_slice(&payload);
    stream.write_all(&frame).expect("second request");
    read_frame(&mut stream, &mut buf).expect("second response frame");
    let (id, resp) = decode_response(&buf, OkShape::Groups).expect("second decode");
    assert_eq!(id, 2);
    assert!(matches!(resp, Response::Groups { .. }));

    server.shutdown();
    std::fs::remove_file(&path).ok();
}

/// The wire control plane is **off by default**: `Swap` and `Shutdown`
/// get typed refusals, the served index and the process survive, and
/// queries keep flowing.
#[test]
fn control_plane_disabled_by_default_refuses_swap_and_shutdown() {
    let gen1 = save_region("ctl-g1", 0.0, 10_000.0, 14);
    let gen2 = save_region("ctl-g2", 0.0, 10_000.0, 15);
    let config = ServerConfig::default();
    assert!(!config.allow_control_plane, "gate must default off");
    let index = NwcIndex::open_disk(&gen1, config.swap_config).expect("open generation 1");
    let server = Server::start(Arc::new(IndexHandle::new(index)), "127.0.0.1:0", config)
        .expect("start server");
    let addr = server.local_addr();

    let mut client = ServeClient::connect(addr).expect("connect");
    match client.swap(&gen2.display().to_string()).expect("swap roundtrip") {
        Err(msg) => assert!(msg.contains("control plane"), "unexpected refusal: {msg}"),
        Ok(swap) => panic!("swap must be refused with the gate off, got {swap:?}"),
    }
    // Shutdown is refused too (the one-shot client surfaces the
    // unexpected status as an error) and the server keeps serving.
    assert!(client.shutdown().is_err(), "shutdown must be refused");

    let mut client = ServeClient::connect(addr).expect("reconnect");
    match client
        .nwc(Scheme::NWC_STAR, 5_000.0, 5_000.0, 600.0, 600.0, 6, 30_000)
        .expect("query after refused control ops")
    {
        QueryOutcome::Answer { .. } => {}
        other => panic!("server must still answer after refusals: {other:?}"),
    }
    let stats = client.stats().expect("scrape");
    assert!(
        stats.contains("server_generation 1"),
        "index swapped despite the gate:\n{stats}"
    );
    assert!(stats.contains("server_swaps_total 0"));

    server.shutdown();
    std::fs::remove_file(&gen1).ok();
    std::fs::remove_file(&gen2).ok();
}

/// A deadline that fires mid-search over a disk-backed index surfaces
/// as `QueryError::Deadline` with every pin released — the index
/// answers the same query again afterwards.
#[test]
fn deadline_mid_search_releases_pins_and_index_survives() {
    let path = save_region("midsearch", 0.0, 10_000.0, 10);
    let store = FileStore::open(&path).expect("reopen");
    let fault = Arc::new(FaultStore::new(store, FaultPlan::default()));
    let index = NwcIndex::open_disk_from_store(
        Box::new(Arc::clone(&fault)),
        DiskIndexConfig {
            pool_capacity: Some(4),
            ..DiskIndexConfig::default()
        },
    )
    .expect("open");
    // 500 µs per physical read guarantees the 1 ms deadline fires
    // mid-traversal, not before the search starts.
    fault.set_plan(FaultPlan {
        latency: Some(Duration::from_micros(500)),
        ..FaultPlan::default()
    });

    let query = NwcQuery::new(Point::new(5_000.0, 5_000.0), WindowSpec::square(600.0), 6);
    let mut scratch = nwc_core::QueryScratch::new();
    let token =
        CancelToken::with_deadline(std::time::Instant::now() + Duration::from_millis(1));
    match index.try_nwc_full_cancel(&query, Scheme::NWC_STAR, &mut scratch, &token) {
        Err(QueryError::Deadline) => {}
        Ok(_) => panic!("a 1 ms budget at 500 µs/read cannot finish"),
        Err(e) => panic!("expected Deadline, got {e}"),
    }
    let storage = index.tree().storage().expect("disk-backed");
    assert_eq!(storage.pool_stats().pinned, 0, "cancelled search leaked pins");

    // Same query, no deadline: the index is fully usable.
    let (result, _) = index
        .try_nwc_full_cancel(&query, Scheme::NWC_STAR, &mut scratch, &CancelToken::none())
        .expect("index survives a cancelled search");
    assert!(result.is_some());

    drop(index);
    std::fs::remove_file(&path).ok();
}
