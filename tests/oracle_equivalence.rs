//! Property tests: every optimization scheme returns the optimal group
//! score, matching an exhaustive brute-force oracle, under every
//! distance measure.
//!
//! This is the central correctness claim of the paper — the
//! optimizations are *pruning-only* and must never change the answer
//! (only the I/O cost).

use nwc::core::oracle;
use nwc::core::DistanceMeasure;
use nwc::prelude::*;
use proptest::prelude::*;

fn point_strategy() -> impl Strategy<Value = Point> {
    // A coarse lattice plus jitter provokes boundary ties (objects
    // exactly on window edges) that uniform floats almost never hit.
    (0u32..100, 0u32..100, 0u32..4, 0u32..4)
        .prop_map(|(x, y, jx, jy)| Point::new(x as f64 + jx as f64 * 0.25, y as f64 + jy as f64 * 0.25))
}

fn scenario() -> impl Strategy<Value = (Vec<Point>, Point, f64, f64, usize)> {
    (
        proptest::collection::vec(point_strategy(), 8..48),
        point_strategy(),
        2.0f64..24.0,
        2.0f64..24.0,
        1usize..6,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn all_schemes_match_oracle((points, q, l, w, n) in scenario()) {
        let index = NwcIndex::build(points.clone());
        for measure in DistanceMeasure::ALL {
            let query = NwcQuery::new(q, WindowSpec::new(l, w), n).with_measure(measure);
            let want = oracle::nwc_brute_force(&points, &query);
            for scheme in Scheme::TABLE3 {
                let got = index.nwc(&query, scheme);
                match (&want, &got) {
                    (None, None) => {}
                    (Some(w_), Some(g)) => {
                        prop_assert!(
                            (w_.distance - g.distance).abs() < 1e-9,
                            "{scheme} {measure:?}: oracle {} vs algo {} (n={n})",
                            w_.distance, g.distance
                        );
                        // The returned group must actually fit a window
                        // and have the claimed score.
                        let rescore = measure.score(&q, &g.objects, &query.spec);
                        prop_assert!((rescore - g.distance).abs() < 1e-9);
                    }
                    _ => prop_assert!(
                        false,
                        "{scheme} {measure:?}: oracle {:?} vs algo {:?}",
                        want.as_ref().map(|x| x.distance),
                        got.as_ref().map(|x| x.distance)
                    ),
                }
            }
        }
    }

    #[test]
    fn result_groups_are_feasible((points, q, l, w, n) in scenario()) {
        let index = NwcIndex::build(points.clone());
        let query = NwcQuery::new(q, WindowSpec::new(l, w), n);
        if let Some(r) = index.nwc(&query, Scheme::NWC_STAR) {
            prop_assert_eq!(r.objects.len(), n);
            // Distinct objects.
            let mut ids = r.ids();
            ids.sort_unstable();
            ids.dedup();
            prop_assert_eq!(ids.len(), n);
            // All inside the reported window, which has legal dimensions.
            prop_assert!(r.window.width() <= l + 1e-9);
            prop_assert!(r.window.height() <= w + 1e-9);
            for e in &r.objects {
                prop_assert!(r.window.contains_point(&e.point));
            }
            // Ordered by ascending distance to q.
            let d: Vec<f64> = r.objects.iter().map(|e| e.point.dist(&q)).collect();
            prop_assert!(d.windows(2).all(|p| p[0] <= p[1]));
        }
    }

    #[test]
    fn none_only_when_nothing_qualifies((points, q, l, w, n) in scenario()) {
        let index = NwcIndex::build(points.clone());
        let query = NwcQuery::new(q, WindowSpec::new(l, w), n);
        let got = index.nwc(&query, Scheme::NWC_STAR);
        let want = oracle::nwc_brute_force(&points, &query);
        prop_assert_eq!(got.is_some(), want.is_some());
    }

    #[test]
    fn exact_anytime_is_bit_identical((points, q, l, w, n) in scenario()) {
        // ε = 0 with an unarmed budget is not "approximately exact": the
        // anytime path must reproduce the exact search bit for bit —
        // same group, same distance bits, same logical I/O profile.
        let index = NwcIndex::build(points);
        let mut scratch = QueryScratch::new();
        for measure in DistanceMeasure::ALL {
            let query = NwcQuery::new(q, WindowSpec::new(l, w), n).with_measure(measure);
            for scheme in Scheme::TABLE3 {
                let (exact, exact_stats) = index
                    .try_nwc_full_with(&query, scheme, &mut scratch)
                    .expect("arena query cannot fail");
                let a = index
                    .try_nwc_anytime_with(&query, scheme, &mut scratch, &Budget::none(), Approx::exact())
                    .expect("arena query cannot fail");
                prop_assert!(a.exhausted.is_none(), "{scheme} {measure:?}: unarmed budget expired");
                prop_assert_eq!(
                    a.stats, exact_stats,
                    "{} {:?}: anytime did different work than exact", scheme, measure
                );
                match (&exact, &a.answer) {
                    (None, None) => {
                        prop_assert_eq!(a.error_bound, 0.0);
                    }
                    (Some(e), Some(g)) => {
                        prop_assert_eq!(e.distance.to_bits(), g.distance.to_bits());
                        prop_assert_eq!(e.ids(), g.ids());
                        prop_assert_eq!(e.window, g.window);
                        // A complete exact run has nothing left to bound.
                        prop_assert_eq!(a.error_bound, 0.0);
                        prop_assert!(a.lower_bound >= e.distance - 1e-12);
                    }
                    _ => prop_assert!(
                        false,
                        "{scheme} {measure:?}: exact {:?} vs anytime {:?}",
                        exact.as_ref().map(|x| x.distance),
                        a.answer.as_ref().map(|x| x.distance)
                    ),
                }
            }
        }
    }

    #[test]
    fn budgeted_anytime_brackets_the_oracle((points, q, l, w, n) in scenario()) {
        // Under any (ε, I/O budget) cell the returned bounds must
        // bracket the true optimum d*: lower_bound ≤ d*, and any
        // returned answer scores ≥ d* with distance − error_bound ≤ d*.
        let index = NwcIndex::build(points.clone());
        let mut scratch = QueryScratch::new();
        let query = NwcQuery::new(q, WindowSpec::new(l, w), n);
        let oracle_best = oracle::nwc_brute_force(&points, &query).map(|r| r.distance);
        for scheme in Scheme::TABLE3 {
            for epsilon in [0.0, 0.25, 1.0] {
                let approx = Approx::new(epsilon).expect("valid sweep epsilon");
                for io in [0u64, 2, 8, 32, u64::MAX] {
                    let budget = if io == u64::MAX { Budget::none() } else { Budget::none().io_limit(io) };
                    let a = index
                        .try_nwc_anytime_with(&query, scheme, &mut scratch, &budget, approx)
                        .expect("budget expiry is a typed partial, not an error");
                    prop_assert!(a.error_bound >= 0.0);
                    prop_assert!(a.lower_bound >= 0.0);
                    if let Some(lim) = budget.io_allowance() {
                        prop_assert!(
                            a.exhausted.is_some() || a.stats.io_total <= lim,
                            "ε={epsilon} io={io}: ran past the allowance without reporting exhaustion"
                        );
                    }
                    match oracle_best {
                        None => prop_assert!(
                            a.answer.is_none(),
                            "ε={epsilon} io={io}: invented a group the oracle says cannot exist"
                        ),
                        Some(d_star) => {
                            let tol = 1e-9 * d_star.abs().max(1.0);
                            prop_assert!(
                                a.lower_bound <= d_star + tol,
                                "ε={epsilon} io={io}: lower bound {} exceeds optimum {}",
                                a.lower_bound, d_star
                            );
                            if let Some(r) = &a.answer {
                                prop_assert!(r.distance >= d_star - tol, "answer beat the oracle");
                                prop_assert!(
                                    r.distance - a.error_bound <= d_star + tol,
                                    "ε={epsilon} io={io}: error bound {} does not bracket {} vs {}",
                                    a.error_bound, r.distance, d_star
                                );
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn insertion_built_index_agrees((points, q, l, w, n) in scenario()) {
        // The answer must not depend on how the tree was built.
        let bulk = NwcIndex::build(points.clone());
        let incremental = NwcIndex::build_with(
            points,
            nwc::core::IndexConfig { bulk_load: false, ..Default::default() },
        );
        let query = NwcQuery::new(q, WindowSpec::new(l, w), n);
        let a = bulk.nwc(&query, Scheme::NWC_STAR).map(|r| r.distance);
        let b = incremental.nwc(&query, Scheme::NWC_STAR).map(|r| r.distance);
        match (a, b) {
            (None, None) => {}
            (Some(x), Some(y)) => prop_assert!((x - y).abs() < 1e-9),
            _ => prop_assert!(false, "bulk {a:?} vs incremental {b:?}"),
        }
    }
}
