//! The batched geometry kernels' contract: for every input the SIMD /
//! autovectorized paths must return *bit-identical* results to the
//! scalar `Rect::mindist` and (closed) `Rect::intersects` they replace.
//! Anything less would silently change heap orderings and window
//! pruning, which PR 4/5's equivalence suites treat as corruption.
//!
//! Covered here:
//! - every slice length 0..=130 (remainder lanes: fanout not divisible
//!   by the lane width, plus the disk fanout ≤ 112 region);
//! - window shapes used by the Table-3 schemes (squares and elongated
//!   rectangles via `search_region` over all four quadrants);
//! - touching boundaries — the closed-window semantics of Lemma 1
//!   demand `<=`, so a window edge grazing an MBR edge must batch to
//!   `true` exactly like the scalar predicate;
//! - NaN-free extreme coordinates (huge magnitudes, subnormals, signed
//!   zeros, asymmetric ranges) where a fused-multiply-add or an
//!   unordered compare would diverge from the scalar op sequence.

use nwc::geom::window::{search_region, WindowSpec};
use nwc::geom::{intersects_window_batch, kernel_backend, mindist_batch, MbrSoa, Point, Quadrant, Rect};

/// Deterministic, NaN-free MBR soup: jittered lattice boxes, degenerate
/// point-boxes, thin slivers — the population a branch array really holds.
fn mbr_population(n: usize, seed: u64) -> Vec<Rect> {
    (0..n)
        .map(|i| {
            let s = (i as u64).wrapping_mul(seed | 1).wrapping_add(0x9E37_79B9);
            let x = ((s % 1009) as f64) - 500.0;
            let y = (((s >> 10) % 997) as f64) - 500.0;
            match s % 5 {
                0 => Rect::from_point(Point::new(x, y)), // degenerate
                1 => Rect::new(Point::new(x, y), Point::new(x + 0.001, y + 400.0)), // sliver
                _ => Rect::new(
                    Point::new(x, y),
                    Point::new(x + ((s >> 20) % 64) as f64, y + ((s >> 26) % 64) as f64),
                ),
            }
        })
        .collect()
}

fn soa_of(rects: &[Rect]) -> MbrSoa {
    rects.iter().copied().collect()
}

/// Asserts both batch kernels agree bit-for-bit with the scalar ops on
/// this population/query pair, through both the free functions and the
/// `MbrSoa` convenience wrappers.
fn assert_batches_match(rects: &[Rect], q: &Point, w: &Rect, tag: &str) {
    let soa = soa_of(rects);
    let mut dists = vec![0.0f64; rects.len()];
    let mut mask = vec![false; rects.len()];
    soa.mindist_into(q, &mut dists);
    soa.intersects_into(w, &mut mask);
    for (i, r) in rects.iter().enumerate() {
        assert_eq!(
            dists[i].to_bits(),
            r.mindist(q).to_bits(),
            "{tag}: mindist diverged at {i} for {r:?} q={q:?} (backend {})",
            kernel_backend()
        );
        assert_eq!(
            mask[i],
            r.intersects(w),
            "{tag}: intersects diverged at {i} for {r:?} w={w:?} (backend {})",
            kernel_backend()
        );
    }
    // The free functions see the same columns.
    let mut dists2 = vec![0.0f64; rects.len()];
    let mut mask2 = vec![false; rects.len()];
    mindist_batch(soa.min_xs(), soa.min_ys(), soa.max_xs(), soa.max_ys(), q, &mut dists2);
    intersects_window_batch(soa.min_xs(), soa.min_ys(), soa.max_xs(), soa.max_ys(), w, &mut mask2);
    assert_eq!(
        dists.iter().map(|d| d.to_bits()).collect::<Vec<_>>(),
        dists2.iter().map(|d| d.to_bits()).collect::<Vec<_>>(),
        "{tag}: free fn and SoA wrapper disagree"
    );
    assert_eq!(mask, mask2, "{tag}: free fn and SoA wrapper disagree on masks");
}

#[test]
fn every_length_matches_scalar_including_remainder_lanes() {
    // 0..=130 crosses every remainder class of the 4-wide lanes several
    // times and covers the disk fanout (≤ 112) with slack.
    let q = Point::new(13.5, -7.25);
    let w = Rect::new(Point::new(-50.0, -50.0), Point::new(120.0, 90.0));
    for n in 0..=130usize {
        let rects = mbr_population(n, 0xA5A5 + n as u64);
        assert_batches_match(&rects, &q, &w, &format!("len {n}"));
    }
}

#[test]
fn table3_window_shapes_match_scalar() {
    // The Table-3 schemes prune with squares, elongated windows, and the
    // quadrant search regions derived from them. Exercise each shape
    // over each quadrant against a mixed population.
    let rects = mbr_population(113, 0xBEEF); // odd length: remainder lane
    let anchors = [Point::new(0.0, 0.0), Point::new(250.25, -311.5), Point::new(-499.0, 488.0)];
    let specs = [
        WindowSpec::square(60.0),
        WindowSpec::new(120.0, 40.0),
        WindowSpec::new(7.5, 400.0),
    ];
    for (ai, q) in anchors.iter().enumerate() {
        for (si, spec) in specs.iter().enumerate() {
            for quad in [Quadrant::I, Quadrant::II, Quadrant::III, Quadrant::IV] {
                let w = search_region(q, quad, spec);
                assert_batches_match(&rects, q, &w, &format!("anchor{ai}/spec{si}/{quad:?}"));
            }
        }
    }
}

#[test]
fn touching_boundaries_batch_as_inside() {
    // Lemma 1 windows are closed: an MBR whose edge exactly meets the
    // window edge intersects it, and a query point on an MBR face has
    // MINDIST exactly 0. The batch kernels must preserve both.
    let w = Rect::new(Point::new(0.0, 0.0), Point::new(10.0, 10.0));
    let rects = vec![
        // Each face and corner of the window, grazing from outside.
        Rect::new(Point::new(-5.0, 2.0), Point::new(0.0, 4.0)), // left edge
        Rect::new(Point::new(10.0, 2.0), Point::new(15.0, 4.0)), // right edge
        Rect::new(Point::new(2.0, -5.0), Point::new(4.0, 0.0)), // bottom edge
        Rect::new(Point::new(2.0, 10.0), Point::new(4.0, 15.0)), // top edge
        Rect::from_point(Point::new(10.0, 10.0)),               // corner point
        Rect::from_point(Point::new(0.0, 0.0)),                 // corner point
        // Just past the boundary by one ULP: must be *outside*.
        Rect::new(
            Point::new(f64::from_bits(10.0f64.to_bits() + 1), 2.0),
            Point::new(15.0, 4.0),
        ),
        // Strictly inside and strictly outside for contrast.
        Rect::new(Point::new(3.0, 3.0), Point::new(7.0, 7.0)),
        Rect::new(Point::new(20.0, 20.0), Point::new(30.0, 30.0)),
    ];
    let soa = soa_of(&rects);
    let mut mask = vec![false; rects.len()];
    soa.intersects_into(&w, &mut mask);
    let want: Vec<bool> = rects.iter().map(|r| r.intersects(&w)).collect();
    assert_eq!(mask, want, "closed-boundary semantics broke (backend {})", kernel_backend());
    // The six grazing boxes are all inside; the ULP-shifted one is not.
    assert_eq!(&mask[..6], &[true; 6]);
    assert!(!mask[6], "one-ULP separation must read as disjoint");

    // MINDIST from points sitting exactly on faces is exactly +0.0.
    let on_face = Point::new(0.0, 5.0);
    let mut dists = vec![0.0f64; rects.len()];
    soa.mindist_into(&on_face, &mut dists);
    for (i, r) in rects.iter().enumerate() {
        assert_eq!(dists[i].to_bits(), r.mindist(&on_face).to_bits(), "face point at {i}");
    }
}

#[test]
fn extreme_coordinates_stay_bit_identical() {
    // NaN-free extremes: magnitudes near overflow, subnormals, signed
    // zeros, and mixed-scale boxes. Squaring 1e300 overflows to +inf in
    // both scalar and vector lanes — identically — and -0.0 vs 0.0 must
    // wash out through the max(0.0) clamp exactly as the scalar does.
    let rects = vec![
        Rect::new(Point::new(-1e300, -1e300), Point::new(1e300, 1e300)),
        Rect::new(Point::new(1e300, 1e300), Point::new(1.5e300, 1.5e300)),
        Rect::new(Point::new(-1.5e300, -1e300), Point::new(-1e300, -0.5e300)),
        Rect::new(Point::new(-0.0, -0.0), Point::new(0.0, 0.0)),
        Rect::new(Point::new(5e-324, 5e-324), Point::new(1e-300, 1e-300)),
        Rect::new(Point::new(-1e-308, -2.2250738585072014e-308), Point::new(0.0, 0.0)),
        Rect::new(Point::new(-1e16, 1e-16), Point::new(1e16, 2e-16)),
        Rect::from_point(Point::new(f64::MAX, f64::MIN)),
        Rect::new(Point::new(f64::MIN, -1.0), Point::new(f64::MAX, 1.0)),
    ];
    let queries = [
        Point::new(0.0, 0.0),
        Point::new(-0.0, -0.0),
        Point::new(1e300, -1e300),
        Point::new(5e-324, -5e-324),
        Point::new(f64::MAX, f64::MIN),
        Point::new(123.456, -654.321),
    ];
    let windows = [
        Rect::new(Point::new(-1e300, -1e300), Point::new(1e300, 1e300)),
        Rect::new(Point::new(-0.0, -0.0), Point::new(0.0, 0.0)),
        Rect::new(Point::new(1e299, 1e299), Point::new(2e300, 2e300)),
    ];
    for (qi, q) in queries.iter().enumerate() {
        for (wi, w) in windows.iter().enumerate() {
            assert_batches_match(&rects, q, w, &format!("extreme q{qi}/w{wi}"));
        }
    }
    // Pad to force full lanes *and* a remainder over the extreme values.
    let mut padded = rects.clone();
    while padded.len() < 21 {
        let r = padded[padded.len() % rects.len()];
        padded.push(r);
    }
    assert_batches_match(&padded, &queries[2], &windows[0], "extreme padded");
}

#[test]
fn range_kernels_agree_with_full_pass() {
    // The chunked traversal paths call the `_range_into` forms; any
    // offset drift would misattribute distances to the wrong branch.
    let rects = mbr_population(100, 0x1CEB00DA);
    let soa = soa_of(&rects);
    let q = Point::new(40.0, -12.5);
    let w = Rect::new(Point::new(-100.0, -100.0), Point::new(200.0, 150.0));
    let mut full_d = vec![0.0f64; rects.len()];
    let mut full_m = vec![false; rects.len()];
    soa.mindist_into(&q, &mut full_d);
    soa.intersects_into(&w, &mut full_m);
    for chunk in [1usize, 3, 4, 7, 64, 100] {
        let mut base = 0;
        while base < rects.len() {
            let len = chunk.min(rects.len() - base);
            let mut d = vec![0.0f64; len];
            let mut m = vec![false; len];
            soa.mindist_range_into(base, &q, &mut d);
            soa.intersects_range_into(base, &w, &mut m);
            for i in 0..len {
                assert_eq!(d[i].to_bits(), full_d[base + i].to_bits(), "chunk {chunk} at {}", base + i);
                assert_eq!(m[i], full_m[base + i], "chunk {chunk} at {}", base + i);
            }
            base += len;
        }
    }
}

#[test]
fn backend_override_is_honored() {
    // Whatever backend the dispatcher picked, it must report a known
    // name; the NWC_KERNELS=portable escape hatch is exercised in the
    // geom crate's own unit tests (env vars are process-global, so an
    // integration test can't safely toggle it here).
    assert!(matches!(kernel_backend(), "avx2" | "portable"));
}
