//! The sharded scatter-gather planner's contract, end to end:
//!
//! 1. **Equivalence** — a K-shard index answers every Table-3 scheme
//!    (and kNWC) identically to the single-tree oracle on the same
//!    dataset, for K ∈ {1, 2, 4}, on arena and disk backends, at 1 and
//!    4 scatter threads. Ties resolve canonically, so equality covers
//!    ids, distance *and* window, independent of shard interleaving.
//! 2. **K = 1 fast path** — answers *and* `SearchStats` bit-identical
//!    to the unsharded index.
//! 3. **Degenerate cuts** — more shards than objects, and all points on
//!    one spot (every tile boundary coincides).
//! 4. **Partial-shard failures** — a shard hitting a permanent page
//!    fault mid-scatter surfaces a typed per-shard error, the healthy
//!    shards' counters survive, no page pin leaks anywhere, and the
//!    index keeps answering (the `Browser::try_expand` release
//!    guarantees, exercised through the scatter path).

use nwc::core::{ShardScatterError, ShardedNwcIndex};
use nwc::prelude::*;
use nwc::rtree::BrowseItem;
use nwc::store::{FaultPlan, FaultStore, FileStore, RetryPolicy};
use nwc_core::QueryError;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn temp_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU32 = AtomicU32::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("nwc-shard-{tag}-{}-{n}", std::process::id()))
}

fn seeded_points(n: usize, seed: u64) -> Vec<Point> {
    // Lattice + deterministic jitter: duplicates and boundary ties
    // included, no RNG dependency.
    (0..n)
        .map(|i| {
            let s = (i as u64).wrapping_mul(seed | 1);
            Point::new(
                ((s % 97) * 10) as f64 + ((s >> 8) % 4) as f64 * 0.25,
                (((s >> 16) % 89) * 10) as f64 + ((s >> 24) % 4) as f64 * 0.25,
            )
        })
        .collect()
}

/// Asserts two optional NWC answers are identical, tie-break included.
fn assert_same(
    want: &Option<NwcResult>,
    got: &Option<NwcResult>,
    ctx: &str,
) {
    match (want, got) {
        (None, None) => {}
        (Some(a), Some(b)) => {
            assert_eq!(a.ids(), b.ids(), "{ctx}: object sets differ");
            assert_eq!(a.distance, b.distance, "{ctx}: distances differ");
            assert_eq!(a.window, b.window, "{ctx}: windows differ");
        }
        _ => panic!("{ctx}: one side found a result, one did not"),
    }
}

#[test]
fn sharded_matches_single_tree_for_all_schemes_arena() {
    for (ds, n_pts, seed) in [("a", 400usize, 11u64), ("b", 1200, 29)] {
        let points = seeded_points(n_pts, seed);
        let single = NwcIndex::build(points.clone());
        let queries = Dataset::query_points(5, seed);
        for shards in [1usize, 2, 4] {
            for threads in [1usize, 4] {
                let sharded =
                    ShardedNwcIndex::build(points.clone(), shards).with_threads(threads);
                for scheme in Scheme::TABLE3 {
                    for (qi, &q) in queries.iter().enumerate() {
                        for spec in [WindowSpec::square(60.0), WindowSpec::new(120.0, 40.0)] {
                            let query = NwcQuery::new(q, spec, 4);
                            let want = single.nwc(&query, scheme);
                            let got = sharded.try_nwc(&query, scheme).expect("healthy scatter");
                            assert_same(
                                &want,
                                &got,
                                &format!("{ds}/K{shards}/t{threads}/{scheme}/q{qi}"),
                            );
                        }
                    }
                }
            }
        }
    }
}

#[test]
fn k1_is_bit_identical_including_stats() {
    let points = seeded_points(900, 43);
    let single = NwcIndex::build(points.clone());
    let sharded = ShardedNwcIndex::build(points, 1);
    assert_eq!(sharded.shard_count(), 1);
    let queries = Dataset::query_points(6, 43);
    for scheme in Scheme::TABLE3 {
        for &q in &queries {
            let query = NwcQuery::new(q, WindowSpec::square(70.0), 4);
            let (want, want_stats) = single.nwc_full(&query, scheme);
            let (got, got_stats) = sharded.try_nwc_full(&query, scheme).expect("K=1");
            assert_same(&want, &got, &format!("K1/{scheme}"));
            assert_eq!(want_stats, got_stats, "K1/{scheme}: stats must be bit-identical");
        }
    }
    // kNWC too: the fast path delegates wholesale.
    for &q in &queries {
        let query = KnwcQuery::new(q, WindowSpec::square(80.0), 4, 3, 1);
        let want = single.knwc(&query, Scheme::NWC_STAR);
        let got = sharded.try_knwc(&query, Scheme::NWC_STAR).expect("K=1 knwc");
        assert_eq!(want.stats, got.stats, "K1 kNWC stats must be bit-identical");
        assert_eq!(want.groups.len(), got.groups.len());
        for (a, b) in want.groups.iter().zip(&got.groups) {
            assert_eq!(a.id_set(), b.id_set());
            assert_eq!(a.distance, b.distance);
        }
    }
}

#[test]
fn sharded_matches_single_tree_on_disk_backends() {
    let points = seeded_points(1000, 71);
    let single = NwcIndex::build(points.clone());
    let queries = Dataset::query_points(4, 71);
    for shards in [1usize, 2, 4] {
        let built = ShardedNwcIndex::build(points.clone(), shards);
        let dir = temp_dir(&format!("disk-k{shards}"));
        built.save_to_dir(&dir).expect("save sharded dir");
        // One *total* pool budget split across the shard pools.
        let disk = ShardedNwcIndex::open_dir(
            &dir,
            DiskIndexConfig {
                pool_capacity: Some(96),
                ..DiskIndexConfig::default()
            },
        )
        .expect("open sharded dir")
        .with_threads(2);
        assert_eq!(disk.shard_count(), built.shard_count());
        assert_eq!(disk.len(), built.len());
        for scheme in Scheme::TABLE3 {
            for (qi, &q) in queries.iter().enumerate() {
                let query = NwcQuery::new(q, WindowSpec::square(60.0), 4);
                let want = single.nwc(&query, scheme);
                let got = disk.try_nwc(&query, scheme).expect("disk scatter");
                assert_same(&want, &got, &format!("disk/K{shards}/{scheme}/q{qi}"));
            }
        }
        // No query path may leak a pin on any shard pool.
        for (si, shard) in disk.shards().iter().enumerate() {
            if let Some(storage) = shard.tree().storage() {
                assert_eq!(
                    storage.pool_stats().pinned,
                    0,
                    "disk/K{shards}: shard {si} leaked a pin"
                );
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn sharded_knwc_exact_matches_single_tree() {
    // The unpruned variant is rigorously order-independent, so equality
    // must hold for any K at any thread count.
    let points = seeded_points(700, 97);
    let single = NwcIndex::build(points.clone());
    let queries = Dataset::query_points(3, 97);
    for shards in [1usize, 2, 4] {
        for threads in [1usize, 4] {
            let sharded = ShardedNwcIndex::build(points.clone(), shards).with_threads(threads);
            for &q in &queries {
                let query = KnwcQuery::new(q, WindowSpec::square(80.0), 4, 3, 1);
                let want = single.knwc_exact(&query, Scheme::NWC_STAR);
                let got = sharded
                    .try_knwc_exact(&query, Scheme::NWC_STAR)
                    .expect("exact scatter");
                assert_eq!(
                    want.groups.len(),
                    got.groups.len(),
                    "K{shards}/t{threads}: group counts differ"
                );
                for (a, b) in want.groups.iter().zip(&got.groups) {
                    assert_eq!(a.id_set(), b.id_set(), "K{shards}/t{threads}");
                    assert_eq!(a.distance, b.distance, "K{shards}/t{threads}");
                }
            }
        }
    }
}

#[test]
fn sharded_pruned_knwc_matches_on_separated_clusters() {
    // Pruned kNWC inherits the §3.4 cascade caveat, which is only
    // observable on adversarial conflict structures; on well-separated
    // clusters the pruned scatter must agree with the single tree.
    let mut points = Vec::new();
    for (cx, cy) in [
        (50.0, 50.0),
        (450.0, 60.0),
        (70.0, 470.0),
        (480.0, 480.0),
        (250.0, 250.0),
    ] {
        for i in 0..8 {
            points.push(Point::new(cx + (i % 4) as f64 * 1.5, cy + (i / 4) as f64 * 1.5));
        }
    }
    let single = NwcIndex::build(points.clone());
    let query = KnwcQuery::new(Point::new(0.0, 0.0), WindowSpec::square(8.0), 4, 4, 0);
    let want = single.knwc(&query, Scheme::NWC_STAR);
    assert_eq!(want.groups.len(), 4, "workload must actually yield 4 groups");
    for shards in [2usize, 4] {
        for threads in [1usize, 4] {
            let sharded = ShardedNwcIndex::build(points.clone(), shards).with_threads(threads);
            let got = sharded.try_knwc(&query, Scheme::NWC_STAR).expect("scatter");
            assert_eq!(want.groups.len(), got.groups.len(), "K{shards}/t{threads}");
            for (a, b) in want.groups.iter().zip(&got.groups) {
                assert_eq!(a.id_set(), b.id_set(), "K{shards}/t{threads}");
                assert_eq!(a.distance, b.distance, "K{shards}/t{threads}");
            }
        }
    }
}

#[test]
fn more_shards_than_objects_degrades_to_fewer_tiles() {
    let points = seeded_points(3, 7);
    let single = NwcIndex::build(points.clone());
    let sharded = ShardedNwcIndex::build(points, 64);
    assert!(sharded.shard_count() <= 3, "tiles are never empty");
    assert_eq!(sharded.len(), 3);
    let query = NwcQuery::new(Point::new(0.0, 0.0), WindowSpec::square(2000.0), 2);
    for scheme in Scheme::TABLE3 {
        let want = single.nwc(&query, scheme);
        let got = sharded.try_nwc(&query, scheme).expect("tiny scatter");
        assert_same(&want, &got, &format!("tiny/{scheme}"));
    }
}

#[test]
fn all_points_on_one_spot_survives_degenerate_cuts() {
    // Every STR cut boundary coincides: the partitioner must still
    // produce non-empty tiles and the scatter must still agree.
    let points: Vec<Point> = (0..120).map(|_| Point::new(55.0, 55.0)).collect();
    let single = NwcIndex::build(points.clone());
    let sharded = ShardedNwcIndex::build(points, 4).with_threads(2);
    assert_eq!(sharded.len(), 120);
    let query = NwcQuery::new(Point::new(50.0, 50.0), WindowSpec::square(5.0), 10);
    for scheme in Scheme::TABLE3 {
        let want = single.nwc(&query, scheme);
        let got = sharded.try_nwc(&query, scheme).expect("degenerate scatter");
        match (&want, &got) {
            (Some(a), Some(b)) => {
                // 120 identical points: any 10 ids are optimal, but the
                // canonical tie-break must make both sides agree.
                assert_eq!(a.distance, b.distance);
                assert_eq!(a.ids().len(), 10);
                assert_eq!(b.ids().len(), 10);
            }
            other => panic!("degenerate/{scheme}: {other:?}"),
        }
    }
}

// ---------------------------------------------------------------------
// Anytime scatter-gather.
// ---------------------------------------------------------------------

#[test]
fn sharded_anytime_exact_mode_matches_the_scatter_path() {
    // ε = 0 with an unarmed budget must collapse to the exact scatter:
    // same merged answer, no degradation, nothing left to bound.
    let points = seeded_points(900, 53);
    let queries = Dataset::query_points(4, 53);
    for shards in [1usize, 2, 4] {
        for threads in [1usize, 4] {
            let sharded = ShardedNwcIndex::build(points.clone(), shards).with_threads(threads);
            for scheme in Scheme::TABLE3 {
                for &q in &queries {
                    let query = NwcQuery::new(q, WindowSpec::square(70.0), 4);
                    let want = sharded.try_nwc(&query, scheme).expect("exact scatter");
                    let got = sharded
                        .try_nwc_anytime(&query, scheme, &Budget::none(), Approx::exact())
                        .expect("anytime scatter");
                    assert!(got.degraded.is_empty(), "K{shards}: healthy shards degraded");
                    assert!(
                        got.anytime.exhausted.is_none(),
                        "K{shards}: unarmed budget expired"
                    );
                    assert_same(&want, &got.anytime.answer, &format!("anytime/K{shards}/{scheme}"));
                    assert_eq!(
                        got.anytime.error_bound, 0.0,
                        "K{shards}/{scheme}: a complete exact scatter has nothing left to bound"
                    );
                }
            }
        }
    }
}

#[test]
fn sharded_anytime_knwc_exact_mode_matches_the_scatter_path() {
    let points = seeded_points(700, 59);
    let queries = Dataset::query_points(3, 59);
    for shards in [1usize, 2, 4] {
        let sharded = ShardedNwcIndex::build(points.clone(), shards).with_threads(2);
        for &q in &queries {
            let query = KnwcQuery::new(q, WindowSpec::square(80.0), 4, 3, 1);
            let want = sharded.try_knwc(&query, Scheme::NWC_STAR).expect("scatter");
            let got = sharded
                .try_knwc_anytime(&query, Scheme::NWC_STAR, &Budget::none(), Approx::exact())
                .expect("anytime scatter");
            assert!(got.degraded.is_empty());
            assert!(got.anytime.exhausted.is_none());
            assert_eq!(want.groups.len(), got.anytime.result.groups.len(), "K{shards}");
            for (a, b) in want.groups.iter().zip(&got.anytime.result.groups) {
                assert_eq!(a.id_set(), b.id_set(), "K{shards}");
                assert_eq!(a.distance, b.distance, "K{shards}");
            }
        }
    }
}

#[test]
fn sharded_anytime_budget_grid_brackets_the_exact_answer() {
    // Across an (ε, io-budget) grid every merged partial must bracket
    // the exact scatter's answer: lower_bound ≤ d* ≤ any returned
    // answer's score, with distance − error_bound ≤ d*.
    let points = seeded_points(1100, 61);
    let queries = Dataset::query_points(4, 61);
    for shards in [2usize, 4] {
        let sharded = ShardedNwcIndex::build(points.clone(), shards).with_threads(2);
        for &q in &queries {
            let query = NwcQuery::new(q, WindowSpec::square(70.0), 4);
            let exact = sharded
                .try_nwc(&query, Scheme::NWC_STAR)
                .expect("exact scatter")
                .map(|r| r.distance);
            for epsilon in [0.0, 0.5] {
                let approx = Approx::new(epsilon).expect("valid epsilon");
                for io in [0u64, 4, 16, 64] {
                    let budget = Budget::none().io_limit(io);
                    let a = sharded
                        .try_nwc_anytime(&query, Scheme::NWC_STAR, &budget, approx)
                        .expect("budget expiry degrades, never errors")
                        .anytime;
                    assert!(a.error_bound >= 0.0);
                    assert!(a.lower_bound >= 0.0);
                    match exact {
                        None => assert!(
                            a.answer.is_none(),
                            "K{shards} ε={epsilon} io={io}: invented a group"
                        ),
                        Some(d_star) => {
                            let tol = 1e-9 * d_star.abs().max(1.0);
                            assert!(
                                a.lower_bound <= d_star + tol,
                                "K{shards} ε={epsilon} io={io}: lower bound {} above optimum {}",
                                a.lower_bound,
                                d_star
                            );
                            if let Some(r) = &a.answer {
                                assert!(r.distance >= d_star - tol, "answer beat the scatter");
                                assert!(
                                    r.distance - a.error_bound <= d_star + tol,
                                    "K{shards} ε={epsilon} io={io}: bound {} fails {} vs {}",
                                    a.error_bound,
                                    r.distance,
                                    d_star
                                );
                            }
                        }
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Partial-shard failures through the scatter path.
// ---------------------------------------------------------------------

/// Rebuilds a built sharded index with every shard disk-backed, shard 0
/// routed through a scripting [`FaultStore`].
fn fault_backed_sharded(
    built: &ShardedNwcIndex,
    tag: &str,
) -> (ShardedNwcIndex, Arc<FaultStore<FileStore>>) {
    let dir = temp_dir(tag);
    std::fs::create_dir_all(&dir).expect("mkdir");
    let no_retry = DiskIndexConfig {
        retry: RetryPolicy {
            max_attempts: 1,
            base_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
        },
        ..DiskIndexConfig::default()
    };
    let mut shards = Vec::new();
    let mut fault = None;
    for (i, shard) in built.shards().iter().enumerate() {
        let path = dir.join(format!("shard-{i}.pages"));
        shard.save_tree(&path).expect("save shard");
        if i == 0 {
            let store = FileStore::open(&path).expect("reopen shard 0");
            let f = Arc::new(FaultStore::new(store, FaultPlan::default()));
            shards.push(
                NwcIndex::open_disk_from_store(Box::new(Arc::clone(&f)), no_retry)
                    .expect("open shard 0 through fault store"),
            );
            fault = Some(f);
        } else {
            shards.push(NwcIndex::open_disk(&path, no_retry).expect("open shard"));
        }
    }
    std::fs::remove_dir_all(&dir).ok();
    let sharded = ShardedNwcIndex::from_shards(shards, None).expect("assemble");
    (sharded, fault.expect("shard 0 is fault-backed"))
}

/// A leaf page id inside shard 0, found by browsing (then the counters
/// no longer matter — the test only asserts typed behavior).
fn leaf_page_in_shard0(sharded: &ShardedNwcIndex, q: Point) -> u32 {
    let shard = &sharded.shards()[0];
    let mut browser = shard.tree().browse(q);
    let leaf = loop {
        match browser.next() {
            Some(BrowseItem::Node { id, .. }) => browser.expand(id),
            Some(BrowseItem::Object { leaf, .. }) => break leaf,
            None => panic!("shard 0 browsed dry without yielding an object"),
        }
    };
    leaf.raw()
}

#[test]
fn dead_page_in_one_shard_is_a_typed_partial_failure_with_no_pin_leaks() {
    let points = seeded_points(1000, 29);
    let built = ShardedNwcIndex::build(points, 4);
    let (sharded, fault) = fault_backed_sharded(&built, "fault");
    let sharded = sharded.with_threads(2);
    let q = Point::new(300.0, 300.0);
    let query = NwcQuery::new(q, WindowSpec::square(60.0), 4);

    // Healthy first: the scatter works end to end through fault stores.
    let healthy = sharded
        .try_nwc_scatter(&query, Scheme::NWC)
        .expect("healthy scatter");
    assert_eq!(healthy.per_shard.len(), sharded.shard_count());

    // Kill a leaf in shard 0 permanently, and clear shard 0's pool so
    // the next touch goes to the (now failing) store instead of being
    // served from a warm frame.
    let dead = leaf_page_in_shard0(&sharded, q);
    fault.fail_page_permanently(dead);
    let storage0 = sharded.shards()[0].tree().storage().expect("disk-backed");
    storage0.reset();
    // A wide query that must touch the dead leaf (it covers the world).
    let wide = NwcQuery::new(q, WindowSpec::square(2000.0), 900);
    match sharded.try_nwc_scatter(&wide, Scheme::NWC) {
        Err(ShardScatterError { failures, completed }) => {
            assert!(
                failures.iter().any(|(s, e)| *s == 0 && matches!(e, QueryError::Io(_))),
                "shard 0 must fail with a typed I/O error, got {failures:?}"
            );
            // Healthy shards completed and kept their counters.
            assert_eq!(failures.len() + completed.len(), sharded.shard_count());
            for (s, stats) in &completed {
                assert_ne!(*s, 0);
                assert!(stats.io_total > 0, "healthy shard {s} reported no work");
            }
        }
        Ok(_) => panic!("a permanently dead leaf cannot yield an answer"),
    }
    // The convenience wrapper collapses to the first typed error.
    match sharded.try_nwc(&wide, Scheme::NWC) {
        Err(QueryError::Io(_)) => {}
        other => panic!("expected Io, got {other:?}"),
    }
    // No shard pool may hold a pin after the failed scatter: try_expand
    // and try_window_query_into release on error, across all shards.
    for (si, shard) in sharded.shards().iter().enumerate() {
        let storage = shard.tree().storage().expect("disk-backed");
        assert_eq!(storage.pool_stats().pinned, 0, "shard {si} leaked a pin");
    }
    // Lifting the fault and resetting the shard's store restores full
    // service — nothing in the scatter state was poisoned by the
    // partial failure.
    fault.clear_faults();
    storage0.reset();
    sharded.shards()[0].tree().stats().reset();
    let recovered = sharded
        .try_nwc_scatter(&query, Scheme::NWC)
        .expect("healthy again after clearing faults");
    assert_eq!(
        healthy.result.as_ref().map(|r| r.ids()),
        recovered.result.as_ref().map(|r| r.ids()),
        "recovered scatter must answer like the original"
    );
}
