//! Ablation benchmarks for the design choices called out in DESIGN.md:
//! distance measures, grid resolution, and per-optimization deltas on
//! top of NWC+.

use criterion::{criterion_group, criterion_main, Criterion};
use nwc_bench::runner::{build_index, measure_nwc};
use nwc_bench::ExperimentContext;
use nwc_core::{DistanceMeasure, NwcQuery, Scheme, WindowSpec};
use std::time::Duration;

fn quick<'a>(c: &'a mut Criterion, name: &str) -> criterion::BenchmarkGroup<'a, criterion::measurement::WallTime> {
    c.benchmark_group(name)
}

fn fast_config() -> Criterion {
    Criterion::default()
        .without_plots()
        .nresamples(1_000)
        .sample_size(10)
        .warm_up_time(Duration::from_millis(150))
        .measurement_time(Duration::from_millis(400))
}


fn ablation_distance_measure(c: &mut Criterion) {
    let ctx = ExperimentContext::tiny();
    let ds = ctx.dataset("CA");
    let index = build_index(&ds);
    let queries = ctx.query_points();
    let mut g = quick(c, "ablation_distance_measure");
    for measure in DistanceMeasure::ALL {
        g.bench_function(format!("{measure:?}"), |b| {
            b.iter(|| {
                for &q in &queries {
                    let query = NwcQuery::new(q, WindowSpec::square(64.0), 8)
                        .with_measure(measure);
                    let _ = index.nwc_full(&query, Scheme::NWC_STAR);
                }
            })
        });
    }
    g.finish();
}

fn ablation_grid_resolution(c: &mut Criterion) {
    let ctx = ExperimentContext::tiny();
    let ds = ctx.dataset("Gaussian");
    let queries = ctx.query_points();
    let mut g = quick(c, "ablation_grid_resolution");
    for cell in [25.0, 400.0] {
        let mut index = build_index(&ds);
        index.rebuild_grid(cell);
        g.bench_function(format!("cell{}", cell as u64), |b| {
            b.iter(|| measure_nwc(&index, &queries, WindowSpec::square(8.0), 8, Scheme::DEP))
        });
    }
    g.finish();
}

fn ablation_scheme_increments(c: &mut Criterion) {
    // Each technique added on top of NWC+, isolating its marginal value.
    let ctx = ExperimentContext::tiny();
    let ds = ctx.dataset("NY");
    let index = build_index(&ds);
    let queries = ctx.query_points();
    let mut g = quick(c, "ablation_scheme_increments");
    let variants = [
        ("nwc_plus", Scheme::NWC_PLUS),
        (
            "nwc_plus_dep",
            Scheme {
                dep: true,
                ..Scheme::NWC_PLUS
            },
        ),
        (
            "nwc_plus_iwp",
            Scheme {
                iwp: true,
                ..Scheme::NWC_PLUS
            },
        ),
        ("nwc_star", Scheme::NWC_STAR),
    ];
    for (label, scheme) in variants {
        g.bench_function(label, |b| {
            b.iter(|| measure_nwc(&index, &queries, WindowSpec::square(8.0), 8, scheme))
        });
    }
    g.finish();
}

criterion_group!{
    name = ablations;
    config = fast_config();
    targets =
    ablation_distance_measure,
    ablation_grid_resolution,
    ablation_scheme_increments

}
criterion_main!(ablations);
