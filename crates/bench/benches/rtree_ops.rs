//! Micro-benchmarks of the R\*-tree substrate: construction strategies,
//! window queries (plain vs IWP-incremental), and distance browsing.
//! These back the ablation entries in DESIGN.md.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nwc_datagen::Dataset;
use nwc_geom::{Point, Rect};
use nwc_rtree::{IwpIndex, RStarTree};
use std::time::Duration;

fn data(n: usize) -> Vec<Point> {
    Dataset::clustered(n, 40, 10.0, 80.0, 0.1, 7).points
}

fn construction(c: &mut Criterion) {
    let mut g = c.benchmark_group("construction");
    for n in [2_000usize, 8_000] {
        let pts = data(n);
        g.bench_with_input(BenchmarkId::new("str_bulk_load", n), &pts, |b, pts| {
            b.iter(|| RStarTree::bulk_load(pts))
        });
        g.bench_with_input(BenchmarkId::new("rstar_insert", n), &pts, |b, pts| {
            b.iter(|| RStarTree::insert_all(pts))
        });
    }
    g.finish();
}

fn window_queries(c: &mut Criterion) {
    let pts = data(10_000);
    let tree = RStarTree::bulk_load(&pts);
    let iwp = IwpIndex::build(&tree);
    // Representative local window around each probe object, queried
    // through the probe's own leaf (the NWC access pattern).
    let probes: Vec<(Point, nwc_rtree::NodeId)> = (0..64)
        .map(|i| {
            let p = pts[i * 311 % pts.len()];
            let mut browser = tree.browse(p);
            loop {
                match browser.next().unwrap() {
                    nwc_rtree::BrowseItem::Node { id, .. } => browser.expand(id),
                    nwc_rtree::BrowseItem::Object { dist: 0.0, leaf, .. } => {
                        break (p, leaf)
                    }
                    _ => {}
                }
            }
        })
        .collect();
    let window_of = |p: &Point| {
        Rect::new(
            Point::new(p.x - 8.0, p.y - 8.0),
            Point::new(p.x + 8.0, p.y + 8.0),
        )
    };

    let mut g = c.benchmark_group("window_query");
    g.bench_function("plain_root_descent", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for (p, _) in &probes {
                total += tree.window_query(&window_of(p)).len();
            }
            total
        })
    });
    g.bench_function("iwp_incremental", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for (p, leaf) in &probes {
                total += iwp.window_query(&tree, *leaf, &window_of(p)).len();
            }
            total
        })
    });
    g.finish();
}

fn distance_browsing(c: &mut Criterion) {
    let pts = data(10_000);
    let tree = RStarTree::bulk_load(&pts);
    let mut g = c.benchmark_group("distance_browsing");
    for k in [10usize, 1_000] {
        g.bench_with_input(BenchmarkId::new("knn", k), &k, |b, &k| {
            b.iter(|| tree.knn(Point::new(5_000.0, 5_000.0), k))
        });
    }
    g.bench_function("full_browse", |b| {
        b.iter(|| tree.browse(Point::new(5_000.0, 5_000.0)).objects().count())
    });
    g.finish();
}

fn fast_config() -> Criterion {
    Criterion::default()
        .without_plots()
        .nresamples(1_000)
        .sample_size(10)
        .warm_up_time(Duration::from_millis(150))
        .measurement_time(Duration::from_millis(400))
}

criterion_group! {
    name = rtree;
    config = fast_config();
    targets = construction, window_queries, distance_browsing
}
criterion_main!(rtree);
