//! Micro-benchmarks of the disk-path primitives behind the buffer
//! sweep: buffer-pool hit/miss service time, lock-stripe contention
//! under concurrent access, and the MINDIST kernel every best-first
//! descent runs per branch.
//!
//! The container these benches usually run in has a single core, so the
//! contention group understates what sharding buys on real multi-core
//! hosts — treat its numbers as a lower bound (see DESIGN.md § 4e).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use nwc_geom::{MbrSoa, Point, Rect};
use nwc_store::{BufferPool, IoExecutor, MemStore, PageStore};
use std::sync::Arc;
use std::time::Duration;

fn fill(buf: &mut [u8]) -> Result<(), nwc_store::StoreError> {
    buf[0] = 1;
    Ok(())
}

/// Steady-state pool service time: a hit on a resident page, and the
/// miss + eviction path when the working set is twice the pool.
fn pool_paths(c: &mut Criterion) {
    let mut g = c.benchmark_group("pool");

    let pool = BufferPool::new(64);
    pool.access(7, fill).unwrap();
    g.bench_function("get_hit", |b| {
        b.iter(|| pool.access(black_box(7), fill).unwrap())
    });

    let pool = BufferPool::new(64);
    let mut next = 0u32;
    g.bench_function("get_miss_evict", |b| {
        b.iter(|| {
            next = (next + 1) % 128; // 2x capacity: every access evicts
            pool.access(black_box(next), fill).unwrap()
        })
    });

    let pool = BufferPool::new(64);
    let page = [0u8; nwc_store::PAGE_SIZE];
    let mut next = 0u32;
    g.bench_function("admit_prefetched", |b| {
        b.iter(|| {
            next = (next + 1) % 128;
            pool.admit_prefetched(black_box(next), &page)
        })
    });
    g.finish();
}

/// Aggregate throughput of 4 threads hammering one pool, single-stripe
/// vs sharded. Each iteration spawns the threads, so compare the two
/// configurations against each other, not against `pool/get_hit`.
fn contention(c: &mut Criterion) {
    const THREADS: usize = 4;
    const ACCESSES: usize = 4_096;
    let mut g = c.benchmark_group("pool_contention");
    for shards in [1usize, 4] {
        // 4x headroom over the 256-page working set: the page→shard
        // hash does not split exactly evenly, and a shard running at
        // its capacity would evict and turn the loop into a miss
        // benchmark.
        let pool = Arc::new(BufferPool::with_shards(1024, shards));
        // Pre-warm so the measured loop is all hits (pure lock traffic).
        for p in 0..256u32 {
            pool.access(p, fill).unwrap();
        }
        g.bench_with_input(
            BenchmarkId::new("hits_4_threads", shards),
            &pool,
            |b, pool| {
                b.iter(|| {
                    let handles: Vec<_> = (0..THREADS)
                        .map(|t| {
                            let pool = Arc::clone(pool);
                            std::thread::spawn(move || {
                                for i in 0..ACCESSES {
                                    let page = ((i * 131 + t * 977) % 256) as u32;
                                    pool.access(black_box(page), fill).unwrap();
                                }
                            })
                        })
                        .collect();
                    for h in handles {
                        h.join().unwrap();
                    }
                })
            },
        );
    }
    g.finish();
}

/// The MINDIST kernel: per-branch work of every best-first expansion
/// and readahead ranking pass — scalar loop vs the batched SoA kernel
/// (the `mindist/batched_over_scalar` ratio is what BENCH_kernels.json
/// reports as the microbench speedup).
fn mindist_kernel(c: &mut Criterion) {
    let rects: Vec<Rect> = (0..256)
        .map(|i| {
            let x = ((i * 37) % 1000) as f64;
            let y = ((i * 73) % 1000) as f64;
            Rect::new(Point::new(x, y), Point::new(x + 40.0, y + 25.0))
        })
        .collect();
    let q = Point::new(481.0, 517.0);
    let mut g = c.benchmark_group("mindist");
    g.bench_function("kernel_256_rects", |b| {
        b.iter(|| {
            let mut acc = 0.0f64;
            for r in &rects {
                acc += black_box(r).mindist(black_box(&q));
            }
            acc
        })
    });

    let soa: MbrSoa = rects.iter().copied().collect();
    let mut out = vec![0.0f64; rects.len()];
    g.bench_function("batched_256_rects", |b| {
        b.iter(|| {
            black_box(&soa).mindist_into(black_box(&q), &mut out);
            out[0]
        })
    });

    let w = Rect::new(Point::new(200.0, 200.0), Point::new(700.0, 650.0));
    g.bench_function("intersects_scalar_256", |b| {
        b.iter(|| {
            let mut n = 0usize;
            for r in &rects {
                n += usize::from(black_box(r).intersects(black_box(&w)));
            }
            n
        })
    });
    let mut mask = vec![false; rects.len()];
    g.bench_function("intersects_batched_256", |b| {
        b.iter(|| {
            black_box(&soa).intersects_into(black_box(&w), &mut mask);
            mask[0]
        })
    });
    g.finish();
}

/// Submit→complete round trip through the I/O executor: the fixed
/// overhead a readahead run pays to leave the query thread. Submitting
/// a no-op job and waiting for idle bounds the queue+wakeup cost; the
/// read-run variant adds the buffer allocation and MemStore copy.
fn executor_round_trip(c: &mut Criterion) {
    let mut g = c.benchmark_group("executor");
    let exec = IoExecutor::new(1);
    g.bench_function("submit_complete_noop", |b| {
        b.iter(|| {
            exec.submit(Box::new(|| {}));
            exec.wait_idle();
        })
    });

    const RUN_PAGES: usize = 8;
    let pages: Vec<[u8; nwc_store::PAGE_SIZE]> = (0..64).map(|_| [0u8; nwc_store::PAGE_SIZE]).collect();
    let store: Arc<dyn PageStore> = Arc::new(MemStore::new(pages, 0, [0; 4]).unwrap());
    g.bench_function("submit_complete_read_run_8p", |b| {
        b.iter(|| {
            exec.submit_read_run(
                Arc::clone(&store),
                0,
                RUN_PAGES,
                Box::new(|res, _| {
                    res.unwrap();
                }),
            );
            exec.wait_idle();
        })
    });
    g.finish();
}

fn fast_config() -> Criterion {
    Criterion::default()
        .without_plots()
        .nresamples(1_000)
        .sample_size(10)
        .warm_up_time(Duration::from_millis(150))
        .measurement_time(Duration::from_millis(400))
}

criterion_group! {
    name = micro;
    config = fast_config();
    targets = pool_paths, contention, mindist_kernel, executor_round_trip
}
criterion_main!(micro);
