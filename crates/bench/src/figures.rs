//! One generator per table/figure of the paper's evaluation (§5).
//!
//! Each function returns markdown [`Table`]s with the same rows/series
//! the paper plots. Absolute values differ from the paper (different
//! hardware-free I/O accounting, synthetic stand-ins for the CA/NY
//! datasets, scaled cardinalities) but the comparative *shapes* are the
//! reproduction target; `EXPERIMENTS.md` records both.

use crate::context::ExperimentContext;
use crate::runner::{build_index, build_lean_index, measure_knwc, measure_nwc, reduction_rate};
use crate::table::Table;
use nwc_analysis::{NwcCostModel, TreeModel};
use nwc_core::{IndexConfig, NwcIndex, Scheme, WindowSpec};
use nwc_datagen::Dataset;

/// Default query parameters from §5: `n = 8`, window `8 × 8`.
pub const DEFAULT_N: usize = 8;
/// See [`DEFAULT_N`].
pub const DEFAULT_WINDOW: f64 = 8.0;

fn eprint_progress(what: &str) {
    eprintln!("[experiments] {what}");
}

/// Table 2: dataset descriptions.
pub fn table2(ctx: &ExperimentContext) -> Table {
    let mut t = Table::new(
        "Table 2",
        format!(
            "Datasets (scale {} of the paper's cardinalities)",
            ctx.scale
        ),
        vec!["Dataset", "Cardinality", "Paper cardinality", "Description"],
    );
    let rows = [
        (
            "CA",
            ctx.ca_n(),
            nwc_datagen::CA_CARDINALITY,
            "CA stand-in: corridor-clustered places (real dataset unavailable)",
        ),
        (
            "NY",
            ctx.ny_n(),
            nwc_datagen::NY_CARDINALITY,
            "NY stand-in: highly clustered places (real dataset unavailable)",
        ),
        (
            "Gaussian",
            ctx.gaussian_n(),
            nwc_datagen::GAUSSIAN_CARDINALITY,
            "Gaussian, mean 5000, sigma 2000 (paper's generator)",
        ),
    ];
    for (name, n, paper_n, desc) in rows {
        t.push_row(vec![
            name.to_string(),
            n.to_string(),
            paper_n.to_string(),
            desc.to_string(),
        ]);
    }
    t
}

/// Table 3: the scheme matrix.
pub fn table3() -> Table {
    let mut t = Table::new(
        "Table 3",
        "Schemes and the optimization techniques they enable",
        vec!["Scheme", "SRR", "DIP", "DEP", "IWP"],
    );
    let tick = |b: bool| if b { "yes" } else { "-" }.to_string();
    for s in Scheme::TABLE3 {
        t.push_row(vec![s.label(), tick(s.srr), tick(s.dip), tick(s.dep), tick(s.iwp)]);
    }
    t
}

/// Figure 8: object distributions as ASCII density maps.
pub fn fig8(ctx: &ExperimentContext) -> String {
    let mut out = String::from("### Figure 8 — Distributions of the used datasets\n\n");
    for ds in ctx.datasets() {
        out.push_str(&format!("{} ({} points):\n\n```\n", ds.name, ds.len()));
        out.push_str(&ds.density_map(64, 24));
        out.push_str("```\n\n");
    }
    out
}

/// Figure 9: effect of the density-grid cell size on scheme DEP.
pub fn fig9(ctx: &ExperimentContext) -> Table {
    let cells = [25.0, 50.0, 100.0, 200.0, 400.0];
    let mut t = Table::new(
        "Figure 9",
        format!(
            "Avg I/O of scheme DEP vs grid cell size (n={DEFAULT_N}, window {DEFAULT_WINDOW})"
        ),
        std::iter::once("dataset".to_string())
            .chain(cells.iter().map(|c| format!("cell {c}")))
            .collect::<Vec<_>>(),
    );
    let queries = ctx.query_points();
    for ds in ctx.datasets() {
        eprint_progress(&format!("fig9: {}", ds.name));
        let mut index = NwcIndex::build_with(
            ds.points.clone(),
            IndexConfig {
                build_iwp: false,
                ..Default::default()
            },
        );
        let mut row = vec![ds.name.clone()];
        for &cell in &cells {
            index.rebuild_grid(cell);
            let m = measure_nwc(
                &index,
                &queries,
                WindowSpec::square(DEFAULT_WINDOW),
                DEFAULT_N,
                Scheme::DEP,
            );
            row.push(format!("{:.0}", m.avg_io));
        }
        t.push_row(row);
    }
    t
}

/// Figure 10: effect of the object distribution (Gaussian σ sweep) on
/// all seven schemes.
///
/// Uses a `64 × 64` window: with the paper's default `8 × 8` window no
/// qualified window exists anywhere in the Gaussian datasets (the
/// degenerate regime Figures 11c/12c report), which would flatten every
/// series; 64 exposes the behaviour Figure 10 describes.
pub fn fig10(ctx: &ExperimentContext) -> Table {
    let sigmas = [2000.0, 1750.0, 1500.0, 1250.0, 1000.0];
    let window = 64.0;
    let mut t = Table::new(
        "Figure 10",
        format!("Avg I/O vs Gaussian sigma (n={DEFAULT_N}, window {window})"),
        std::iter::once("scheme".to_string())
            .chain(sigmas.iter().map(|s| format!("σ={s}")))
            .collect::<Vec<_>>(),
    );
    let queries = ctx.query_points();
    // Column-major measurement (one index per σ), then transpose.
    let mut cols: Vec<Vec<f64>> = Vec::new();
    for (i, &sigma) in sigmas.iter().enumerate() {
        eprint_progress(&format!("fig10: sigma {sigma}"));
        let ds = Dataset::gaussian(ctx.gaussian_n(), 5000.0, sigma, ctx.seed ^ (i as u64 + 1));
        let index = build_index(&ds);
        let col: Vec<f64> = Scheme::TABLE3
            .iter()
            .map(|&s| {
                measure_nwc(&index, &queries, WindowSpec::square(window), DEFAULT_N, s).avg_io
            })
            .collect();
        cols.push(col);
    }
    for (si, scheme) in Scheme::TABLE3.iter().enumerate() {
        let mut row = vec![scheme.label()];
        for col in &cols {
            row.push(format!("{:.0}", col[si]));
        }
        t.push_row(row);
    }
    t
}

/// Figures 11(a–c): effect of the number of searched objects `n`.
pub fn fig11(ctx: &ExperimentContext) -> Vec<Table> {
    sweep_schemes_per_dataset(
        ctx,
        "Figure 11",
        "Avg I/O vs n (window 8)",
        &[8, 16, 32, 64, 128],
        |&n| (WindowSpec::square(DEFAULT_WINDOW), n),
        |n| format!("n={n}"),
    )
}

/// Figures 12(a–c): effect of the window size.
pub fn fig12(ctx: &ExperimentContext) -> Vec<Table> {
    sweep_schemes_per_dataset(
        ctx,
        "Figure 12",
        "Avg I/O vs window size (n=8)",
        &[8, 16, 32, 64, 128],
        |&w| (WindowSpec::square(w as f64), DEFAULT_N),
        |w| format!("w={w}"),
    )
}

/// Shared sweep: for each dataset, rows = schemes, columns = sweep
/// values. Datasets are measured on parallel threads.
fn sweep_schemes_per_dataset<T: Sync + std::fmt::Display>(
    ctx: &ExperimentContext,
    id_prefix: &str,
    caption: &str,
    values: &[T],
    to_query: impl Fn(&T) -> (WindowSpec, usize) + Sync,
    col_label: impl Fn(&T) -> String,
) -> Vec<Table> {
    let queries = ctx.query_points();
    let datasets = ctx.datasets();
    let mut results: Vec<(String, Vec<Vec<f64>>)> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = datasets
            .iter()
            .map(|ds| {
                let queries = &queries;
                let to_query = &to_query;
                scope.spawn(move || {
                    eprint_progress(&format!("{id_prefix}: {}", ds.name));
                    let index = build_index(ds);
                    let cols: Vec<Vec<f64>> = values
                        .iter()
                        .map(|v| {
                            let (spec, n) = to_query(v);
                            Scheme::TABLE3
                                .iter()
                                .map(|&s| measure_nwc(&index, queries, spec, n, s).avg_io)
                                .collect()
                        })
                        .collect();
                    (ds.name.clone(), cols)
                })
            })
            .collect();
        for h in handles {
            results.push(h.join().expect("experiment thread panicked"));
        }
    });

    let letters = ["a", "b", "c", "d", "e", "f"];
    results
        .iter()
        .enumerate()
        .map(|(di, (name, cols))| {
            let mut t = Table::new(
                format!("{id_prefix}{}", letters.get(di).copied().unwrap_or("?")),
                format!("{caption} — {name} dataset"),
                std::iter::once("scheme".to_string())
                    .chain(values.iter().map(&col_label))
                    .collect::<Vec<_>>(),
            );
            for (si, scheme) in Scheme::TABLE3.iter().enumerate() {
                let mut row = vec![scheme.label()];
                for col in cols {
                    row.push(format!("{:.0}", col[si]));
                }
                t.push_row(row);
            }
            t
        })
        .collect()
}

/// Figure 13: effect of `k` on kNWC+ vs kNWC* (CA and NY).
pub fn fig13(ctx: &ExperimentContext) -> Table {
    knwc_sweep(
        ctx,
        "Figure 13",
        "Avg I/O vs k (n=8, window 8, m=4)",
        &[2, 4, 8, 16, 32],
        |&k| (k, 4),
        |k| format!("k={k}"),
    )
}

/// Figure 14: effect of `m` on kNWC+ vs kNWC* (CA and NY).
pub fn fig14(ctx: &ExperimentContext) -> Table {
    knwc_sweep(
        ctx,
        "Figure 14",
        "Avg I/O vs m (n=8, window 8, k=4)",
        &[0, 1, 2, 4, 7],
        |&m| (4, m),
        |m| format!("m={m}"),
    )
}

fn knwc_sweep<T: std::fmt::Display>(
    ctx: &ExperimentContext,
    id: &str,
    caption: &str,
    values: &[T],
    to_km: impl Fn(&T) -> (usize, usize),
    col_label: impl Fn(&T) -> String,
) -> Table {
    let mut t = Table::new(
        id,
        caption,
        std::iter::once("series".to_string())
            .chain(values.iter().map(&col_label))
            .collect::<Vec<_>>(),
    );
    let queries = ctx.query_points();
    for name in ["CA", "NY"] {
        eprint_progress(&format!("{id}: {name}"));
        let ds = ctx.dataset(name);
        let index = build_index(&ds);
        for (scheme, label) in [(Scheme::NWC_PLUS, "kNWC+"), (Scheme::NWC_STAR, "kNWC*")] {
            let mut row = vec![format!("{name} {label}")];
            for v in values {
                let (k, m) = to_km(v);
                let meas = measure_knwc(
                    &index,
                    &queries,
                    WindowSpec::square(DEFAULT_WINDOW),
                    DEFAULT_N,
                    k,
                    m,
                    scheme,
                );
                row.push(format!("{:.0}", meas.avg_io));
            }
            t.push_row(row);
        }
    }
    t
}

/// §5.2 storage overheads: density grid and IWP pointers per dataset.
pub fn storage(ctx: &ExperimentContext) -> Table {
    let mut t = Table::new(
        "Storage",
        "Auxiliary structure overheads (paper §5.2)",
        vec![
            "dataset",
            "tree nodes",
            "grid cells",
            "grid KB",
            "backward ptrs",
            "overlap ptrs",
            "IWP KB",
        ],
    );
    for ds in ctx.datasets() {
        eprint_progress(&format!("storage: {}", ds.name));
        let index = build_index(&ds);
        let grid = index.grid().unwrap();
        let iwp = index.iwp().unwrap();
        let s = iwp.storage();
        t.push_row(vec![
            ds.name.clone(),
            index.tree().node_count().to_string(),
            grid.cell_count().to_string(),
            format!("{:.0}", grid.bytes() as f64 / 1024.0),
            s.backward_pointers.to_string(),
            s.overlapping_pointers.to_string(),
            format!("{:.0}", s.bytes() as f64 / 1024.0),
        ]);
    }
    t
}

/// §4 cost model vs measurement on uniform data (the model's Poisson
/// assumption), sweeping the window size.
pub fn model(ctx: &ExperimentContext) -> Table {
    let n_objects = ctx.gaussian_n();
    let ds = Dataset::uniform(n_objects, ctx.seed);
    let index = build_index(&ds);
    let queries = ctx.query_points();
    let area = 10_000.0f64 * 10_000.0;
    let tree_model = TreeModel {
        n_objects: n_objects as f64,
        fanout: 50.0,
        area,
    };
    let mut t = Table::new(
        "Cost model",
        format!("Paper §4 analytical I/O vs measured NWC+ (uniform, {n_objects} objects, n=8)"),
        vec!["window", "model I/O", "measured I/O"],
    );
    for wsize in [64.0, 128.0, 192.0, 256.0, 384.0] {
        eprint_progress(&format!("model: window {wsize}"));
        let predicted =
            NwcCostModel::new(n_objects, area, wsize, wsize, DEFAULT_N).expected_io(&tree_model);
        let measured = measure_nwc(
            &index,
            &queries,
            WindowSpec::square(wsize),
            DEFAULT_N,
            Scheme::NWC_PLUS,
        );
        t.push_row(vec![
            format!("{wsize:.0}"),
            format!("{predicted:.0}"),
            format!("{:.0}", measured.avg_io),
        ]);
    }
    t
}

/// Ablation: distance measures under NWC* (design-choice table from
/// DESIGN.md — not in the paper).
pub fn ablation_measures(ctx: &ExperimentContext) -> Table {
    use nwc_core::{DistanceMeasure, NwcQuery};
    let ds = ctx.dataset("CA");
    let index = build_index(&ds);
    let queries = ctx.query_points();
    let mut t = Table::new(
        "Ablation: distance measure",
        "Avg I/O and hit rate per distance measure (CA, n=8, window 64)",
        vec!["measure", "avg I/O", "found"],
    );
    for measure in DistanceMeasure::ALL {
        let mut io = 0u64;
        let mut hits = 0usize;
        for &q in &queries {
            let query =
                NwcQuery::new(q, WindowSpec::square(64.0), DEFAULT_N).with_measure(measure);
            let (r, stats) = index.nwc_full(&query, Scheme::NWC_STAR);
            io += stats.io_total;
            hits += usize::from(r.is_some());
        }
        t.push_row(vec![
            format!("{measure:?}"),
            format!("{:.0}", io as f64 / queries.len() as f64),
            format!("{hits}/{}", queries.len()),
        ]);
    }
    t
}

/// Ablation: STR bulk load vs repeated R* insertion (build cost is not
/// I/O-metered; this compares the *query* I/O on the resulting trees).
pub fn ablation_build(ctx: &ExperimentContext) -> Table {
    let ds = ctx.dataset("CA");
    let queries = ctx.query_points();
    let mut t = Table::new(
        "Ablation: tree construction",
        "Query I/O on STR-bulk-loaded vs insertion-built trees (CA, NWC+, window 64)",
        vec!["build", "tree nodes", "avg I/O"],
    );
    for (label, bulk) in [("STR bulk load", true), ("R* insertion", false)] {
        eprint_progress(&format!("ablation_build: {label}"));
        let index = NwcIndex::build_with(
            ds.points.clone(),
            IndexConfig {
                bulk_load: bulk,
                build_iwp: false,
                ..Default::default()
            },
        );
        let m = measure_nwc(
            &index,
            &queries,
            WindowSpec::square(64.0),
            DEFAULT_N,
            Scheme::NWC_PLUS,
        );
        t.push_row(vec![
            label.to_string(),
            index.tree().node_count().to_string(),
            format!("{:.0}", m.avg_io),
        ]);
    }
    t
}

/// Ablation: weighted NWC — unit weights must match plain NWC's I/O
/// profile; skewed weights shift answers toward heavy objects.
pub fn ablation_weighted(ctx: &ExperimentContext) -> Table {
    use nwc_core::weighted::{WeightedNwcIndex, WeightedQuery};
    let ds = ctx.dataset("CA");
    let queries = ctx.query_points();
    let mut t = Table::new(
        "Ablation: weighted NWC",
        "Avg I/O and hit rate, weight thresholds on CA (window 64)",
        vec!["variant", "avg I/O", "found"],
    );
    let spec = WindowSpec::square(64.0);
    // Unit weights, W = 8  ≡  plain NWC with n = 8.
    let unit = WeightedNwcIndex::build(ds.points.clone(), vec![1.0; ds.points.len()]);
    // Zipf-ish weights: a few heavy objects.
    let skewed_w: Vec<f64> = (0..ds.points.len())
        .map(|i| if i % 20 == 0 { 10.0 } else { 1.0 })
        .collect();
    let skewed = WeightedNwcIndex::build(ds.points.clone(), skewed_w);
    for (label, index, min_w) in [
        ("unit weights, W=8", &unit, 8.0),
        ("skewed weights, W=8", &skewed, 8.0),
        ("skewed weights, W=32", &skewed, 32.0),
    ] {
        let mut io = 0u64;
        let mut hits = 0usize;
        for &q in &queries {
            let query = WeightedQuery::new(q, spec, min_w);
            if let Some((r, _)) = index.query(&query, Scheme::NWC_STAR) {
                io += r.stats.io_total;
                hits += 1;
            }
        }
        t.push_row(vec![
            label.to_string(),
            format!("{:.0}", io as f64 / queries.len() as f64),
            format!("{hits}/{}", queries.len()),
        ]);
    }
    t
}

/// Ablation: IWP pointer layouts — exponential backward pointers vs
/// none, isolating the incremental-window-query benefit per dataset.
pub fn ablation_iwp(ctx: &ExperimentContext) -> Table {
    let queries = ctx.query_points();
    let mut t = Table::new(
        "Ablation: IWP",
        "Window-query I/O with and without IWP (n=8, window 8)",
        vec!["dataset", "plain I/O", "IWP I/O", "reduction"],
    );
    for ds in ctx.datasets() {
        eprint_progress(&format!("ablation_iwp: {}", ds.name));
        let lean = build_lean_index(&ds);
        let full = build_index(&ds);
        let spec = WindowSpec::square(DEFAULT_WINDOW);
        let plain = measure_nwc(&lean, &queries, spec, DEFAULT_N, Scheme::NWC);
        let iwp = measure_nwc(&full, &queries, spec, DEFAULT_N, Scheme::IWP);
        t.push_row(vec![
            ds.name.clone(),
            format!("{:.0}", plain.avg_io),
            format!("{:.0}", iwp.avg_io),
            reduction_rate(plain.avg_io, iwp.avg_io),
        ]);
    }
    t
}
