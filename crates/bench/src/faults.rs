//! Fault-injection sweep over the disk-backed index (not from the
//! paper).
//!
//! The paper's evaluation assumes a storage layer that never fails; this
//! experiment measures what its algorithms cost when it does. A saved
//! clustered page file is queried through a [`FaultStore`] injecting
//! seeded transient read errors at {0 %, 0.1 %, 1 %} of physical reads,
//! with the retry policy of the disk path absorbing every burst — so
//! every cell returns the same answers and the same *logical* I/O, and
//! the sweep isolates what faults add: retries, attributed transient
//! errors, failed readahead runs, and wall-clock latency. A second pass
//! per rate adds 100 µs of per-read device latency to show how retry
//! overhead scales once a physical read actually costs something.
//!
//! Besides the markdown table, the run writes machine-readable
//! `results/BENCH_faults.json`.

use crate::buffer::layout_name;
use crate::context::ExperimentContext;
use crate::runner::build_index;
use crate::table::Table;
use nwc_core::{
    DiskIndexConfig, MetricsSnapshot, NwcIndex, NwcQuery, PageLayout, QueryScratch, RetryPolicy,
    Scheme, SearchStats, WindowSpec,
};
use nwc_store::{FaultPlan, FaultStore, FileStore};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Transient fault rates swept (probability per physical read).
pub const FAULT_RATES: [f64; 3] = [0.0, 0.001, 0.01];

/// Per-read device latencies swept (`None` = the raw device).
pub const LATENCIES: [Option<Duration>; 2] = [None, Some(Duration::from_micros(100))];

/// Consecutive failures per injected burst. The retry budget below
/// clears any burst without ever surfacing an error to the query.
const BURST: u32 = 2;

/// One (latency, rate, scheme) cell of the sweep.
#[derive(Clone, Debug)]
pub struct FaultsPoint {
    /// Injected per-read device latency, microseconds (0 = none).
    pub latency_us: u64,
    /// Transient fault probability per physical read.
    pub rate: f64,
    /// Table-3 scheme name.
    pub scheme: String,
    /// Re-attempted reads across the batch (the retry machinery's cost).
    pub retries: u64,
    /// Failed-then-recovered read attempts attributed to queries.
    pub transient_errors: u64,
    /// Transient errors the store injected (reader + readahead sides).
    pub injected: u64,
    /// Readahead runs abandoned because a speculative read failed.
    pub prefetch_errors: u64,
    /// Physical demand page reads (pool misses) across the batch.
    pub physical_reads: u64,
    /// Mean logical node accesses per query — invariant across every
    /// cell of a scheme: faults never change which nodes a query visits.
    pub avg_io: f64,
    /// Mean wall-clock latency per query, microseconds.
    pub avg_latency_us: f64,
}

/// Everything the faults experiment measured.
#[derive(Clone, Debug)]
pub struct FaultsReport {
    /// Dataset the page file was built from.
    pub dataset: String,
    /// Pages in the saved file.
    pub pages: usize,
    /// Queries per cell.
    pub queries: usize,
    /// Retry attempts budgeted per page read.
    pub max_attempts: u32,
    /// Sweep cells: latency-major, then rate, then scheme (Table-3
    /// order).
    pub points: Vec<FaultsPoint>,
}

/// Runs the experiment and renders the markdown table; also writes
/// `results/BENCH_faults.json` (errors writing the file are reported on
/// stderr, not fatal — the measurement still prints).
pub fn faults(ctx: &ExperimentContext) -> String {
    let report = measure(ctx);
    let json = render_json(ctx, &report);
    let path = "results/BENCH_faults.json";
    match std::fs::create_dir_all("results").and_then(|()| std::fs::write(path, &json)) {
        Ok(()) => eprintln!("[faults] wrote {path}"),
        Err(e) => eprintln!("[faults] could not write {path}: {e}"),
    }
    render_markdown(&report)
}

/// The measurement itself, separated from rendering for tests.
pub fn measure(ctx: &ExperimentContext) -> FaultsReport {
    let ds = ctx.dataset("CA");
    let arena = build_index(&ds);
    let path = std::env::temp_dir().join(format!("nwc-faults-{}.pages", std::process::id()));
    arena
        .save_tree_with_layout(&path, PageLayout::Clustered)
        .unwrap_or_else(|e| panic!("saving page file: {e}"));
    let pages = arena.tree().to_page_file().page_count();
    drop(arena);

    let query_points = ctx.query_points();
    let spec = WindowSpec::square(200.0);
    let n = 8;
    // Enough attempts that a whole budget failing at the highest rate is
    // beyond astronomical; zero backoff so the table measures the
    // *retry* cost, with device latency swept explicitly instead.
    let retry = RetryPolicy {
        max_attempts: 8,
        base_backoff: Duration::ZERO,
        max_backoff: Duration::ZERO,
    };

    let mut points = Vec::new();
    for &latency in &LATENCIES {
        for (ri, &rate) in FAULT_RATES.iter().enumerate() {
            // Open through a *transparent* fault store (the open path
            // validates every page with no retry in front of it), then
            // arm the plan for the measured queries.
            let store = FileStore::open(&path).unwrap_or_else(|e| panic!("opening pages: {e}"));
            let fault = Arc::new(FaultStore::new(store, FaultPlan::default()));
            let index = NwcIndex::open_disk_from_store(
                Box::new(Arc::clone(&fault)),
                DiskIndexConfig {
                    pool_capacity: Some(((pages / 10).max(1)).min(pages)),
                    prefetch: 16,
                    pool_shards: Some(1),
                    retry,
                    ..Default::default()
                },
            )
            .unwrap_or_else(|e| panic!("opening faulted index: {e}"));
            fault.set_plan(FaultPlan {
                seed: ctx.seed ^ ((ri as u64 + 1) << 32),
                transient_rate: rate,
                transient_burst: BURST,
                torn_rate: 0.0,
                latency,
            });
            let storage = index.tree().storage().expect("disk-backed");

            for scheme in Scheme::TABLE3 {
                storage.reset();
                index.tree().stats().reset();
                let injected0 = fault.stats().transient;
                let mut acc = SearchStats::default();
                let mut scratch = QueryScratch::new();
                let start = Instant::now();
                for &q in &query_points {
                    let query = NwcQuery::new(q, spec, n);
                    let (_, stats) = index
                        .try_nwc_full_with(&query, scheme, &mut scratch)
                        .unwrap_or_else(|e| panic!("transient fault leaked at rate {rate}: {e}"));
                    acc.accumulate(&stats);
                }
                let elapsed = start.elapsed();
                // One unified capture instead of plucking fields off
                // IoStats / PoolStats / FaultStats by hand.
                let snap = MetricsSnapshot::capture(&index)
                    .with_search(acc)
                    .with_faults(fault.stats());
                let pool = snap.pool.expect("disk-backed index has a pool");
                points.push(FaultsPoint {
                    latency_us: latency.map_or(0, |d| d.as_micros() as u64),
                    rate,
                    scheme: scheme.to_string(),
                    retries: snap.io.retries,
                    transient_errors: snap.io.transient_errors,
                    injected: snap.faults.map_or(0, |f| f.transient) - injected0,
                    prefetch_errors: snap.io.prefetch_errors,
                    physical_reads: pool.misses,
                    avg_io: snap.search.io_total as f64 / query_points.len() as f64,
                    avg_latency_us: elapsed.as_secs_f64() * 1e6 / query_points.len() as f64,
                });
            }
        }
    }
    std::fs::remove_file(&path).ok();

    FaultsReport {
        dataset: ds.name.clone(),
        pages,
        queries: query_points.len(),
        max_attempts: retry.max_attempts,
        points,
    }
}

fn render_markdown(r: &FaultsReport) -> String {
    let mut t = Table::new(
        "Fault-injection sweep",
        format!(
            "{} page file ({} pages, {} layout), seeded transient faults on physical reads, \
             burst {BURST}, retry budget {} attempts, {} queries, w = 200 × 200, n = 8; \
             answers and logical I/O are identical in every cell",
            r.dataset,
            r.pages,
            layout_name(PageLayout::Clustered),
            r.max_attempts,
            r.queries
        ),
        vec![
            "device latency",
            "fault rate",
            "scheme",
            "retries",
            "transient errs",
            "injected",
            "pf errors",
            "physical reads",
            "avg IO",
            "avg latency (µs)",
        ],
    );
    for p in &r.points {
        t.push_row(vec![
            if p.latency_us == 0 {
                "none".to_string()
            } else {
                format!("{} µs", p.latency_us)
            },
            format!("{:.2}%", p.rate * 100.0),
            p.scheme.clone(),
            p.retries.to_string(),
            p.transient_errors.to_string(),
            p.injected.to_string(),
            p.prefetch_errors.to_string(),
            p.physical_reads.to_string(),
            format!("{:.1}", p.avg_io),
            format!("{:.1}", p.avg_latency_us),
        ]);
    }
    t.to_markdown()
}

/// Hand-rolled JSON (the workspace has no serde): stable field order,
/// numbers via `format!` so the file diffs cleanly between runs.
fn render_json(ctx: &ExperimentContext, r: &FaultsReport) -> String {
    let mut s = String::from("{\n");
    s.push_str("  \"experiment\": \"faults\",\n");
    s.push_str(&format!("  \"dataset\": \"{}\",\n", r.dataset));
    s.push_str(&format!("  \"scale\": {},\n", ctx.scale));
    s.push_str(&format!("  \"seed\": {},\n", ctx.seed));
    s.push_str(&format!("  \"pages\": {},\n", r.pages));
    s.push_str(&format!("  \"queries\": {},\n", r.queries));
    s.push_str(&format!("  \"max_attempts\": {},\n", r.max_attempts));
    s.push_str(&format!("  \"transient_burst\": {BURST},\n"));
    s.push_str("  \"sweep\": [\n");
    for (i, p) in r.points.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"latency_us\": {}, \"rate\": {}, \"scheme\": \"{}\", \
             \"retries\": {}, \"transient_errors\": {}, \"injected\": {}, \
             \"prefetch_errors\": {}, \"physical_reads\": {}, \
             \"avg_io\": {:.2}, \"avg_latency_us\": {:.2}}}{}\n",
            p.latency_us,
            p.rate,
            p.scheme,
            p.retries,
            p.transient_errors,
            p.injected,
            p.prefetch_errors,
            p.physical_reads,
            p.avg_io,
            p.avg_latency_us,
            if i + 1 == r.points.len() { "" } else { "," },
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_isolates_fault_overhead_and_json_well_formed() {
        let ctx = ExperimentContext::tiny();
        let r = measure(&ctx);
        assert_eq!(
            r.points.len(),
            LATENCIES.len() * FAULT_RATES.len() * Scheme::TABLE3.len()
        );
        for scheme in Scheme::TABLE3 {
            let name = scheme.to_string();
            let cells: Vec<&FaultsPoint> =
                r.points.iter().filter(|p| p.scheme == name).collect();
            for c in &cells {
                // Logical I/O is invariant: faults change what a read
                // costs, never which nodes an algorithm visits.
                assert_eq!(
                    c.avg_io, cells[0].avg_io,
                    "{name}: logical I/O diverged at rate {} / {} µs",
                    c.rate, c.latency_us
                );
                if c.rate == 0.0 {
                    assert_eq!(
                        (c.retries, c.transient_errors, c.injected, c.prefetch_errors),
                        (0, 0, 0, 0),
                        "{name}: fault-free cell shows fault traffic"
                    );
                } else {
                    // Every attributed recovery was a real retry, and
                    // nothing the store injected went unrecovered.
                    assert!(c.retries >= c.transient_errors);
                    assert!(
                        c.injected >= c.transient_errors,
                        "{name}: more recoveries than injections"
                    );
                }
            }
        }
        // At the top rate something must actually have fired on the
        // reader side (the tiny context still issues hundreds of reads).
        let max_rate = FAULT_RATES[FAULT_RATES.len() - 1];
        let hot: u64 = r
            .points
            .iter()
            .filter(|p| p.rate == max_rate)
            .map(|p| p.injected)
            .sum();
        assert!(hot > 0, "top-rate cells injected nothing");
        let json = render_json(&ctx, &r);
        assert!(json.contains("\"experiment\": \"faults\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count(), "{json}");
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        let md = render_markdown(&r);
        assert!(md.contains("Fault-injection sweep"));
    }
}
