//! Experiment configuration (scale, query count, seed) from the
//! environment.

use nwc_datagen::{Dataset, CA_CARDINALITY, GAUSSIAN_CARDINALITY, NY_CARDINALITY};
use nwc_geom::Point;

/// Shared configuration for all experiments.
#[derive(Clone, Copy, Debug)]
pub struct ExperimentContext {
    /// Fraction of the paper's dataset cardinalities (Table 2) to
    /// generate. 1.0 = the paper's exact sizes.
    pub scale: f64,
    /// Queries per configuration (paper: 25, averaged).
    pub queries: usize,
    /// Seed for datasets and query points.
    pub seed: u64,
}

impl ExperimentContext {
    /// Reads `NWC_SCALE` (default 0.2), `NWC_QUERIES` (default 25) and
    /// `NWC_SEED` (default 2016 — the paper's year) from the environment.
    pub fn from_env() -> Self {
        let scale = std::env::var("NWC_SCALE")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0.2);
        let queries = std::env::var("NWC_QUERIES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(25);
        let seed = std::env::var("NWC_SEED")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(2016);
        assert!(scale > 0.0 && scale <= 1.0, "NWC_SCALE must be in (0, 1]");
        assert!(queries > 0, "NWC_QUERIES must be positive");
        ExperimentContext {
            scale,
            queries,
            seed,
        }
    }

    /// A tiny context for Criterion micro-runs and smoke tests.
    pub fn tiny() -> Self {
        ExperimentContext {
            scale: 0.01,
            queries: 2,
            seed: 2016,
        }
    }

    /// Scaled cardinality of the CA dataset.
    pub fn ca_n(&self) -> usize {
        ((CA_CARDINALITY as f64 * self.scale) as usize).max(100)
    }

    /// Scaled cardinality of the NY dataset.
    pub fn ny_n(&self) -> usize {
        ((NY_CARDINALITY as f64 * self.scale) as usize).max(100)
    }

    /// Scaled cardinality of the Gaussian dataset.
    pub fn gaussian_n(&self) -> usize {
        ((GAUSSIAN_CARDINALITY as f64 * self.scale) as usize).max(100)
    }

    /// The three evaluation datasets at the configured scale.
    pub fn datasets(&self) -> Vec<Dataset> {
        Dataset::paper_trio_scaled(self.ca_n(), self.ny_n(), self.gaussian_n(), self.seed)
    }

    /// One dataset by paper name ("CA", "NY", "Gaussian").
    pub fn dataset(&self, name: &str) -> Dataset {
        self.datasets()
            .into_iter()
            .find(|d| d.name == name)
            .unwrap_or_else(|| panic!("unknown dataset {name}"))
    }

    /// The query locations (paper: 25 uniform points).
    pub fn query_points(&self) -> Vec<Point> {
        Dataset::query_points(self.queries, self.seed)
    }
}
