//! Kernel + overlapped-I/O sweep (not from the paper).
//!
//! Two measurements behind this PR's hot-path work, in one report:
//!
//! 1. **Microbench** — ns/rect for the scalar `Rect::mindist` /
//!    `Rect::intersects` loops vs the batched SoA kernels, plus the
//!    detected kernel backend and core count. Both sides compute
//!    bit-identical results (see `tests/kernel_equivalence.rs`); only
//!    the throughput may differ.
//! 2. **End-to-end** — NWC* over a saved clustered CA page file behind
//!    a [`FaultStore`], cold pool per cell, at {no latency, 100 µs per
//!    physical read} × {sync readahead, overlapped readahead
//!    (`io_threads = 2`)}. Answers and logical I/O are identical in
//!    every cell; the sweep isolates wall clock plus the new
//!    `overlap_us` / `inflight_hits` counters.
//!
//! On flat media (the no-latency rows: page cache / MemStore-speed
//! reads) overlapping buys little or nothing — the physical read is
//! cheaper than the thread handoff — and the table says so rather than
//! hiding the rows. The 100 µs rows model real storage, where the
//! device sleep moves off the query thread.
//!
//! Besides the markdown table, the run writes machine-readable
//! `results/BENCH_kernels.json`.

use crate::context::ExperimentContext;
use crate::runner::build_index;
use crate::table::Table;
use nwc_core::{
    DiskIndexConfig, NwcIndex, NwcQuery, PageLayout, QueryScratch, Scheme, WindowSpec,
};
use nwc_geom::{kernel_backend, MbrSoa, Point, Rect};
use nwc_store::{FaultPlan, FaultStore, FileStore};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Per-read device latencies swept (`None` = the raw device).
pub const LATENCIES: [Option<Duration>; 2] = [None, Some(Duration::from_micros(100))];

/// I/O thread counts swept (0 = synchronous readahead).
pub const IO_THREADS: [usize; 2] = [0, 2];

/// Rectangles per microbench pass — one branch-array's worth, sized
/// like a run of internal fanouts rather than a cache-busting sweep.
const MICRO_RECTS: usize = 256;

/// Microbench half of the report.
#[derive(Clone, Debug)]
pub struct KernelMicro {
    /// Scalar `Rect::mindist` loop, nanoseconds per rectangle.
    pub mindist_scalar_ns: f64,
    /// Batched SoA MINDIST kernel, nanoseconds per rectangle.
    pub mindist_batched_ns: f64,
    /// Scalar `Rect::intersects` loop, nanoseconds per rectangle.
    pub intersects_scalar_ns: f64,
    /// Batched SoA window-intersection kernel, nanoseconds per rectangle.
    pub intersects_batched_ns: f64,
}

impl KernelMicro {
    /// Scalar-to-batched MINDIST speedup (> 1 means batching wins).
    pub fn mindist_speedup(&self) -> f64 {
        self.mindist_scalar_ns / self.mindist_batched_ns
    }

    /// Scalar-to-batched intersection speedup.
    pub fn intersects_speedup(&self) -> f64 {
        self.intersects_scalar_ns / self.intersects_batched_ns
    }
}

/// One (latency, io_threads) cell of the end-to-end sweep.
#[derive(Clone, Debug)]
pub struct OverlapPoint {
    /// Injected per-read device latency, microseconds (0 = none).
    pub latency_us: u64,
    /// Completion threads (0 = synchronous readahead).
    pub io_threads: usize,
    /// Mean logical node accesses per query — invariant across cells.
    pub avg_io: f64,
    /// Mean wall-clock latency per query, microseconds.
    pub avg_latency_us: f64,
    /// Physical demand reads (pool misses) across the batch.
    pub physical_reads: u64,
    /// Pages read by readahead across the batch.
    pub prefetch_reads: u64,
    /// Device time spent inside overlapped readahead runs, µs (0 on
    /// the sync rows — the same time is buried in the query thread).
    pub overlap_us: u64,
    /// Demand faults that waited on an in-flight readahead instead of
    /// re-reading the page.
    pub inflight_hits: u64,
}

/// Everything the kernels experiment measured.
#[derive(Clone, Debug)]
pub struct KernelsReport {
    /// Detected batch-kernel backend ("avx2" or "portable").
    pub backend: String,
    /// Cores visible to this process.
    pub cores: usize,
    /// Dataset the page file was built from.
    pub dataset: String,
    /// Pages in the saved file.
    pub pages: usize,
    /// Queries per cell.
    pub queries: usize,
    /// Microbench results.
    pub micro: KernelMicro,
    /// End-to-end sweep cells, latency-major then io_threads.
    pub points: Vec<OverlapPoint>,
}

/// Runs the experiment and renders the markdown table; also writes
/// `results/BENCH_kernels.json` (errors writing the file are reported
/// on stderr, not fatal — the measurement still prints).
pub fn kernels(ctx: &ExperimentContext) -> String {
    let report = measure(ctx);
    let json = render_json(ctx, &report);
    let path = "results/BENCH_kernels.json";
    match std::fs::create_dir_all("results").and_then(|()| std::fs::write(path, &json)) {
        Ok(()) => eprintln!("[kernels] wrote {path}"),
        Err(e) => eprintln!("[kernels] could not write {path}: {e}"),
    }
    render_markdown(&report)
}

/// The microbench alone: median-of-5 passes of a tight loop over one
/// branch-array-sized rectangle soup.
pub fn measure_micro() -> KernelMicro {
    let rects: Vec<Rect> = (0..MICRO_RECTS)
        .map(|i| {
            let x = ((i * 37) % 1000) as f64;
            let y = ((i * 73) % 1000) as f64;
            Rect::new(Point::new(x, y), Point::new(x + 40.0, y + 25.0))
        })
        .collect();
    let soa: MbrSoa = rects.iter().copied().collect();
    let q = Point::new(481.0, 517.0);
    let w = Rect::new(Point::new(200.0, 200.0), Point::new(700.0, 650.0));
    const REPS: usize = 4_000;

    let mindist_scalar_ns = best_of(5, || {
        let mut acc = 0.0f64;
        for _ in 0..REPS {
            for r in &rects {
                acc += r.mindist(&q);
            }
        }
        std::hint::black_box(acc);
    });
    let mut out = vec![0.0f64; rects.len()];
    let mindist_batched_ns = best_of(5, || {
        for _ in 0..REPS {
            soa.mindist_into(&q, &mut out);
            std::hint::black_box(out[0]);
        }
    });
    let intersects_scalar_ns = best_of(5, || {
        let mut n = 0usize;
        for _ in 0..REPS {
            for r in &rects {
                n += usize::from(r.intersects(&w));
            }
        }
        std::hint::black_box(n);
    });
    let mut mask = vec![false; rects.len()];
    let intersects_batched_ns = best_of(5, || {
        for _ in 0..REPS {
            soa.intersects_into(&w, &mut mask);
            std::hint::black_box(mask[0]);
        }
    });

    let per_rect = (REPS * MICRO_RECTS) as f64;
    KernelMicro {
        mindist_scalar_ns: mindist_scalar_ns / per_rect,
        mindist_batched_ns: mindist_batched_ns / per_rect,
        intersects_scalar_ns: intersects_scalar_ns / per_rect,
        intersects_batched_ns: intersects_batched_ns / per_rect,
    }
}

/// Best (minimum) wall clock of `passes` runs of `f`, in nanoseconds —
/// the minimum is the least-noise estimator for a CPU-bound loop.
fn best_of(passes: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..passes {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64() * 1e9);
    }
    best
}

/// The measurement itself, separated from rendering for tests.
pub fn measure(ctx: &ExperimentContext) -> KernelsReport {
    let micro = measure_micro();

    let ds = ctx.dataset("CA");
    let arena = build_index(&ds);
    let path = std::env::temp_dir().join(format!("nwc-kernels-{}.pages", std::process::id()));
    arena
        .save_tree_with_layout(&path, PageLayout::Clustered)
        .unwrap_or_else(|e| panic!("saving page file: {e}"));
    let pages = arena.tree().to_page_file().page_count();
    drop(arena);

    let query_points = ctx.query_points();
    let spec = WindowSpec::square(200.0);
    let n = 8;

    let mut points = Vec::new();
    for &latency in &LATENCIES {
        for &io_threads in &IO_THREADS {
            let store = FileStore::open(&path).unwrap_or_else(|e| panic!("opening pages: {e}"));
            let fault = Arc::new(FaultStore::new(store, FaultPlan::default()));
            let index = NwcIndex::open_disk_from_store(
                Box::new(Arc::clone(&fault)),
                DiskIndexConfig {
                    // A bounded pool an order smaller than the file, so
                    // every cell actually reads from the device.
                    pool_capacity: Some(((pages / 10).max(1)).min(pages)),
                    prefetch: 16,
                    pool_shards: Some(1),
                    io_threads,
                    ..Default::default()
                },
            )
            .unwrap_or_else(|e| panic!("opening index: {e}"));
            fault.set_plan(FaultPlan { latency, ..FaultPlan::default() });
            let storage = index.tree().storage().expect("disk-backed");

            // Cold pool per cell so each measures the same physical work.
            storage.reset();
            index.tree().stats().reset();
            let mut io_total = 0u64;
            let mut scratch = QueryScratch::new();
            let start = Instant::now();
            for &q in &query_points {
                let query = NwcQuery::new(q, spec, n);
                let (_, stats) = index
                    .try_nwc_full_with(&query, Scheme::NWC_STAR, &mut scratch)
                    .unwrap_or_else(|e| panic!("query failed: {e}"));
                io_total += stats.io_total;
            }
            let elapsed = start.elapsed();
            // Let straggler completions land before reading counters.
            storage.wait_io_idle();
            let io = index.tree().stats();
            points.push(OverlapPoint {
                latency_us: latency.map_or(0, |d| d.as_micros() as u64),
                io_threads,
                avg_io: io_total as f64 / query_points.len() as f64,
                avg_latency_us: elapsed.as_secs_f64() * 1e6 / query_points.len() as f64,
                physical_reads: storage.pool_stats().misses,
                prefetch_reads: io.prefetch_reads(),
                overlap_us: io.overlap_us(),
                inflight_hits: io.inflight_hits(),
            });
        }
    }
    std::fs::remove_file(&path).ok();

    KernelsReport {
        backend: kernel_backend().to_string(),
        cores: std::thread::available_parallelism().map_or(1, |n| n.get()),
        dataset: ds.name.clone(),
        pages,
        queries: query_points.len(),
        micro,
        points,
    }
}

fn render_markdown(r: &KernelsReport) -> String {
    let mut out = String::new();
    let mut micro = Table::new(
        "Geometry kernel microbench",
        format!(
            "{MICRO_RECTS}-rect branch array, best of 5 passes, backend = {}, {} core(s); \
             results are bit-identical — only throughput differs",
            r.backend, r.cores
        ),
        vec!["kernel", "scalar (ns/rect)", "batched (ns/rect)", "speedup"],
    );
    micro.push_row(vec![
        "MINDIST".into(),
        format!("{:.2}", r.micro.mindist_scalar_ns),
        format!("{:.2}", r.micro.mindist_batched_ns),
        format!("{:.2}x", r.micro.mindist_speedup()),
    ]);
    micro.push_row(vec![
        "window intersect".into(),
        format!("{:.2}", r.micro.intersects_scalar_ns),
        format!("{:.2}", r.micro.intersects_batched_ns),
        format!("{:.2}x", r.micro.intersects_speedup()),
    ]);
    out.push_str(&micro.to_markdown());
    out.push('\n');

    let mut sweep = Table::new(
        "Overlapped-readahead sweep",
        format!(
            "NWC* over a {} page file ({} pages, clustered), {} queries, cold pool per cell, \
             prefetch 16; answers and logical I/O identical in every cell. The no-latency rows \
             run at page-cache speed, where overlapping cannot win — compare the 100 µs rows",
            r.dataset, r.pages, r.queries
        ),
        vec![
            "device latency",
            "io threads",
            "avg IO",
            "avg latency (µs)",
            "physical reads",
            "prefetch reads",
            "overlap (µs)",
            "inflight hits",
        ],
    );
    for p in &r.points {
        sweep.push_row(vec![
            if p.latency_us == 0 { "none".to_string() } else { format!("{} µs", p.latency_us) },
            if p.io_threads == 0 { "sync".to_string() } else { p.io_threads.to_string() },
            format!("{:.1}", p.avg_io),
            format!("{:.1}", p.avg_latency_us),
            p.physical_reads.to_string(),
            p.prefetch_reads.to_string(),
            p.overlap_us.to_string(),
            p.inflight_hits.to_string(),
        ]);
    }
    out.push_str(&sweep.to_markdown());
    out
}

/// Hand-rolled JSON (the workspace has no serde): stable field order,
/// numbers via `format!` so the file diffs cleanly between runs.
fn render_json(ctx: &ExperimentContext, r: &KernelsReport) -> String {
    let mut s = String::from("{\n");
    s.push_str("  \"experiment\": \"kernels\",\n");
    s.push_str(&format!("  \"backend\": \"{}\",\n", r.backend));
    s.push_str(&format!("  \"cores\": {},\n", r.cores));
    s.push_str(&format!("  \"dataset\": \"{}\",\n", r.dataset));
    s.push_str(&format!("  \"scale\": {},\n", ctx.scale));
    s.push_str(&format!("  \"seed\": {},\n", ctx.seed));
    s.push_str(&format!("  \"pages\": {},\n", r.pages));
    s.push_str(&format!("  \"queries\": {},\n", r.queries));
    s.push_str(&format!(
        "  \"micro\": {{\"rects\": {MICRO_RECTS}, \
         \"mindist_scalar_ns\": {:.3}, \"mindist_batched_ns\": {:.3}, \
         \"mindist_speedup\": {:.3}, \
         \"intersects_scalar_ns\": {:.3}, \"intersects_batched_ns\": {:.3}, \
         \"intersects_speedup\": {:.3}}},\n",
        r.micro.mindist_scalar_ns,
        r.micro.mindist_batched_ns,
        r.micro.mindist_speedup(),
        r.micro.intersects_scalar_ns,
        r.micro.intersects_batched_ns,
        r.micro.intersects_speedup(),
    ));
    s.push_str("  \"sweep\": [\n");
    for (i, p) in r.points.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"latency_us\": {}, \"io_threads\": {}, \"avg_io\": {:.2}, \
             \"avg_latency_us\": {:.2}, \"physical_reads\": {}, \"prefetch_reads\": {}, \
             \"overlap_us\": {}, \"inflight_hits\": {}}}{}\n",
            p.latency_us,
            p.io_threads,
            p.avg_io,
            p.avg_latency_us,
            p.physical_reads,
            p.prefetch_reads,
            p.overlap_us,
            p.inflight_hits,
            if i + 1 == r.points.len() { "" } else { "," },
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernels_match_and_sweep_holds_io_invariant() {
        let ctx = ExperimentContext::tiny();
        let r = measure(&ctx);
        assert!(matches!(r.backend.as_str(), "avx2" | "portable"));
        assert!(r.cores >= 1);
        assert!(r.micro.mindist_scalar_ns > 0.0 && r.micro.mindist_batched_ns > 0.0);
        assert_eq!(r.points.len(), LATENCIES.len() * IO_THREADS.len());
        // Logical I/O is the paper's metric and must not move with the
        // physical backend or the device latency.
        for p in &r.points {
            assert_eq!(
                p.avg_io, r.points[0].avg_io,
                "logical I/O diverged at {} µs / {} threads",
                p.latency_us, p.io_threads
            );
            if p.io_threads == 0 {
                assert_eq!(p.overlap_us, 0, "sync rows cannot overlap");
                assert_eq!(p.inflight_hits, 0);
            } else {
                assert!(
                    p.prefetch_reads == 0 || p.overlap_us > 0,
                    "overlapped readahead ran but recorded no device time"
                );
            }
        }
        let json = render_json(&ctx, &r);
        assert!(json.contains("\"experiment\": \"kernels\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count(), "{json}");
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        let md = render_markdown(&r);
        assert!(md.contains("Geometry kernel microbench"));
        assert!(md.contains("Overlapped-readahead sweep"));
    }
}
