//! Anytime/approximate sweep: answer quality vs budget (not from the
//! paper).
//!
//! The paper's algorithms run to completion; this experiment measures
//! what their anytime variants give back when they cannot. It sweeps
//! `ε ∈ {0, 0.1, 0.5}` against a budget grid — unlimited, two logical
//! I/O allowances, and a wall-clock deadline — and scores every
//! `(ε, budget, scheme)` cell against the exact answer from the same
//! index: recall (via [`nwc_core::oracle::nwc_recall`]), how many
//! queries completed inside the budget, the reported error bound, and —
//! the soundness contract — how often a returned bound failed to
//! bracket the exact score (always 0, asserted by the smoke test). The
//! `ε = 0` / unlimited cells double as a bit-identity check: answer,
//! distance bits and [`SearchStats`] must equal the exact path's.
//!
//! Besides the markdown table, the run writes machine-readable
//! `results/BENCH_approx.json` with a top-level `"exact_recall"` marker
//! (`1` iff every exact-mode cell matched bit-for-bit) that
//! `scripts/verify.sh` greps.

use crate::context::ExperimentContext;
use crate::runner::build_index;
use crate::table::Table;
use nwc_core::oracle::nwc_recall;
use nwc_core::{
    Approx, Budget, NwcQuery, QueryScratch, Scheme, SearchStats, WindowSpec,
};
use std::time::{Duration, Instant};

/// Approximation factors swept (`0` = exact thresholds).
pub const EPSILONS: [f64; 3] = [0.0, 0.1, 0.5];

/// One budget shape of the sweep grid.
#[derive(Clone, Copy, Debug)]
pub struct BudgetSpec {
    /// Row label ("unlimited", "io 8", …).
    pub name: &'static str,
    /// Logical node-access allowance (`None` = unmetered).
    pub io: Option<u64>,
    /// Wall-clock allowance (`None` = no deadline).
    pub time: Option<Duration>,
}

/// Budgets swept: unmetered, tight and loose I/O allowances, and a
/// wall-clock deadline tight enough to trip on larger scales.
pub const BUDGETS: [BudgetSpec; 4] = [
    BudgetSpec {
        name: "unlimited",
        io: None,
        time: None,
    },
    BudgetSpec {
        name: "io 8",
        io: Some(8),
        time: None,
    },
    BudgetSpec {
        name: "io 64",
        io: Some(64),
        time: None,
    },
    BudgetSpec {
        name: "200 µs",
        io: None,
        time: Some(Duration::from_micros(200)),
    },
];

/// One `(ε, budget, scheme)` cell of the sweep.
#[derive(Clone, Debug)]
pub struct ApproxPoint {
    /// Approximation factor.
    pub epsilon: f64,
    /// Budget row label (see [`BUDGETS`]).
    pub budget: String,
    /// Table-3 scheme name.
    pub scheme: String,
    /// Mean recall against the exact answer from the same index.
    pub recall: f64,
    /// Queries that finished inside the budget (no exhaustion).
    pub complete: usize,
    /// Queries cut off by the budget (typed partial, never an error).
    pub partial: usize,
    /// Mean logical I/O actually spent per query.
    pub avg_io: f64,
    /// Cells whose reported `error_bound` is finite (an answer plus a
    /// finite frontier bound survived the cutoff).
    pub finite_bounds: usize,
    /// Mean `error_bound` over those finite cells (0 when none).
    pub avg_bound: f64,
    /// Returned bounds that failed to bracket the exact score. The
    /// anytime contract makes this 0 in every cell.
    pub bound_violations: usize,
    /// Only meaningful in `ε = 0` / unlimited cells: queries whose
    /// answer, distance bits, or [`SearchStats`] diverged from the
    /// exact path. The bit-identity contract makes this 0.
    pub exact_divergences: usize,
}

/// Everything the approx experiment measured.
#[derive(Clone, Debug)]
pub struct ApproxReport {
    /// Dataset the index was built from.
    pub dataset: String,
    /// Queries per cell.
    pub queries: usize,
    /// Group size `n`.
    pub n: usize,
    /// Sweep cells: scheme-major (Table-3 order), then ε, then budget.
    pub points: Vec<ApproxPoint>,
}

impl ApproxReport {
    /// True iff every `ε = 0` / unlimited cell reproduced the exact
    /// path bit-for-bit (recall 1, zero divergences).
    pub fn exact_ok(&self) -> bool {
        self.points
            .iter()
            .filter(|p| p.epsilon == 0.0 && p.budget == "unlimited")
            .all(|p| p.recall == 1.0 && p.exact_divergences == 0 && p.partial == 0)
    }
}

/// Runs the experiment and renders the markdown table; also writes
/// `results/BENCH_approx.json` (errors writing the file are reported on
/// stderr, not fatal — the measurement still prints).
pub fn approx(ctx: &ExperimentContext) -> String {
    let report = measure(ctx);
    let json = render_json(ctx, &report);
    let path = "results/BENCH_approx.json";
    match std::fs::create_dir_all("results").and_then(|()| std::fs::write(path, &json)) {
        Ok(()) => eprintln!("[approx] wrote {path}"),
        Err(e) => eprintln!("[approx] could not write {path}: {e}"),
    }
    render_markdown(&report)
}

/// Sorted ids + score of an optional group, in the oracle's shape.
fn key(result: Option<(&[nwc_core::Entry], f64)>) -> Option<(f64, Vec<u32>)> {
    result.map(|(objects, distance)| {
        let mut ids: Vec<u32> = objects.iter().map(|e| e.id).collect();
        ids.sort_unstable();
        (distance, ids)
    })
}

/// Per-query exact baseline: canonical `(distance, sorted ids)` answer
/// key plus the stats the exact-mode cells must reproduce bit-for-bit.
type ExactCell = (Option<(f64, Vec<u32>)>, SearchStats);

/// The measurement itself, separated from rendering for tests.
pub fn measure(ctx: &ExperimentContext) -> ApproxReport {
    let ds = ctx.dataset("CA");
    let index = build_index(&ds);
    let query_points = ctx.query_points();
    let spec = WindowSpec::square(200.0);
    let n = 8;

    let mut points = Vec::new();
    let mut scratch = QueryScratch::new();
    for scheme in Scheme::TABLE3 {
        // Exact baseline, once per scheme: the scoring target for every
        // (ε, budget) cell and the bit-identity reference for exact mode.
        let mut exact: Vec<ExactCell> = Vec::new();
        for &q in &query_points {
            let query = NwcQuery::new(q, spec, n);
            let (result, stats) = index
                .try_nwc_full_with(&query, scheme, &mut scratch)
                .unwrap_or_else(|e| panic!("exact baseline failed: {e}"));
            exact.push((
                key(result.as_ref().map(|r| (r.objects.as_slice(), r.distance))),
                stats,
            ));
        }

        for &epsilon in &EPSILONS {
            let approx =
                Approx::new(epsilon).unwrap_or_else(|e| panic!("bad sweep epsilon: {e}"));
            for b in &BUDGETS {
                let mut recall_sum = 0.0;
                let mut complete = 0;
                let mut partial = 0;
                let mut io_sum = 0u64;
                let mut finite_bounds = 0;
                let mut bound_sum = 0.0;
                let mut bound_violations = 0;
                let mut exact_divergences = 0;
                for (&q, (exact_key, exact_stats)) in query_points.iter().zip(&exact) {
                    let query = NwcQuery::new(q, spec, n);
                    let mut budget = Budget::none();
                    if let Some(io) = b.io {
                        budget = budget.io_limit(io);
                    }
                    if let Some(t) = b.time {
                        budget = budget.deadline(Instant::now() + t);
                    }
                    let a = index
                        .try_nwc_anytime_with(&query, scheme, &mut scratch, &budget, approx)
                        .unwrap_or_else(|e| panic!("anytime query failed: {e}"));
                    let got = key(
                        a.answer
                            .as_ref()
                            .map(|r| (r.objects.as_slice(), r.distance)),
                    );
                    recall_sum += nwc_recall(
                        exact_key.as_ref().map(|(d, ids)| (*d, ids.as_slice())),
                        got.as_ref().map(|(d, ids)| (*d, ids.as_slice())),
                    );
                    if a.exhausted.is_none() {
                        complete += 1;
                    } else {
                        partial += 1;
                    }
                    io_sum += a.spent.io;
                    if a.error_bound.is_finite() {
                        finite_bounds += 1;
                        bound_sum += a.error_bound;
                    }
                    // Soundness: the reported bounds must bracket the
                    // exact score from below (tolerating fp noise).
                    if let Some((d_star, _)) = exact_key {
                        let tol = 1e-9 * d_star.abs().max(1.0);
                        if a.lower_bound > d_star + tol {
                            bound_violations += 1;
                        }
                        if let Some(r) = &a.answer {
                            if r.distance - a.error_bound > d_star + tol {
                                bound_violations += 1;
                            }
                        }
                    }
                    // Bit-identity in exact mode: same group, same
                    // distance bits, same logical work.
                    if epsilon == 0.0 && b.io.is_none() && b.time.is_none() {
                        let same_answer = match (exact_key, &got) {
                            (None, None) => true,
                            (Some((ed, eids)), Some((gd, gids))) => {
                                ed.to_bits() == gd.to_bits() && eids == gids
                            }
                            _ => false,
                        };
                        if !same_answer || a.stats != *exact_stats {
                            exact_divergences += 1;
                        }
                    }
                }
                let q = query_points.len();
                points.push(ApproxPoint {
                    epsilon,
                    budget: b.name.to_string(),
                    scheme: scheme.to_string(),
                    recall: recall_sum / q as f64,
                    complete,
                    partial,
                    avg_io: io_sum as f64 / q as f64,
                    finite_bounds,
                    avg_bound: if finite_bounds == 0 {
                        0.0
                    } else {
                        bound_sum / finite_bounds as f64
                    },
                    bound_violations,
                    exact_divergences,
                });
            }
        }
    }

    ApproxReport {
        dataset: ds.name.clone(),
        queries: query_points.len(),
        n,
        points,
    }
}

fn render_markdown(r: &ApproxReport) -> String {
    let mut t = Table::new(
        "Anytime/approximate sweep",
        format!(
            "{} dataset, {} queries, w = 200 × 200, n = {}; recall is scored against the \
             exact answer from the same index; `violations` counts bounds that failed to \
             bracket the exact score (contractually 0); exact mode bit-identical: {}",
            r.dataset,
            r.queries,
            r.n,
            if r.exact_ok() { "yes" } else { "NO" }
        ),
        vec![
            "scheme",
            "ε",
            "budget",
            "recall",
            "complete",
            "partial",
            "avg IO",
            "finite bounds",
            "avg bound",
            "violations",
        ],
    );
    for p in &r.points {
        t.push_row(vec![
            p.scheme.clone(),
            format!("{}", p.epsilon),
            p.budget.clone(),
            format!("{:.3}", p.recall),
            p.complete.to_string(),
            p.partial.to_string(),
            format!("{:.1}", p.avg_io),
            p.finite_bounds.to_string(),
            format!("{:.1}", p.avg_bound),
            p.bound_violations.to_string(),
        ]);
    }
    t.to_markdown()
}

/// Hand-rolled JSON (the workspace has no serde): stable field order,
/// numbers via `format!` so the file diffs cleanly between runs.
fn render_json(ctx: &ExperimentContext, r: &ApproxReport) -> String {
    let mut s = String::from("{\n");
    s.push_str("  \"experiment\": \"approx\",\n");
    s.push_str(&format!("  \"dataset\": \"{}\",\n", r.dataset));
    s.push_str(&format!("  \"scale\": {},\n", ctx.scale));
    s.push_str(&format!("  \"seed\": {},\n", ctx.seed));
    s.push_str(&format!("  \"queries\": {},\n", r.queries));
    s.push_str(&format!("  \"n\": {},\n", r.n));
    s.push_str(&format!(
        "  \"exact_recall\": {},\n",
        if r.exact_ok() { 1 } else { 0 }
    ));
    s.push_str("  \"sweep\": [\n");
    for (i, p) in r.points.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"scheme\": \"{}\", \"epsilon\": {}, \"budget\": \"{}\", \
             \"recall\": {:.4}, \"complete\": {}, \"partial\": {}, \"avg_io\": {:.2}, \
             \"finite_bounds\": {}, \"avg_bound\": {:.4}, \"bound_violations\": {}, \
             \"exact_divergences\": {}}}{}\n",
            p.scheme,
            p.epsilon,
            p.budget,
            p.recall,
            p.complete,
            p.partial,
            p.avg_io,
            p.finite_bounds,
            p.avg_bound,
            p.bound_violations,
            p.exact_divergences,
            if i + 1 == r.points.len() { "" } else { "," },
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_mode_bit_identical_and_bounds_sound() {
        let ctx = ExperimentContext::tiny();
        let r = measure(&ctx);
        assert_eq!(
            r.points.len(),
            EPSILONS.len() * BUDGETS.len() * Scheme::TABLE3.len()
        );
        // The soundness contract holds in every cell of the grid.
        for p in &r.points {
            assert_eq!(
                p.bound_violations, 0,
                "{} ε={} {}: bound failed to bracket the exact score",
                p.scheme, p.epsilon, p.budget
            );
            assert_eq!(p.complete + p.partial, r.queries);
            assert!((0.0..=1.0).contains(&p.recall));
        }
        // ε = 0 / unlimited is the exact path, bit for bit.
        assert!(r.exact_ok(), "exact-mode cells diverged from the exact path");
        // A tight I/O allowance must actually cut something off, and the
        // cutoff must surface as typed partials, never errors (measure
        // would have panicked on an error).
        let tight: usize = r
            .points
            .iter()
            .filter(|p| p.budget == "io 8")
            .map(|p| p.partial)
            .sum();
        assert!(tight > 0, "io 8 budget never tripped");
        let json = render_json(&ctx, &r);
        assert!(json.contains("\"experiment\": \"approx\""));
        assert!(json.contains("\"exact_recall\": 1"));
        assert_eq!(json.matches('{').count(), json.matches('}').count(), "{json}");
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        let md = render_markdown(&r);
        assert!(md.contains("Anytime/approximate sweep"));
    }
}
