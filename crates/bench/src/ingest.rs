//! Streaming-ingest sweep over the writable disk mode (not from the
//! paper).
//!
//! Seeds a writable page file from the CA dataset, then streams fresh
//! points through a [`StreamingIngestor`] (sliding-window eviction, one
//! shadow-paged commit every `COMMIT_EVERY` pushes) at several buffer
//! pool capacities, measuring three things per cell:
//!
//! - **ingest throughput** — sustained pushes/second including eviction
//!   and commit cost (`ingest_per_s` in the JSON);
//! - **query latency while ingesting** — an NWC* query interleaved
//!   every [`QUERY_EVERY`] pushes, answered from the live index (dirty
//!   overlay + committed pages), exact p50/p99;
//! - **crash-recovery time** — after the final commit the index is
//!   dropped and the page file reopened cold, timing the full open
//!   (validation scan + derived-structure rebuild), i.e. the time to
//!   resume service after a crash.
//!
//! An `arena` row runs the identical stream against the in-memory index
//! as the no-I/O ceiling. Besides the markdown table, the run writes
//! machine-readable `results/BENCH_ingest.json`.

use crate::context::ExperimentContext;
use crate::table::Table;
use nwc_core::{
    DiskIndexConfig, IngestConfig, NwcIndex, NwcQuery, Scheme, StreamingIngestor, WindowSpec,
};
use nwc_geom::Point;
use std::time::Instant;

/// Pushes between interleaved probe queries.
pub const QUERY_EVERY: usize = 32;

/// Pushes between shadow-paged commits on disk-backed cells.
pub const COMMIT_EVERY: usize = 64;

/// One cell of the sweep.
#[derive(Clone, Debug)]
pub struct IngestPoint {
    /// `"arena"` or the pool capacity in pages (`"unbounded"`, `"256"`, …).
    pub pool: String,
    /// Points streamed through the window.
    pub pushes: u64,
    /// Sliding-window evictions performed.
    pub evicted: u64,
    /// Commits performed (cadence + final).
    pub commits: u64,
    /// Sustained pushes per second, eviction and commit cost included.
    pub ingest_per_s: f64,
    /// Median interleaved-query latency, microseconds.
    pub query_p50_us: u64,
    /// 99th-percentile interleaved-query latency, microseconds.
    pub query_p99_us: u64,
    /// Cold reopen (crash recovery) after the final commit, milliseconds;
    /// 0 for the arena row (nothing to reopen).
    pub reopen_ms: f64,
}

/// Everything the ingest experiment measured.
#[derive(Clone, Debug)]
pub struct IngestReport {
    /// Dataset seeding the window.
    pub dataset: String,
    /// Live objects retained by the sliding window.
    pub window: usize,
    /// Points streamed per cell.
    pub stream_len: usize,
    /// One row per backend/pool-capacity.
    pub points: Vec<IngestPoint>,
}

/// Runs the sweep and renders the markdown table; also writes
/// `results/BENCH_ingest.json` (errors writing the file are reported on
/// stderr, not fatal — the measurement still prints).
pub fn ingest(ctx: &ExperimentContext) -> String {
    let report = measure(ctx);
    let json = render_json(ctx, &report);
    let path = "results/BENCH_ingest.json";
    match std::fs::create_dir_all("results").and_then(|()| std::fs::write(path, &json)) {
        Ok(()) => eprintln!("[ingest] wrote {path}"),
        Err(e) => eprintln!("[ingest] could not write {path}: {e}"),
    }
    render_markdown(&report)
}

/// The measurement itself, separated from rendering for tests.
pub fn measure(ctx: &ExperimentContext) -> IngestReport {
    let ds = ctx.dataset("CA");
    let window = ds.points.len();
    let stream_len = (window / 2).max(64);
    let stream = stream_points(stream_len, ctx.seed);
    let probes = ctx.query_points();

    let mut points = Vec::new();

    // In-memory ceiling: the same stream with no page I/O at all.
    {
        let idx = NwcIndex::build(ds.points.clone());
        let (point, _) = run_cell("arena", idx, window, &stream, &probes);
        points.push(point);
    }

    // Disk-backed cells across pool capacities. `None` = unbounded.
    for cap in [None, Some(256), Some(64)] {
        let label = cap.map_or_else(|| "unbounded".to_string(), |c: usize| c.to_string());
        let path = std::env::temp_dir().join(format!(
            "nwc-ingest-bench-{}-{}.pages",
            std::process::id(),
            label
        ));
        let arena = NwcIndex::build(ds.points.clone());
        arena
            .save_tree_writable(&path)
            .unwrap_or_else(|e| panic!("saving writable page file: {e}"));
        drop(arena);
        let config = DiskIndexConfig {
            pool_capacity: cap,
            ..DiskIndexConfig::default()
        };
        let idx = NwcIndex::open_disk(&path, config)
            .unwrap_or_else(|e| panic!("opening writable page file: {e}"));
        let (mut point, committed) = run_cell(&label, idx, window, &stream, &probes);
        drop(committed);
        // Crash-recovery: reopen the committed file cold, timing the
        // full open (validation scan + grid/IWP rebuild).
        let t = Instant::now();
        let reopened = NwcIndex::open_disk(&path, config)
            .unwrap_or_else(|e| panic!("reopening after commit: {e}"));
        point.reopen_ms = t.elapsed().as_secs_f64() * 1e3;
        assert_eq!(reopened.len(), window, "reopen lost objects");
        drop(reopened);
        let _ = std::fs::remove_file(&path);
        points.push(point);
    }

    IngestReport {
        dataset: ds.name,
        window,
        stream_len,
        points,
    }
}

/// Streams `stream` through a full window over `idx`, probing with NWC*
/// queries along the way. Returns the measured cell and the (committed)
/// index for reopen timing.
fn run_cell(
    pool: &str,
    idx: NwcIndex,
    window: usize,
    stream: &[Point],
    probes: &[Point],
) -> (IngestPoint, NwcIndex) {
    let mut ing = StreamingIngestor::new(
        idx,
        IngestConfig {
            capacity: window,
            commit_every: COMMIT_EVERY,
        },
    );
    let mut query_lat_us: Vec<u64> = Vec::new();
    let spec = WindowSpec::square(500.0);
    let t0 = Instant::now();
    for (i, &p) in stream.iter().enumerate() {
        ing.push(p).unwrap_or_else(|e| panic!("push failed: {e}"));
        if i % QUERY_EVERY == 0 {
            let probe = probes[(i / QUERY_EVERY) % probes.len()];
            let q = NwcQuery::new(probe, spec, 8);
            let t = Instant::now();
            // NWC+ (not *) so no IWP rebuild is forced mid-stream: the
            // augmentation is invalidated by every push.
            let _ = ing.index().nwc(&q, Scheme::NWC_PLUS);
            query_lat_us.push(t.elapsed().as_micros().min(u128::from(u64::MAX)) as u64);
        }
    }
    ing.commit().unwrap_or_else(|e| panic!("final commit failed: {e}"));
    let elapsed = t0.elapsed().as_secs_f64();
    query_lat_us.sort_unstable();
    let point = IngestPoint {
        pool: pool.to_string(),
        pushes: stream.len() as u64,
        evicted: ing.evicted(),
        commits: ing.commits(),
        ingest_per_s: stream.len() as f64 / elapsed.max(1e-9),
        query_p50_us: percentile(&query_lat_us, 0.50),
        query_p99_us: percentile(&query_lat_us, 0.99),
        reopen_ms: 0.0,
    };
    (point, ing.into_index())
}

/// Fresh arrivals: a drifting hot spot, the common shape of check-in
/// streams (new activity clusters, old activity ages out).
fn stream_points(n: usize, seed: u64) -> Vec<Point> {
    let mut state = seed | 1;
    let mut next = move || {
        // xorshift64*, plenty for benchmark point jitter.
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        (state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11) as f64 / (1u64 << 53) as f64
    };
    (0..n)
        .map(|i| {
            let t = i as f64 / n.max(1) as f64;
            let cx = 2_000.0 + 6_000.0 * t;
            let cy = 5_000.0 - 3_000.0 * t;
            Point::new(cx + next() * 400.0, cy + next() * 400.0)
        })
        .collect()
}

/// Exact percentile over sorted microsecond latencies (ceil-rank).
fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn render_markdown(r: &IngestReport) -> String {
    let mut t = Table::new(
        "ingest",
        format!(
            "Streaming ingest with sliding-window retention — {} seed window of {} \
             objects, {} fresh points streamed per cell, commit every {} pushes, one \
             NWC+ probe query every {} pushes. `reopen` is the cold crash-recovery \
             open of the committed page file.",
            r.dataset, r.window, r.stream_len, COMMIT_EVERY, QUERY_EVERY,
        ),
        vec![
            "pool", "pushes", "evicted", "commits", "ingest/s", "query p50 µs",
            "query p99 µs", "reopen ms",
        ],
    );
    for p in &r.points {
        t.push_row(vec![
            p.pool.clone(),
            p.pushes.to_string(),
            p.evicted.to_string(),
            p.commits.to_string(),
            format!("{:.0}", p.ingest_per_s),
            p.query_p50_us.to_string(),
            p.query_p99_us.to_string(),
            if p.reopen_ms > 0.0 {
                format!("{:.2}", p.reopen_ms)
            } else {
                "—".to_string()
            },
        ]);
    }
    t.to_markdown()
}

/// Hand-rolled JSON (the workspace has no serde): stable field order,
/// numbers via `format!` so the file diffs cleanly between runs.
fn render_json(ctx: &ExperimentContext, r: &IngestReport) -> String {
    let mut s = String::from("{\n");
    s.push_str("  \"experiment\": \"ingest\",\n");
    s.push_str(&format!("  \"dataset\": \"{}\",\n", r.dataset));
    s.push_str(&format!("  \"scale\": {},\n", ctx.scale));
    s.push_str(&format!("  \"seed\": {},\n", ctx.seed));
    s.push_str(&format!("  \"window\": {},\n", r.window));
    s.push_str(&format!("  \"stream_len\": {},\n", r.stream_len));
    s.push_str(&format!("  \"commit_every\": {},\n", COMMIT_EVERY));
    s.push_str("  \"sweep\": [\n");
    for (i, p) in r.points.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"pool\": \"{}\", \"pushes\": {}, \"evicted\": {}, \"commits\": {}, \
             \"ingest_per_s\": {:.2}, \"query_p50_us\": {}, \"query_p99_us\": {}, \
             \"reopen_ms\": {:.3}}}{}\n",
            p.pool,
            p.pushes,
            p.evicted,
            p.commits,
            p.ingest_per_s,
            p.query_p50_us,
            p.query_p99_us,
            p.reopen_ms,
            if i + 1 == r.points.len() { "" } else { "," },
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_measures_all_backends_and_json_well_formed() {
        let ctx = ExperimentContext::tiny();
        let r = measure(&ctx);
        assert_eq!(r.points.len(), 4, "arena + three pool capacities");
        assert_eq!(r.points[0].pool, "arena");
        for p in &r.points {
            assert!(p.ingest_per_s > 0.0, "no throughput in cell {p:?}");
            assert_eq!(p.pushes as usize, r.stream_len);
            assert!(p.evicted > 0, "window never slid in cell {p:?}");
            assert!(p.query_p50_us <= p.query_p99_us);
        }
        for p in &r.points[1..] {
            assert!(p.commits > 0, "disk cell never committed: {p:?}");
            assert!(p.reopen_ms > 0.0, "reopen not timed in cell {p:?}");
        }
        let json = render_json(&ctx, &r);
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced JSON"
        );
        assert!(json.contains("\"ingest_per_s\""));
    }
}
