//! Measurement helpers: build indexes and average I/O and wall-clock
//! time over query sets.

use nwc_core::{
    IndexConfig, KnwcQuery, NwcIndex, NwcQuery, QueryScratch, Scheme, SearchStats, WindowSpec,
};
use nwc_datagen::Dataset;
use nwc_geom::Point;
use std::time::Instant;

/// Builds the full index (tree + default 25-unit grid + IWP) for a
/// dataset.
pub fn build_index(ds: &Dataset) -> NwcIndex {
    NwcIndex::build(ds.points.clone())
}

/// Builds a lean index (no grid, no IWP) for schemes that need neither.
pub fn build_lean_index(ds: &Dataset) -> NwcIndex {
    NwcIndex::build_with(
        ds.points.clone(),
        IndexConfig {
            grid_cell_size: None,
            build_iwp: false,
            ..Default::default()
        },
    )
}

/// Aggregated measurement over a query set.
#[derive(Clone, Copy, Debug, Default)]
pub struct Measurement {
    /// Mean node accesses per query (the paper's reported metric).
    pub avg_io: f64,
    /// Mean traversal node accesses.
    pub avg_io_traversal: f64,
    /// Mean window-query node accesses.
    pub avg_io_windows: f64,
    /// Fraction of queries that found a result.
    pub hit_rate: f64,
    /// Mean window queries issued.
    pub avg_window_queries: f64,
    /// Mean wall-clock latency per query, microseconds.
    pub avg_latency_us: f64,
    /// Sequential throughput: queries / wall-clock second.
    pub queries_per_sec: f64,
}

impl Measurement {
    /// Fills the wall-clock fields from a measured run.
    fn with_wall_clock(mut self, elapsed: std::time::Duration, count: usize) -> Self {
        let secs = elapsed.as_secs_f64();
        self.avg_latency_us = secs * 1e6 / count as f64;
        self.queries_per_sec = if secs > 0.0 { count as f64 / secs } else { 0.0 };
        self
    }
}

/// Runs `NWC(q, spec, n)` for every query point and averages the stats.
pub fn measure_nwc(
    index: &NwcIndex,
    queries: &[Point],
    spec: WindowSpec,
    n: usize,
    scheme: Scheme,
) -> Measurement {
    let mut acc = SearchStats::default();
    let mut hits = 0usize;
    let mut scratch = QueryScratch::new();
    let start = Instant::now();
    for &q in queries {
        let query = NwcQuery::new(q, spec, n);
        let (result, stats) = index.nwc_full_with(&query, scheme, &mut scratch);
        acc.accumulate(&stats);
        hits += usize::from(result.is_some());
    }
    let elapsed = start.elapsed();
    let count = queries.len() as f64;
    Measurement {
        avg_io: acc.io_total as f64 / count,
        avg_io_traversal: acc.io_traversal as f64 / count,
        avg_io_windows: acc.io_window_queries as f64 / count,
        hit_rate: hits as f64 / count,
        avg_window_queries: acc.window_queries as f64 / count,
        ..Default::default()
    }
    .with_wall_clock(elapsed, queries.len())
}

/// Runs `kNWC` for every query point and averages the I/O.
pub fn measure_knwc(
    index: &NwcIndex,
    queries: &[Point],
    spec: WindowSpec,
    n: usize,
    k: usize,
    m: usize,
    scheme: Scheme,
) -> Measurement {
    let mut acc = SearchStats::default();
    let mut hits = 0usize;
    let mut scratch = QueryScratch::new();
    let start = Instant::now();
    for &q in queries {
        let query = KnwcQuery::new(q, spec, n, k, m);
        let r = index.knwc_with(&query, scheme, &mut scratch);
        acc.accumulate(&r.stats);
        hits += usize::from(!r.groups.is_empty());
    }
    let elapsed = start.elapsed();
    let count = queries.len() as f64;
    Measurement {
        avg_io: acc.io_total as f64 / count,
        avg_io_traversal: acc.io_traversal as f64 / count,
        avg_io_windows: acc.io_window_queries as f64 / count,
        hit_rate: hits as f64 / count,
        avg_window_queries: acc.window_queries as f64 / count,
        ..Default::default()
    }
    .with_wall_clock(elapsed, queries.len())
}

/// `1 − opt/base` as a percentage string, the paper's "I/O cost
/// reduction rate".
pub fn reduction_rate(base: f64, optimized: f64) -> String {
    if base <= 0.0 {
        return "-".into();
    }
    format!("{:.1}%", (1.0 - optimized / base) * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduction_rate_formats() {
        assert_eq!(reduction_rate(100.0, 25.0), "75.0%");
        assert_eq!(reduction_rate(0.0, 10.0), "-");
    }

    #[test]
    fn measure_smoke() {
        let ds = Dataset::clustered(2_000, 10, 10.0, 50.0, 0.1, 1);
        let index = build_index(&ds);
        let queries = Dataset::query_points(3, 1);
        let m = measure_nwc(&index, &queries, WindowSpec::square(100.0), 4, Scheme::NWC_STAR);
        assert!(m.avg_io > 0.0);
        assert!(m.hit_rate > 0.0);
        assert!((m.avg_io - m.avg_io_traversal - m.avg_io_windows).abs() < 1e-9);
        assert!(m.avg_latency_us > 0.0);
        assert!(m.queries_per_sec > 0.0);
    }
}
