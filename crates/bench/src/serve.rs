//! Load-generator sweep over the `nwc-serve` service layer (not from
//! the paper).
//!
//! An in-process server fronts a saved page file; the sweep measures it
//! two ways:
//!
//! - **closed loop** — `C` connections issuing queries back-to-back.
//!   This finds the service's *capacity*: the QPS it sustains when the
//!   clients themselves provide backpressure.
//! - **open loop** — queries arrive on a fixed schedule at {50 %,
//!   100 %, 150 %} of the measured capacity, crossed with a generous
//!   and a tight per-query deadline. Latency is measured from each
//!   query's *scheduled* send time, not the moment the socket write
//!   happened, so queue buildup is charged to the tail instead of
//!   silently dropped (the coordinated-omission trap). At 150 % the
//!   interesting output is not latency but *behavior*: the admission
//!   queue sheds with typed retry-after responses and tight deadlines
//!   convert queue wait into typed `Deadline` responses, rather than
//!   the server melting.
//!
//! Percentiles here are exact (sorted per-cell latencies), unlike the
//! server's own ≤ 2× log-bucketed scrape histograms. Besides the
//! markdown table, the run writes machine-readable
//! `results/BENCH_serve.json`.

use crate::context::ExperimentContext;
use crate::runner::build_index;
use crate::table::Table;
use nwc_core::{PageLayout, Scheme};
use nwc_serve::{IndexHandle, QueryOutcome, ServeClient, Server, ServerConfig};
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Open-loop offered load as fractions of the measured capacity.
pub const LOAD_FRACTIONS: [f64; 3] = [0.5, 1.0, 1.5];

/// Per-query deadlines crossed with each load point: a generous budget
/// that effectively never fires, and a tight one that converts queue
/// wait into typed `Deadline` responses under overload.
pub const DEADLINES_MS: [u32; 2] = [2_000, 5];

/// Concurrent client connections (closed loop and open loop both).
const CONNECTIONS: usize = 8;

/// One cell of the sweep.
#[derive(Clone, Debug)]
pub struct ServePoint {
    /// `"closed"` or `"open"`.
    pub mode: String,
    /// Offered load (0 for the closed loop — the clients set the pace).
    pub target_qps: f64,
    /// Per-query deadline sent on the wire.
    pub deadline_ms: u32,
    /// Requests sent.
    pub sent: u64,
    /// Typed outcomes.
    pub answered: u64,
    /// Queries that exceeded their deadline mid-search.
    pub deadline: u64,
    /// Requests rejected at admission.
    pub shed: u64,
    /// Untyped failures (protocol/socket/BadRequest/IoFailed) — always
    /// 0 on a healthy server.
    pub errors: u64,
    /// Answered queries per second of wall clock.
    pub achieved_qps: f64,
    /// Exact latency percentiles over answered queries, microseconds,
    /// measured from the scheduled send time.
    pub p50_us: u64,
    /// 99th percentile.
    pub p99_us: u64,
    /// 99.9th percentile.
    pub p999_us: u64,
}

/// Everything the serve experiment measured.
#[derive(Clone, Debug)]
pub struct ServeReport {
    /// Dataset the page file was built from.
    pub dataset: String,
    /// Server worker threads.
    pub workers: usize,
    /// Client connections per cell.
    pub connections: usize,
    /// Wall clock per cell, milliseconds.
    pub cell_ms: u64,
    /// Capacity measured by the closed loop, queries/second.
    pub capacity_qps: f64,
    /// The closed-loop point followed by the open-loop grid.
    pub points: Vec<ServePoint>,
}

/// Runs the sweep and renders the markdown table; also writes
/// `results/BENCH_serve.json` (errors writing the file are reported on
/// stderr, not fatal — the measurement still prints).
pub fn serve(ctx: &ExperimentContext) -> String {
    let report = measure(ctx);
    let json = render_json(ctx, &report);
    let path = "results/BENCH_serve.json";
    match std::fs::create_dir_all("results").and_then(|()| std::fs::write(path, &json)) {
        Ok(()) => eprintln!("[serve] wrote {path}"),
        Err(e) => eprintln!("[serve] could not write {path}: {e}"),
    }
    render_markdown(&report)
}

/// The measurement itself, separated from rendering for tests.
pub fn measure(ctx: &ExperimentContext) -> ServeReport {
    let ds = ctx.dataset("CA");
    let arena = build_index(&ds);
    let path = std::env::temp_dir().join(format!("nwc-serve-bench-{}.pages", std::process::id()));
    arena
        .save_tree_with_layout(&path, PageLayout::Clustered)
        .unwrap_or_else(|e| panic!("saving page file: {e}"));
    drop(arena);

    // A queue roughly one cell's depth and a modest wait bound, so the
    // 150 % cell actually sheds instead of queueing unboundedly.
    let config = ServerConfig {
        workers: 4,
        queue_depth: 64,
        max_estimated_wait: Duration::from_millis(250),
        default_deadline: None,
        ..ServerConfig::default()
    };
    let index = nwc_core::NwcIndex::open_disk(&path, config.swap_config)
        .unwrap_or_else(|e| panic!("opening page file: {e}"));
    let server = Server::start(Arc::new(IndexHandle::new(index)), "127.0.0.1:0", config)
        .unwrap_or_else(|e| panic!("starting server: {e}"));
    let addr = server.local_addr();

    // Short cells at tiny scale keep the unit test fast; real runs get
    // long enough cells for stable tails.
    let cell = if ctx.scale <= 0.02 {
        Duration::from_millis(150)
    } else {
        Duration::from_millis(800)
    };

    // Warm the pool so the closed loop measures steady state.
    let _ = run_cell(addr, Mode::Closed, 0.0, 2_000, cell / 4, ctx.seed);

    let closed = run_cell(addr, Mode::Closed, 0.0, DEADLINES_MS[0], cell, ctx.seed);
    let capacity_qps = closed.achieved_qps;
    let mut points = vec![closed];
    for &fraction in &LOAD_FRACTIONS {
        let qps = (capacity_qps * fraction).max(1.0);
        for &deadline_ms in &DEADLINES_MS {
            points.push(run_cell(addr, Mode::Open(qps), qps, deadline_ms, cell, ctx.seed));
        }
    }
    server.shutdown();
    let _ = std::fs::remove_file(&path);

    ServeReport {
        dataset: ds.name,
        workers: 4,
        connections: CONNECTIONS,
        cell_ms: cell.as_millis() as u64,
        capacity_qps,
        points,
    }
}

enum Mode {
    /// Back-to-back: each connection sends the next query the moment
    /// the previous answer lands.
    Closed,
    /// Scheduled arrivals at the given aggregate QPS.
    Open(f64),
}

/// Runs one cell: `CONNECTIONS` client threads against `addr` for
/// `duration`, tallying typed outcomes and exact latencies.
fn run_cell(
    addr: SocketAddr,
    mode: Mode,
    target_qps: f64,
    deadline_ms: u32,
    duration: Duration,
    seed: u64,
) -> ServePoint {
    let per_conn_interval = match mode {
        Mode::Closed => None,
        Mode::Open(qps) => Some(Duration::from_secs_f64(CONNECTIONS as f64 / qps)),
    };
    let start = Instant::now() + Duration::from_millis(5);
    let end = start + duration;
    let mut tallies = Vec::new();
    std::thread::scope(|scope| {
        let mut joins = Vec::new();
        for conn in 0..CONNECTIONS {
            joins.push(scope.spawn(move || {
                conn_loop(addr, conn, seed, deadline_ms, per_conn_interval, start, end)
            }));
        }
        for j in joins {
            tallies.push(j.join().unwrap_or_else(|_| panic!("client thread panicked")));
        }
    });

    let mut point = ServePoint {
        mode: match mode {
            Mode::Closed => "closed".to_string(),
            Mode::Open(_) => "open".to_string(),
        },
        target_qps,
        deadline_ms,
        sent: 0,
        answered: 0,
        deadline: 0,
        shed: 0,
        errors: 0,
        achieved_qps: 0.0,
        p50_us: 0,
        p99_us: 0,
        p999_us: 0,
    };
    let mut latencies: Vec<u64> = Vec::new();
    for t in tallies {
        point.sent += t.sent;
        point.answered += t.answered;
        point.deadline += t.deadline;
        point.shed += t.shed;
        point.errors += t.errors;
        latencies.extend(t.latencies_us);
    }
    latencies.sort_unstable();
    point.achieved_qps = point.answered as f64 / duration.as_secs_f64();
    point.p50_us = percentile(&latencies, 0.50);
    point.p99_us = percentile(&latencies, 0.99);
    point.p999_us = percentile(&latencies, 0.999);
    point
}

#[derive(Default)]
struct ConnTally {
    sent: u64,
    answered: u64,
    deadline: u64,
    shed: u64,
    errors: u64,
    latencies_us: Vec<u64>,
}

fn conn_loop(
    addr: SocketAddr,
    conn: usize,
    seed: u64,
    deadline_ms: u32,
    interval: Option<Duration>,
    start: Instant,
    end: Instant,
) -> ConnTally {
    let mut tally = ConnTally::default();
    let Ok(mut client) = ServeClient::connect(addr) else {
        tally.errors += 1;
        return tally;
    };
    let queries = nwc_datagen::Dataset::query_points(64, seed ^ (conn as u64).wrapping_mul(0x9e37));
    // Stagger open-loop connections so aggregate arrivals are evenly
    // spaced, not bursts of CONNECTIONS.
    let offset = interval.map_or(Duration::ZERO, |iv| iv * conn as u32 / CONNECTIONS as u32);
    let mut next = start + offset;
    let mut i = 0usize;
    loop {
        let scheduled = match interval {
            // Open loop: wait for the schedule; latency is measured
            // from the *scheduled* time even when we fall behind.
            Some(iv) => {
                if next >= end {
                    break;
                }
                let now = Instant::now();
                if next > now {
                    std::thread::sleep(next - now);
                }
                let s = next;
                next += iv;
                s
            }
            // Closed loop: the clock is the previous response.
            None => {
                let now = Instant::now();
                if now >= end {
                    break;
                }
                now
            }
        };
        let q = queries[i % queries.len()];
        i += 1;
        tally.sent += 1;
        match client.nwc(Scheme::NWC_STAR, q.x, q.y, 200.0, 200.0, 8, deadline_ms) {
            Ok(QueryOutcome::Answer { .. }) => {
                tally.answered += 1;
                let us = scheduled.elapsed().as_micros();
                tally.latencies_us.push(u64::try_from(us).unwrap_or(u64::MAX));
            }
            // Legacy requests never receive Partial; count one as a
            // deadline if a future server ever sends it here.
            Ok(QueryOutcome::Deadline | QueryOutcome::Partial { .. }) => tally.deadline += 1,
            Ok(QueryOutcome::Shed { .. }) => tally.shed += 1,
            // The server never drains mid-cell; if a Stopped does
            // arrive, drop the request from the tally entirely.
            Ok(QueryOutcome::Stopped) => tally.sent -= 1,
            Ok(QueryOutcome::BadRequest(_) | QueryOutcome::IoFailed(_)) | Err(_) => {
                tally.errors += 1;
            }
        }
    }
    tally
}

/// Exact percentile over sorted microsecond latencies (ceil-rank).
fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn render_markdown(r: &ServeReport) -> String {
    let mut t = Table::new(
        "serve",
        format!(
            "Service-layer load sweep — {} on {} workers, {} connections, {} ms cells. \
             Closed-loop capacity {:.0} QPS; open-loop latency is measured from the \
             scheduled send time (coordinated-omission-safe); `shed` and `deadline` \
             are typed responses, not failures.",
            r.dataset, r.workers, r.connections, r.cell_ms, r.capacity_qps,
        ),
        vec![
            "mode", "target QPS", "deadline ms", "sent", "answered", "deadline", "shed",
            "errors", "achieved QPS", "p50 µs", "p99 µs", "p999 µs",
        ],
    );
    for p in &r.points {
        t.push_row(vec![
            p.mode.clone(),
            if p.target_qps > 0.0 {
                format!("{:.0}", p.target_qps)
            } else {
                "—".to_string()
            },
            p.deadline_ms.to_string(),
            p.sent.to_string(),
            p.answered.to_string(),
            p.deadline.to_string(),
            p.shed.to_string(),
            p.errors.to_string(),
            format!("{:.0}", p.achieved_qps),
            p.p50_us.to_string(),
            p.p99_us.to_string(),
            p.p999_us.to_string(),
        ]);
    }
    t.to_markdown()
}

/// Hand-rolled JSON (the workspace has no serde): stable field order,
/// numbers via `format!` so the file diffs cleanly between runs.
fn render_json(ctx: &ExperimentContext, r: &ServeReport) -> String {
    let mut s = String::from("{\n");
    s.push_str("  \"experiment\": \"serve\",\n");
    s.push_str(&format!("  \"dataset\": \"{}\",\n", r.dataset));
    s.push_str(&format!("  \"scale\": {},\n", ctx.scale));
    s.push_str(&format!("  \"seed\": {},\n", ctx.seed));
    s.push_str(&format!("  \"workers\": {},\n", r.workers));
    s.push_str(&format!("  \"connections\": {},\n", r.connections));
    s.push_str(&format!("  \"cell_ms\": {},\n", r.cell_ms));
    s.push_str(&format!("  \"capacity_qps\": {:.2},\n", r.capacity_qps));
    s.push_str("  \"sweep\": [\n");
    for (i, p) in r.points.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"mode\": \"{}\", \"target_qps\": {:.2}, \"deadline_ms\": {}, \
             \"sent\": {}, \"answered\": {}, \"deadline\": {}, \"shed\": {}, \
             \"errors\": {}, \"achieved_qps\": {:.2}, \
             \"p50_us\": {}, \"p99_us\": {}, \"p999_us\": {}}}{}\n",
            p.mode,
            p.target_qps,
            p.deadline_ms,
            p.sent,
            p.answered,
            p.deadline,
            p.shed,
            p.errors,
            p.achieved_qps,
            p.p50_us,
            p.p99_us,
            p.p999_us,
            if i + 1 == r.points.len() { "" } else { "," },
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_grid_with_typed_outcomes_and_json_well_formed() {
        let ctx = ExperimentContext::tiny();
        let r = measure(&ctx);
        // Closed-loop point plus the open-loop load × deadline grid.
        assert_eq!(
            r.points.len(),
            1 + LOAD_FRACTIONS.len() * DEADLINES_MS.len()
        );
        assert!(r.capacity_qps > 0.0, "closed loop answered nothing");
        for p in &r.points {
            assert_eq!(p.errors, 0, "untyped failures in cell {p:?}");
            assert_eq!(
                p.sent,
                p.answered + p.deadline + p.shed,
                "outcome counts do not add up in cell {p:?}"
            );
        }
        // Some cell must actually answer, and answered cells have sane
        // percentile ordering.
        assert!(r.points.iter().any(|p| p.answered > 0));
        for p in r.points.iter().filter(|p| p.answered > 0) {
            assert!(p.p50_us <= p.p99_us && p.p99_us <= p.p999_us);
        }
        let json = render_json(&ctx, &r);
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced JSON"
        );
        assert!(json.contains("\"capacity_qps\""));
    }

    #[test]
    fn percentile_is_exact_ceil_rank() {
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 0.50), 50);
        assert_eq!(percentile(&v, 0.99), 99);
        assert_eq!(percentile(&v, 0.999), 100);
        assert_eq!(percentile(&[], 0.5), 0);
    }
}
