//! Spatial sharding scatter-gather sweep (beyond the paper).
//!
//! Cuts the CA-like dataset into K spatial tiles, saves them as a
//! sharded page-file directory, reopens with one *total* buffer-pool
//! budget split across the shard pools, and answers the same NWC*
//! query batch at several scatter widths. Reported per cell:
//!
//! - wall-clock and queries/sec;
//! - total **logical** I/O (the paper's metric) summed over the batch —
//!   and its ratio against the K = 1 cell at the same pool budget, the
//!   acceptance bar for the sharding overhead (cross-shard window
//!   queries re-descend K − 1 extra roots, bounded ≈ 1.25× at K = 4);
//! - the exact per-shard pool split, the shard count actually built,
//!   and the host's core count — on a 1-core container the thread sweep
//!   demonstrates correctness and bound-sharing, not parallel speedup.
//!
//! Writes machine-readable `results/BENCH_shard.json`.

use crate::context::ExperimentContext;
use crate::table::Table;
use nwc_core::{
    DiskIndexConfig, NwcQuery, Scheme, SearchStats, ShardedNwcIndex, WindowSpec,
};
use std::time::Instant;

/// One (pool budget × shard count × thread count) cell.
#[derive(Clone, Debug)]
pub struct ShardCell {
    /// Total pool frames across all shard pools (0 = unbounded).
    pub pool_capacity: usize,
    /// Shard count requested.
    pub shards_requested: usize,
    /// Shard count actually built (tiles are never empty).
    pub shards: usize,
    /// The monotone per-shard frame split actually applied.
    pub pool_split: Vec<usize>,
    /// Scatter width (worker threads).
    pub threads: usize,
    /// Wall-clock for the whole batch, seconds.
    pub wall_s: f64,
    /// Aggregate throughput, queries per second.
    pub queries_per_sec: f64,
    /// Total logical I/O over the batch (traversal + window queries).
    pub logical_io: u64,
    /// `logical_io` relative to the K = 1, 1-thread cell at the same
    /// pool budget (1.0 for that baseline itself).
    pub io_ratio_vs_unsharded: f64,
}

/// Everything the sharding experiment measured.
#[derive(Clone, Debug)]
pub struct ShardReport {
    /// Dataset the index was built over.
    pub dataset: String,
    /// CPU cores available (`available_parallelism`) — the honesty
    /// field for the thread sweep.
    pub cores: usize,
    /// Queries per cell.
    pub queries: usize,
    /// All sweep cells, pool budget outermost.
    pub cells: Vec<ShardCell>,
}

fn thread_counts() -> Vec<usize> {
    let max = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut counts = vec![1usize, max.min(4)];
    counts.sort_unstable();
    counts.dedup();
    counts
}

/// Runs the experiment and renders the markdown table; also writes
/// `results/BENCH_shard.json` (write errors are reported on stderr, not
/// fatal).
pub fn shard(ctx: &ExperimentContext) -> String {
    let report = measure(ctx);
    let json = render_json(ctx, &report);
    let path = "results/BENCH_shard.json";
    match std::fs::create_dir_all("results").and_then(|()| std::fs::write(path, &json)) {
        Ok(()) => eprintln!("[shard] wrote {path}"),
        Err(e) => eprintln!("[shard] could not write {path}: {e}"),
    }
    render_markdown(&report)
}

/// The measurement itself, separated from rendering for tests.
pub fn measure(ctx: &ExperimentContext) -> ShardReport {
    let ds = ctx.dataset("CA");
    let queries: Vec<NwcQuery> = ctx
        .query_points()
        .iter()
        .map(|&q| NwcQuery::new(q, WindowSpec::square(200.0), 8))
        .collect();
    let scheme = Scheme::NWC_STAR;
    let scratch_dir = std::env::temp_dir().join(format!("nwc-bench-shard-{}", std::process::id()));

    let mut cells = Vec::new();
    for pool_capacity in [64usize, 512] {
        let mut baseline_io: Option<u64> = None;
        for shards_requested in [1usize, 2, 4] {
            // Build + persist this tiling once, reopen per thread count
            // so every cell starts on a cold pool.
            let built = ShardedNwcIndex::build(ds.points.clone(), shards_requested);
            let dir = scratch_dir.join(format!("cap{pool_capacity}-k{shards_requested}"));
            if let Err(e) = built.save_to_dir(&dir) {
                eprintln!("[shard] skipping K={shards_requested}: save failed: {e}");
                continue;
            }
            for threads in thread_counts() {
                let opened = ShardedNwcIndex::open_dir(
                    &dir,
                    DiskIndexConfig {
                        pool_capacity: Some(pool_capacity),
                        ..DiskIndexConfig::default()
                    },
                );
                let index = match opened {
                    Ok(i) => i.with_threads(threads),
                    Err(e) => {
                        eprintln!("[shard] skipping K={shards_requested}/t{threads}: {e}");
                        continue;
                    }
                };
                let pool_split: Vec<usize> = index
                    .shards()
                    .iter()
                    .map(|s| {
                        s.tree()
                            .storage()
                            .map_or(0, |st| st.pool_stats().capacity)
                    })
                    .collect();
                let t = Instant::now();
                let mut total = SearchStats::default();
                let mut failed = 0usize;
                for q in &queries {
                    match index.try_nwc_full(q, scheme) {
                        Ok((result, stats)) => {
                            std::hint::black_box(&result);
                            total.accumulate(&stats);
                        }
                        Err(_) => failed += 1,
                    }
                }
                let wall_s = t.elapsed().as_secs_f64();
                if failed > 0 {
                    eprintln!(
                        "[shard] K={shards_requested}/t{threads}: {failed} queries failed"
                    );
                }
                if shards_requested == 1 && threads == 1 {
                    baseline_io = Some(total.io_total);
                }
                let ratio = match baseline_io {
                    Some(base) if base > 0 => total.io_total as f64 / base as f64,
                    _ => 1.0,
                };
                cells.push(ShardCell {
                    pool_capacity,
                    shards_requested,
                    shards: index.shard_count(),
                    pool_split,
                    threads,
                    wall_s,
                    queries_per_sec: queries.len() as f64 / wall_s.max(1e-9),
                    logical_io: total.io_total,
                    io_ratio_vs_unsharded: ratio,
                });
            }
        }
    }
    std::fs::remove_dir_all(&scratch_dir).ok();

    ShardReport {
        dataset: ds.name.clone(),
        cores: std::thread::available_parallelism().map_or(1, |n| n.get()),
        queries: queries.len(),
        cells,
    }
}

fn render_markdown(r: &ShardReport) -> String {
    let mut t = Table::new(
        "Spatial sharding scatter-gather",
        format!(
            "{} NWC* queries over {}; logical I/O vs the unsharded baseline at the same total \
             pool budget ({} core(s) available — thread speedup is bounded by that)",
            r.queries, r.dataset, r.cores
        ),
        vec![
            "pool frames",
            "shards",
            "split",
            "threads",
            "wall (s)",
            "queries/s",
            "logical I/O",
            "I/O vs K=1",
        ],
    );
    for c in &r.cells {
        let split = c
            .pool_split
            .iter()
            .map(|n| n.to_string())
            .collect::<Vec<_>>()
            .join("+");
        t.push_row(vec![
            c.pool_capacity.to_string(),
            c.shards.to_string(),
            split,
            c.threads.to_string(),
            format!("{:.3}", c.wall_s),
            format!("{:.0}", c.queries_per_sec),
            c.logical_io.to_string(),
            format!("{:.3}×", c.io_ratio_vs_unsharded),
        ]);
    }
    t.to_markdown()
}

/// Hand-rolled JSON (the workspace has no serde): stable field order,
/// numbers via `format!` so the file diffs cleanly between runs.
fn render_json(ctx: &ExperimentContext, r: &ShardReport) -> String {
    let mut s = String::from("{\n");
    s.push_str("  \"experiment\": \"shard\",\n");
    s.push_str(&format!("  \"dataset\": \"{}\",\n", r.dataset));
    s.push_str(&format!("  \"scale\": {},\n", ctx.scale));
    s.push_str(&format!("  \"seed\": {},\n", ctx.seed));
    s.push_str("  \"scheme\": \"NWC*\",\n");
    s.push_str(&format!("  \"cores\": {},\n", r.cores));
    s.push_str(&format!("  \"queries\": {},\n", r.queries));
    s.push_str("  \"cells\": [\n");
    for (i, c) in r.cells.iter().enumerate() {
        let split = c
            .pool_split
            .iter()
            .map(|n| n.to_string())
            .collect::<Vec<_>>()
            .join(", ");
        s.push_str(&format!(
            "    {{\"pool_capacity\": {}, \"shards_requested\": {}, \"shards\": {}, \
             \"pool_split\": [{}], \"threads\": {}, \"wall_s\": {:.6}, \
             \"queries_per_sec\": {:.2}, \"logical_io\": {}, \
             \"io_ratio_vs_unsharded\": {:.4}}}{}\n",
            c.pool_capacity,
            c.shards_requested,
            c.shards,
            split,
            c.threads,
            c.wall_s,
            c.queries_per_sec,
            c.logical_io,
            c.io_ratio_vs_unsharded,
            if i + 1 == r.cells.len() { "" } else { "," },
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_smoke_and_json_shape() {
        let ctx = ExperimentContext::tiny();
        let r = measure(&ctx);
        assert!(!r.cells.is_empty());
        // Baselines are exact 1.0; every cell records its split summing
        // to the budgeted total.
        for c in &r.cells {
            if c.shards_requested == 1 && c.threads == 1 {
                assert!((c.io_ratio_vs_unsharded - 1.0).abs() < 1e-12);
            }
            assert_eq!(c.pool_split.len(), c.shards);
            let total: usize = c.pool_split.iter().sum();
            assert_eq!(
                total,
                c.pool_capacity.max(c.shards),
                "split must budget exactly the total"
            );
        }
        // Sanity ceiling only: the tiny context (~100 points, height-1
        // trees, 2 queries) is fixed-cost dominated — one query on a
        // tile seam pays cross-shard root descents that never amortize.
        // The real ≤ 1.25× acceptance bar lives in
        // `acceptance_ratio_at_bench_scale` below and in the per-cell
        // `io_ratio_vs_unsharded` of `results/BENCH_shard.json`.
        for c in r.cells.iter().filter(|c| c.shards == 4 && c.threads == 1) {
            assert!(
                c.io_ratio_vs_unsharded <= 4.0,
                "K=4 logical I/O ratio {} exceeds even the tiny-regime ceiling",
                c.io_ratio_vs_unsharded
            );
        }
        let json = render_json(&ctx, &r);
        assert!(json.contains("\"experiment\": \"shard\""));
        assert!(json.contains("\"pool_split\""));
        assert!(json.contains("\"cores\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count(), "{json}");
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        let md = render_markdown(&r);
        assert!(md.contains("I/O vs K=1"));
    }

    /// The acceptance bar itself, at bench scale (the regime the
    /// experiment reports): K = 4 single-threaded logical I/O within
    /// 1.25× of unsharded. Takes tens of seconds, so opt-in:
    /// `cargo test -p nwc-bench --release -- --ignored`.
    #[test]
    #[ignore = "bench-scale: run explicitly with -- --ignored"]
    fn acceptance_ratio_at_bench_scale() {
        let ctx = ExperimentContext {
            scale: 0.2,
            queries: 25,
            seed: 2016,
        };
        let r = measure(&ctx);
        let mut checked = 0;
        for c in r.cells.iter().filter(|c| c.shards == 4 && c.threads == 1) {
            assert!(
                c.io_ratio_vs_unsharded <= 1.25,
                "K=4 logical I/O ratio {} exceeds the 1.25× acceptance bar \
                 (pool {} frames)",
                c.io_ratio_vs_unsharded,
                c.pool_capacity
            );
            checked += 1;
        }
        assert!(checked > 0, "no K=4 single-thread cells measured");
    }
}
