//! Plain-text/markdown result tables.

/// A labelled result table rendered as GitHub-flavored markdown.
#[derive(Clone, Debug)]
pub struct Table {
    /// Experiment identifier ("Figure 11a", "Table 2", …).
    pub id: String,
    /// One-line description.
    pub caption: String,
    /// Column headers.
    pub header: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(
        id: impl Into<String>,
        caption: impl Into<String>,
        header: Vec<impl Into<String>>,
    ) -> Self {
        Table {
            id: id.into(),
            caption: caption.into(),
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header width).
    pub fn push_row(&mut self, row: Vec<impl Into<String>>) {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row width mismatch in {}", self.id);
        self.rows.push(row);
    }

    /// Renders the table as markdown with a heading.
    pub fn to_markdown(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = format!("### {} — {}\n\n", self.id, self.caption);
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let padded: Vec<String> = cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect();
            format!("| {} |\n", padded.join(" | "))
        };
        out.push_str(&fmt_row(&self.header, &widths));
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        out.push_str(&format!("| {} |\n", sep.join(" | ")));
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.to_markdown())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_markdown() {
        let mut t = Table::new("Figure 0", "demo", vec!["a", "bbb"]);
        t.push_row(vec!["1", "2"]);
        let md = t.to_markdown();
        assert!(md.contains("### Figure 0 — demo"));
        assert!(md.contains("| a | bbb |"));
        assert!(md.contains("| 1 |   2 |"));
    }

    #[test]
    #[should_panic]
    fn row_width_checked() {
        let mut t = Table::new("x", "y", vec!["a", "b"]);
        t.push_row(vec!["1"]);
    }
}
