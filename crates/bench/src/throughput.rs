//! Wall-clock throughput experiment (not from the paper).
//!
//! The paper reports I/O cost; this experiment reports time. It answers
//! two questions about the query hot path:
//!
//! 1. **Scratch reuse** — how much sequential wall-clock does the warm
//!    zero-allocation path ([`NwcIndex::nwc_full_with`]) save over the
//!    allocating API ([`NwcIndex::nwc_full`]) on the same query stream?
//! 2. **Parallel scaling** — how does aggregate queries/sec scale when
//!    the same batch is answered by a [`QueryEngine`] at 1, 2, 4 and
//!    all-core worker counts?
//!
//! Besides the markdown table, the run writes machine-readable
//! `results/BENCH_throughput.json` for tracking across commits.

use crate::context::ExperimentContext;
use crate::runner::build_index;
use crate::table::Table;
use nwc_core::{NwcIndex, NwcQuery, QueryEngine, QueryScratch, Scheme, WindowSpec};
use std::time::Instant;

/// One thread-count sweep point.
#[derive(Clone, Copy, Debug)]
pub struct SweepPoint {
    /// Engine worker count.
    pub threads: usize,
    /// Wall-clock for the whole batch, seconds.
    pub wall_s: f64,
    /// Aggregate throughput, queries per second.
    pub queries_per_sec: f64,
    /// Mean per-query latency, microseconds.
    pub avg_latency_us: f64,
    /// Throughput relative to the 1-thread sweep point.
    pub speedup: f64,
}

/// Everything the throughput experiment measured.
#[derive(Clone, Debug)]
pub struct ThroughputReport {
    /// Dataset the index was built over.
    pub dataset: String,
    /// CPU cores the run had (`available_parallelism`). Parallel
    /// speedup is bounded by this — on a 1-core machine the sweep can
    /// only demonstrate correctness, not scaling.
    pub cores: usize,
    /// Number of queries in the batch.
    pub queries: usize,
    /// Sequential wall-clock of the allocating API, seconds.
    pub cold_s: f64,
    /// Sequential wall-clock of the warm scratch-reuse path, seconds.
    pub warm_s: f64,
    /// Thread-count sweep, ascending.
    pub sweep: Vec<SweepPoint>,
}

/// Thread counts swept: {1, 2, 4, all cores}, deduplicated ascending.
/// Counts above the core count are kept (the engine never spawns more
/// workers than queries, and oversubscription is itself informative).
fn thread_counts() -> Vec<usize> {
    let max = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut counts = vec![1usize, 2, 4, max];
    counts.sort_unstable();
    counts.dedup();
    counts
}

/// Runs the experiment and renders the markdown table; also writes
/// `results/BENCH_throughput.json` (errors writing the file are
/// reported on stderr, not fatal — the measurement still prints).
pub fn throughput(ctx: &ExperimentContext) -> String {
    let report = measure(ctx);
    let json = render_json(ctx, &report);
    let path = "results/BENCH_throughput.json";
    match std::fs::create_dir_all("results")
        .and_then(|()| std::fs::write(path, &json))
    {
        Ok(()) => eprintln!("[throughput] wrote {path}"),
        Err(e) => eprintln!("[throughput] could not write {path}: {e}"),
    }
    render_markdown(&report)
}

/// The measurement itself, separated from rendering for tests.
pub fn measure(ctx: &ExperimentContext) -> ThroughputReport {
    let ds = ctx.dataset("CA");
    let index = build_index(&ds);
    // A batch large enough to keep every worker busy: the configured
    // query count, replicated across a grid of window sizes.
    let specs = [100.0, 200.0, 400.0];
    let queries: Vec<NwcQuery> = ctx
        .query_points()
        .iter()
        .flat_map(|&q| {
            specs
                .iter()
                .map(move |&s| NwcQuery::new(q, WindowSpec::square(s), 8))
        })
        .collect();
    let scheme = Scheme::NWC_STAR;

    // Warm the page cache / branch predictors once before timing.
    run_cold(&index, &queries[..queries.len().min(4)], scheme);

    let t = Instant::now();
    run_cold(&index, &queries, scheme);
    let cold_s = t.elapsed().as_secs_f64();

    let t = Instant::now();
    let mut scratch = QueryScratch::new();
    for q in &queries {
        std::hint::black_box(index.nwc_full_with(q, scheme, &mut scratch));
    }
    let warm_s = t.elapsed().as_secs_f64();

    let mut sweep = Vec::new();
    let mut base_qps = 0.0f64;
    for threads in thread_counts() {
        let engine = QueryEngine::new(&index).with_threads(threads);
        let t = Instant::now();
        std::hint::black_box(engine.nwc_batch(&queries, scheme));
        let wall_s = t.elapsed().as_secs_f64();
        let qps = queries.len() as f64 / wall_s;
        if threads == 1 {
            base_qps = qps;
        }
        sweep.push(SweepPoint {
            threads,
            wall_s,
            queries_per_sec: qps,
            avg_latency_us: wall_s * 1e6 / queries.len() as f64,
            speedup: if base_qps > 0.0 { qps / base_qps } else { 1.0 },
        });
    }

    ThroughputReport {
        dataset: ds.name.clone(),
        cores: std::thread::available_parallelism().map_or(1, |n| n.get()),
        queries: queries.len(),
        cold_s,
        warm_s,
        sweep,
    }
}

fn run_cold(index: &NwcIndex, queries: &[NwcQuery], scheme: Scheme) {
    for q in queries {
        std::hint::black_box(index.nwc_full(q, scheme));
    }
}

fn render_markdown(r: &ThroughputReport) -> String {
    let mut out = String::new();
    let mut seq = Table::new(
        "Throughput (sequential)",
        format!(
            "{} queries over {}: allocating API vs warm scratch reuse",
            r.queries, r.dataset
        ),
        vec!["path", "wall (s)", "queries/s", "avg latency (µs)"],
    );
    for (label, secs) in [("nwc_full (cold)", r.cold_s), ("nwc_full_with (warm)", r.warm_s)] {
        seq.push_row(vec![
            label.to_string(),
            format!("{secs:.3}"),
            format!("{:.0}", r.queries as f64 / secs),
            format!("{:.1}", secs * 1e6 / r.queries as f64),
        ]);
    }
    out.push_str(&seq.to_markdown());
    out.push('\n');

    let mut par = Table::new(
        "Throughput (parallel)",
        format!(
            "QueryEngine batch over shared index, by worker count ({} core(s) available)",
            r.cores
        ),
        vec!["threads", "wall (s)", "queries/s", "avg latency (µs)", "speedup"],
    );
    for p in &r.sweep {
        par.push_row(vec![
            p.threads.to_string(),
            format!("{:.3}", p.wall_s),
            format!("{:.0}", p.queries_per_sec),
            format!("{:.1}", p.avg_latency_us),
            format!("{:.2}×", p.speedup),
        ]);
    }
    out.push_str(&par.to_markdown());
    out
}

/// Hand-rolled JSON (the workspace has no serde): stable field order,
/// numbers via `format!` so the file diffs cleanly between runs.
fn render_json(ctx: &ExperimentContext, r: &ThroughputReport) -> String {
    let mut s = String::from("{\n");
    s.push_str("  \"experiment\": \"throughput\",\n");
    s.push_str(&format!("  \"dataset\": \"{}\",\n", r.dataset));
    s.push_str(&format!("  \"scale\": {},\n", ctx.scale));
    s.push_str(&format!("  \"seed\": {},\n", ctx.seed));
    s.push_str("  \"scheme\": \"NWC*\",\n");
    s.push_str(&format!("  \"cores\": {},\n", r.cores));
    s.push_str(&format!("  \"queries\": {},\n", r.queries));
    s.push_str("  \"sequential\": {\n");
    s.push_str(&format!("    \"cold_wall_s\": {:.6},\n", r.cold_s));
    s.push_str(&format!("    \"warm_wall_s\": {:.6},\n", r.warm_s));
    s.push_str(&format!(
        "    \"warm_speedup\": {:.4}\n  }},\n",
        if r.warm_s > 0.0 { r.cold_s / r.warm_s } else { 1.0 }
    ));
    s.push_str("  \"sweep\": [\n");
    for (i, p) in r.sweep.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"threads\": {}, \"wall_s\": {:.6}, \"queries_per_sec\": {:.2}, \"avg_latency_us\": {:.2}, \"speedup\": {:.4}}}{}\n",
            p.threads,
            p.wall_s,
            p.queries_per_sec,
            p.avg_latency_us,
            p.speedup,
            if i + 1 == r.sweep.len() { "" } else { "," },
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_counts_ascend_and_start_at_one() {
        let c = thread_counts();
        assert_eq!(c[0], 1);
        assert!(c.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn measure_smoke_and_json_shape() {
        let ctx = ExperimentContext::tiny();
        let r = measure(&ctx);
        assert_eq!(r.queries, ctx.queries * 3);
        assert!(r.cold_s > 0.0 && r.warm_s > 0.0);
        assert!(!r.sweep.is_empty());
        assert_eq!(r.sweep[0].threads, 1);
        let json = render_json(&ctx, &r);
        assert!(json.contains("\"experiment\": \"throughput\""));
        assert!(json.contains("\"queries_per_sec\""));
        // Crude balance check so the hand-rolled JSON stays well-formed.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "{json}"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        let md = render_markdown(&r);
        assert!(md.contains("QueryEngine"));
    }
}
