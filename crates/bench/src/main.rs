//! `experiments` — regenerates every table and figure of the paper.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p nwc-bench [--] [EXPERIMENT...]
//!
//! EXPERIMENT: all (default) | table2 | table3 | fig8 | fig9 | fig10 |
//!             fig11 | fig12 | fig13 | fig14 | storage | model |
//!             ablations | throughput | buffer | faults | kernels | serve |
//!             ingest | shard | approx
//!
//! Environment:
//!   NWC_SCALE    fraction of the paper's dataset cardinalities (0.2)
//!   NWC_QUERIES  queries averaged per configuration (25)
//!   NWC_SEED     RNG seed (2016)
//! ```
//!
//! Output is GitHub-flavored markdown on stdout (progress on stderr), so
//! `cargo run --release -p nwc-bench > EXPERIMENTS-run.md` captures a
//! full report.

use nwc_bench::{
    approx, buffer, faults, figures, ingest, kernels, serve, shard, throughput, ExperimentContext,
};

fn main() {
    let ctx = ExperimentContext::from_env();
    let args: Vec<String> = std::env::args().skip(1).filter(|a| a != "--").collect();
    let wanted: Vec<String> = if args.is_empty() {
        vec!["all".into()]
    } else {
        args
    };
    let run_all = wanted.iter().any(|w| w == "all");
    let want = |name: &str| run_all || wanted.iter().any(|w| w == name);

    println!(
        "# NWC experiment run (scale {}, {} queries, seed {})\n",
        ctx.scale, ctx.queries, ctx.seed
    );

    let t0 = std::time::Instant::now();
    if want("table2") {
        println!("{}", figures::table2(&ctx));
    }
    if want("table3") {
        println!("{}", figures::table3());
    }
    if want("fig8") {
        println!("{}", figures::fig8(&ctx));
    }
    if want("fig9") {
        println!("{}", figures::fig9(&ctx));
    }
    if want("fig10") {
        println!("{}", figures::fig10(&ctx));
    }
    if want("fig11") {
        for t in figures::fig11(&ctx) {
            println!("{t}");
        }
    }
    if want("fig12") {
        for t in figures::fig12(&ctx) {
            println!("{t}");
        }
    }
    if want("fig13") {
        println!("{}", figures::fig13(&ctx));
    }
    if want("fig14") {
        println!("{}", figures::fig14(&ctx));
    }
    if want("storage") {
        println!("{}", figures::storage(&ctx));
    }
    if want("model") {
        println!("{}", figures::model(&ctx));
    }
    if want("throughput") {
        println!("{}", throughput::throughput(&ctx));
    }
    if want("buffer") {
        println!("{}", buffer::buffer(&ctx));
    }
    if want("faults") {
        println!("{}", faults::faults(&ctx));
    }
    if want("kernels") {
        println!("{}", kernels::kernels(&ctx));
    }
    if want("serve") {
        println!("{}", serve::serve(&ctx));
    }
    if want("ingest") {
        println!("{}", ingest::ingest(&ctx));
    }
    if want("shard") {
        println!("{}", shard::shard(&ctx));
    }
    if want("approx") {
        println!("{}", approx::approx(&ctx));
    }
    if want("ablations") {
        println!("{}", figures::ablation_measures(&ctx));
        println!("{}", figures::ablation_build(&ctx));
        println!("{}", figures::ablation_iwp(&ctx));
        println!("{}", figures::ablation_weighted(&ctx));
    }
    eprintln!("[experiments] done in {:.1}s", t0.elapsed().as_secs_f64());
}
