//! Experiment harness reproducing every table and figure of the NWC
//! paper's evaluation (§5), shared by the `experiments` binary and the
//! Criterion benchmarks.
//!
//! The paper's metric is I/O cost — R\*-tree node accesses — averaged
//! over 25 random queries. Dataset cardinalities default to a fraction
//! of the paper's (`NWC_SCALE`, default 0.2) so the full suite runs in
//! minutes; the shapes under study are scale-invariant because all
//! datasets scale together. Set `NWC_SCALE=1.0` for the paper's exact
//! cardinalities.

#![forbid(unsafe_code)]

pub mod approx;
pub mod buffer;
pub mod context;
pub mod faults;
pub mod figures;
pub mod ingest;
pub mod kernels;
pub mod runner;
pub mod serve;
pub mod shard;
pub mod table;
pub mod throughput;

pub use context::ExperimentContext;
pub use table::Table;
