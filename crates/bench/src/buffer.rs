//! Buffer-pool capacity sweep over the disk-backed index (not from the
//! paper).
//!
//! The paper reports I/O as R\*-tree node accesses with no buffering.
//! This experiment puts a real buffer pool between the queries and a
//! saved page file ([`NwcIndex::open_disk`]) and sweeps its capacity
//! across {1 %, 5 %, 10 %, 25 %, 100 %} of the file's pages, for every
//! Table-3 scheme — crossed with three storage configurations
//! ([`LAYOUT_CONFIGS`]): the legacy bottom-up page layout with
//! readahead off (the PR 3 baseline), bottom-up with readahead on, and
//! the clustered (DFS/Hilbert) layout with readahead on. Per sweep cell
//! it reports the pool hit rate, the physical page reads that remain,
//! the readahead counters, and per-query latency.
//!
//! Because the pool uses exact LRU (a stack algorithm) and each scheme's
//! page reference string is deterministic, the readahead-off baseline's
//! hit rate is non-decreasing — and physical reads non-increasing — in
//! capacity; the smoke test asserts exactly that. (With readahead on,
//! speculative admissions perturb the LRU stack, so the inclusion
//! property no longer applies cell-to-cell.) The logical I/O (`avg_io`)
//! is invariant across *every* cell of a scheme — capacity, layout and
//! readahead change what a node access costs, never which nodes an
//! algorithm visits; the test asserts that too.
//!
//! Besides the markdown table, the run writes machine-readable
//! `results/BENCH_buffer.json`.

use crate::context::ExperimentContext;
use crate::runner::build_index;
use crate::table::Table;
use nwc_core::{
    DiskIndexConfig, NwcIndex, NwcQuery, PageLayout, QueryScratch, Scheme, SearchStats, WindowSpec,
};
use std::time::Instant;

/// Pool capacities swept, as fractions of the page file's page count.
pub const CAPACITY_FRACTIONS: [f64; 5] = [0.01, 0.05, 0.10, 0.25, 1.0];

/// The (page layout, readahead width) configurations swept. The first
/// entry is the PR 3 baseline; the last is the full locality stack.
pub const LAYOUT_CONFIGS: [(PageLayout, usize); 3] = [
    (PageLayout::BottomUp, 0),
    (PageLayout::BottomUp, 16),
    (PageLayout::Clustered, 16),
];

/// The JSON/report name of a layout.
pub fn layout_name(layout: PageLayout) -> &'static str {
    match layout {
        PageLayout::BottomUp => "bottom_up",
        PageLayout::Clustered => "clustered",
    }
}

/// One (layout, prefetch, capacity, scheme) cell of the sweep.
#[derive(Clone, Debug)]
pub struct BufferPoint {
    /// Page layout of the file queried ("bottom_up" / "clustered").
    pub layout: String,
    /// Readahead width the index was opened with (0 = off).
    pub prefetch: usize,
    /// Pool capacity as a fraction of the file's pages.
    pub capacity_frac: f64,
    /// Pool capacity in pages (`ceil(frac × pages)`, at least 1).
    pub capacity_pages: usize,
    /// Table-3 scheme name.
    pub scheme: String,
    /// Buffer pool hits across the query batch (cold start).
    pub hits: u64,
    /// Physical *demand* page reads (pool misses) across the batch.
    pub physical_reads: u64,
    /// Frames evicted across the batch.
    pub evictions: u64,
    /// `hits / (hits + physical_reads)`.
    pub hit_rate: f64,
    /// Pages read speculatively by readahead (outside `physical_reads`).
    pub prefetch_reads: u64,
    /// Demand hits served from readahead-admitted frames.
    pub prefetch_hits: u64,
    /// Readahead-admitted frames evicted or dropped untouched.
    pub prefetch_waste: u64,
    /// Vectored readahead calls; `prefetch_reads / prefetch_batches` is
    /// the mean run length the clustered layout exists to raise.
    pub prefetch_batches: u64,
    /// Readahead runs abandoned on a read error (always 0 on a healthy
    /// device; the faults sweep is where this moves).
    pub prefetch_errors: u64,
    /// Peak decoded nodes resident at once during the batch: the
    /// demand pager's memory gauge, bounded by `capacity_pages`.
    pub peak_resident_nodes: usize,
    /// Mean logical node accesses per query (invariant across cells).
    pub avg_io: f64,
    /// Mean wall-clock latency per query, microseconds.
    pub avg_latency_us: f64,
}

/// Everything the buffer experiment measured.
#[derive(Clone, Debug)]
pub struct BufferReport {
    /// Dataset the page file was built from.
    pub dataset: String,
    /// Pages in the saved file.
    pub pages: usize,
    /// Queries per cell.
    pub queries: usize,
    /// Sweep cells, config-major, then capacity, then scheme
    /// (Table-3 order).
    pub points: Vec<BufferPoint>,
}

/// Runs the experiment and renders the markdown table; also writes
/// `results/BENCH_buffer.json` (errors writing the file are reported on
/// stderr, not fatal — the measurement still prints).
pub fn buffer(ctx: &ExperimentContext) -> String {
    let report = measure(ctx);
    let json = render_json(ctx, &report);
    let path = "results/BENCH_buffer.json";
    match std::fs::create_dir_all("results").and_then(|()| std::fs::write(path, &json)) {
        Ok(()) => eprintln!("[buffer] wrote {path}"),
        Err(e) => eprintln!("[buffer] could not write {path}: {e}"),
    }
    render_markdown(&report)
}

/// The measurement itself, separated from rendering for tests.
pub fn measure(ctx: &ExperimentContext) -> BufferReport {
    let ds = ctx.dataset("CA");
    // Build in memory once, persist one file per layout, and from here
    // on query the files.
    let arena = build_index(&ds);
    let pid = std::process::id();
    let path_of = |layout: PageLayout| {
        std::env::temp_dir().join(format!("nwc-buffer-{pid}-{}.pages", layout_name(layout)))
    };
    for layout in [PageLayout::BottomUp, PageLayout::Clustered] {
        arena
            .save_tree_with_layout(path_of(layout), layout)
            .unwrap_or_else(|e| panic!("saving page file: {e}"));
    }
    let pages = arena.tree().to_page_file().page_count();
    drop(arena);

    let query_points = ctx.query_points();
    let spec = WindowSpec::square(200.0);
    let n = 8;

    let mut points = Vec::new();
    for &(layout, prefetch) in &LAYOUT_CONFIGS {
        for &frac in &CAPACITY_FRACTIONS {
            let capacity = ((pages as f64 * frac).ceil() as usize).max(1);
            let index = NwcIndex::open_disk(
                path_of(layout),
                DiskIndexConfig {
                    pool_capacity: Some(capacity),
                    prefetch,
                    // One stripe keeps LRU behavior exact and
                    // machine-independent, so the baseline's inclusion
                    // property holds wherever the sweep runs.
                    pool_shards: Some(1),
                    ..Default::default()
                },
            )
            .unwrap_or_else(|e| panic!("opening page file: {e}"));
            let storage = index.tree().storage().expect("open_disk is disk-backed");

            for scheme in Scheme::TABLE3 {
                // Each scheme measures from a cold buffer and zeroed
                // counters (the storage reset covers pool/store/batch
                // tallies, the stats reset the per-tree I/O ones).
                storage.reset();
                index.tree().stats().reset();
                let mut acc = SearchStats::default();
                let mut scratch = QueryScratch::new();
                let start = Instant::now();
                for &q in &query_points {
                    let query = NwcQuery::new(q, spec, n);
                    let (_, stats) = index.nwc_full_with(&query, scheme, &mut scratch);
                    acc.accumulate(&stats);
                }
                let elapsed = start.elapsed();
                let pool = storage.pool_stats();
                points.push(BufferPoint {
                    layout: layout_name(layout).to_string(),
                    prefetch,
                    capacity_frac: frac,
                    capacity_pages: capacity,
                    scheme: scheme.to_string(),
                    hits: pool.hits,
                    physical_reads: pool.misses,
                    evictions: pool.evictions,
                    hit_rate: pool.hit_rate(),
                    prefetch_reads: index.tree().stats().prefetch_reads(),
                    prefetch_hits: pool.prefetch_hits,
                    prefetch_waste: pool.prefetch_waste,
                    prefetch_batches: storage.prefetch_batches(),
                    prefetch_errors: index.tree().stats().prefetch_errors(),
                    peak_resident_nodes: storage.peak_resident_nodes(),
                    avg_io: acc.io_total as f64 / query_points.len() as f64,
                    avg_latency_us: elapsed.as_secs_f64() * 1e6 / query_points.len() as f64,
                });
            }
        }
    }
    for layout in [PageLayout::BottomUp, PageLayout::Clustered] {
        std::fs::remove_file(path_of(layout)).ok();
    }

    BufferReport {
        dataset: ds.name.clone(),
        pages,
        queries: query_points.len(),
        points,
    }
}

fn render_markdown(r: &BufferReport) -> String {
    let mut t = Table::new(
        "Buffer-pool sweep",
        format!(
            "{} page file ({} pages), cold single-stripe LRU pool per cell, {} queries, \
             w = 200 × 200, n = 8; pf = readahead width",
            r.dataset, r.pages, r.queries
        ),
        vec![
            "layout/pf",
            "capacity",
            "scheme",
            "hit rate",
            "physical reads",
            "pf reads (hit/waste)",
            "batches",
            "pf errors",
            "peak resident",
            "avg IO",
            "avg latency (µs)",
        ],
    );
    for p in &r.points {
        t.push_row(vec![
            format!("{}/{}", p.layout, p.prefetch),
            format!("{:.0}% ({} pg)", p.capacity_frac * 100.0, p.capacity_pages),
            p.scheme.clone(),
            format!("{:.1}%", p.hit_rate * 100.0),
            p.physical_reads.to_string(),
            format!("{} ({}/{})", p.prefetch_reads, p.prefetch_hits, p.prefetch_waste),
            p.prefetch_batches.to_string(),
            p.prefetch_errors.to_string(),
            p.peak_resident_nodes.to_string(),
            format!("{:.1}", p.avg_io),
            format!("{:.1}", p.avg_latency_us),
        ]);
    }
    t.to_markdown()
}

/// Hand-rolled JSON (the workspace has no serde): stable field order,
/// numbers via `format!` so the file diffs cleanly between runs.
fn render_json(ctx: &ExperimentContext, r: &BufferReport) -> String {
    let mut s = String::from("{\n");
    s.push_str("  \"experiment\": \"buffer\",\n");
    s.push_str(&format!("  \"dataset\": \"{}\",\n", r.dataset));
    s.push_str(&format!("  \"scale\": {},\n", ctx.scale));
    s.push_str(&format!("  \"seed\": {},\n", ctx.seed));
    s.push_str(&format!("  \"pages\": {},\n", r.pages));
    s.push_str(&format!("  \"queries\": {},\n", r.queries));
    s.push_str("  \"sweep\": [\n");
    for (i, p) in r.points.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"layout\": \"{}\", \"prefetch\": {}, \
             \"capacity_frac\": {}, \"capacity_pages\": {}, \"scheme\": \"{}\", \
             \"hits\": {}, \"physical_reads\": {}, \"evictions\": {}, \
             \"hit_rate\": {:.4}, \"prefetch_reads\": {}, \"prefetch_hits\": {}, \
             \"prefetch_waste\": {}, \"prefetch_batches\": {}, \
             \"prefetch_errors\": {}, \"peak_resident_nodes\": {}, \
             \"avg_io\": {:.2}, \"avg_latency_us\": {:.2}}}{}\n",
            p.layout,
            p.prefetch,
            p.capacity_frac,
            p.capacity_pages,
            p.scheme,
            p.hits,
            p.physical_reads,
            p.evictions,
            p.hit_rate,
            p.prefetch_reads,
            p.prefetch_hits,
            p.prefetch_waste,
            p.prefetch_batches,
            p.prefetch_errors,
            p.peak_resident_nodes,
            p.avg_io,
            p.avg_latency_us,
            if i + 1 == r.points.len() { "" } else { "," },
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_is_monotone_and_json_well_formed() {
        let ctx = ExperimentContext::tiny();
        let r = measure(&ctx);
        assert_eq!(
            r.points.len(),
            LAYOUT_CONFIGS.len() * CAPACITY_FRACTIONS.len() * Scheme::TABLE3.len()
        );
        for scheme in Scheme::TABLE3 {
            let name = scheme.to_string();
            let cells: Vec<&BufferPoint> =
                r.points.iter().filter(|p| p.scheme == name).collect();
            assert_eq!(cells.len(), LAYOUT_CONFIGS.len() * CAPACITY_FRACTIONS.len());
            // Logical I/O is invariant across every cell of the scheme:
            // capacity, layout and readahead never change which nodes a
            // query visits.
            for c in &cells {
                assert_eq!(
                    c.avg_io, cells[0].avg_io,
                    "{name}: logical I/O not invariant ({}/{} cap {})",
                    c.layout, c.prefetch, c.capacity_pages
                );
                assert!(c.peak_resident_nodes > 0, "{name}: gauge never moved");
            }
            // The readahead-off baseline is pure LRU: the inclusion
            // property makes it monotone in capacity.
            let baseline: Vec<&&BufferPoint> = cells
                .iter()
                .filter(|p| p.prefetch == 0 && p.layout == "bottom_up")
                .collect();
            assert_eq!(baseline.len(), CAPACITY_FRACTIONS.len());
            for w in baseline.windows(2) {
                assert!(
                    w[1].hit_rate >= w[0].hit_rate - 1e-12,
                    "{name}: hit rate fell from {} to {} (caps {} -> {})",
                    w[0].hit_rate,
                    w[1].hit_rate,
                    w[0].capacity_pages,
                    w[1].capacity_pages
                );
                assert!(
                    w[1].physical_reads <= w[0].physical_reads,
                    "{name}: physical reads rose from {} to {}",
                    w[0].physical_reads,
                    w[1].physical_reads
                );
            }
            for c in &baseline {
                assert_eq!(
                    (c.prefetch_reads, c.prefetch_hits, c.prefetch_waste, c.prefetch_batches),
                    (0, 0, 0, 0),
                    "{name}: readahead-off cell has prefetch traffic"
                );
            }
            for c in &cells {
                assert_eq!(c.prefetch_errors, 0, "{name}: healthy device erred");
            }
            // The full-size baseline pool never evicts and hits on
            // every re-access.
            let full = baseline.last().unwrap();
            assert_eq!(full.evictions, 0);
            assert!(full.physical_reads as usize <= r.pages);
            assert!(
                full.peak_resident_nodes <= full.capacity_pages,
                "{name}: {} resident nodes in a {}-frame pool",
                full.peak_resident_nodes,
                full.capacity_pages
            );
            // Readahead cells keep the books consistent: every hit or
            // wasted frame was admitted by a speculative read.
            for c in cells.iter().filter(|p| p.prefetch > 0) {
                assert!(
                    c.prefetch_hits + c.prefetch_waste <= c.prefetch_reads,
                    "{name}: {}h + {}w > {} admitted",
                    c.prefetch_hits,
                    c.prefetch_waste,
                    c.prefetch_reads
                );
                if c.prefetch_reads > 0 {
                    assert!(c.prefetch_batches > 0);
                    assert!(c.prefetch_batches <= c.prefetch_reads);
                }
            }
        }
        let json = render_json(&ctx, &r);
        assert!(json.contains("\"experiment\": \"buffer\""));
        assert!(json.contains("\"layout\": \"clustered\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count(), "{json}");
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        let md = render_markdown(&r);
        assert!(md.contains("Buffer-pool sweep"));
    }
}
