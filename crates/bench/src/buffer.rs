//! Buffer-pool capacity sweep over the disk-backed index (not from the
//! paper).
//!
//! The paper reports I/O as R\*-tree node accesses with no buffering.
//! This experiment puts a real buffer pool between the queries and a
//! saved page file ([`NwcIndex::open_disk`]) and sweeps its capacity
//! across {1 %, 5 %, 10 %, 25 %, 100 %} of the file's pages, for every
//! Table-3 scheme. Per sweep point it reports the pool hit rate, the
//! physical page reads that remain, and per-query latency.
//!
//! Because the pool uses exact LRU (a stack algorithm) and each scheme's
//! page reference string is deterministic, the hit rate is
//! non-decreasing — and physical reads non-increasing — in capacity;
//! the smoke test asserts exactly that. The logical I/O (`avg_io`) is
//! capacity-invariant by construction: buffering changes what a node
//! access *costs*, never which nodes an algorithm visits.
//!
//! Besides the markdown table, the run writes machine-readable
//! `results/BENCH_buffer.json`.

use crate::context::ExperimentContext;
use crate::runner::build_index;
use crate::table::Table;
use nwc_core::{
    DiskIndexConfig, NwcIndex, NwcQuery, QueryScratch, Scheme, SearchStats, WindowSpec,
};
use std::time::Instant;

/// Pool capacities swept, as fractions of the page file's page count.
pub const CAPACITY_FRACTIONS: [f64; 5] = [0.01, 0.05, 0.10, 0.25, 1.0];

/// One (capacity, scheme) cell of the sweep.
#[derive(Clone, Debug)]
pub struct BufferPoint {
    /// Pool capacity as a fraction of the file's pages.
    pub capacity_frac: f64,
    /// Pool capacity in pages (`ceil(frac × pages)`, at least 1).
    pub capacity_pages: usize,
    /// Table-3 scheme name.
    pub scheme: String,
    /// Buffer pool hits across the query batch (cold start).
    pub hits: u64,
    /// Physical page reads (pool misses) across the batch.
    pub physical_reads: u64,
    /// Frames evicted across the batch.
    pub evictions: u64,
    /// `hits / (hits + physical_reads)`.
    pub hit_rate: f64,
    /// Peak decoded nodes resident at once during the batch: the
    /// demand pager's memory gauge, bounded by `capacity_pages`.
    pub peak_resident_nodes: usize,
    /// Mean logical node accesses per query (capacity-invariant).
    pub avg_io: f64,
    /// Mean wall-clock latency per query, microseconds.
    pub avg_latency_us: f64,
}

/// Everything the buffer experiment measured.
#[derive(Clone, Debug)]
pub struct BufferReport {
    /// Dataset the page file was built from.
    pub dataset: String,
    /// Pages in the saved file.
    pub pages: usize,
    /// Queries per (capacity, scheme) cell.
    pub queries: usize,
    /// Sweep cells, capacity-major, scheme-minor (Table-3 order).
    pub points: Vec<BufferPoint>,
}

/// Runs the experiment and renders the markdown table; also writes
/// `results/BENCH_buffer.json` (errors writing the file are reported on
/// stderr, not fatal — the measurement still prints).
pub fn buffer(ctx: &ExperimentContext) -> String {
    let report = measure(ctx);
    let json = render_json(ctx, &report);
    let path = "results/BENCH_buffer.json";
    match std::fs::create_dir_all("results").and_then(|()| std::fs::write(path, &json)) {
        Ok(()) => eprintln!("[buffer] wrote {path}"),
        Err(e) => eprintln!("[buffer] could not write {path}: {e}"),
    }
    render_markdown(&report)
}

/// The measurement itself, separated from rendering for tests.
pub fn measure(ctx: &ExperimentContext) -> BufferReport {
    let ds = ctx.dataset("CA");
    // Build in memory once, persist, and from here on query the file.
    let arena = build_index(&ds);
    let path = std::env::temp_dir().join(format!("nwc-buffer-{}.pages", std::process::id()));
    arena
        .save_tree(&path)
        .unwrap_or_else(|e| panic!("saving page file: {e}"));
    let pages = arena.tree().to_page_file().page_count();
    drop(arena);

    let query_points = ctx.query_points();
    let spec = WindowSpec::square(200.0);
    let n = 8;

    let mut points = Vec::new();
    for &frac in &CAPACITY_FRACTIONS {
        let capacity = ((pages as f64 * frac).ceil() as usize).max(1);
        let index = NwcIndex::open_disk(
            &path,
            DiskIndexConfig {
                pool_capacity: Some(capacity),
                ..Default::default()
            },
        )
        .unwrap_or_else(|e| panic!("opening page file: {e}"));
        let storage = index.tree().storage().expect("open_disk is disk-backed");

        for scheme in Scheme::TABLE3 {
            // Each scheme measures from a cold buffer.
            storage.reset();
            let mut acc = SearchStats::default();
            let mut scratch = QueryScratch::new();
            let start = Instant::now();
            for &q in &query_points {
                let query = NwcQuery::new(q, spec, n);
                let (_, stats) = index.nwc_full_with(&query, scheme, &mut scratch);
                acc.accumulate(&stats);
            }
            let elapsed = start.elapsed();
            let pool = storage.pool_stats();
            points.push(BufferPoint {
                capacity_frac: frac,
                capacity_pages: capacity,
                scheme: scheme.to_string(),
                hits: pool.hits,
                physical_reads: pool.misses,
                evictions: pool.evictions,
                hit_rate: pool.hit_rate(),
                peak_resident_nodes: storage.peak_resident_nodes(),
                avg_io: acc.io_total as f64 / query_points.len() as f64,
                avg_latency_us: elapsed.as_secs_f64() * 1e6 / query_points.len() as f64,
            });
        }
    }
    std::fs::remove_file(&path).ok();

    BufferReport {
        dataset: ds.name.clone(),
        pages,
        queries: query_points.len(),
        points,
    }
}

fn render_markdown(r: &BufferReport) -> String {
    let mut t = Table::new(
        "Buffer-pool sweep",
        format!(
            "{} page file ({} pages), cold LRU pool per cell, {} queries, w = 200 × 200, n = 8",
            r.dataset, r.pages, r.queries
        ),
        vec![
            "capacity",
            "scheme",
            "hit rate",
            "physical reads",
            "evictions",
            "peak resident",
            "avg IO",
            "avg latency (µs)",
        ],
    );
    for p in &r.points {
        t.push_row(vec![
            format!("{:.0}% ({} pg)", p.capacity_frac * 100.0, p.capacity_pages),
            p.scheme.clone(),
            format!("{:.1}%", p.hit_rate * 100.0),
            p.physical_reads.to_string(),
            p.evictions.to_string(),
            p.peak_resident_nodes.to_string(),
            format!("{:.1}", p.avg_io),
            format!("{:.1}", p.avg_latency_us),
        ]);
    }
    t.to_markdown()
}

/// Hand-rolled JSON (the workspace has no serde): stable field order,
/// numbers via `format!` so the file diffs cleanly between runs.
fn render_json(ctx: &ExperimentContext, r: &BufferReport) -> String {
    let mut s = String::from("{\n");
    s.push_str("  \"experiment\": \"buffer\",\n");
    s.push_str(&format!("  \"dataset\": \"{}\",\n", r.dataset));
    s.push_str(&format!("  \"scale\": {},\n", ctx.scale));
    s.push_str(&format!("  \"seed\": {},\n", ctx.seed));
    s.push_str(&format!("  \"pages\": {},\n", r.pages));
    s.push_str(&format!("  \"queries\": {},\n", r.queries));
    s.push_str("  \"sweep\": [\n");
    for (i, p) in r.points.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"capacity_frac\": {}, \"capacity_pages\": {}, \"scheme\": \"{}\", \
             \"hits\": {}, \"physical_reads\": {}, \"evictions\": {}, \
             \"hit_rate\": {:.4}, \"peak_resident_nodes\": {}, \
             \"avg_io\": {:.2}, \"avg_latency_us\": {:.2}}}{}\n",
            p.capacity_frac,
            p.capacity_pages,
            p.scheme,
            p.hits,
            p.physical_reads,
            p.evictions,
            p.hit_rate,
            p.peak_resident_nodes,
            p.avg_io,
            p.avg_latency_us,
            if i + 1 == r.points.len() { "" } else { "," },
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_is_monotone_and_json_well_formed() {
        let ctx = ExperimentContext::tiny();
        let r = measure(&ctx);
        assert_eq!(r.points.len(), CAPACITY_FRACTIONS.len() * Scheme::TABLE3.len());
        // Per scheme: hit rate non-decreasing, physical reads
        // non-increasing, logical I/O identical as capacity grows.
        for scheme in Scheme::TABLE3 {
            let name = scheme.to_string();
            let cells: Vec<&BufferPoint> =
                r.points.iter().filter(|p| p.scheme == name).collect();
            assert_eq!(cells.len(), CAPACITY_FRACTIONS.len());
            for w in cells.windows(2) {
                assert!(
                    w[1].hit_rate >= w[0].hit_rate - 1e-12,
                    "{name}: hit rate fell from {} to {} (caps {} -> {})",
                    w[0].hit_rate,
                    w[1].hit_rate,
                    w[0].capacity_pages,
                    w[1].capacity_pages
                );
                assert!(
                    w[1].physical_reads <= w[0].physical_reads,
                    "{name}: physical reads rose from {} to {}",
                    w[0].physical_reads,
                    w[1].physical_reads
                );
                assert_eq!(w[0].avg_io, w[1].avg_io, "{name}: logical I/O not invariant");
            }
            // The gauge always registers work; once the pool is big
            // enough to never force a transient (unpooled) decode, it
            // is bounded by the frame count.
            for c in &cells {
                assert!(c.peak_resident_nodes > 0, "{name}: gauge never moved");
            }
            // The full-size pool never evicts and hits on every re-access.
            let full = cells.last().unwrap();
            assert_eq!(full.evictions, 0);
            assert!(full.physical_reads as usize <= r.pages);
            assert!(
                full.peak_resident_nodes <= full.capacity_pages,
                "{name}: {} resident nodes in a {}-frame pool",
                full.peak_resident_nodes,
                full.capacity_pages
            );
        }
        let json = render_json(&ctx, &r);
        assert!(json.contains("\"experiment\": \"buffer\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count(), "{json}");
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        let md = render_markdown(&r);
        assert!(md.contains("Buffer-pool sweep"));
    }
}
