//! A self-contained, offline stand-in for the `criterion` crate.
//!
//! The crates-io registry is unreachable in this repository's build
//! environment (see README § Offline builds), so the workspace vendors
//! the subset of criterion's API its benches use: `Criterion` with the
//! builder knobs, `benchmark_group`, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, `Bencher::iter`, and the
//! `criterion_group!`/`criterion_main!` macros.
//!
//! Measurement is deliberately simple: per benchmark, the closure is
//! warmed up for `warm_up_time`, then timed in batches until
//! `measurement_time` elapses; the mean, minimum and iteration count
//! are printed as one line per benchmark. There is no statistical
//! resampling, plotting, or baseline persistence — this harness exists
//! so `cargo bench` runs offline and still yields comparable wall-clock
//! numbers.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Measurement markers (`criterion::measurement`). Only wall-clock time
/// is supported.
pub mod measurement {
    /// Wall-clock time measurement (the default).
    #[derive(Clone, Copy, Debug, Default)]
    pub struct WallTime;
}

/// Top-level benchmark harness handle.
#[derive(Clone, Debug)]
pub struct Criterion<M = measurement::WallTime> {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    _measurement: std::marker::PhantomData<M>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_millis(1000),
            _measurement: std::marker::PhantomData,
        }
    }
}

impl<M> Criterion<M> {
    /// No-op: the shim never produces plots.
    pub fn without_plots(self) -> Self {
        self
    }

    /// No-op: the shim does not bootstrap-resample.
    pub fn nresamples(self, _n: usize) -> Self {
        self
    }

    /// Number of timed batches per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Time spent running the closure before measurement starts.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Target total measurement time per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_, M> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let label = id.into().label;
        run_benchmark(&label, self.sample_size, self.warm_up_time, self.measurement_time, f);
        self
    }
}

/// A named benchmark group.
pub struct BenchmarkGroup<'a, M> {
    criterion: &'a mut Criterion<M>,
    name: String,
}

impl<M> BenchmarkGroup<'_, M> {
    /// Benchmarks `f` under `group/id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into().label);
        run_benchmark(
            &label,
            self.criterion.sample_size,
            self.criterion.warm_up_time,
            self.criterion.measurement_time,
            f,
        );
        self
    }

    /// Benchmarks `f` with a borrowed input under `group/id`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (drop would do the same; kept for API parity).
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter`, criterion's two-part id.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }

    /// Id carrying only a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { label: s.into() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Passed to benchmark closures; call [`Bencher::iter`] with the code
/// under test.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, running it `self.iterations` times.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    label: &str,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
    mut f: F,
) {
    // Warm-up: run single iterations until the warm-up budget is spent,
    // and estimate the per-iteration cost from them.
    let mut one = Bencher {
        iterations: 1,
        elapsed: Duration::ZERO,
    };
    let warm_start = Instant::now();
    let mut warm_iters = 0u64;
    let mut warm_spent = Duration::ZERO;
    while warm_start.elapsed() < warm_up || warm_iters == 0 {
        f(&mut one);
        warm_spent += one.elapsed;
        warm_iters += 1;
        if warm_iters >= 1_000_000 {
            break;
        }
    }
    let est = (warm_spent / u32::try_from(warm_iters).unwrap_or(u32::MAX)).max(Duration::from_nanos(1));

    // Measurement: `sample_size` batches sized to fill the budget.
    let per_sample = measurement / u32::try_from(sample_size).unwrap_or(u32::MAX);
    let iters_per_sample = (per_sample.as_nanos() / est.as_nanos()).clamp(1, 1_000_000) as u64;
    let mut total = Duration::ZERO;
    let mut best = Duration::MAX;
    let mut iterations = 0u64;
    for _ in 0..sample_size {
        let mut b = Bencher {
            iterations: iters_per_sample,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        total += b.elapsed;
        best = best.min(b.elapsed / u32::try_from(iters_per_sample).unwrap_or(u32::MAX));
        iterations += b.iterations;
    }
    let mean = if iterations > 0 {
        total / u32::try_from(iterations).unwrap_or(u32::MAX)
    } else {
        Duration::ZERO
    };
    println!(
        "{label:<60} mean {:>12} min {:>12} ({iterations} iters)",
        format_duration(mean),
        format_duration(best),
    );
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", d.as_secs_f64())
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_prints() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        let mut count = 0u64;
        {
            let mut g = c.benchmark_group("smoke");
            g.bench_function("incr", |b| b.iter(|| count += 1));
            g.bench_with_input(BenchmarkId::new("with", 7), &7u64, |b, &x| {
                b.iter(|| x * 2)
            });
            g.finish();
        }
        assert!(count > 0);
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("a", 3).label, "a/3");
        assert_eq!(BenchmarkId::from_parameter(25).label, "25");
        assert_eq!(BenchmarkId::from("x").label, "x");
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(format_duration(Duration::from_nanos(500)), "500 ns");
        assert!(format_duration(Duration::from_micros(12)).contains("µs"));
        assert!(format_duration(Duration::from_millis(12)).contains("ms"));
        assert!(format_duration(Duration::from_secs(2)).contains(" s"));
    }
}
