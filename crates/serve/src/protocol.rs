//! The wire protocol: length-prefixed binary frames over TCP.
//!
//! Every frame is a `u32` little-endian payload length followed by the
//! payload; payloads are capped at [`MAX_FRAME`] bytes so a corrupt
//! length prefix cannot make a peer allocate gigabytes. All integers
//! are little-endian, all floats IEEE-754 `f64` bits.
//!
//! # Request payload
//!
//! ```text
//! u32 request_id | u8 opcode | opcode-specific body
//! ```
//!
//! | opcode | body |
//! |--------|------|
//! | 1 `Nwc`  | u8 scheme_bits, f64 qx, f64 qy, f64 l, f64 w, u32 n, u32 deadline_ms |
//! | 2 `Knwc` | the `Nwc` body, then u32 k, u32 m |
//! | 3 `Stats` | empty |
//! | 4 `Swap` | u16 path_len, path bytes (UTF-8) |
//! | 5 `Ping` | empty |
//! | 6 `Shutdown` | empty |
//!
//! `scheme_bits`: bit 0 = SRR, bit 1 = DIP, bit 2 = DEP, bit 3 = IWP.
//! `deadline_ms = 0` means "use the server default".
//!
//! A query body (`Nwc`, `Knwc`) may carry an **optional trailing
//! anytime extension**: `f64 epsilon, u64 io_budget` appended after
//! the legacy body. A frame without the extension is byte-identical to
//! the pre-anytime protocol, so old clients keep working unchanged;
//! its presence opts the request into budgeted execution and tells the
//! server the client understands the `Partial` status. `epsilon` must
//! be finite and non-negative (NaN/negative/infinite are rejected at
//! decode); `io_budget` is a logical node-access allowance, with
//! `u64::MAX` meaning "no I/O limit" and `0` meaning "spend nothing"
//! (the server answers immediately with an empty bounded `Partial`).
//!
//! # Response payload
//!
//! ```text
//! u32 request_id | u8 status | status-specific body
//! ```
//!
//! | status | meaning | body |
//! |--------|---------|------|
//! | 0 `Ok` (query) | answered | u32 group_count, groups, 15 × u64 search stats |
//! | 0 `Ok` (stats) | scrape | u32 text_len, text bytes |
//! | 0 `Ok` (swap)  | flipped | u64 old_gen, u64 new_gen, u64 drain_us, u64 old_pinned, u8 drained |
//! | 0 `Ok` (ping/shutdown) | — | empty |
//! | 1 `Deadline` | deadline exceeded mid-search | empty |
//! | 2 `Shed` | rejected at admission | u32 retry_after_ms |
//! | 3 `BadRequest` | malformed/unsupported | u16 len, message |
//! | 4 `IoFailed` | unrecoverable page read | u16 len, message |
//! | 5 `Stopped` | server draining / request cancelled | empty |
//! | 6 `Partial` | budget expired; best-so-far answer | the `Ok` query body, then f64 error_bound, f64 lower_bound, u64 elapsed_us, u64 io, u8 reason |
//!
//! `Partial` (status 6) is only ever sent to a request that carried
//! the anytime extension — a legacy client never sees it. Its `reason`
//! byte says which budget dimension expired: 1 = deadline, 2 = I/O
//! allowance, 3 = stop flag, 4 = a degraded shard (the answer merged
//! from the surviving shards).
//!
//! A query group is `u32 len` then `len ×` (`u32 id, f64 x, f64 y`)
//! followed by `f64 distance`. An NWC answer has 0 or 1 group; a kNWC
//! answer up to `k`. The `request_id` is echoed verbatim, so clients may
//! pipeline: responses to a connection can interleave across requests.
//!
//! Both sides decode defensively: every error is a typed
//! [`ProtoError`], never a panic — this module is part of the server's
//! no-panic surface.

use nwc_core::SearchStats;
use std::io::{Read, Write};

/// Maximum frame payload size (16 MiB). Fits any realistic kNWC answer
/// while bounding what a corrupt or hostile length prefix can allocate.
pub const MAX_FRAME: u32 = 16 << 20;

/// A malformed frame (either side), or the underlying socket failing.
#[derive(Debug)]
pub enum ProtoError {
    /// The socket failed mid-frame.
    Io(std::io::Error),
    /// The peer closed the connection cleanly between frames.
    Closed,
    /// The frame violates the protocol (bad opcode, short body,
    /// oversized length, non-UTF-8 path, ...).
    Malformed(&'static str),
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Io(e) => write!(f, "socket error: {e}"),
            ProtoError::Closed => write!(f, "connection closed"),
            ProtoError::Malformed(what) => write!(f, "malformed frame: {what}"),
        }
    }
}

impl std::error::Error for ProtoError {}

impl From<std::io::Error> for ProtoError {
    fn from(e: std::io::Error) -> Self {
        ProtoError::Io(e)
    }
}

/// Query parameters shared by the NWC and kNWC opcodes.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct QuerySpec {
    /// Scheme bits: bit 0 = SRR, 1 = DIP, 2 = DEP, 3 = IWP.
    pub scheme_bits: u8,
    /// Query location.
    pub qx: f64,
    /// Query location.
    pub qy: f64,
    /// Window length.
    pub l: f64,
    /// Window width.
    pub w: f64,
    /// Group size `n`.
    pub n: u32,
    /// Per-query deadline in milliseconds; 0 = server default.
    pub deadline_ms: u32,
}

/// The optional anytime/approximate extension a query request may
/// carry (see the module docs for the wire layout and compatibility
/// contract). Sending it opts the client into `Partial` responses.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AnytimeSpec {
    /// Approximation slack: the answer is within `(1 + epsilon)` of the
    /// optimum. Must be finite and non-negative; `0.0` = exact.
    pub epsilon: f64,
    /// Logical node-access allowance. `u64::MAX` = unlimited, `0` =
    /// spend nothing (an immediate empty bounded answer).
    pub io_budget: u64,
}

impl AnytimeSpec {
    /// An exact, unbudgeted extension — still opts into `Partial`
    /// responses for deadline expiry.
    pub fn exact() -> Self {
        AnytimeSpec {
            epsilon: 0.0,
            io_budget: u64::MAX,
        }
    }
}

/// Why a [`Response::Partial`] stopped short of the exact answer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PartialReason {
    /// The wall-clock deadline passed mid-search.
    Deadline,
    /// The logical I/O allowance was spent.
    IoBudget,
    /// The stop flag rose (server draining) after the search had
    /// already banked an answer.
    Stopped,
    /// One or more shards failed or were degraded; the answer merged
    /// from the survivors with a widened bound.
    Degraded,
}

impl PartialReason {
    fn to_byte(self) -> u8 {
        match self {
            PartialReason::Deadline => 1,
            PartialReason::IoBudget => 2,
            PartialReason::Stopped => 3,
            PartialReason::Degraded => 4,
        }
    }

    fn from_byte(b: u8) -> Result<Self, ProtoError> {
        match b {
            1 => Ok(PartialReason::Deadline),
            2 => Ok(PartialReason::IoBudget),
            3 => Ok(PartialReason::Stopped),
            4 => Ok(PartialReason::Degraded),
            _ => Err(ProtoError::Malformed("unknown partial reason")),
        }
    }
}

/// A decoded request frame.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// `NWC(q, l, w, n)` under the encoded scheme.
    Nwc {
        /// The query parameters.
        spec: QuerySpec,
        /// The optional anytime extension (absent on legacy frames).
        anytime: Option<AnytimeSpec>,
    },
    /// `kNWC(k, q, l, w, n, m)` under the encoded scheme.
    Knwc {
        /// The shared query parameters.
        spec: QuerySpec,
        /// Number of groups.
        k: u32,
        /// Overlap bound.
        m: u32,
        /// The optional anytime extension (absent on legacy frames).
        anytime: Option<AnytimeSpec>,
    },
    /// Scrape the metrics snapshot (stable text form).
    Stats,
    /// Hot-swap the index to the page file at `path`.
    Swap(String),
    /// Liveness probe.
    Ping,
    /// Stop accepting, drain, exit.
    Shutdown,
}

/// One object of a returned group.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WireObject {
    /// Object id.
    pub id: u32,
    /// Location.
    pub x: f64,
    /// Location.
    pub y: f64,
}

/// One group of a query answer.
#[derive(Clone, Debug, PartialEq)]
pub struct WireGroup {
    /// The group's objects, ascending by distance to the query.
    pub objects: Vec<WireObject>,
    /// The group's score.
    pub distance: f64,
}

/// A decoded response frame (without the echoed `request_id`, which
/// [`read_response`] returns alongside).
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// A query answer: 0 groups = NWC found nothing, otherwise the
    /// NWC best group or the kNWC top-k. Stats describe the search.
    Groups {
        /// The answer groups.
        groups: Vec<WireGroup>,
        /// Per-query search counters.
        stats: SearchStats,
    },
    /// A metrics scrape.
    Stats(String),
    /// A completed hot-swap.
    Swapped {
        /// Generation id served before the flip.
        old_generation: u64,
        /// Generation id serving now.
        new_generation: u64,
        /// Microseconds spent draining the old generation.
        drain_us: u64,
        /// Pool frames still pinned on the old generation at close
        /// (0 = no pin leak).
        old_pinned: u64,
        /// Whether the old generation fully drained before the timeout.
        drained: bool,
    },
    /// Ping/shutdown acknowledged.
    Done,
    /// The query exceeded its deadline mid-search (typed, per-query;
    /// the worker survives).
    Deadline,
    /// Rejected at admission; retry after the given backoff.
    Shed {
        /// Suggested client backoff.
        retry_after_ms: u32,
    },
    /// The request was malformed or asked for an unavailable scheme.
    BadRequest(String),
    /// An unrecoverable page read failed under the query.
    IoFailed(String),
    /// The server is draining; the request was not executed.
    Stopped,
    /// A budget expired mid-search: the best answer found so far plus a
    /// proven quality bound. Only sent to requests that carried the
    /// anytime extension.
    Partial {
        /// The best-so-far groups (possibly empty).
        groups: Vec<WireGroup>,
        /// Per-query search counters up to the stop.
        stats: SearchStats,
        /// How far the answer may be from the optimum:
        /// `optimum >= answer - error_bound` (`+inf` when no answer
        /// was banked before the budget expired).
        error_bound: f64,
        /// A proven lower bound on the exact optimum.
        lower_bound: f64,
        /// Wall-clock microseconds the query spent.
        elapsed_us: u64,
        /// Logical node accesses the query charged.
        io: u64,
        /// Which budget dimension expired.
        reason: PartialReason,
    },
}

// ---------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------

fn put_u16(buf: &mut Vec<u8>, v: u16) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(buf: &mut Vec<u8>, v: f64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_spec(buf: &mut Vec<u8>, s: &QuerySpec) {
    buf.push(s.scheme_bits);
    put_f64(buf, s.qx);
    put_f64(buf, s.qy);
    put_f64(buf, s.l);
    put_f64(buf, s.w);
    put_u32(buf, s.n);
    put_u32(buf, s.deadline_ms);
}

fn put_anytime(buf: &mut Vec<u8>, anytime: &Option<AnytimeSpec>) {
    if let Some(a) = anytime {
        put_f64(buf, a.epsilon);
        put_u64(buf, a.io_budget);
    }
}

/// Encodes a request payload (without the length prefix). A request
/// with `anytime: None` is byte-identical to the pre-anytime protocol.
pub fn encode_request(request_id: u32, req: &Request) -> Vec<u8> {
    let mut buf = Vec::with_capacity(64);
    put_u32(&mut buf, request_id);
    match req {
        Request::Nwc { spec, anytime } => {
            buf.push(1);
            put_spec(&mut buf, spec);
            put_anytime(&mut buf, anytime);
        }
        Request::Knwc { spec, k, m, anytime } => {
            buf.push(2);
            put_spec(&mut buf, spec);
            put_u32(&mut buf, *k);
            put_u32(&mut buf, *m);
            put_anytime(&mut buf, anytime);
        }
        Request::Stats => buf.push(3),
        Request::Swap(path) => {
            buf.push(4);
            let bytes = path.as_bytes();
            let len = bytes.len().min(u16::MAX as usize);
            put_u16(&mut buf, len as u16);
            buf.extend_from_slice(&bytes[..len]);
        }
        Request::Ping => buf.push(5),
        Request::Shutdown => buf.push(6),
    }
    buf
}

fn put_stats(buf: &mut Vec<u8>, s: &SearchStats) {
    for v in [
        s.io_total,
        s.io_traversal,
        s.io_window_queries,
        s.buffer_hits,
        s.objects_visited,
        s.window_queries,
        s.skipped_by_srr,
        s.skipped_by_dep,
        s.nodes_pruned_by_dip,
        s.nodes_pruned_by_dep,
        s.candidate_windows,
        s.qualified_windows,
        s.best_updates,
        s.retries,
        s.transient_errors,
    ] {
        put_u64(buf, v);
    }
}

fn put_message(buf: &mut Vec<u8>, msg: &str) {
    let bytes = msg.as_bytes();
    let len = bytes.len().min(u16::MAX as usize);
    put_u16(buf, len as u16);
    buf.extend_from_slice(&bytes[..len]);
}

fn put_groups(buf: &mut Vec<u8>, groups: &[WireGroup]) {
    put_u32(buf, groups.len() as u32);
    for g in groups {
        put_u32(buf, g.objects.len() as u32);
        for o in &g.objects {
            put_u32(buf, o.id);
            put_f64(buf, o.x);
            put_f64(buf, o.y);
        }
        put_f64(buf, g.distance);
    }
}

/// Encodes a response payload (without the length prefix).
pub fn encode_response(request_id: u32, resp: &Response) -> Vec<u8> {
    let mut buf = Vec::with_capacity(64);
    put_u32(&mut buf, request_id);
    match resp {
        Response::Groups { groups, stats } => {
            buf.push(0);
            put_groups(&mut buf, groups);
            put_stats(&mut buf, stats);
        }
        Response::Stats(text) => {
            buf.push(0);
            let bytes = text.as_bytes();
            put_u32(&mut buf, bytes.len() as u32);
            buf.extend_from_slice(bytes);
        }
        Response::Swapped {
            old_generation,
            new_generation,
            drain_us,
            old_pinned,
            drained,
        } => {
            buf.push(0);
            put_u64(&mut buf, *old_generation);
            put_u64(&mut buf, *new_generation);
            put_u64(&mut buf, *drain_us);
            put_u64(&mut buf, *old_pinned);
            buf.push(u8::from(*drained));
        }
        Response::Done => buf.push(0),
        Response::Deadline => buf.push(1),
        Response::Shed { retry_after_ms } => {
            buf.push(2);
            put_u32(&mut buf, *retry_after_ms);
        }
        Response::BadRequest(msg) => {
            buf.push(3);
            put_message(&mut buf, msg);
        }
        Response::IoFailed(msg) => {
            buf.push(4);
            put_message(&mut buf, msg);
        }
        Response::Stopped => buf.push(5),
        Response::Partial {
            groups,
            stats,
            error_bound,
            lower_bound,
            elapsed_us,
            io,
            reason,
        } => {
            buf.push(6);
            put_groups(&mut buf, groups);
            put_stats(&mut buf, stats);
            put_f64(&mut buf, *error_bound);
            put_f64(&mut buf, *lower_bound);
            put_u64(&mut buf, *elapsed_us);
            put_u64(&mut buf, *io);
            buf.push(reason.to_byte());
        }
    }
    buf
}

// ---------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------

/// Cursor over a frame payload; every read is bounds-checked.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtoError> {
        let end = self
            .pos
            .checked_add(n)
            .ok_or(ProtoError::Malformed("length overflow"))?;
        if end > self.buf.len() {
            return Err(ProtoError::Malformed("truncated body"));
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, ProtoError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, ProtoError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, ProtoError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, ProtoError> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    fn f64(&mut self) -> Result<f64, ProtoError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn done(&self) -> Result<(), ProtoError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(ProtoError::Malformed("trailing bytes"))
        }
    }
}

fn read_spec(c: &mut Cursor<'_>) -> Result<QuerySpec, ProtoError> {
    Ok(QuerySpec {
        scheme_bits: c.u8()?,
        qx: c.f64()?,
        qy: c.f64()?,
        l: c.f64()?,
        w: c.f64()?,
        n: c.u32()?,
        deadline_ms: c.u32()?,
    })
}

/// Reads the optional trailing anytime extension: absent when the
/// legacy body consumed the whole payload, otherwise exactly
/// `f64 epsilon, u64 io_budget`. The wire carries arbitrary bits, so
/// `epsilon` is validated here — a NaN, negative, or infinite value is
/// a malformed frame, never a panic or a hung search downstream.
fn read_anytime(c: &mut Cursor<'_>) -> Result<Option<AnytimeSpec>, ProtoError> {
    if c.pos == c.buf.len() {
        return Ok(None);
    }
    let epsilon = c.f64()?;
    let io_budget = c.u64()?;
    if !epsilon.is_finite() || epsilon < 0.0 {
        return Err(ProtoError::Malformed(
            "epsilon must be finite and non-negative",
        ));
    }
    Ok(Some(AnytimeSpec { epsilon, io_budget }))
}

/// Decodes a request payload into `(request_id, request)`.
pub fn decode_request(payload: &[u8]) -> Result<(u32, Request), ProtoError> {
    let mut c = Cursor::new(payload);
    let request_id = c.u32()?;
    let opcode = c.u8()?;
    let req = match opcode {
        1 => {
            let spec = read_spec(&mut c)?;
            let anytime = read_anytime(&mut c)?;
            Request::Nwc { spec, anytime }
        }
        2 => {
            let spec = read_spec(&mut c)?;
            let k = c.u32()?;
            let m = c.u32()?;
            let anytime = read_anytime(&mut c)?;
            Request::Knwc { spec, k, m, anytime }
        }
        3 => Request::Stats,
        4 => {
            let len = c.u16()? as usize;
            let bytes = c.take(len)?;
            let path = std::str::from_utf8(bytes)
                .map_err(|_| ProtoError::Malformed("swap path is not UTF-8"))?;
            Request::Swap(path.to_string())
        }
        5 => Request::Ping,
        6 => Request::Shutdown,
        _ => return Err(ProtoError::Malformed("unknown opcode")),
    };
    c.done()?;
    Ok((request_id, req))
}

fn read_stats(c: &mut Cursor<'_>) -> Result<SearchStats, ProtoError> {
    Ok(SearchStats {
        io_total: c.u64()?,
        io_traversal: c.u64()?,
        io_window_queries: c.u64()?,
        buffer_hits: c.u64()?,
        objects_visited: c.u64()?,
        window_queries: c.u64()?,
        skipped_by_srr: c.u64()?,
        skipped_by_dep: c.u64()?,
        nodes_pruned_by_dip: c.u64()?,
        nodes_pruned_by_dep: c.u64()?,
        candidate_windows: c.u64()?,
        qualified_windows: c.u64()?,
        best_updates: c.u64()?,
        retries: c.u64()?,
        transient_errors: c.u64()?,
    })
}

fn read_message(c: &mut Cursor<'_>) -> Result<String, ProtoError> {
    let len = c.u16()? as usize;
    let bytes = c.take(len)?;
    Ok(String::from_utf8_lossy(bytes).into_owned())
}

/// What the decoder should expect for a status-0 body — the protocol
/// does not tag Ok bodies, the client knows what it asked per
/// `request_id`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OkShape {
    /// A query answer (groups + stats).
    Groups,
    /// A metrics scrape.
    Stats,
    /// A swap report.
    Swap,
    /// An empty acknowledgement (ping, shutdown).
    Done,
}

fn read_groups(c: &mut Cursor<'_>) -> Result<Vec<WireGroup>, ProtoError> {
    let n_groups = c.u32()? as usize;
    if n_groups > MAX_FRAME as usize / 8 {
        return Err(ProtoError::Malformed("group count"));
    }
    let mut groups = Vec::with_capacity(n_groups.min(1024));
    for _ in 0..n_groups {
        let len = c.u32()? as usize;
        if len > MAX_FRAME as usize / 20 {
            return Err(ProtoError::Malformed("group length"));
        }
        let mut objects = Vec::with_capacity(len.min(4096));
        for _ in 0..len {
            objects.push(WireObject {
                id: c.u32()?,
                x: c.f64()?,
                y: c.f64()?,
            });
        }
        let distance = c.f64()?;
        groups.push(WireGroup { objects, distance });
    }
    Ok(groups)
}

/// Decodes a response payload into `(request_id, response)`, reading
/// status-0 bodies as `shape` dictates.
pub fn decode_response(payload: &[u8], shape: OkShape) -> Result<(u32, Response), ProtoError> {
    let mut c = Cursor::new(payload);
    let request_id = c.u32()?;
    let status = c.u8()?;
    let resp = match status {
        0 => match shape {
            OkShape::Groups => Response::Groups {
                groups: read_groups(&mut c)?,
                stats: read_stats(&mut c)?,
            },
            OkShape::Stats => {
                let len = c.u32()? as usize;
                let bytes = c.take(len)?;
                Response::Stats(String::from_utf8_lossy(bytes).into_owned())
            }
            OkShape::Swap => Response::Swapped {
                old_generation: c.u64()?,
                new_generation: c.u64()?,
                drain_us: c.u64()?,
                old_pinned: c.u64()?,
                drained: c.u8()? != 0,
            },
            OkShape::Done => Response::Done,
        },
        1 => Response::Deadline,
        2 => Response::Shed {
            retry_after_ms: c.u32()?,
        },
        3 => Response::BadRequest(read_message(&mut c)?),
        4 => Response::IoFailed(read_message(&mut c)?),
        5 => Response::Stopped,
        6 => Response::Partial {
            groups: read_groups(&mut c)?,
            stats: read_stats(&mut c)?,
            error_bound: c.f64()?,
            lower_bound: c.f64()?,
            elapsed_us: c.u64()?,
            io: c.u64()?,
            reason: PartialReason::from_byte(c.u8()?)?,
        },
        _ => return Err(ProtoError::Malformed("unknown status")),
    };
    c.done()?;
    Ok((request_id, resp))
}

// ---------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------

/// Writes one length-prefixed frame.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<(), ProtoError> {
    if payload.len() > MAX_FRAME as usize {
        return Err(ProtoError::Malformed("frame too large"));
    }
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// Reads one length-prefixed frame into `buf` (reused across calls).
/// Returns [`ProtoError::Closed`] on clean EOF between frames.
///
/// For **blocking** sockets only: a read timeout firing mid-frame
/// loses the bytes already consumed and desynchronizes the stream.
/// Sockets with a read timeout (the server's per-connection readers)
/// must use [`FrameReader`], which keeps partial progress.
pub fn read_frame(r: &mut impl Read, buf: &mut Vec<u8>) -> Result<(), ProtoError> {
    let mut len_bytes = [0u8; 4];
    let mut got = 0;
    while got < 4 {
        match r.read(&mut len_bytes[got..]) {
            Ok(0) => {
                return Err(if got == 0 {
                    ProtoError::Closed
                } else {
                    ProtoError::Malformed("EOF inside length prefix")
                });
            }
            Ok(k) => got += k,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(ProtoError::Io(e)),
        }
    }
    let len = u32::from_le_bytes(len_bytes);
    if len > MAX_FRAME {
        return Err(ProtoError::Malformed("frame too large"));
    }
    buf.clear();
    buf.resize(len as usize, 0);
    r.read_exact(buf).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            ProtoError::Malformed("EOF inside frame body")
        } else {
            ProtoError::Io(e)
        }
    })?;
    Ok(())
}

/// A resumable frame reader for sockets carrying a read timeout (or in
/// nonblocking mode). Partial progress — length-prefix bytes and body
/// bytes already consumed — survives a `WouldBlock`/`TimedOut` read,
/// so a caller can poll a stop flag between attempts and then resume
/// *exactly where the previous read stopped*: a frame whose bytes
/// straddle timeouts is reassembled, never reinterpreted mid-stream as
/// a fresh length prefix.
#[derive(Debug, Default)]
pub struct FrameReader {
    len_bytes: [u8; 4],
    len_got: usize,
    /// `Some(len)` once the prefix is complete and `buf` is sized for
    /// the body; `None` while (re)reading the prefix.
    body_len: Option<usize>,
    body_got: usize,
    buf: Vec<u8>,
}

impl FrameReader {
    /// A reader with no partial frame.
    pub fn new() -> Self {
        FrameReader::default()
    }

    /// True when some bytes of the current frame have been consumed
    /// but the frame is not complete — a timeout now means a slow
    /// peer, not an idle one.
    pub fn mid_frame(&self) -> bool {
        self.len_got > 0 || self.body_len.is_some()
    }

    /// Reads until one frame completes and returns its payload. Every
    /// error is returned with partial progress kept, so after a
    /// `WouldBlock`/`TimedOut` the next call resumes the same frame;
    /// a clean EOF between frames is [`ProtoError::Closed`].
    pub fn read_frame(&mut self, r: &mut impl Read) -> Result<&[u8], ProtoError> {
        // Phase 1: the length prefix.
        while self.body_len.is_none() {
            if self.len_got == 4 {
                let len = u32::from_le_bytes(self.len_bytes);
                if len > MAX_FRAME {
                    return Err(ProtoError::Malformed("frame too large"));
                }
                self.buf.clear();
                self.buf.resize(len as usize, 0);
                self.body_got = 0;
                self.body_len = Some(len as usize);
                break;
            }
            match r.read(&mut self.len_bytes[self.len_got..4]) {
                Ok(0) => {
                    return Err(if self.len_got == 0 {
                        ProtoError::Closed
                    } else {
                        ProtoError::Malformed("EOF inside length prefix")
                    });
                }
                Ok(k) => self.len_got += k,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(ProtoError::Io(e)),
            }
        }
        // Phase 2: the body.
        let len = match self.body_len {
            Some(len) => len,
            // Unreachable — phase 1 always sets `body_len` — but this
            // module is panic-free by policy, so no unwrap.
            None => return Err(ProtoError::Malformed("frame reader state")),
        };
        while self.body_got < len {
            match r.read(&mut self.buf[self.body_got..len]) {
                Ok(0) => return Err(ProtoError::Malformed("EOF inside frame body")),
                Ok(k) => self.body_got += k,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(ProtoError::Io(e)),
            }
        }
        // Frame complete: reset for the next one, hand out the payload.
        self.len_got = 0;
        self.body_len = None;
        self.body_got = 0;
        Ok(&self.buf[..len])
    }
}

/// Decodes scheme bits into a [`Scheme`](nwc_core::Scheme); bits above
/// 3 are rejected so future extensions fail loudly instead of silently
/// degrading.
pub fn decode_scheme(bits: u8) -> Result<nwc_core::Scheme, ProtoError> {
    if bits & !0b1111 != 0 {
        return Err(ProtoError::Malformed("unknown scheme bits"));
    }
    Ok(nwc_core::Scheme {
        srr: bits & 1 != 0,
        dip: bits & 2 != 0,
        dep: bits & 4 != 0,
        iwp: bits & 8 != 0,
    })
}

/// Encodes a [`Scheme`](nwc_core::Scheme) into its wire bits.
pub fn encode_scheme(s: nwc_core::Scheme) -> u8 {
    u8::from(s.srr) | u8::from(s.dip) << 1 | u8::from(s.dep) << 2 | u8::from(s.iwp) << 3
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> QuerySpec {
        QuerySpec {
            scheme_bits: 0b1011,
            qx: 12.5,
            qy: -3.25,
            l: 200.0,
            w: 100.0,
            n: 8,
            deadline_ms: 250,
        }
    }

    #[test]
    fn request_roundtrip() {
        for req in [
            Request::Nwc {
                spec: spec(),
                anytime: None,
            },
            Request::Nwc {
                spec: spec(),
                anytime: Some(AnytimeSpec {
                    epsilon: 0.25,
                    io_budget: 5000,
                }),
            },
            Request::Knwc {
                spec: spec(),
                k: 4,
                m: 1,
                anytime: None,
            },
            Request::Knwc {
                spec: spec(),
                k: 4,
                m: 1,
                anytime: Some(AnytimeSpec::exact()),
            },
            Request::Stats,
            Request::Swap("/tmp/gen2.pages".to_string()),
            Request::Ping,
            Request::Shutdown,
        ] {
            let payload = encode_request(77, &req);
            let (id, back) = decode_request(&payload).unwrap();
            assert_eq!(id, 77);
            assert_eq!(back, req);
        }
    }

    /// A request without the anytime extension must be byte-identical
    /// to the pre-anytime protocol: old clients and servers keep
    /// interoperating frame-for-frame.
    #[test]
    fn legacy_request_bytes_unchanged() {
        // Hand-rolled legacy Nwc frame: id, opcode, scheme, 4 × f64,
        // n, deadline_ms — and nothing after.
        let s = spec();
        let mut legacy = Vec::new();
        legacy.extend_from_slice(&77u32.to_le_bytes());
        legacy.push(1);
        legacy.push(s.scheme_bits);
        for v in [s.qx, s.qy, s.l, s.w] {
            legacy.extend_from_slice(&v.to_le_bytes());
        }
        legacy.extend_from_slice(&s.n.to_le_bytes());
        legacy.extend_from_slice(&s.deadline_ms.to_le_bytes());
        assert_eq!(
            encode_request(
                77,
                &Request::Nwc {
                    spec: s,
                    anytime: None
                }
            ),
            legacy
        );
        // And the legacy bytes decode with no extension attached.
        let (_, back) = decode_request(&legacy).unwrap();
        assert_eq!(
            back,
            Request::Nwc {
                spec: s,
                anytime: None
            }
        );
    }

    #[test]
    fn anytime_extension_validated_at_decode() {
        let base = |anytime| Request::Nwc {
            spec: spec(),
            anytime,
        };
        for bad_eps in [f64::NAN, -0.5, f64::INFINITY, f64::NEG_INFINITY] {
            let payload = encode_request(
                1,
                &base(Some(AnytimeSpec {
                    epsilon: bad_eps,
                    io_budget: u64::MAX,
                })),
            );
            assert!(
                matches!(decode_request(&payload), Err(ProtoError::Malformed(_))),
                "epsilon {bad_eps} must be rejected"
            );
        }
        // A truncated extension (some trailing bytes, fewer than 16) is
        // malformed, not silently accepted as legacy.
        let mut payload = encode_request(1, &base(None));
        payload.extend_from_slice(&[0u8; 8]);
        assert!(matches!(
            decode_request(&payload),
            Err(ProtoError::Malformed(_))
        ));
        // Zero epsilon and zero budget are valid wire values (the
        // server answers the latter with an empty bounded Partial).
        let payload = encode_request(
            1,
            &base(Some(AnytimeSpec {
                epsilon: 0.0,
                io_budget: 0,
            })),
        );
        assert!(decode_request(&payload).is_ok());
        // Non-query opcodes still reject trailing bytes outright.
        let mut payload = encode_request(1, &Request::Ping);
        payload.extend_from_slice(&0.5f64.to_le_bytes());
        payload.extend_from_slice(&100u64.to_le_bytes());
        assert!(matches!(
            decode_request(&payload),
            Err(ProtoError::Malformed(_))
        ));
    }

    #[test]
    fn partial_response_roundtrip_and_bad_reason() {
        let resp = Response::Partial {
            groups: vec![WireGroup {
                objects: vec![WireObject { id: 3, x: 1.0, y: 2.0 }],
                distance: 6.5,
            }],
            stats: SearchStats {
                io_total: 17,
                ..Default::default()
            },
            error_bound: 1.25,
            lower_bound: 5.25,
            elapsed_us: 900,
            io: 17,
            reason: PartialReason::IoBudget,
        };
        let payload = encode_response(9, &resp);
        let (id, back) = decode_response(&payload, OkShape::Groups).unwrap();
        assert_eq!(id, 9);
        assert_eq!(back, resp);
        // An empty partial (budget spent before any answer) carries an
        // infinite error bound and still roundtrips.
        let empty = Response::Partial {
            groups: vec![],
            stats: SearchStats::default(),
            error_bound: f64::INFINITY,
            lower_bound: 0.0,
            elapsed_us: 0,
            io: 0,
            reason: PartialReason::Deadline,
        };
        let payload = encode_response(10, &empty);
        let (_, back) = decode_response(&payload, OkShape::Groups).unwrap();
        assert_eq!(back, empty);
        // A reason byte outside 1..=4 is malformed.
        let mut payload = encode_response(9, &resp);
        let last = payload.len() - 1;
        payload[last] = 7;
        assert!(matches!(
            decode_response(&payload, OkShape::Groups),
            Err(ProtoError::Malformed(_))
        ));
    }

    #[test]
    fn response_roundtrip() {
        let stats = SearchStats {
            io_total: 42,
            window_queries: 7,
            retries: 1,
            ..Default::default()
        };
        let cases: Vec<(Response, OkShape)> = vec![
            (
                Response::Groups {
                    groups: vec![WireGroup {
                        objects: vec![
                            WireObject { id: 3, x: 1.0, y: 2.0 },
                            WireObject { id: 9, x: 4.0, y: 5.0 },
                        ],
                        distance: 6.5,
                    }],
                    stats,
                },
                OkShape::Groups,
            ),
            (
                Response::Groups {
                    groups: vec![],
                    stats: SearchStats::default(),
                },
                OkShape::Groups,
            ),
            (Response::Stats("io_accesses 5\n".to_string()), OkShape::Stats),
            (
                Response::Swapped {
                    old_generation: 1,
                    new_generation: 2,
                    drain_us: 1234,
                    old_pinned: 0,
                    drained: true,
                },
                OkShape::Swap,
            ),
            (Response::Done, OkShape::Done),
            (Response::Deadline, OkShape::Groups),
            (Response::Shed { retry_after_ms: 40 }, OkShape::Groups),
            (Response::BadRequest("bad scheme".to_string()), OkShape::Groups),
            (Response::IoFailed("page 7".to_string()), OkShape::Groups),
            (Response::Stopped, OkShape::Groups),
        ];
        for (resp, shape) in cases {
            let payload = encode_response(5, &resp);
            let (id, back) = decode_response(&payload, shape).unwrap();
            assert_eq!(id, 5);
            assert_eq!(back, resp);
        }
    }

    #[test]
    fn framing_roundtrip_and_eof() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"hello").unwrap();
        write_frame(&mut wire, b"").unwrap();
        let mut r = &wire[..];
        let mut buf = Vec::new();
        read_frame(&mut r, &mut buf).unwrap();
        assert_eq!(buf, b"hello");
        read_frame(&mut r, &mut buf).unwrap();
        assert_eq!(buf, b"");
        assert!(matches!(
            read_frame(&mut r, &mut buf),
            Err(ProtoError::Closed)
        ));
    }

    #[test]
    fn truncated_and_oversized_frames_rejected() {
        let mut r: &[u8] = &[5, 0, 0, 0, b'a', b'b']; // claims 5, has 2
        let mut buf = Vec::new();
        assert!(matches!(
            read_frame(&mut r, &mut buf),
            Err(ProtoError::Malformed(_))
        ));
        let huge = (MAX_FRAME + 1).to_le_bytes();
        let mut r: &[u8] = &huge;
        assert!(matches!(
            read_frame(&mut r, &mut buf),
            Err(ProtoError::Malformed(_))
        ));
    }

    #[test]
    fn malformed_payloads_rejected() {
        assert!(decode_request(&[]).is_err());
        assert!(decode_request(&[1, 0, 0, 0, 99]).is_err()); // bad opcode
        let nwc = Request::Nwc {
            spec: spec(),
            anytime: None,
        };
        let mut good = encode_request(1, &nwc);
        good.push(0); // trailing byte: not a whole anytime extension
        assert!(decode_request(&good).is_err());
        let short = &encode_request(1, &nwc)[..10];
        assert!(decode_request(short).is_err());
    }

    /// Yields one byte per `read`, interleaving a `WouldBlock` before
    /// every byte — the worst case a read timeout can produce: every
    /// prefix and body byte arrives in its own segment with a timeout
    /// in between.
    struct Trickle<'a> {
        data: &'a [u8],
        pos: usize,
        ready: bool,
        timeouts: usize,
    }

    impl Read for Trickle<'_> {
        fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
            if self.pos >= self.data.len() {
                return Ok(0);
            }
            if !self.ready {
                self.ready = true;
                self.timeouts += 1;
                return Err(std::io::ErrorKind::WouldBlock.into());
            }
            self.ready = false;
            out[0] = self.data[self.pos];
            self.pos += 1;
            Ok(1)
        }
    }

    #[test]
    fn frame_reader_resumes_across_timeouts() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"hello").unwrap();
        write_frame(&mut wire, b"").unwrap();
        write_frame(&mut wire, b"world!").unwrap();
        let mut r = Trickle {
            data: &wire,
            pos: 0,
            ready: false,
            timeouts: 0,
        };
        let mut frames = FrameReader::new();
        let mut got = Vec::new();
        loop {
            match frames.read_frame(&mut r) {
                Ok(payload) => got.push(payload.to_vec()),
                Err(ProtoError::Io(e)) if e.kind() == std::io::ErrorKind::WouldBlock => continue,
                Err(ProtoError::Closed) => break,
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        assert_eq!(got, vec![b"hello".to_vec(), b"".to_vec(), b"world!".to_vec()]);
        // Every byte was preceded by a timeout, so partial prefixes and
        // bodies were resumed many times over.
        assert_eq!(r.timeouts, wire.len());
        assert!(!frames.mid_frame());
    }

    #[test]
    fn frame_reader_tracks_mid_frame_progress() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"abc").unwrap();
        // Feed two bytes of the prefix, then stall.
        let mut frames = FrameReader::new();
        let mut r: &[u8] = &wire[..2];
        assert!(matches!(
            frames.read_frame(&mut r),
            Err(ProtoError::Malformed(_)) // EOF inside length prefix
        ));
        let mut frames = FrameReader::new();
        let mut r = Trickle {
            data: &wire[..2],
            pos: 0,
            ready: true, // one byte per call, no timeout on the first
            timeouts: 0,
        };
        let _ = frames.read_frame(&mut r); // consumes byte 0, blocks
        assert!(frames.mid_frame());
        // The rest of the frame arrives: same reader finishes it.
        let mut rest: &[u8] = &wire[2..];
        // Drain the first-two-bytes source fully first.
        let mut r2 = Trickle {
            data: &wire[1..2],
            pos: 0,
            ready: true,
            timeouts: 0,
        };
        let _ = frames.read_frame(&mut r2); // consumes byte 1, blocks
        assert!(frames.mid_frame());
        let payload = frames.read_frame(&mut rest).unwrap();
        assert_eq!(payload, b"abc");
        assert!(!frames.mid_frame());
    }

    #[test]
    fn frame_reader_rejects_oversized_frames() {
        let huge = (MAX_FRAME + 1).to_le_bytes();
        let mut r: &[u8] = &huge;
        let mut frames = FrameReader::new();
        assert!(matches!(
            frames.read_frame(&mut r),
            Err(ProtoError::Malformed(_))
        ));
    }

    #[test]
    fn scheme_bits_roundtrip() {
        for s in nwc_core::Scheme::TABLE3 {
            assert_eq!(decode_scheme(encode_scheme(s)).unwrap(), s);
        }
        assert!(decode_scheme(0b10000).is_err());
    }
}
