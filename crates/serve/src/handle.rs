//! The zero-downtime hot-swap epoch handle.
//!
//! A serving process must replace its index (a rebuilt page file, a
//! fresher dataset) without dropping a single in-flight query. The
//! [`IndexHandle`] implements the classic epoch scheme with plain `std`
//! parts (an `ArcSwap` without the dependency):
//!
//! - readers call [`IndexHandle::load`] — a read-lock held only long
//!   enough to clone an `Arc<Generation>` — and run the whole query on
//!   that clone, so a flip mid-query is invisible: the answer is valid
//!   for exactly the generation the query loaded, never a torn mix;
//! - [`IndexHandle::swap_index`] write-locks, flips the `Arc`, releases
//!   the lock, then **drains**: it polls the old generation's reference
//!   count until every in-flight clone has dropped (bounded by
//!   `drain_timeout`), records the pool's pin gauge as evidence that no
//!   query leaked a page pin, and finally drops the old index — which
//!   closes its page store and releases the file's advisory lock.
//!
//! New queries admitted during the drain already load the new
//! generation, so the flip is wait-free for readers and the old store
//! closes exactly when its last query finishes.

use nwc_core::{DiskIndexConfig, IndexOpenError, NwcIndex};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, PoisonError, RwLock};
use std::time::{Duration, Instant};

/// One index generation: the index plus its epoch id.
#[derive(Debug)]
pub struct Generation {
    /// Monotonic generation id (the first is 1).
    pub id: u64,
    /// The index this generation serves.
    pub index: NwcIndex,
}

/// What a swap did. Returned by [`IndexHandle::swap_index`].
#[derive(Clone, Copy, Debug)]
pub struct SwapReport {
    /// The generation served before the flip.
    pub old_generation: u64,
    /// The generation serving after the flip.
    pub new_generation: u64,
    /// How long the drain waited for in-flight queries on the old
    /// generation.
    pub drain: Duration,
    /// Whether every in-flight reference dropped before the timeout.
    /// `false` means the old generation (and its store) is still alive
    /// somewhere — a leaked guard or a very slow query.
    pub drained: bool,
    /// The old generation's pool pin gauge at close (disk-backed only;
    /// 0 otherwise). Non-zero indicates a pin leak.
    pub old_pinned: u64,
}

/// An epoch handle over the currently-served [`Generation`]. See the
/// module docs. Cheap to share (`Arc<IndexHandle>`); readers never
/// block writers for longer than one `Arc` clone.
pub struct IndexHandle {
    current: RwLock<Arc<Generation>>,
    next_id: AtomicU64,
    drain_timeout: Duration,
}

impl IndexHandle {
    /// A handle serving `index` as generation 1, with a 30 s drain
    /// timeout.
    pub fn new(index: NwcIndex) -> Self {
        IndexHandle {
            current: RwLock::new(Arc::new(Generation { id: 1, index })),
            next_id: AtomicU64::new(2),
            drain_timeout: Duration::from_secs(30),
        }
    }

    /// Sets how long [`IndexHandle::swap_index`] waits for in-flight
    /// queries on the old generation before giving up on the drain.
    #[must_use]
    pub fn with_drain_timeout(mut self, timeout: Duration) -> Self {
        self.drain_timeout = timeout;
        self
    }

    /// The generation to run a query on. Hold the returned `Arc` for
    /// the whole query: the generation — and its page store — stays
    /// alive until the last clone drops, even across a concurrent swap.
    pub fn load(&self) -> Arc<Generation> {
        Arc::clone(
            &self
                .current
                .read()
                .unwrap_or_else(PoisonError::into_inner),
        )
    }

    /// The id of the currently-served generation.
    pub fn generation(&self) -> u64 {
        self.load().id
    }

    /// Atomically replaces the served index with `index`, then drains
    /// and closes the old generation. In-flight queries keep their
    /// loaded generation and finish normally; queries admitted after
    /// the flip see the new one. Never blocks readers beyond the
    /// write-lock flip itself.
    pub fn swap_index(&self, index: NwcIndex) -> SwapReport {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let fresh = Arc::new(Generation { id, index });
        let old = {
            let mut cur = self.current.write().unwrap_or_else(PoisonError::into_inner);
            std::mem::replace(&mut *cur, fresh)
        };
        let old_generation = old.id;
        // Drain: wait for every in-flight clone of the old generation
        // to drop. Ours is the last one standing when strong_count == 1.
        let start = Instant::now();
        let mut drained = Arc::strong_count(&old) == 1;
        while !drained && start.elapsed() < self.drain_timeout {
            std::thread::sleep(Duration::from_micros(200));
            drained = Arc::strong_count(&old) == 1;
        }
        let drain = start.elapsed();
        // Pin-leak evidence, captured before the store closes: with the
        // drain complete no query holds a page guard, so the pool must
        // report zero pinned frames.
        let old_pinned = old
            .index
            .tree()
            .storage()
            .map_or(0, |s| s.pool_stats().pinned as u64);
        drop(old); // closes the store, releasing its advisory file lock
        SwapReport {
            old_generation,
            new_generation: id,
            drain,
            drained,
            old_pinned,
        }
    }

    /// Opens the page file at `path` as a new generation and swaps to
    /// it (see [`IndexHandle::swap_index`]). On an open error the
    /// served generation is untouched.
    pub fn swap_from_path(
        &self,
        path: impl AsRef<std::path::Path>,
        config: DiskIndexConfig,
    ) -> Result<SwapReport, IndexOpenError> {
        let index = NwcIndex::open_disk(path, config)?;
        Ok(self.swap_index(index))
    }
}

impl std::fmt::Debug for IndexHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IndexHandle")
            .field("generation", &self.generation())
            .field("drain_timeout", &self.drain_timeout)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nwc_geom::pt;

    fn index(offset: f64) -> NwcIndex {
        let pts: Vec<_> = (0..200)
            .map(|i| {
                pt(
                    offset + ((i * 37) % 211) as f64,
                    offset + ((i * 53) % 197) as f64,
                )
            })
            .collect();
        NwcIndex::build(pts)
    }

    #[test]
    fn load_pins_generation_across_swap() {
        let handle = IndexHandle::new(index(0.0)).with_drain_timeout(Duration::from_millis(50));
        let held = handle.load();
        assert_eq!(held.id, 1);
        let report = handle.swap_index(index(1000.0));
        assert_eq!(report.old_generation, 1);
        assert_eq!(report.new_generation, 2);
        // `held` still outstanding: the drain must have timed out.
        assert!(!report.drained);
        // The held generation still answers: its index is untouched.
        assert_eq!(held.index.len(), 200);
        // New loads see the new generation.
        assert_eq!(handle.load().id, 2);
        drop(held);
    }

    #[test]
    fn swap_drains_immediately_when_idle() {
        let handle = IndexHandle::new(index(0.0));
        let report = handle.swap_index(index(50.0));
        assert!(report.drained);
        assert_eq!(report.old_pinned, 0);
        assert_eq!(handle.generation(), 2);
    }

    #[test]
    fn generations_are_monotonic() {
        let handle = IndexHandle::new(index(0.0));
        for want in 2..6u64 {
            let r = handle.swap_index(index(want as f64));
            assert_eq!(r.new_generation, want);
            assert_eq!(r.old_generation, want - 1);
        }
    }
}
