//! The zero-downtime hot-swap epoch handle.
//!
//! A serving process must replace its index (a rebuilt page file, a
//! fresher dataset) without dropping a single in-flight query. The
//! [`IndexHandle`] implements the classic epoch scheme with plain `std`
//! parts (an `ArcSwap` without the dependency):
//!
//! - readers call [`IndexHandle::load`] — a read-lock held only long
//!   enough to clone an `Arc<Generation>` — and run the whole query on
//!   that clone, so a flip mid-query is invisible: the answer is valid
//!   for exactly the generation the query loaded, never a torn mix;
//! - [`IndexHandle::swap_index`] write-locks, flips the `Arc`, releases
//!   the lock, then **drains**: it polls the old generation's reference
//!   count until every in-flight clone has dropped (bounded by
//!   `drain_timeout`), records the pool's pin gauge as evidence that no
//!   query leaked a page pin, and finally drops the old index — which
//!   closes its page store and releases the file's advisory lock.
//!
//! New queries admitted during the drain already load the new
//! generation, so the flip is wait-free for readers and the old store
//! closes exactly when its last query finishes.

use nwc_core::{
    AnytimeKnwc, AnytimeNwc, Approx, DiskIndexConfig, IndexOpenError, KnwcQuery, KnwcResult,
    MetricsSnapshot, NwcIndex, NwcQuery, NwcResult, QueryError, QueryScratch, Scheme, SearchStats,
    ShardedNwcIndex, ShardedStoreError,
};
use nwc_rtree::{Budget, CancelToken};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, PoisonError, RwLock};
use std::time::{Duration, Instant};

/// The index a generation serves: a single tree or a spatially sharded
/// scatter-gather index — the worker loop and control plane are
/// agnostic, going through this enum's forwarding methods.
// One value per generation behind an Arc, never in collections, so
// the variant size gap costs nothing; boxing would only add a hop.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub enum ServedIndex {
    /// One R\*-tree (`NwcIndex`).
    Single(NwcIndex),
    /// K spatial shards with the scatter-gather planner.
    Sharded(ShardedNwcIndex),
}

impl From<NwcIndex> for ServedIndex {
    fn from(index: NwcIndex) -> Self {
        ServedIndex::Single(index)
    }
}

impl From<ShardedNwcIndex> for ServedIndex {
    fn from(index: ShardedNwcIndex) -> Self {
        ServedIndex::Sharded(index)
    }
}

impl ServedIndex {
    /// Live objects served.
    pub fn len(&self) -> usize {
        match self {
            ServedIndex::Single(i) => i.len(),
            ServedIndex::Sharded(i) => i.len(),
        }
    }

    /// Whether the index holds no live objects.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Shard count (1 for a single tree).
    pub fn shard_count(&self) -> usize {
        match self {
            ServedIndex::Single(_) => 1,
            ServedIndex::Sharded(i) => i.shard_count(),
        }
    }

    /// Whether DEP schemes can run (a density grid exists).
    pub fn has_grid(&self) -> bool {
        match self {
            ServedIndex::Single(i) => i.grid().is_some(),
            ServedIndex::Sharded(i) => i.grid().is_some(),
        }
    }

    /// Whether IWP schemes can run (the augmentation exists — on every
    /// shard, for a sharded index).
    pub fn has_iwp(&self) -> bool {
        match self {
            ServedIndex::Single(i) => i.iwp().is_some(),
            ServedIndex::Sharded(i) => i.iwp_ready(),
        }
    }

    /// Forwarded [`NwcIndex::try_nwc_full_cancel`] (scatter-gather on a
    /// sharded generation; the scratch serves the single/K=1 path).
    pub fn try_nwc_full_cancel(
        &self,
        query: &NwcQuery,
        scheme: Scheme,
        scratch: &mut QueryScratch,
        cancel: &CancelToken,
    ) -> Result<(Option<NwcResult>, SearchStats), QueryError> {
        match self {
            ServedIndex::Single(i) => i.try_nwc_full_cancel(query, scheme, scratch, cancel),
            ServedIndex::Sharded(i) => i.try_nwc_full_cancel(query, scheme, scratch, cancel),
        }
    }

    /// Forwarded [`NwcIndex::try_knwc_cancel`].
    pub fn try_knwc_cancel(
        &self,
        query: &KnwcQuery,
        scheme: Scheme,
        scratch: &mut QueryScratch,
        cancel: &CancelToken,
    ) -> Result<KnwcResult, QueryError> {
        match self {
            ServedIndex::Single(i) => i.try_knwc_cancel(query, scheme, scratch, cancel),
            ServedIndex::Sharded(i) => i.try_knwc_cancel(query, scheme, scratch, cancel),
        }
    }

    /// Forwarded anytime `NWC`: runs until `budget` expires and returns
    /// the best-so-far answer with a proven bound instead of erroring.
    /// The second value counts shards that failed or tripped and were
    /// merged around (always 0 on a single tree — a single tree's
    /// budget trip is reported in the answer itself, not here).
    pub fn try_nwc_anytime(
        &self,
        query: &NwcQuery,
        scheme: Scheme,
        scratch: &mut QueryScratch,
        budget: &Budget,
        approx: Approx,
    ) -> Result<(AnytimeNwc, usize), QueryError> {
        match self {
            ServedIndex::Single(i) => i
                .try_nwc_anytime_with(query, scheme, scratch, budget, approx)
                .map(|a| (a, 0)),
            ServedIndex::Sharded(i) => i
                .try_nwc_anytime(query, scheme, budget, approx)
                .map(|s| (s.anytime, s.degraded.len())),
        }
    }

    /// Forwarded anytime `kNWC`; see [`ServedIndex::try_nwc_anytime`].
    pub fn try_knwc_anytime(
        &self,
        query: &KnwcQuery,
        scheme: Scheme,
        scratch: &mut QueryScratch,
        budget: &Budget,
        approx: Approx,
    ) -> Result<(AnytimeKnwc, usize), QueryError> {
        match self {
            ServedIndex::Single(i) => i
                .try_knwc_anytime_with(query, scheme, scratch, budget, approx)
                .map(|a| (a, 0)),
            ServedIndex::Sharded(i) => i
                .try_knwc_anytime(query, scheme, budget, approx)
                .map(|s| (s.anytime, s.degraded.len())),
        }
    }

    /// The metrics snapshot for the `/metrics` surface (per-shard
    /// aggregate on a sharded generation).
    pub fn metrics(&self) -> MetricsSnapshot {
        match self {
            ServedIndex::Single(i) => MetricsSnapshot::capture(i),
            ServedIndex::Sharded(i) => MetricsSnapshot::capture_sharded(i),
        }
    }

    /// Currently pinned pool frames, summed across shard pools (0 for
    /// arena-backed indexes) — the swap drain's pin-leak evidence.
    pub fn pinned(&self) -> u64 {
        match self {
            ServedIndex::Single(i) => i
                .tree()
                .storage()
                .map_or(0, |s| s.pool_stats().pinned as u64),
            ServedIndex::Sharded(i) => i
                .shards()
                .iter()
                .map(|s| {
                    s.tree()
                        .storage()
                        .map_or(0, |st| st.pool_stats().pinned as u64)
                })
                .sum(),
        }
    }
}

/// One index generation: the index plus its epoch id.
#[derive(Debug)]
pub struct Generation {
    /// Monotonic generation id (the first is 1).
    pub id: u64,
    /// The index this generation serves.
    pub index: ServedIndex,
}

/// What a swap did. Returned by [`IndexHandle::swap_index`].
#[derive(Clone, Copy, Debug)]
pub struct SwapReport {
    /// The generation served before the flip.
    pub old_generation: u64,
    /// The generation serving after the flip.
    pub new_generation: u64,
    /// How long the drain waited for in-flight queries on the old
    /// generation.
    pub drain: Duration,
    /// Whether every in-flight reference dropped before the timeout.
    /// `false` means the old generation (and its store) is still alive
    /// somewhere — a leaked guard or a very slow query.
    pub drained: bool,
    /// The old generation's pool pin gauge at close (disk-backed only;
    /// 0 otherwise). Non-zero indicates a pin leak.
    pub old_pinned: u64,
}

/// An epoch handle over the currently-served [`Generation`]. See the
/// module docs. Cheap to share (`Arc<IndexHandle>`); readers never
/// block writers for longer than one `Arc` clone.
pub struct IndexHandle {
    current: RwLock<Arc<Generation>>,
    next_id: AtomicU64,
    drain_timeout: Duration,
}

impl IndexHandle {
    /// A handle serving `index` (single or sharded) as generation 1,
    /// with a 30 s drain timeout.
    pub fn new(index: impl Into<ServedIndex>) -> Self {
        IndexHandle {
            current: RwLock::new(Arc::new(Generation {
                id: 1,
                index: index.into(),
            })),
            next_id: AtomicU64::new(2),
            drain_timeout: Duration::from_secs(30),
        }
    }

    /// Sets how long [`IndexHandle::swap_index`] waits for in-flight
    /// queries on the old generation before giving up on the drain.
    #[must_use]
    pub fn with_drain_timeout(mut self, timeout: Duration) -> Self {
        self.drain_timeout = timeout;
        self
    }

    /// The generation to run a query on. Hold the returned `Arc` for
    /// the whole query: the generation — and its page store — stays
    /// alive until the last clone drops, even across a concurrent swap.
    pub fn load(&self) -> Arc<Generation> {
        Arc::clone(
            &self
                .current
                .read()
                .unwrap_or_else(PoisonError::into_inner),
        )
    }

    /// The id of the currently-served generation.
    pub fn generation(&self) -> u64 {
        self.load().id
    }

    /// Atomically replaces the served index with `index`, then drains
    /// and closes the old generation. In-flight queries keep their
    /// loaded generation and finish normally; queries admitted after
    /// the flip see the new one. Never blocks readers beyond the
    /// write-lock flip itself.
    pub fn swap_index(&self, index: impl Into<ServedIndex>) -> SwapReport {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let fresh = Arc::new(Generation {
            id,
            index: index.into(),
        });
        let old = {
            let mut cur = self.current.write().unwrap_or_else(PoisonError::into_inner);
            std::mem::replace(&mut *cur, fresh)
        };
        let old_generation = old.id;
        // Drain: wait for every in-flight clone of the old generation
        // to drop. Ours is the last one standing when strong_count == 1.
        let start = Instant::now();
        let mut drained = Arc::strong_count(&old) == 1;
        while !drained && start.elapsed() < self.drain_timeout {
            std::thread::sleep(Duration::from_micros(200));
            drained = Arc::strong_count(&old) == 1;
        }
        let drain = start.elapsed();
        // Pin-leak evidence, captured before the store closes: with the
        // drain complete no query holds a page guard, so the pools must
        // report zero pinned frames (summed across shards).
        let old_pinned = old.index.pinned();
        drop(old); // closes the store, releasing its advisory file lock
        SwapReport {
            old_generation,
            new_generation: id,
            drain,
            drained,
            old_pinned,
        }
    }

    /// Opens the index at `path` as a new generation and swaps to it
    /// (see [`IndexHandle::swap_index`]). A directory holding a sharded
    /// `MANIFEST` (written by `ShardedNwcIndex::save_to_dir`) opens as
    /// a sharded generation; anything else opens as a single page file.
    /// On an open error the served generation is untouched.
    pub fn swap_from_path(
        &self,
        path: impl AsRef<std::path::Path>,
        config: DiskIndexConfig,
    ) -> Result<SwapReport, SwapOpenError> {
        let path = path.as_ref();
        if path.join("MANIFEST").is_file() {
            let index = ShardedNwcIndex::open_dir(path, config).map_err(SwapOpenError::Sharded)?;
            Ok(self.swap_index(index))
        } else {
            let index = NwcIndex::open_disk(path, config).map_err(SwapOpenError::Single)?;
            Ok(self.swap_index(index))
        }
    }
}

/// An error opening the replacement index during
/// [`IndexHandle::swap_from_path`].
#[derive(Debug)]
pub enum SwapOpenError {
    /// A single page file failed to open.
    Single(IndexOpenError),
    /// A sharded index directory failed to open.
    Sharded(ShardedStoreError),
}

impl std::fmt::Display for SwapOpenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SwapOpenError::Single(e) => write!(f, "{e}"),
            SwapOpenError::Sharded(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SwapOpenError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SwapOpenError::Single(e) => Some(e),
            SwapOpenError::Sharded(e) => Some(e),
        }
    }
}

impl std::fmt::Debug for IndexHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IndexHandle")
            .field("generation", &self.generation())
            .field("drain_timeout", &self.drain_timeout)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nwc_geom::pt;

    fn index(offset: f64) -> NwcIndex {
        let pts: Vec<_> = (0..200)
            .map(|i| {
                pt(
                    offset + ((i * 37) % 211) as f64,
                    offset + ((i * 53) % 197) as f64,
                )
            })
            .collect();
        NwcIndex::build(pts)
    }

    #[test]
    fn load_pins_generation_across_swap() {
        let handle = IndexHandle::new(index(0.0)).with_drain_timeout(Duration::from_millis(50));
        let held = handle.load();
        assert_eq!(held.id, 1);
        let report = handle.swap_index(index(1000.0));
        assert_eq!(report.old_generation, 1);
        assert_eq!(report.new_generation, 2);
        // `held` still outstanding: the drain must have timed out.
        assert!(!report.drained);
        // The held generation still answers: its index is untouched.
        assert_eq!(held.index.len(), 200);
        // New loads see the new generation.
        assert_eq!(handle.load().id, 2);
        drop(held);
    }

    #[test]
    fn swap_drains_immediately_when_idle() {
        let handle = IndexHandle::new(index(0.0));
        let report = handle.swap_index(index(50.0));
        assert!(report.drained);
        assert_eq!(report.old_pinned, 0);
        assert_eq!(handle.generation(), 2);
    }

    #[test]
    fn generations_are_monotonic() {
        let handle = IndexHandle::new(index(0.0));
        for want in 2..6u64 {
            let r = handle.swap_index(index(want as f64));
            assert_eq!(r.new_generation, want);
            assert_eq!(r.old_generation, want - 1);
        }
    }

    #[test]
    fn swap_to_a_sharded_generation_from_a_saved_dir() {
        let handle = IndexHandle::new(index(0.0));
        // A sharded index can be swapped in directly...
        let pts: Vec<_> = (0..400)
            .map(|i| pt(((i * 37) % 211) as f64, ((i * 53) % 197) as f64))
            .collect();
        let sharded = ShardedNwcIndex::build(pts.clone(), 4);
        let report = handle.swap_index(sharded);
        assert!(report.drained);
        let generation = handle.load();
        assert_eq!(generation.index.shard_count(), 4);
        assert_eq!(generation.index.len(), 400);
        assert!(generation.index.has_grid() && generation.index.has_iwp());
        drop(generation);
        // ...and from a saved directory through the path-based swap
        // (the wire control plane's entry point), pool budget split.
        let dir = std::env::temp_dir().join(format!(
            "nwc-serve-shard-swap-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        ShardedNwcIndex::build(pts, 2)
            .save_to_dir(&dir)
            .expect("save sharded dir");
        let report = handle
            .swap_from_path(
                &dir,
                DiskIndexConfig {
                    pool_capacity: Some(64),
                    ..DiskIndexConfig::default()
                },
            )
            .expect("swap from sharded dir");
        assert!(report.drained);
        assert_eq!(report.old_pinned, 0);
        let generation = handle.load();
        assert_eq!(generation.index.shard_count(), 2);
        // The served sharded generation answers queries.
        let query = nwc_core::NwcQuery::new(
            pt(100.0, 100.0),
            nwc_core::WindowSpec::square(40.0),
            4,
        );
        let mut scratch = QueryScratch::new();
        let (result, _) = generation
            .index
            .try_nwc_full_cancel(&query, Scheme::NWC_PLUS, &mut scratch, &CancelToken::none())
            .expect("sharded generation answers");
        assert!(result.is_some());
        drop(generation);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
