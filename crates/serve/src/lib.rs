//! `nwc-serve`: a query service layer over [`nwc_core`]'s NWC/kNWC
//! engine.
//!
//! The crate turns the in-process index into a long-running service
//! with the operational properties a serving path needs:
//!
//! - **[`protocol`]** — a length-prefixed binary wire protocol
//!   (queries, stats scrape, hot-swap, shutdown), decoded defensively
//!   on both sides;
//! - **[`server`]** — a `std`-only TCP server: per-connection readers,
//!   a bounded admission queue that sheds load with a typed
//!   retry-after, and a fixed worker pool running queries under
//!   cooperative [`CancelToken`](nwc_core::CancelToken) deadlines, so
//!   a slow query costs its caller a typed `Deadline` response, never
//!   a worker;
//! - **[`handle`]** — the epoch handle behind zero-downtime index
//!   hot-swap: readers pin a generation per query, a swap flips the
//!   `Arc` and drains the old generation before closing its store;
//! - **[`histogram`]** — lock-free log-bucketed latency histograms,
//!   one per worker, merged at scrape time;
//! - **[`client`]** — a blocking protocol client used by the examples,
//!   the load generator in `nwc-bench`, and the self-test.
//!
//! Everything outside `#[cfg(test)]` in this crate is panic-free by
//! policy (checked by `scripts/verify.sh`): the server's failure modes
//! are typed wire responses and dropped connections.

pub mod client;
pub mod handle;
pub mod histogram;
pub mod protocol;
pub mod server;

pub use client::{ClientError, QueryOutcome, ServeClient, SwapOutcome};
pub use handle::{Generation, IndexHandle, ServedIndex, SwapOpenError, SwapReport};
pub use histogram::{LatencyHistogram, MergedHistogram};
pub use protocol::{
    AnytimeSpec, FrameReader, OkShape, PartialReason, ProtoError, QuerySpec, Request, Response,
    WireGroup, WireObject,
};
pub use server::{Server, ServerConfig};
