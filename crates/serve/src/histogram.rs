//! Log-bucketed, lock-free latency histograms.
//!
//! Each worker owns a [`LatencyHistogram`] and records into it with one
//! relaxed atomic increment — no locks, no allocation, no contention
//! with other workers. A scrape [`merge`](LatencyHistogram::merge)s all
//! workers' buckets into a [`MergedHistogram`] and reads quantiles off
//! the merged counts.
//!
//! Buckets are powers of two of microseconds: bucket `i` covers
//! `[2^(i-1), 2^i)` µs (bucket 0 is `< 1 µs`), so 50 buckets span
//! sub-microsecond to ~35 years with ≤ 2× quantile error — the right
//! trade for tail latencies, where the *magnitude* matters and exact
//! microseconds do not.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of power-of-two buckets (enough for any latency that fits a
/// `u64` of microseconds).
pub const BUCKETS: usize = 50;

/// A lock-free histogram of microsecond latencies. One per worker;
/// merge at scrape time.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// The bucket index for a microsecond value.
fn bucket_of(us: u64) -> usize {
    ((64 - us.leading_zeros()) as usize).min(BUCKETS - 1)
}

/// The inclusive upper bound (µs) reported for a bucket.
fn bucket_bound(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 63 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

impl LatencyHistogram {
    /// A fresh, zeroed histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation. One relaxed atomic add.
    #[inline]
    pub fn record(&self, latency: std::time::Duration) {
        let us = u64::try_from(latency.as_micros()).unwrap_or(u64::MAX);
        self.buckets[bucket_of(us)].fetch_add(1, Ordering::Relaxed);
    }

    /// Merges any number of per-worker histograms into one snapshot.
    pub fn merge<'a>(parts: impl IntoIterator<Item = &'a LatencyHistogram>) -> MergedHistogram {
        let mut counts = [0u64; BUCKETS];
        for h in parts {
            for (dst, src) in counts.iter_mut().zip(&h.buckets) {
                *dst += src.load(Ordering::Relaxed);
            }
        }
        MergedHistogram { counts }
    }
}

/// A point-in-time merge of per-worker histograms; quantiles are read
/// from this.
#[derive(Clone, Copy, Debug)]
pub struct MergedHistogram {
    counts: [u64; BUCKETS],
}

impl MergedHistogram {
    /// Total observations.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// The upper bound (µs) of the bucket holding the `q`-quantile
    /// observation (`q` in `[0, 1]`), or 0 when empty. Error is bounded
    /// by the bucket width (≤ 2×).
    pub fn quantile_us(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        // Rank of the quantile observation, 1-based, clamped to total.
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_bound(i);
            }
        }
        bucket_bound(BUCKETS - 1)
    }

    /// Convenience: (p50, p99, p999) in microseconds.
    pub fn p50_p99_p999(&self) -> (u64, u64, u64) {
        (
            self.quantile_us(0.50),
            self.quantile_us(0.99),
            self.quantile_us(0.999),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn buckets_are_log2() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn quantiles_bound_true_values_within_2x() {
        let h = LatencyHistogram::new();
        // 1000 observations at 100 µs, 10 at 10 ms, 1 at 1 s.
        for _ in 0..1000 {
            h.record(Duration::from_micros(100));
        }
        for _ in 0..10 {
            h.record(Duration::from_millis(10));
        }
        h.record(Duration::from_secs(1));
        let m = LatencyHistogram::merge([&h]);
        assert_eq!(m.count(), 1011);
        let (p50, p99, p999) = m.p50_p99_p999();
        // True p50 = 100 µs; true p99 (rank 1001 of 1011) and p999
        // (rank 1010) are both 10 ms samples; the max is the 1 s one.
        // Reported bounds must be within 2× of the true values.
        assert!((100..200).contains(&p50), "p50 = {p50}");
        assert!((10_000..20_000).contains(&p99), "p99 = {p99}");
        assert!((10_000..20_000).contains(&p999), "p999 = {p999}");
        let max = m.quantile_us(1.0);
        assert!((1_000_000..2_000_000).contains(&max), "max = {max}");
    }

    #[test]
    fn merge_sums_workers() {
        let a = LatencyHistogram::new();
        let b = LatencyHistogram::new();
        a.record(Duration::from_micros(5));
        b.record(Duration::from_micros(5));
        b.record(Duration::from_micros(500));
        let m = LatencyHistogram::merge([&a, &b]);
        assert_eq!(m.count(), 3);
    }

    #[test]
    fn empty_histogram_quantiles_are_zero() {
        let m = LatencyHistogram::merge([]);
        assert_eq!(m.count(), 0);
        assert_eq!(m.quantile_us(0.99), 0);
    }
}
