//! The TCP query server: admission control, a fixed worker pool with
//! per-query deadlines, metrics, and hot-swap.
//!
//! # Architecture
//!
//! ```text
//!            ┌────────────┐   bounded queue    ┌──────────┐
//!  accept ──▶│ per-conn   │──▶ (shed when ────▶│ worker 0 │─┐
//!  loop      │ reader     │    deep/slow)      │  ...     │ ├─▶ responses
//!            │ threads    │                    │ worker N │─┘   (write mutex
//!            └────────────┘                    └──────────┘     per conn)
//! ```
//!
//! - **Readers** decode frames resumably (a read timeout mid-frame
//!   keeps partial progress — see [`FrameReader`]), answer
//!   control-plane ops (stats, ping — and swap/shutdown when
//!   [`ServerConfig::allow_control_plane`] is set) inline, validate
//!   queries, and enqueue them. Admission is where load is shed: a
//!   request is rejected with a typed `Shed` + retry-after once the
//!   queue is full or the estimated wait (depth × EMA service time ÷
//!   workers) crosses the configured bound.
//! - **Workers** pop queries, arm a [`CancelToken`] with the request
//!   deadline plus the server stop flag, and run the `try_*` engine
//!   paths on whatever generation [`IndexHandle::load`] returns. A
//!   deadline firing surfaces as `QueryError::Deadline` → a typed
//!   response; the worker, its scratch, and the index survive.
//! - **Responses** are written under a per-connection mutex, so workers
//!   finish out of order and clients may pipeline (the `request_id`
//!   says which answer is whose).
//!
//! Everything is `std`: `TcpListener` + scoped-ish plain threads +
//! `Mutex`/`Condvar`. The server side of this crate is panic-free by
//! policy (enforced by `scripts/verify.sh`): every failure path is a
//! typed response or a dropped connection, never a worker teardown.

use crate::handle::{IndexHandle, ServedIndex};
use crate::histogram::LatencyHistogram;
use crate::protocol::{
    decode_request, decode_scheme, encode_response, write_frame, AnytimeSpec, FrameReader,
    PartialReason, ProtoError, QuerySpec, Request, Response, WireGroup, WireObject,
};
use nwc_core::{
    Approx, Budget, CancelFlag, CancelKind, CancelToken, DiskIndexConfig, KnwcQuery, NwcQuery,
    QueryError, QueryScratch, Scheme, SearchStats, WindowSpec,
};
use nwc_geom::pt;
use std::collections::VecDeque;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server tunables. The defaults suit a test or benchmark instance;
/// production would size `workers` to cores and the queue to the
/// latency budget.
#[derive(Clone, Copy, Debug)]
pub struct ServerConfig {
    /// Fixed worker pool size (min 1).
    pub workers: usize,
    /// Maximum queued (admitted, not yet executing) queries before
    /// shedding.
    pub queue_depth: usize,
    /// Shed when `queued × EMA latency ÷ workers` exceeds this.
    pub max_estimated_wait: Duration,
    /// Deadline applied when a request carries `deadline_ms = 0`;
    /// `None` = no default deadline.
    pub default_deadline: Option<Duration>,
    /// How hot-swapped page files are opened.
    pub swap_config: DiskIndexConfig,
    /// Whether the wire control plane (`Swap`, `Shutdown`) is served.
    /// **Off by default**: those opcodes carry no authentication, so
    /// any client that can reach the port could otherwise open an
    /// arbitrary server-side path as the new index or stop the
    /// process. Enable only for test/bench instances or behind a
    /// trusted network boundary; when disabled, both opcodes get a
    /// typed `BadRequest` and the served index is untouched (in-process
    /// swaps via [`IndexHandle`] and [`Server::shutdown`] still work).
    pub allow_control_plane: bool,
    /// Overload degradation: when the *estimated-wait* shed bound
    /// trips (the queue itself is not yet full) and the request opted
    /// into anytime execution, admit it anyway with its `epsilon`
    /// raised to at least this value instead of shedding — the client
    /// gets a `(1+ε)`-bounded answer now rather than a retry-after.
    /// `None` (the default) sheds as before. A hard-full queue always
    /// sheds; legacy requests (no anytime extension) always shed.
    pub shed_degrade_epsilon: Option<f64>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            queue_depth: 128,
            max_estimated_wait: Duration::from_millis(500),
            default_deadline: None,
            swap_config: DiskIndexConfig::default(),
            allow_control_plane: false,
            shed_degrade_epsilon: None,
        }
    }
}

/// Server-side monotonically increasing counters, exported by the
/// stats endpoint.
#[derive(Debug, Default)]
struct Counters {
    accepted: AtomicU64,
    completed: AtomicU64,
    no_answer: AtomicU64,
    deadline: AtomicU64,
    partial: AtomicU64,
    degraded: AtomicU64,
    shed: AtomicU64,
    stopped: AtomicU64,
    bad_request: AtomicU64,
    io_failed: AtomicU64,
    swaps: AtomicU64,
    connections: AtomicU64,
}

/// Per-worker observability: a lock-free latency histogram, merged at
/// scrape time.
#[derive(Debug, Default)]
struct WorkerStats {
    hist: LatencyHistogram,
}

/// What a query job needs to run: the decoded query, where to write
/// the answer, and its latency budget.
struct Job {
    request_id: u32,
    kind: JobKind,
    scheme: Scheme,
    deadline: Option<Instant>,
    /// The anytime extension the request carried, if any: its presence
    /// switches the worker to the budgeted engine path and licenses
    /// `Partial` responses.
    anytime: Option<AnytimeSpec>,
    writer: Arc<Mutex<TcpStream>>,
    enqueued: Instant,
}

enum JobKind {
    Nwc(NwcQuery),
    Knwc(KnwcQuery),
}

/// The bounded admission queue plus the latency EMA the shed policy
/// reads.
#[derive(Debug, Default)]
struct Queue {
    inner: Mutex<VecDeque<Job>>,
    ready: Condvar,
    /// Exponential moving average of query *execution* time,
    /// microseconds (α = 1/8), measured from worker pop to completion
    /// — queue wait is deliberately excluded, since the shed estimate
    /// multiplies this by the queue depth and folding wait back in
    /// would double-count it (a positive feedback loop that sheds far
    /// below the configured bound). Seeded at 1 ms until real samples
    /// arrive.
    ema_us: AtomicU64,
}

impl std::fmt::Debug for Job {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Job").field("request_id", &self.request_id).finish()
    }
}

struct Shared {
    handle: Arc<IndexHandle>,
    config: ServerConfig,
    queue: Queue,
    stop: CancelFlag,
    counters: Counters,
    workers: Vec<WorkerStats>,
}

impl Shared {
    fn lock_queue(&self) -> std::sync::MutexGuard<'_, VecDeque<Job>> {
        self.queue.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Admission: enqueue, or hand the job back with a suggested
    /// retry-after and whether the rejection was *hard* (queue full)
    /// or *soft* (estimated wait over the bound — the queue still has
    /// room, which [`Shared::admit_degraded`] may use).
    #[allow(clippy::result_large_err)] // Err hands the Job back, it is not an error type
    fn admit(&self, job: Job) -> Result<(), (Job, u32, bool)> {
        let workers = self.config.workers.max(1) as u64;
        let ema = self.queue.ema_us.load(Ordering::Relaxed);
        let mut q = self.lock_queue();
        let depth = q.len() as u64;
        let est_wait_us = (depth + 1) * ema / workers;
        let hard = q.len() >= self.config.queue_depth;
        if hard || est_wait_us > self.config.max_estimated_wait.as_micros() as u64 {
            drop(q);
            // Suggested backoff: the estimated wait, at least 1 ms.
            return Err((job, (est_wait_us / 1000).clamp(1, 60_000) as u32, hard));
        }
        q.push_back(job);
        drop(q);
        self.counters.accepted.fetch_add(1, Ordering::Relaxed);
        self.queue.ready.notify_one();
        Ok(())
    }

    /// Second-chance admission for a soft-shed anytime request with a
    /// degraded `epsilon`: only the hard queue-depth cap applies (the
    /// wait estimate was the reason it is here). Returns the job back
    /// when even the hard cap rejects it.
    #[allow(clippy::result_large_err)] // Err hands the Job back, it is not an error type
    fn admit_degraded(&self, job: Job) -> Result<(), Job> {
        let mut q = self.lock_queue();
        if q.len() >= self.config.queue_depth {
            drop(q);
            return Err(job);
        }
        q.push_back(job);
        drop(q);
        self.counters.accepted.fetch_add(1, Ordering::Relaxed);
        self.counters.degraded.fetch_add(1, Ordering::Relaxed);
        self.queue.ready.notify_one();
        Ok(())
    }

    /// Folds a completed query's execution time (worker pop →
    /// completion, no queue wait) into the EMA (α = 1/8).
    fn observe_service_time(&self, service: Duration) {
        let us = u64::try_from(service.as_micros()).unwrap_or(u64::MAX);
        // A CAS loop so concurrent workers never lose each other's
        // samples to a torn load/store pair.
        let _ = self
            .queue
            .ema_us
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |old| {
                Some((old - old / 8 + us / 8).max(1))
            });
    }

    /// The stats-endpoint payload: the unified [`MetricsSnapshot`] of
    /// the serving generation, then the server's own gauges, in a
    /// stable order.
    fn metrics_text(&self) -> String {
        let generation = self.handle.load();
        let mut out = generation.index.metrics().to_text();
        let c = &self.counters;
        let depth = self.lock_queue().len();
        let merged = LatencyHistogram::merge(self.workers.iter().map(|w| &w.hist));
        let (p50, p99, p999) = merged.p50_p99_p999();
        for (name, value) in [
            ("server_generation", generation.id),
            ("server_queue_depth", depth as u64),
            ("server_workers", self.config.workers as u64),
            ("server_connections_total", c.connections.load(Ordering::Relaxed)),
            ("server_accepted_total", c.accepted.load(Ordering::Relaxed)),
            ("server_completed_total", c.completed.load(Ordering::Relaxed)),
            ("server_no_answer_total", c.no_answer.load(Ordering::Relaxed)),
            ("server_deadline_total", c.deadline.load(Ordering::Relaxed)),
            ("server_partial_total", c.partial.load(Ordering::Relaxed)),
            ("server_degraded_total", c.degraded.load(Ordering::Relaxed)),
            ("server_shed_total", c.shed.load(Ordering::Relaxed)),
            ("server_stopped_total", c.stopped.load(Ordering::Relaxed)),
            ("server_bad_request_total", c.bad_request.load(Ordering::Relaxed)),
            ("server_io_failed_total", c.io_failed.load(Ordering::Relaxed)),
            ("server_swaps_total", c.swaps.load(Ordering::Relaxed)),
            ("latency_count", merged.count()),
            ("latency_p50_us", p50),
            ("latency_p99_us", p99),
            ("latency_p999_us", p999),
            ("latency_ema_us", self.queue.ema_us.load(Ordering::Relaxed)),
        ] {
            out.push_str(name);
            out.push(' ');
            out.push_str(&value.to_string());
            out.push('\n');
        }
        out
    }
}

/// A running server. Dropping it without [`Server::shutdown`] leaves
/// the threads running until the process exits; call `shutdown` for an
/// orderly drain.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// starts the accept loop plus the worker pool over `handle`.
    pub fn start(
        handle: Arc<IndexHandle>,
        addr: &str,
        config: ServerConfig,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let workers = config.workers.max(1);
        let shared = Arc::new(Shared {
            handle,
            config,
            queue: Queue {
                ema_us: AtomicU64::new(1000),
                ..Queue::default()
            },
            stop: CancelFlag::new(),
            counters: Counters::default(),
            workers: (0..workers).map(|_| WorkerStats::default()).collect(),
        });
        let mut threads = Vec::with_capacity(workers + 1);
        for wid in 0..workers {
            let shared = Arc::clone(&shared);
            threads.push(std::thread::spawn(move || worker_loop(&shared, wid)));
        }
        {
            let shared = Arc::clone(&shared);
            threads.push(std::thread::spawn(move || accept_loop(&listener, &shared)));
        }
        Ok(Server {
            addr: local,
            shared,
            threads,
        })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The epoch handle this server queries (share it to swap
    /// in-process).
    pub fn handle(&self) -> Arc<IndexHandle> {
        Arc::clone(&self.shared.handle)
    }

    /// The current stats-endpoint payload, scraped in-process.
    pub fn metrics_text(&self) -> String {
        self.shared.metrics_text()
    }

    /// Parks the caller until the stop flag rises — a client `Shutdown`
    /// opcode, typically — then joins every server thread. This is how
    /// a binary serves "forever".
    pub fn shutdown_when_stopped(self) {
        while !self.shared.stop.is_stopped() {
            std::thread::sleep(Duration::from_millis(50));
        }
        self.shutdown();
    }

    /// Raises the stop flag: stop accepting, cancel in-flight queries
    /// via their tokens, answer queued-but-unstarted queries with
    /// `Stopped`, and joins every server thread.
    pub fn shutdown(mut self) {
        self.shared.stop.stop();
        self.shared.queue.ready.notify_all();
        for t in self.threads.drain(..) {
            // A panicked thread already tore itself down; joining is
            // only for orderly exit, so a Err(_) is ignored here.
            let _ = t.join();
        }
    }
}

/// Accepts connections until the stop flag rises; each connection gets
/// a detached reader thread (it exits on disconnect or stop).
fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    while !shared.stop.is_stopped() {
        match listener.accept() {
            Ok((stream, _)) => {
                shared.counters.connections.fetch_add(1, Ordering::Relaxed);
                let shared = Arc::clone(shared);
                std::thread::spawn(move || reader_loop(stream, &shared));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

/// Sends one response frame; a write failure means the client is gone,
/// which is not the server's problem.
fn respond(writer: &Arc<Mutex<TcpStream>>, request_id: u32, resp: &Response) {
    let payload = encode_response(request_id, resp);
    let mut stream = writer.lock().unwrap_or_else(PoisonError::into_inner);
    let _ = write_frame(&mut *stream, &payload);
}

/// Per-connection reader: decodes frames, handles control ops inline,
/// validates and enqueues queries.
fn reader_loop(stream: TcpStream, shared: &Arc<Shared>) {
    // A read timeout lets the reader notice the stop flag between
    // reads instead of blocking in `read` forever. `FrameReader` keeps
    // partial-frame progress across those timeouts, so a slow peer
    // whose frame straddles a timeout (realistic: the length prefix
    // and payload are separate writes on a TCP_NODELAY socket) is
    // resumed, never desynchronized into garbage frames.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let _ = stream.set_nodelay(true);
    let writer = match stream.try_clone() {
        Ok(w) => Arc::new(Mutex::new(w)),
        Err(_) => return,
    };
    let mut reader = stream;
    let mut frames = FrameReader::new();
    loop {
        if shared.stop.is_stopped() {
            return;
        }
        let decoded = match frames.read_frame(&mut reader) {
            Ok(payload) => decode_request(payload),
            Err(ProtoError::Io(e))
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                // Idle between frames, or a slow peer mid-frame: the
                // reader's progress is intact, poll the stop flag and
                // resume.
                continue;
            }
            // Closed or hopeless: drop the connection.
            Err(_) => return,
        };
        match decoded {
            Ok((request_id, req)) => handle_request(shared, &writer, request_id, req),
            Err(_) => {
                // Without a decodable header there is no request_id to
                // echo; answer on id 0 and drop the connection, since
                // framing may be out of sync.
                shared.counters.bad_request.fetch_add(1, Ordering::Relaxed);
                respond(&writer, 0, &Response::BadRequest("undecodable request".to_string()));
                return;
            }
        }
    }
}

/// Validates a wire query spec into an engine query + deadline.
fn build_query(
    shared: &Shared,
    spec: &QuerySpec,
) -> Result<(NwcQuery, Scheme, Option<Instant>), Box<Response>> {
    let scheme = decode_scheme(spec.scheme_bits)
        .map_err(|_| Box::new(Response::BadRequest("unknown scheme bits".to_string())))?;
    // The serving index is built with every structure, but guard anyway:
    // a scheme the current generation cannot run must be a typed
    // rejection, never the engine's panic.
    let generation = shared.handle.load();
    if scheme.needs_grid() && !generation.index.has_grid() {
        return Err(Box::new(Response::BadRequest("DEP needs a density grid".to_string())));
    }
    if scheme.needs_iwp() && !generation.index.has_iwp() {
        return Err(Box::new(Response::BadRequest("IWP augmentation not built".to_string())));
    }
    // `WindowSpec::new` asserts on bad dimensions; the wire carries
    // arbitrary floats, so gate it here with a typed rejection.
    if !(spec.l > 0.0 && spec.w > 0.0 && spec.l.is_finite() && spec.w.is_finite()) {
        return Err(Box::new(Response::BadRequest(
            "window dimensions must be positive and finite".to_string(),
        )));
    }
    let query = NwcQuery::try_new(
        pt(spec.qx, spec.qy),
        WindowSpec::new(spec.l, spec.w),
        spec.n as usize,
        Default::default(),
    )
    .map_err(|e| Box::new(Response::BadRequest(e.to_string())))?;
    let deadline = if spec.deadline_ms > 0 {
        Some(Instant::now() + Duration::from_millis(u64::from(spec.deadline_ms)))
    } else {
        shared.config.default_deadline.map(|d| Instant::now() + d)
    };
    Ok((query, scheme, deadline))
}

fn handle_request(
    shared: &Arc<Shared>,
    writer: &Arc<Mutex<TcpStream>>,
    request_id: u32,
    req: Request,
) {
    match req {
        Request::Ping => respond(writer, request_id, &Response::Done),
        Request::Stats => {
            respond(writer, request_id, &Response::Stats(shared.metrics_text()));
        }
        Request::Shutdown => {
            if !control_plane_allowed(shared, writer, request_id) {
                return;
            }
            respond(writer, request_id, &Response::Done);
            shared.stop.stop();
            shared.queue.ready.notify_all();
        }
        Request::Swap(path) => {
            if !control_plane_allowed(shared, writer, request_id) {
                return;
            }
            match shared.handle.swap_from_path(&path, shared.config.swap_config) {
                Ok(report) => {
                    shared.counters.swaps.fetch_add(1, Ordering::Relaxed);
                    respond(
                        writer,
                        request_id,
                        &Response::Swapped {
                            old_generation: report.old_generation,
                            new_generation: report.new_generation,
                            drain_us: u64::try_from(report.drain.as_micros())
                                .unwrap_or(u64::MAX),
                            old_pinned: report.old_pinned,
                            drained: report.drained,
                        },
                    );
                }
                Err(e) => {
                    shared.counters.io_failed.fetch_add(1, Ordering::Relaxed);
                    respond(writer, request_id, &Response::IoFailed(e.to_string()));
                }
            }
        }
        Request::Nwc { spec, anytime } => {
            let (query, scheme, deadline) = match build_query(shared, &spec) {
                Ok(q) => q,
                Err(resp) => {
                    shared.counters.bad_request.fetch_add(1, Ordering::Relaxed);
                    respond(writer, request_id, &resp);
                    return;
                }
            };
            enqueue(
                shared,
                writer,
                request_id,
                JobKind::Nwc(query),
                scheme,
                deadline,
                anytime,
            );
        }
        Request::Knwc { spec, k, m, anytime } => {
            let (base, scheme, deadline) = match build_query(shared, &spec) {
                Ok(q) => q,
                Err(resp) => {
                    shared.counters.bad_request.fetch_add(1, Ordering::Relaxed);
                    respond(writer, request_id, &resp);
                    return;
                }
            };
            let query = match KnwcQuery::try_new(
                base.q,
                base.spec,
                base.n,
                k as usize,
                m as usize,
                base.measure,
            ) {
                Ok(q) => q,
                Err(e) => {
                    shared.counters.bad_request.fetch_add(1, Ordering::Relaxed);
                    respond(writer, request_id, &Response::BadRequest(e.to_string()));
                    return;
                }
            };
            enqueue(
                shared,
                writer,
                request_id,
                JobKind::Knwc(query),
                scheme,
                deadline,
                anytime,
            );
        }
    }
}

/// Enforces [`ServerConfig::allow_control_plane`]: when the control
/// plane is disabled, answers with a typed refusal and returns false.
fn control_plane_allowed(
    shared: &Shared,
    writer: &Arc<Mutex<TcpStream>>,
    request_id: u32,
) -> bool {
    if shared.config.allow_control_plane {
        return true;
    }
    shared.counters.bad_request.fetch_add(1, Ordering::Relaxed);
    respond(
        writer,
        request_id,
        &Response::BadRequest("control plane disabled on this server".to_string()),
    );
    false
}

#[allow(clippy::too_many_arguments)]
fn enqueue(
    shared: &Arc<Shared>,
    writer: &Arc<Mutex<TcpStream>>,
    request_id: u32,
    kind: JobKind,
    scheme: Scheme,
    deadline: Option<Instant>,
    anytime: Option<AnytimeSpec>,
) {
    if shared.stop.is_stopped() {
        shared.counters.stopped.fetch_add(1, Ordering::Relaxed);
        respond(writer, request_id, &Response::Stopped);
        return;
    }
    let job = Job {
        request_id,
        kind,
        scheme,
        deadline,
        anytime,
        writer: Arc::clone(writer),
        enqueued: Instant::now(),
    };
    let (mut job, retry_after_ms, hard) = match shared.admit(job) {
        Ok(()) => return,
        Err(rejected) => rejected,
    };
    // Overload degradation: a *soft* shed (wait estimate, not a full
    // queue) of an anytime-capable request can be admitted anyway with
    // a coarser epsilon — the client asked for graceful degradation
    // and the server is configured to offer it.
    if !hard {
        if let (Some(floor), Some(any)) =
            (shared.config.shed_degrade_epsilon, job.anytime.as_mut())
        {
            any.epsilon = any.epsilon.max(floor);
            match shared.admit_degraded(job) {
                Ok(()) => return,
                Err(back) => job = back,
            }
        }
    }
    let _ = job;
    shared.counters.shed.fetch_add(1, Ordering::Relaxed);
    respond(writer, request_id, &Response::Shed { retry_after_ms });
}

/// Converts an engine answer into wire groups.
fn wire_groups_nwc(result: Option<nwc_core::NwcResult>) -> Vec<WireGroup> {
    result
        .map(|r| WireGroup {
            objects: r
                .objects
                .iter()
                .map(|e| WireObject {
                    id: e.id,
                    x: e.point.x,
                    y: e.point.y,
                })
                .collect(),
            distance: r.distance,
        })
        .into_iter()
        .collect()
}

fn wire_groups_knwc(result: nwc_core::KnwcResult) -> (Vec<WireGroup>, SearchStats) {
    let stats = result.stats;
    let groups = result
        .groups
        .into_iter()
        .map(|g| WireGroup {
            objects: g
                .objects
                .iter()
                .map(|e| WireObject {
                    id: e.id,
                    x: e.point.x,
                    y: e.point.y,
                })
                .collect(),
            distance: g.distance,
        })
        .collect();
    (groups, stats)
}

/// The fixed worker: pops queries, runs them with an armed token on
/// the loaded generation, answers, repeats. Never tears down on a
/// per-query failure.
fn worker_loop(shared: &Arc<Shared>, wid: usize) {
    let mut scratch = QueryScratch::new();
    loop {
        let job = {
            let mut q = shared.lock_queue();
            loop {
                if let Some(job) = q.pop_front() {
                    break Some(job);
                }
                if shared.stop.is_stopped() {
                    break None;
                }
                let (guard, _) = shared
                    .queue
                    .ready
                    .wait_timeout(q, Duration::from_millis(50))
                    .unwrap_or_else(PoisonError::into_inner);
                q = guard;
            }
        };
        let Some(job) = job else {
            // Stop flag up and the queue empty: the pool drains out.
            return;
        };
        if shared.stop.is_stopped() {
            // Admitted before the stop but never started: typed refusal.
            shared.counters.stopped.fetch_add(1, Ordering::Relaxed);
            respond(&job.writer, job.request_id, &Response::Stopped);
            continue;
        }
        // Execution starts here: `started` feeds the shed EMA (service
        // time only — folding queue wait in would double-count it in
        // the depth × EMA estimate), while `job.enqueued` feeds the
        // latency histogram (what the client experienced, wait
        // included).
        let started = Instant::now();
        // The generation is loaded *here*, pinned for exactly this
        // query: a concurrent swap flips new admissions, not us.
        let generation = shared.handle.load();
        let resp = match job.anytime {
            Some(any) => run_anytime(shared, &generation.index, &job, any, &mut scratch),
            None => run_legacy(shared, &generation.index, &job, &mut scratch),
        };
        drop(generation);
        let service = started.elapsed();
        let latency = job.enqueued.elapsed();
        if matches!(resp, Response::Groups { .. }) {
            shared.counters.completed.fetch_add(1, Ordering::Relaxed);
            shared.observe_service_time(service);
        }
        if matches!(resp, Response::Partial { .. }) {
            shared.counters.partial.fetch_add(1, Ordering::Relaxed);
        }
        if let Some(stats) = shared.workers.get(wid) {
            stats.hist.record(latency);
        }
        respond(&job.writer, job.request_id, &resp);
    }
}

/// The pre-anytime worker path: an armed [`CancelToken`], a deadline
/// trip surfacing as a typed `Deadline` response. Requests without the
/// anytime extension keep this behavior bit-for-bit.
fn run_legacy(
    shared: &Shared,
    index: &ServedIndex,
    job: &Job,
    scratch: &mut QueryScratch,
) -> Response {
    // Arm the token with the request deadline and the server stop
    // flag; the engine checks it at every expand/window boundary.
    let mut token = CancelToken::with_flag(&shared.stop);
    if let Some(deadline) = job.deadline {
        token = token.deadline(deadline);
    }
    match &job.kind {
        JobKind::Nwc(query) => {
            match index.try_nwc_full_cancel(query, job.scheme, scratch, &token) {
                Ok((result, stats)) => {
                    if result.is_none() {
                        shared.counters.no_answer.fetch_add(1, Ordering::Relaxed);
                    }
                    Response::Groups {
                        groups: wire_groups_nwc(result),
                        stats,
                    }
                }
                Err(e) => error_response(shared, e),
            }
        }
        JobKind::Knwc(query) => {
            match index.try_knwc_cancel(query, job.scheme, scratch, &token) {
                Ok(result) => {
                    let (groups, stats) = wire_groups_knwc(result);
                    Response::Groups { groups, stats }
                }
                Err(e) => error_response(shared, e),
            }
        }
    }
}

/// Maps how an anytime search ended to the wire's partial reason:
/// `None` means it completed (a plain `Groups` answer).
fn partial_reason(exhausted: Option<CancelKind>, degraded_shards: usize) -> Option<PartialReason> {
    match exhausted {
        Some(CancelKind::Deadline) => Some(PartialReason::Deadline),
        Some(CancelKind::IoBudget) => Some(PartialReason::IoBudget),
        Some(CancelKind::Stopped) => Some(PartialReason::Stopped),
        None if degraded_shards > 0 => Some(PartialReason::Degraded),
        None => None,
    }
}

/// The anytime worker path: runs the budgeted engine and answers a
/// budget expiry with a bounded `Partial` instead of a bare `Deadline`.
fn run_anytime(
    shared: &Shared,
    index: &ServedIndex,
    job: &Job,
    any: AnytimeSpec,
    scratch: &mut QueryScratch,
) -> Response {
    // The decoder already rejected NaN/negative epsilon; a second
    // typed gate here keeps this path panic-free even if a future
    // caller bypasses the wire.
    let approx = match Approx::new(any.epsilon) {
        Ok(a) => a,
        Err(e) => {
            shared.counters.bad_request.fetch_add(1, Ordering::Relaxed);
            return Response::BadRequest(e.to_string());
        }
    };
    if any.io_budget == 0 {
        // A zero allowance buys nothing: answer immediately with the
        // vacuous bound rather than spinning up a search that trips at
        // the root.
        return Response::Partial {
            groups: Vec::new(),
            stats: SearchStats::default(),
            error_bound: f64::INFINITY,
            lower_bound: 0.0,
            elapsed_us: 0,
            io: 0,
            reason: PartialReason::IoBudget,
        };
    }
    let mut budget = Budget::with_flag(&shared.stop);
    if let Some(deadline) = job.deadline {
        budget = budget.deadline(deadline);
    }
    if any.io_budget != u64::MAX {
        budget = budget.io_limit(any.io_budget);
    }
    match &job.kind {
        JobKind::Nwc(query) => {
            match index.try_nwc_anytime(query, job.scheme, scratch, &budget, approx) {
                Ok((a, degraded)) => match partial_reason(a.exhausted, degraded) {
                    None => {
                        if a.answer.is_none() {
                            shared.counters.no_answer.fetch_add(1, Ordering::Relaxed);
                        }
                        Response::Groups {
                            groups: wire_groups_nwc(a.answer),
                            stats: a.stats,
                        }
                    }
                    Some(reason) => Response::Partial {
                        groups: wire_groups_nwc(a.answer),
                        stats: a.stats,
                        error_bound: a.error_bound,
                        lower_bound: a.lower_bound,
                        elapsed_us: a.spent.elapsed_us,
                        io: a.spent.io,
                        reason,
                    },
                },
                Err(e) => error_response(shared, e),
            }
        }
        JobKind::Knwc(query) => {
            match index.try_knwc_anytime(query, job.scheme, scratch, &budget, approx) {
                Ok((a, degraded)) => match partial_reason(a.exhausted, degraded) {
                    None => {
                        let (groups, stats) = wire_groups_knwc(a.result);
                        Response::Groups { groups, stats }
                    }
                    Some(reason) => {
                        let (error_bound, lower_bound, spent) =
                            (a.error_bound, a.lower_bound, a.spent);
                        let (groups, stats) = wire_groups_knwc(a.result);
                        Response::Partial {
                            groups,
                            stats,
                            error_bound,
                            lower_bound,
                            elapsed_us: spent.elapsed_us,
                            io: spent.io,
                            reason,
                        }
                    }
                },
                Err(e) => error_response(shared, e),
            }
        }
    }
}

/// Maps an engine error to its wire response, counting it.
fn error_response(shared: &Shared, e: QueryError) -> Response {
    match e {
        QueryError::Deadline => {
            shared.counters.deadline.fetch_add(1, Ordering::Relaxed);
            Response::Deadline
        }
        QueryError::Cancelled => {
            shared.counters.stopped.fetch_add(1, Ordering::Relaxed);
            Response::Stopped
        }
        QueryError::Io(e) => {
            shared.counters.io_failed.fetch_add(1, Ordering::Relaxed);
            Response::IoFailed(e.to_string())
        }
        // Validation errors were rejected at admission; anything left
        // is still a typed refusal, not a panic.
        other => {
            shared.counters.bad_request.fetch_add(1, Ordering::Relaxed);
            Response::BadRequest(other.to_string())
        }
    }
}
