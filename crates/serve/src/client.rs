//! A synchronous client for the `nwc-serve` wire protocol.
//!
//! [`ServeClient`] issues one request at a time over a single
//! connection and blocks for the matching response (the server may
//! interleave responses across *pipelined* requests, but this client
//! never pipelines, so the echoed `request_id` is just a sanity check).
//! Load generators that want many outstanding queries open many
//! clients — connections are cheap and the server gives each one a
//! reader thread.
//!
//! Like the server side, this module is panic-free: every failure is a
//! typed [`ClientError`].

use crate::protocol::{
    decode_response, encode_request, encode_scheme, read_frame, write_frame, AnytimeSpec, OkShape,
    PartialReason, ProtoError, QuerySpec, Request, Response, WireGroup,
};
use nwc_core::{Scheme, SearchStats};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// What a client call can fail with.
#[derive(Debug)]
pub enum ClientError {
    /// The socket or framing failed.
    Proto(ProtoError),
    /// The server echoed a different `request_id` than the one sent —
    /// the connection's framing is out of sync.
    IdMismatch {
        /// The id this client sent.
        sent: u32,
        /// The id the server echoed.
        got: u32,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Proto(e) => write!(f, "{e}"),
            ClientError::IdMismatch { sent, got } => {
                write!(f, "response id {got} does not match request id {sent}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<ProtoError> for ClientError {
    fn from(e: ProtoError) -> Self {
        ClientError::Proto(e)
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Proto(ProtoError::Io(e))
    }
}

/// The typed outcome of one query request. `Answer` carries the wire
/// groups (empty = NWC found nothing) plus the per-query search stats;
/// every other variant is one of the server's typed refusals.
#[derive(Clone, Debug, PartialEq)]
pub enum QueryOutcome {
    /// The query ran to completion.
    Answer {
        /// The answer groups (0 or 1 for NWC, up to `k` for kNWC).
        groups: Vec<WireGroup>,
        /// What the search did.
        stats: SearchStats,
    },
    /// A budget expired mid-search (anytime requests only): the best
    /// answer found so far plus its proven quality bound. The exact
    /// optimum `d*` satisfies `lower_bound <= d*` and, when a group was
    /// found, `d* >= best_distance - error_bound`.
    Partial {
        /// The best-so-far groups (possibly empty).
        groups: Vec<WireGroup>,
        /// What the search did up to the stop.
        stats: SearchStats,
        /// Distance gap the answer is proven to be within (`+inf`
        /// when the budget expired before any group was found).
        error_bound: f64,
        /// Proven lower bound on the exact optimum score.
        lower_bound: f64,
        /// Wall-clock microseconds spent.
        elapsed_us: u64,
        /// Logical node accesses charged.
        io: u64,
        /// Which budget dimension expired.
        reason: PartialReason,
    },
    /// The query exceeded its deadline mid-search.
    Deadline,
    /// Rejected at admission; retry after the given backoff.
    Shed {
        /// Suggested backoff before retrying.
        retry_after_ms: u32,
    },
    /// The request was malformed or asked for an unavailable scheme.
    BadRequest(String),
    /// An unrecoverable page read failed under the query.
    IoFailed(String),
    /// The server is draining.
    Stopped,
}

/// A blocking, one-request-at-a-time protocol client.
#[derive(Debug)]
pub struct ServeClient {
    stream: TcpStream,
    next_id: u32,
    buf: Vec<u8>,
}

impl ServeClient {
    /// Connects to a running server.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ClientError> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        Ok(ServeClient {
            stream,
            next_id: 1,
            buf: Vec::new(),
        })
    }

    /// Sets a socket read timeout for responses (`None` = block
    /// forever). A timeout surfaces as `ClientError::Proto(Io(_))`.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> Result<(), ClientError> {
        self.stream.set_read_timeout(timeout)?;
        Ok(())
    }

    fn roundtrip(&mut self, req: &Request, shape: OkShape) -> Result<Response, ClientError> {
        let id = self.next_id;
        self.next_id = self.next_id.wrapping_add(1);
        let payload = encode_request(id, req);
        write_frame(&mut self.stream, &payload)?;
        read_frame(&mut self.stream, &mut self.buf)?;
        let (got, resp) = decode_response(&self.buf, shape)?;
        if got != id {
            return Err(ClientError::IdMismatch { sent: id, got });
        }
        Ok(resp)
    }

    fn query_outcome(resp: Response) -> QueryOutcome {
        match resp {
            Response::Groups { groups, stats } => QueryOutcome::Answer { groups, stats },
            Response::Partial {
                groups,
                stats,
                error_bound,
                lower_bound,
                elapsed_us,
                io,
                reason,
            } => QueryOutcome::Partial {
                groups,
                stats,
                error_bound,
                lower_bound,
                elapsed_us,
                io,
                reason,
            },
            Response::Deadline => QueryOutcome::Deadline,
            Response::Shed { retry_after_ms } => QueryOutcome::Shed { retry_after_ms },
            Response::BadRequest(msg) => QueryOutcome::BadRequest(msg),
            Response::IoFailed(msg) => QueryOutcome::IoFailed(msg),
            Response::Stopped => QueryOutcome::Stopped,
            // Stats/Swapped/Done cannot decode under OkShape::Groups;
            // treat a confused server as a protocol-level refusal.
            other => QueryOutcome::BadRequest(format!("unexpected response: {other:?}")),
        }
    }

    /// Issues `NWC(q, l, w, n)` under `scheme` with an optional
    /// deadline (`deadline_ms = 0` means the server default applies).
    #[allow(clippy::too_many_arguments)]
    pub fn nwc(
        &mut self,
        scheme: Scheme,
        qx: f64,
        qy: f64,
        l: f64,
        w: f64,
        n: u32,
        deadline_ms: u32,
    ) -> Result<QueryOutcome, ClientError> {
        let spec = QuerySpec {
            scheme_bits: encode_scheme(scheme),
            qx,
            qy,
            l,
            w,
            n,
            deadline_ms,
        };
        let resp = self.roundtrip(
            &Request::Nwc {
                spec,
                anytime: None,
            },
            OkShape::Groups,
        )?;
        Ok(Self::query_outcome(resp))
    }

    /// Issues an anytime/budgeted `NWC(q, l, w, n)`: the request
    /// carries the wire extension, so a budget expiry comes back as a
    /// bounded [`QueryOutcome::Partial`] instead of a bare `Deadline`.
    /// `epsilon = 0.0` and `io_budget = u64::MAX` make it an exact,
    /// deadline-only anytime query.
    #[allow(clippy::too_many_arguments)]
    pub fn nwc_anytime(
        &mut self,
        scheme: Scheme,
        qx: f64,
        qy: f64,
        l: f64,
        w: f64,
        n: u32,
        deadline_ms: u32,
        epsilon: f64,
        io_budget: u64,
    ) -> Result<QueryOutcome, ClientError> {
        let spec = QuerySpec {
            scheme_bits: encode_scheme(scheme),
            qx,
            qy,
            l,
            w,
            n,
            deadline_ms,
        };
        let resp = self.roundtrip(
            &Request::Nwc {
                spec,
                anytime: Some(AnytimeSpec { epsilon, io_budget }),
            },
            OkShape::Groups,
        )?;
        Ok(Self::query_outcome(resp))
    }

    /// Issues `kNWC(k, q, l, w, n, m)` under `scheme`.
    #[allow(clippy::too_many_arguments)]
    pub fn knwc(
        &mut self,
        scheme: Scheme,
        qx: f64,
        qy: f64,
        l: f64,
        w: f64,
        n: u32,
        k: u32,
        m: u32,
        deadline_ms: u32,
    ) -> Result<QueryOutcome, ClientError> {
        let spec = QuerySpec {
            scheme_bits: encode_scheme(scheme),
            qx,
            qy,
            l,
            w,
            n,
            deadline_ms,
        };
        let resp = self.roundtrip(
            &Request::Knwc {
                spec,
                k,
                m,
                anytime: None,
            },
            OkShape::Groups,
        )?;
        Ok(Self::query_outcome(resp))
    }

    /// Issues an anytime/budgeted `kNWC`; see [`ServeClient::nwc_anytime`].
    #[allow(clippy::too_many_arguments)]
    pub fn knwc_anytime(
        &mut self,
        scheme: Scheme,
        qx: f64,
        qy: f64,
        l: f64,
        w: f64,
        n: u32,
        k: u32,
        m: u32,
        deadline_ms: u32,
        epsilon: f64,
        io_budget: u64,
    ) -> Result<QueryOutcome, ClientError> {
        let spec = QuerySpec {
            scheme_bits: encode_scheme(scheme),
            qx,
            qy,
            l,
            w,
            n,
            deadline_ms,
        };
        let resp = self.roundtrip(
            &Request::Knwc {
                spec,
                k,
                m,
                anytime: Some(AnytimeSpec { epsilon, io_budget }),
            },
            OkShape::Groups,
        )?;
        Ok(Self::query_outcome(resp))
    }

    /// Scrapes the server's metrics endpoint (stable `name value` text).
    pub fn stats(&mut self) -> Result<String, ClientError> {
        match self.roundtrip(&Request::Stats, OkShape::Stats)? {
            Response::Stats(text) => Ok(text),
            other => Err(unexpected(other)),
        }
    }

    /// Asks the server to hot-swap to the page file at `path`. Returns
    /// `Ok(Ok(swap))` on a completed flip, `Ok(Err(msg))` when the
    /// server refused (open failure; the served index is unchanged).
    pub fn swap(&mut self, path: &str) -> Result<Result<SwapOutcome, String>, ClientError> {
        match self.roundtrip(&Request::Swap(path.to_string()), OkShape::Swap)? {
            Response::Swapped {
                old_generation,
                new_generation,
                drain_us,
                old_pinned,
                drained,
            } => Ok(Ok(SwapOutcome {
                old_generation,
                new_generation,
                drain_us,
                old_pinned,
                drained,
            })),
            Response::IoFailed(msg) | Response::BadRequest(msg) => Ok(Err(msg)),
            other => Err(unexpected(other)),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.roundtrip(&Request::Ping, OkShape::Done)? {
            Response::Done => Ok(()),
            other => Err(unexpected(other)),
        }
    }

    /// Asks the server to stop accepting, drain, and exit.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        match self.roundtrip(&Request::Shutdown, OkShape::Done)? {
            Response::Done | Response::Stopped => Ok(()),
            other => Err(unexpected(other)),
        }
    }
}

fn unexpected(resp: Response) -> ClientError {
    let what: &'static str = match resp {
        Response::Groups { .. } => "unexpected groups response",
        Response::Stats(_) => "unexpected stats response",
        Response::Swapped { .. } => "unexpected swap response",
        Response::Done => "unexpected ack",
        Response::Deadline => "unexpected deadline response",
        Response::Shed { .. } => "unexpected shed response",
        Response::BadRequest(_) => "unexpected bad-request response",
        Response::IoFailed(_) => "unexpected io-failed response",
        Response::Stopped => "unexpected stopped response",
        Response::Partial { .. } => "unexpected partial response",
    };
    ClientError::Proto(ProtoError::Malformed(what))
}

/// What a hot-swap did, as reported over the wire.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SwapOutcome {
    /// Generation served before the flip.
    pub old_generation: u64,
    /// Generation serving now.
    pub new_generation: u64,
    /// Microseconds spent draining the old generation.
    pub drain_us: u64,
    /// Pool frames still pinned at old-store close (0 = no leak).
    pub old_pinned: u64,
    /// Whether the drain completed before the timeout.
    pub drained: bool,
}
