//! A tiny, fully deterministic PRNG for dataset generation.
//!
//! SplitMix64 (Steele et al., "Fast Splittable Pseudorandom Number
//! Generators") is used instead of an external RNG so that generated
//! datasets are bit-identical across platforms, `rand` versions and
//! compiler releases — experiment tables must be reproducible
//! indefinitely. It is statistically more than adequate for spatial
//! workload synthesis.

/// SplitMix64 generator state.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seeds the generator.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`.
    #[inline]
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// Uniform integer in `[0, n)`.
    #[inline]
    pub fn next_usize(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        (self.next_f64() * n as f64) as usize % n
    }

    /// A pair of independent standard-normal samples (Box–Muller).
    #[inline]
    pub fn gaussian_pair(&mut self) -> (f64, f64) {
        // Avoid ln(0) by nudging u1 away from zero.
        let u1 = self.next_f64().max(f64::MIN_POSITIVE);
        let u2 = self.next_f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = std::f64::consts::TAU * u2;
        (r * theta.cos(), r * theta.sin())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn uniform_range() {
        let mut r = SplitMix64::new(1);
        for _ in 0..10_000 {
            let v = r.uniform(3.0, 7.0);
            assert!((3.0..7.0).contains(&v));
        }
    }

    #[test]
    fn uniform_mean_is_centered() {
        let mut r = SplitMix64::new(2);
        let mean: f64 = (0..100_000).map(|_| r.next_f64()).sum::<f64>() / 100_000.0;
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }

    #[test]
    fn gaussian_moments() {
        let mut r = SplitMix64::new(3);
        let samples: Vec<f64> = (0..50_000).flat_map(|_| {
            let (a, b) = r.gaussian_pair();
            [a, b]
        }).collect();
        let mean: f64 = samples.iter().sum::<f64>() / samples.len() as f64;
        let var: f64 =
            samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / samples.len() as f64;
        assert!(mean.abs() < 0.02, "mean = {mean}");
        assert!((var - 1.0).abs() < 0.03, "var = {var}");
    }

    #[test]
    fn next_usize_in_range() {
        let mut r = SplitMix64::new(4);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = r.next_usize(10);
            assert!(v < 10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets should be hit");
    }
}
