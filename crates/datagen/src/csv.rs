//! Plain-text persistence for datasets (one `x,y` pair per line).
//!
//! Keeping generated datasets on disk lets the experiment harness reuse
//! them across runs and lets users drop in their own point files (e.g.
//! the original CA/NY datasets, should they have access to them).

use crate::Dataset;
use nwc_geom::{Point, Rect};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

impl Dataset {
    /// Writes the dataset as `x,y` lines.
    pub fn save_csv(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        let mut out = BufWriter::new(std::fs::File::create(path)?);
        for p in &self.points {
            writeln!(out, "{},{}", p.x, p.y)?;
        }
        out.flush()
    }

    /// Reads a dataset from `x,y` lines. Lines that are empty or start
    /// with `#` are skipped. The bounds are the tight bounding box of
    /// the points expanded to include [`crate::SPACE`] when the data fits
    /// inside it.
    pub fn load_csv(name: impl Into<String>, path: impl AsRef<Path>) -> std::io::Result<Self> {
        let reader = BufReader::new(std::fs::File::open(path)?);
        let mut points = Vec::new();
        for (lineno, line) in reader.lines().enumerate() {
            let line = line?;
            let trimmed = line.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            let mut it = trimmed.split(',');
            let parse = |s: Option<&str>| -> std::io::Result<f64> {
                s.map(str::trim)
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| {
                        std::io::Error::new(
                            std::io::ErrorKind::InvalidData,
                            format!("line {}: expected `x,y`", lineno + 1),
                        )
                    })
            };
            let x = parse(it.next())?;
            let y = parse(it.next())?;
            points.push(Point::new(x, y));
        }
        let bounds = Rect::bounding(points.iter().copied())
            .map(|tight| {
                if crate::SPACE.contains_rect(&tight) {
                    crate::SPACE
                } else {
                    tight
                }
            })
            .unwrap_or(crate::SPACE);
        Ok(Dataset::new(name, points, bounds))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let d = Dataset::gaussian(500, 5000.0, 1000.0, 77);
        let dir = std::env::temp_dir().join("nwc_datagen_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.csv");
        d.save_csv(&path).unwrap();
        let back = Dataset::load_csv("Gaussian", &path).unwrap();
        assert_eq!(back.len(), d.len());
        for (a, b) in d.points.iter().zip(&back.points) {
            assert_eq!(a, b);
        }
        assert_eq!(back.bounds, crate::SPACE);
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let dir = std::env::temp_dir().join("nwc_datagen_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("comments.csv");
        std::fs::write(&path, "# header\n1.5, 2.5\n\n3.0,4.0\n").unwrap();
        let d = Dataset::load_csv("x", &path).unwrap();
        assert_eq!(d.len(), 2);
        assert_eq!(d.points[0], Point::new(1.5, 2.5));
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn malformed_line_errors() {
        let dir = std::env::temp_dir().join("nwc_datagen_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.csv");
        std::fs::write(&path, "1.0\n").unwrap();
        assert!(Dataset::load_csv("x", &path).is_err());
        std::fs::remove_file(path).unwrap();
    }
}
