//! Seeded spatial dataset generators reproducing the NWC paper's
//! workloads (§5, Table 2, Figure 8).
//!
//! The paper evaluates on two real datasets — **CA** (62,556 places in
//! California) and **NY** (255,259 places in New York) — plus a synthetic
//! **Gaussian** dataset (250,000 points, mean 5,000, σ 2,000), all
//! normalized to a `10,000 × 10,000` space. The real datasets are not
//! redistributable, so this crate builds seeded synthetic stand-ins that
//! preserve the only properties the paper's analysis relies on:
//!
//! - `CA` — *moderately clustered*: place clusters of varied size strung
//!   along corridor-shaped strips (coast/valley geography) over sparse
//!   background noise; 62,556 points.
//! - `NY` — *highly clustered*: "the objects in the NY dataset are highly
//!   clustered in certain areas" (§5.1), modelled as a few hundred very
//!   tight urban clusters holding nearly all points; 255,259 points.
//! - `Gaussian` — exactly the paper's generator (Box–Muller, mean 5,000,
//!   σ 2,000 by default, cardinality 250,000), clamped to the space.
//!
//! Every generator is deterministic given its seed, so experiments are
//! reproducible run-to-run.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod csv;
mod rng;

pub use rng::SplitMix64;

use nwc_geom::{rect, Point, Rect};

/// The normalized object space used throughout the paper: a square of
/// width 10,000.
pub const SPACE: Rect = Rect {
    min: Point { x: 0.0, y: 0.0 },
    max: Point {
        x: 10_000.0,
        y: 10_000.0,
    },
};

/// Cardinalities from the paper's Table 2.
pub const CA_CARDINALITY: usize = 62_556;
/// See [`CA_CARDINALITY`].
pub const NY_CARDINALITY: usize = 255_259;
/// See [`CA_CARDINALITY`].
pub const GAUSSIAN_CARDINALITY: usize = 250_000;

/// A named point dataset over [`SPACE`].
#[derive(Clone, Debug)]
pub struct Dataset {
    /// Human-readable name ("CA", "NY", "Gaussian", …).
    pub name: String,
    /// The data objects.
    pub points: Vec<Point>,
    /// The object space (normally [`SPACE`]).
    pub bounds: Rect,
}

impl Dataset {
    /// Wraps existing points under a name.
    pub fn new(name: impl Into<String>, points: Vec<Point>, bounds: Rect) -> Self {
        Dataset {
            name: name.into(),
            points,
            bounds,
        }
    }

    /// Number of objects.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Uniformly distributed points over the space.
    pub fn uniform(n: usize, seed: u64) -> Self {
        let mut rng = SplitMix64::new(seed);
        let points = (0..n)
            .map(|_| {
                Point::new(
                    rng.uniform(SPACE.min.x, SPACE.max.x),
                    rng.uniform(SPACE.min.y, SPACE.max.y),
                )
            })
            .collect();
        Dataset::new("Uniform", points, SPACE)
    }

    /// The paper's synthetic dataset: isotropic Gaussian around
    /// `(mean, mean)` with standard deviation `std`, clamped to the
    /// space. Figure 10 sweeps `std` from 2,000 down to 1,000.
    pub fn gaussian(n: usize, mean: f64, std: f64, seed: u64) -> Self {
        let mut rng = SplitMix64::new(seed);
        let points = (0..n)
            .map(|_| {
                let (gx, gy) = rng.gaussian_pair();
                clamp_to_space(Point::new(mean + gx * std, mean + gy * std))
            })
            .collect();
        Dataset::new(format!("Gaussian(σ={std})"), points, SPACE)
    }

    /// The paper's default Gaussian dataset: 250,000 points, mean 5,000,
    /// σ 2,000 (Table 2).
    pub fn gaussian_default(seed: u64) -> Self {
        let mut d = Dataset::gaussian(GAUSSIAN_CARDINALITY, 5_000.0, 2_000.0, seed);
        d.name = "Gaussian".into();
        d
    }

    /// A generic cluster mixture: `clusters` Gaussian blobs with per-blob
    /// spread sampled from `[min_spread, max_spread]`, plus a
    /// `background` fraction of uniform noise.
    pub fn clustered(
        n: usize,
        clusters: usize,
        min_spread: f64,
        max_spread: f64,
        background: f64,
        seed: u64,
    ) -> Self {
        assert!(clusters > 0, "need at least one cluster");
        assert!((0.0..=1.0).contains(&background));
        let mut rng = SplitMix64::new(seed);
        // Cluster centers and spreads; weights ~ Zipf-ish so some hot
        // areas dominate, as in real place data.
        let centers: Vec<(Point, f64, f64)> = (0..clusters)
            .map(|i| {
                let c = Point::new(
                    rng.uniform(SPACE.min.x, SPACE.max.x),
                    rng.uniform(SPACE.min.y, SPACE.max.y),
                );
                let spread = rng.uniform(min_spread, max_spread);
                let weight = 1.0 / (i as f64 + 1.0).sqrt();
                (c, spread, weight)
            })
            .collect();
        let total_weight: f64 = centers.iter().map(|&(_, _, w)| w).sum();

        let points = (0..n)
            .map(|_| {
                if rng.next_f64() < background {
                    Point::new(
                        rng.uniform(SPACE.min.x, SPACE.max.x),
                        rng.uniform(SPACE.min.y, SPACE.max.y),
                    )
                } else {
                    // Weighted cluster choice.
                    let mut pick = rng.next_f64() * total_weight;
                    let mut chosen = &centers[0];
                    for c in &centers {
                        pick -= c.2;
                        if pick <= 0.0 {
                            chosen = c;
                            break;
                        }
                    }
                    let (gx, gy) = rng.gaussian_pair();
                    clamp_to_space(Point::new(
                        chosen.0.x + gx * chosen.1,
                        chosen.0.y + gy * chosen.1,
                    ))
                }
            })
            .collect();
        Dataset::new("Clustered", points, SPACE)
    }

    /// CA stand-in (see crate docs): 62,556 points, moderately clustered
    /// along corridors. Deterministic for a given `seed`.
    pub fn ca_like(seed: u64) -> Self {
        let mut d = Dataset::corridor_clustered(CA_CARDINALITY, 60, 25.0, 120.0, 0.20, seed);
        d.name = "CA".into();
        d
    }

    /// NY stand-in (see crate docs): 255,259 points, highly clustered.
    pub fn ny_like(seed: u64) -> Self {
        let mut d = Dataset::clustered(NY_CARDINALITY, 300, 8.0, 40.0, 0.05, seed ^ 0x9e37);
        d.name = "NY".into();
        d
    }

    /// Scaled-down variants of the three paper datasets for quick tests
    /// and Criterion benches: same shapes, `n` points each.
    pub fn paper_trio_scaled(n_ca: usize, n_ny: usize, n_gauss: usize, seed: u64) -> Vec<Dataset> {
        let mut ca = Dataset::corridor_clustered(n_ca, 60, 25.0, 120.0, 0.20, seed);
        ca.name = "CA".into();
        let mut ny = Dataset::clustered(n_ny, 300, 8.0, 40.0, 0.05, seed ^ 0x9e37);
        ny.name = "NY".into();
        let mut ga = Dataset::gaussian(n_gauss, 5_000.0, 2_000.0, seed ^ 0x517c);
        ga.name = "Gaussian".into();
        vec![ca, ny, ga]
    }

    /// Clusters strung along a few linear corridors (simulating
    /// coastline/valley geography) over uniform background noise.
    pub fn corridor_clustered(
        n: usize,
        clusters: usize,
        min_spread: f64,
        max_spread: f64,
        background: f64,
        seed: u64,
    ) -> Self {
        let mut rng = SplitMix64::new(seed);
        // Three corridors: rough diagonals across the space.
        let corridors = [
            (Point::new(500.0, 500.0), Point::new(4_000.0, 9_500.0)),
            (Point::new(2_500.0, 200.0), Point::new(9_500.0, 7_000.0)),
            (Point::new(6_000.0, 8_000.0), Point::new(9_800.0, 9_800.0)),
        ];
        let centers: Vec<(Point, f64, f64)> = (0..clusters)
            .map(|i| {
                let (a, b) = corridors[i % corridors.len()];
                let t = rng.next_f64();
                let jitter = rng.uniform(-400.0, 400.0);
                let c = clamp_to_space(Point::new(
                    a.x + (b.x - a.x) * t + jitter,
                    a.y + (b.y - a.y) * t - jitter,
                ));
                let spread = rng.uniform(min_spread, max_spread);
                let weight = 1.0 / (i as f64 + 1.0).sqrt();
                (c, spread, weight)
            })
            .collect();
        let total_weight: f64 = centers.iter().map(|&(_, _, w)| w).sum();
        let points = (0..n)
            .map(|_| {
                if rng.next_f64() < background {
                    Point::new(
                        rng.uniform(SPACE.min.x, SPACE.max.x),
                        rng.uniform(SPACE.min.y, SPACE.max.y),
                    )
                } else {
                    let mut pick = rng.next_f64() * total_weight;
                    let mut chosen = &centers[0];
                    for c in &centers {
                        pick -= c.2;
                        if pick <= 0.0 {
                            chosen = c;
                            break;
                        }
                    }
                    let (gx, gy) = rng.gaussian_pair();
                    clamp_to_space(Point::new(
                        chosen.0.x + gx * chosen.1,
                        chosen.0.y + gy * chosen.1,
                    ))
                }
            })
            .collect();
        Dataset::new("Corridor", points, SPACE)
    }

    /// `count` uniformly random query locations over the space — the
    /// paper runs 25 queries per experiment and reports the average.
    pub fn query_points(count: usize, seed: u64) -> Vec<Point> {
        let mut rng = SplitMix64::new(seed.wrapping_mul(0xc2b2_ae3d));
        (0..count)
            .map(|_| {
                Point::new(
                    rng.uniform(SPACE.min.x, SPACE.max.x),
                    rng.uniform(SPACE.min.y, SPACE.max.y),
                )
            })
            .collect()
    }

    /// ASCII density map (Figure 8 substitute): `cols × rows` cells
    /// shaded by object count.
    pub fn density_map(&self, cols: usize, rows: usize) -> String {
        let shades = [' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];
        let mut counts = vec![0usize; cols * rows];
        for p in &self.points {
            let cx = (((p.x - self.bounds.min.x) / self.bounds.width()) * cols as f64)
                .floor()
                .clamp(0.0, cols as f64 - 1.0) as usize;
            let cy = (((p.y - self.bounds.min.y) / self.bounds.height()) * rows as f64)
                .floor()
                .clamp(0.0, rows as f64 - 1.0) as usize;
            counts[cy * cols + cx] += 1;
        }
        let max = counts.iter().copied().max().unwrap_or(0).max(1);
        let mut out = String::with_capacity((cols + 1) * rows);
        for row in (0..rows).rev() {
            for col in 0..cols {
                let c = counts[row * cols + col];
                // Log shading: real place data is heavy-tailed.
                let level = if c == 0 {
                    0
                } else {
                    let f = (c as f64).ln() / (max as f64).ln();
                    1 + (f * (shades.len() - 2) as f64).round() as usize
                };
                out.push(shades[level.min(shades.len() - 1)]);
            }
            out.push('\n');
        }
        out
    }
}

fn clamp_to_space(p: Point) -> Point {
    Point::new(
        p.x.clamp(SPACE.min.x, SPACE.max.x),
        p.y.clamp(SPACE.min.y, SPACE.max.y),
    )
}

/// Returns the standard bounds used by all generators. Convenience for
/// callers building grids/trees.
pub fn space() -> Rect {
    rect(SPACE.min.x, SPACE.min.y, SPACE.max.x, SPACE.max.y)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic() {
        let a = Dataset::gaussian(1000, 5000.0, 2000.0, 7);
        let b = Dataset::gaussian(1000, 5000.0, 2000.0, 7);
        assert_eq!(a.points, b.points);
        let c = Dataset::gaussian(1000, 5000.0, 2000.0, 8);
        assert_ne!(a.points, c.points);
    }

    #[test]
    fn cardinalities_match_table2() {
        // Scaled-down shape checks run in tests; the full cardinalities
        // are cheap enough to verify directly.
        assert_eq!(Dataset::ca_like(1).len(), CA_CARDINALITY);
        assert_eq!(Dataset::ny_like(1).len(), NY_CARDINALITY);
        assert_eq!(Dataset::gaussian_default(1).len(), GAUSSIAN_CARDINALITY);
    }

    #[test]
    fn points_stay_in_space() {
        for d in Dataset::paper_trio_scaled(2000, 2000, 2000, 3) {
            for p in &d.points {
                assert!(SPACE.contains_point(p), "{} escaped: {p:?}", d.name);
            }
        }
    }

    #[test]
    fn gaussian_moments_are_plausible() {
        let d = Dataset::gaussian(50_000, 5000.0, 1000.0, 11);
        let mean_x: f64 = d.points.iter().map(|p| p.x).sum::<f64>() / d.len() as f64;
        let mean_y: f64 = d.points.iter().map(|p| p.y).sum::<f64>() / d.len() as f64;
        assert!((mean_x - 5000.0).abs() < 50.0, "mean_x = {mean_x}");
        assert!((mean_y - 5000.0).abs() < 50.0, "mean_y = {mean_y}");
        let var_x: f64 =
            d.points.iter().map(|p| (p.x - mean_x).powi(2)).sum::<f64>() / d.len() as f64;
        let std_x = var_x.sqrt();
        assert!((std_x - 1000.0).abs() < 50.0, "std_x = {std_x}");
    }

    #[test]
    fn ny_is_more_clustered_than_gaussian() {
        // Clustering proxy: fraction of occupied 100×100 grid cells —
        // highly clustered data occupies fewer cells per point.
        let occupied = |d: &Dataset| {
            let mut cells = std::collections::HashSet::new();
            for p in &d.points {
                cells.insert(((p.x / 100.0) as i64, (p.y / 100.0) as i64));
            }
            cells.len() as f64 / d.len() as f64
        };
        let trio = Dataset::paper_trio_scaled(20_000, 20_000, 20_000, 5);
        let ca = occupied(&trio[0]);
        let ny = occupied(&trio[1]);
        let ga = occupied(&trio[2]);
        assert!(ny < ca, "NY ({ny}) should be more clustered than CA ({ca})");
        assert!(ny < ga, "NY ({ny}) should be more clustered than Gaussian ({ga})");
    }

    #[test]
    fn smaller_sigma_is_more_clustered() {
        let wide = Dataset::gaussian(10_000, 5000.0, 2000.0, 9);
        let tight = Dataset::gaussian(10_000, 5000.0, 1000.0, 9);
        let spread = |d: &Dataset| {
            d.points
                .iter()
                .map(|p| p.dist(&Point::new(5000.0, 5000.0)))
                .sum::<f64>()
                / d.len() as f64
        };
        assert!(spread(&tight) < spread(&wide));
    }

    #[test]
    fn query_points_deterministic_and_in_space() {
        let a = Dataset::query_points(25, 1);
        let b = Dataset::query_points(25, 1);
        assert_eq!(a, b);
        assert_eq!(a.len(), 25);
        assert!(a.iter().all(|p| SPACE.contains_point(p)));
    }

    #[test]
    fn density_map_shape() {
        let d = Dataset::gaussian(5000, 5000.0, 1500.0, 2);
        let map = d.density_map(40, 20);
        let lines: Vec<&str> = map.lines().collect();
        assert_eq!(lines.len(), 20);
        assert!(lines.iter().all(|l| l.chars().count() == 40));
        // Center should be denser than corners.
        let center_char = lines[10].chars().nth(20).unwrap();
        let corner_char = lines[0].chars().next().unwrap();
        assert_ne!(center_char, ' ');
        assert_eq!(corner_char, ' ');
    }
}
