//! Expected I/O of the NWC algorithm (§4.1).

use crate::special::poisson_cdf;
use crate::tree_model::TreeModel;

/// Parameters of the NWC cost model.
#[derive(Clone, Copy, Debug)]
pub struct NwcCostModel {
    /// Poisson intensity of the objects (objects per unit area).
    pub lambda: f64,
    /// Window length.
    pub l: f64,
    /// Window width.
    pub w: f64,
    /// Desired number of objects `n`.
    pub n: usize,
    /// Largest level of rectangles the space holds (`MaxLV`).
    pub max_level: usize,
}

impl NwcCostModel {
    /// Model for a dataset of `n_objects` over area `area` and an
    /// `NWC(·, l, w, n)` query; `MaxLV` derived from the space so that
    /// level-`MaxLV` rectangles still fit.
    pub fn new(n_objects: usize, area: f64, l: f64, w: f64, n: usize) -> Self {
        let side = area.sqrt();
        let max_level = ((side / (2.0 * l.max(w))).ceil() as usize).max(1);
        NwcCostModel {
            lambda: n_objects as f64 / area,
            l,
            w,
            n,
            max_level,
        }
    }

    /// Expected objects per window, `λ·l·w`.
    pub fn window_rate(&self) -> f64 {
        self.lambda * self.l * self.w
    }

    /// `P` — probability a window is *not* qualified (Equation 8).
    pub fn p_not_qualified(&self) -> f64 {
        poisson_cdf(self.window_rate(), self.n - 1)
    }

    /// `N(i) = 8i − 4` — level-`i` rectangle count (Equation 9).
    pub fn n_rects(&self, i: usize) -> f64 {
        assert!(i >= 1);
        8.0 * i as f64 - 4.0
    }

    /// `O(i) = 2 i² λ l w` — expected objects through level `i`
    /// (Equation 10).
    pub fn o_objects(&self, i: usize) -> f64 {
        2.0 * (i * i) as f64 * self.window_rate()
    }

    /// `Q(i)` — probability that no level-`i` window is qualified:
    /// `P^(N(i)·(λlw)²)`, with `Q(0) = 1`.
    pub fn q_no_qualified(&self, i: usize) -> f64 {
        if i == 0 {
            return 1.0;
        }
        let exponent = self.n_rects(i) * self.window_rate() * self.window_rate();
        // P^e in log space; P may be extremely close to 0 or 1.
        let p = self.p_not_qualified();
        if p <= 0.0 {
            return 0.0;
        }
        (exponent * p.ln()).exp()
    }

    /// Probability the best objects sit in a level-`i` qualified window:
    /// `(1 − Q(i)) · Π_{j<i} Q(j)`.
    pub fn level_probability(&self, i: usize) -> f64 {
        let mut prefix = 1.0;
        for j in 1..i {
            prefix *= self.q_no_qualified(j);
        }
        (1.0 - self.q_no_qualified(i)) * prefix
    }

    /// Expected I/O of the NWC algorithm against the given tree model:
    ///
    /// `Σ_i  levelProb(i) · [ O(i)·WIN(l, w) + KNN(O(i)) ]`.
    pub fn expected_io(&self, tree: &TreeModel) -> f64 {
        let win = tree.win_cost(self.l, self.w);
        let mut total = 0.0;
        let mut mass = 0.0;
        // Iterative form of levelProb(i) = (1 − Q(i)) · Π_{j<i} Q(j),
        // with P evaluated once (the CDF loop is the expensive part).
        let p_nq = self.p_not_qualified();
        let ln_p = if p_nq > 0.0 { p_nq.ln() } else { f64::NEG_INFINITY };
        let rate2 = self.window_rate() * self.window_rate();
        let mut prefix = 1.0;
        for i in 1..=self.max_level {
            let q_i = if p_nq <= 0.0 {
                0.0
            } else {
                (self.n_rects(i) * rate2 * ln_p).exp()
            };
            let p = (1.0 - q_i) * prefix;
            prefix *= q_i;
            if p <= 0.0 {
                if prefix <= 0.0 {
                    break;
                }
                continue;
            }
            mass += p;
            let o = self.o_objects(i);
            total += p * (o * win + tree.knn_cost(o));
            if 1.0 - mass < 1e-12 {
                break;
            }
        }
        // Residual mass (no qualified window anywhere): full scan of the
        // space — every object issues a window query.
        if mass < 1.0 {
            let o = self.o_objects(self.max_level);
            total += (1.0 - mass) * (o * win + tree.knn_cost(o));
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(n_objects: usize, n: usize, wsize: f64) -> NwcCostModel {
        NwcCostModel::new(n_objects, 10_000.0 * 10_000.0, wsize, wsize, n)
    }

    #[test]
    fn probabilities_are_probabilities() {
        let m = model(250_000, 8, 32.0);
        assert!((0.0..=1.0).contains(&m.p_not_qualified()));
        let mut sum = 0.0;
        for i in 1..=m.max_level {
            let p = m.level_probability(i);
            assert!((0.0..=1.0).contains(&p), "level {i}: {p}");
            sum += p;
        }
        assert!(sum <= 1.0 + 1e-9);
    }

    #[test]
    fn denser_data_qualifies_easier() {
        let sparse = model(10_000, 8, 32.0);
        let dense = model(1_000_000, 8, 32.0);
        assert!(dense.p_not_qualified() < sparse.p_not_qualified());
    }

    #[test]
    fn larger_n_is_harder() {
        let easy = model(250_000, 4, 32.0);
        let hard = model(250_000, 64, 32.0);
        assert!(hard.p_not_qualified() >= easy.p_not_qualified());
        let tree = TreeModel::paper_default(250_000);
        assert!(hard.expected_io(&tree) >= easy.expected_io(&tree));
    }

    #[test]
    fn rectangle_counts_match_equation9() {
        let m = model(250_000, 8, 8.0);
        assert_eq!(m.n_rects(1), 4.0);
        assert_eq!(m.n_rects(2), 12.0);
        assert_eq!(m.n_rects(3), 20.0);
    }

    #[test]
    fn expected_io_is_finite_and_positive() {
        for n in [2usize, 8, 32, 128] {
            for wsize in [8.0, 32.0, 128.0] {
                let m = model(250_000, n, wsize);
                let io = m.expected_io(&TreeModel::paper_default(250_000));
                assert!(io.is_finite() && io > 0.0, "n={n} w={wsize}: {io}");
            }
        }
    }
}
