//! Analytical I/O cost model for NWC and kNWC query processing,
//! reproducing the paper's §4 ("Theoretical Analysis").
//!
//! The model assumes objects are Poisson-distributed with intensity `λ`
//! and divides the space into concentric *levels* of `l × w` rectangles
//! around the query point (Figure 7): level `i` contributes
//! `N(i) = 8i − 4` rectangles, and the NWC algorithm is assumed to
//! examine all objects up to the first level containing a qualified
//! window. The expected I/O combines:
//!
//! - `P` — probability a window is not qualified (Equation 8, the
//!   Poisson CDF at `n − 1`),
//! - `Q(i)` — probability level `i` has no qualified window,
//! - `O(i)` — expected objects retrieved through level `i` (Equation 10),
//! - `WIN(l, w)` — expected cost of one window query, and `KNN(K)` — the
//!   expected cost of distance-browsing `K` objects, both estimated from
//!   a [`TreeModel`] via Minkowski-sum node-intersection probabilities
//!   (standing in for the paper's citations \[18\] and \[10\]).
//!
//! The kNWC model (§4.2) layers binomial success counts (`R(i, a)`,
//! `S(i, b)`) on the same machinery, using real-valued binomial
//! coefficients through `lnΓ`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod knwc_model;
mod nwc_model;
mod special;
mod tree_model;

pub use knwc_model::KnwcCostModel;
pub use nwc_model::NwcCostModel;
pub use special::{ln_binomial, ln_gamma, poisson_cdf};
pub use tree_model::TreeModel;
