//! Expected I/O of the kNWC algorithm (§4.2).

use crate::nwc_model::NwcCostModel;
use crate::special::ln_binomial;
use crate::tree_model::TreeModel;

/// Parameters of the kNWC cost model: the base NWC model plus the group
/// count `k` and the compatibility probability `Pr(m, k)` — the paper
/// leaves the latter symbolic, so it is an explicit input here (the
/// probability that a qualified window's group shares at most `m`
/// objects with every group currently kept).
#[derive(Clone, Copy, Debug)]
pub struct KnwcCostModel {
    /// The underlying NWC model.
    pub base: NwcCostModel,
    /// Number of groups requested.
    pub k: usize,
    /// `Pr(m, k)` — group-compatibility probability in `[0, 1]`.
    pub pr_compat: f64,
}

impl KnwcCostModel {
    /// Builds the model.
    pub fn new(base: NwcCostModel, k: usize, pr_compat: f64) -> Self {
        assert!(k >= 1);
        assert!((0.0..=1.0).contains(&pr_compat));
        KnwcCostModel {
            base,
            k,
            pr_compat,
        }
    }

    /// `P'` — probability a window's group cannot be inserted into the
    /// group list: `1 − (1 − P)·Pr(m, k)`.
    pub fn p_not_insertable(&self) -> f64 {
        1.0 - (1.0 - self.base.p_not_qualified()) * self.pr_compat
    }

    /// `R(i, a)` — probability that exactly `a` groups from levels
    /// `1..=i` enter the list: binomial over the expected
    /// `O(i)·λlw` windows with success probability `1 − P'`.
    pub fn r_exact(&self, i: usize, a: usize) -> f64 {
        if i == 0 {
            return if a == 0 { 1.0 } else { 0.0 };
        }
        let trials = self.base.o_objects(i) * self.base.window_rate();
        binom_pmf(trials, a as f64, 1.0 - self.p_not_insertable())
    }

    /// `S(i, b)` — probability that at least `b` groups from level `i`
    /// windows enter the list.
    pub fn s_at_least(&self, i: usize, b: usize) -> f64 {
        let trials = self.base.n_rects(i) * self.base.window_rate() * self.base.window_rate();
        let mut below = 0.0;
        for d in 0..b {
            below += binom_pmf(trials, d as f64, 1.0 - self.p_not_insertable());
        }
        (1.0 - below).clamp(0.0, 1.0)
    }

    /// Probability the k-th nearest group lives in a level-`i` window.
    pub fn level_probability(&self, i: usize) -> f64 {
        let mut total = 0.0;
        for j in 0..self.k {
            total += self.r_exact(i.saturating_sub(1), j) * self.s_at_least(i, self.k - j);
        }
        total.clamp(0.0, 1.0)
    }

    /// Expected I/O: `Σ_i levelProb(i)·[O(i)·WIN + KNN(O(i))]`, with the
    /// residual mass charged a full sweep as in the NWC model.
    pub fn expected_io(&self, tree: &TreeModel) -> f64 {
        let win = tree.win_cost(self.base.l, self.base.w);
        let mut total = 0.0;
        let mut mass = 0.0;
        for i in 1..=self.base.max_level {
            let p = self.level_probability(i);
            if p <= 0.0 {
                continue;
            }
            mass += p;
            let o = self.base.o_objects(i);
            total += p * (o * win + tree.knn_cost(o));
            if mass >= 1.0 {
                break;
            }
        }
        if mass < 1.0 {
            let o = self.base.o_objects(self.base.max_level);
            total += (1.0 - mass) * (o * win + tree.knn_cost(o));
        }
        total
    }
}

/// Binomial pmf with a real-valued trial count (expected counts), in log
/// space: `C(t, a) p^a (1−p)^(t−a)`.
fn binom_pmf(trials: f64, successes: f64, p: f64) -> f64 {
    if trials <= 0.0 {
        return if successes == 0.0 { 1.0 } else { 0.0 };
    }
    if successes > trials {
        return 0.0;
    }
    if p <= 0.0 {
        return if successes == 0.0 { 1.0 } else { 0.0 };
    }
    if p >= 1.0 {
        return if (trials - successes).abs() < 1e-9 { 1.0 } else { 0.0 };
    }
    let ln = ln_binomial(trials, successes)
        + successes * p.ln()
        + (trials - successes) * (1.0 - p).ln();
    ln.exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> NwcCostModel {
        NwcCostModel::new(250_000, 10_000.0 * 10_000.0, 32.0, 32.0, 8)
    }

    #[test]
    fn binom_pmf_sums_to_one_integer_case() {
        let total: f64 = (0..=10).map(|a| binom_pmf(10.0, a as f64, 0.3)).sum();
        assert!((total - 1.0).abs() < 1e-9, "{total}");
    }

    #[test]
    fn p_not_insertable_bounds() {
        let m = KnwcCostModel::new(base(), 4, 0.9);
        let p = m.p_not_insertable();
        assert!((0.0..=1.0).contains(&p));
        // Lower compatibility ⇒ harder to insert.
        let m2 = KnwcCostModel::new(base(), 4, 0.1);
        assert!(m2.p_not_insertable() > p);
    }

    #[test]
    fn larger_k_costs_more() {
        let tree = TreeModel::paper_default(250_000);
        let small = KnwcCostModel::new(base(), 2, 0.9).expected_io(&tree);
        let large = KnwcCostModel::new(base(), 16, 0.9).expected_io(&tree);
        assert!(large >= small, "{large} < {small}");
    }

    #[test]
    fn level_probabilities_bounded() {
        let m = KnwcCostModel::new(base(), 4, 0.8);
        for i in 1..=20 {
            let p = m.level_probability(i);
            assert!((0.0..=1.0).contains(&p), "level {i}: {p}");
        }
    }

    #[test]
    fn expected_io_finite() {
        let tree = TreeModel::paper_default(250_000);
        for k in [1usize, 4, 32] {
            for pr in [0.1, 0.5, 1.0] {
                let io = KnwcCostModel::new(base(), k, pr).expected_io(&tree);
                assert!(io.is_finite() && io > 0.0, "k={k} pr={pr}: {io}");
            }
        }
    }
}
