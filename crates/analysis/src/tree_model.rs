//! A coarse analytical model of an R\*-tree over uniformly-dense data,
//! providing the `WIN(l, w)` and `KNN(K)` cost terms of §4.
//!
//! The paper obtains these from Proietti & Faloutsos [18] and Hjaltason &
//! Samet [10]; both reduce, for square-ish nodes over uniform data, to
//! Minkowski-sum intersection probabilities: a node whose MBR has side
//! `s` intersects an `a × b` query window with probability
//! `(s + a)(s + b) / Area`, and intersects a radius-`r` disc with
//! probability `(s² + 4sr + πr²) / Area`.

/// Shape parameters of the modeled tree.
#[derive(Clone, Copy, Debug)]
pub struct TreeModel {
    /// Number of indexed objects.
    pub n_objects: f64,
    /// Effective fanout (average entries per node, ~70 % of the maximum
    /// for R\*-trees, 100 % for STR bulk-loaded trees).
    pub fanout: f64,
    /// Area of the data space.
    pub area: f64,
}

impl TreeModel {
    /// Model with the paper's defaults: effective fanout of a bulk-loaded
    /// 50-entry tree over the 10,000² space.
    pub fn paper_default(n_objects: usize) -> Self {
        TreeModel {
            n_objects: n_objects as f64,
            fanout: 50.0,
            area: 10_000.0 * 10_000.0,
        }
    }

    /// Number of levels (leaf level = 1).
    pub fn levels(&self) -> usize {
        let mut nodes = self.n_objects / self.fanout;
        let mut levels = 1;
        while nodes > 1.0 {
            nodes /= self.fanout;
            levels += 1;
        }
        levels.max(1)
    }

    /// Expected node count at `level` (1 = leaves).
    pub fn nodes_at(&self, level: usize) -> f64 {
        (self.n_objects / self.fanout.powi(level as i32)).max(1.0)
    }

    /// Expected MBR side length at `level`, assuming square nodes tiling
    /// the space: `side = sqrt(area / nodes)`.
    pub fn side_at(&self, level: usize) -> f64 {
        (self.area / self.nodes_at(level)).sqrt()
    }

    /// `WIN(l, w)`: expected node accesses of one window query.
    pub fn win_cost(&self, l: f64, w: f64) -> f64 {
        let mut cost = 1.0; // root
        for level in 1..self.levels() {
            let s = self.side_at(level);
            let p = ((s + l) * (s + w) / self.area).min(1.0);
            cost += self.nodes_at(level) * p;
        }
        cost
    }

    /// `KNN(K)`: expected node accesses to distance-browse the `K`
    /// nearest objects — the nodes intersecting the disc that contains
    /// `K` objects in expectation (`π r² λ = K`).
    pub fn knn_cost(&self, k: f64) -> f64 {
        let lambda = self.n_objects / self.area;
        let r = (k.max(0.0) / (std::f64::consts::PI * lambda)).sqrt();
        let mut cost = 1.0; // root
        for level in 1..self.levels() {
            let s = self.side_at(level);
            let p = ((s * s + 4.0 * s * r + std::f64::consts::PI * r * r) / self.area).min(1.0);
            cost += self.nodes_at(level) * p;
        }
        cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_count_grows_with_data() {
        assert_eq!(TreeModel::paper_default(40).levels(), 1);
        assert_eq!(TreeModel::paper_default(2_000).levels(), 2);
        assert!(TreeModel::paper_default(250_000).levels() >= 3);
    }

    #[test]
    fn win_cost_monotone_in_window_size() {
        let m = TreeModel::paper_default(250_000);
        let small = m.win_cost(8.0, 8.0);
        let large = m.win_cost(128.0, 128.0);
        assert!(small >= 1.0);
        assert!(large > small);
    }

    #[test]
    fn knn_cost_monotone_in_k() {
        let m = TreeModel::paper_default(250_000);
        assert!(m.knn_cost(1000.0) > m.knn_cost(10.0));
        assert!(m.knn_cost(1.0) >= 1.0);
    }

    #[test]
    fn full_scan_bounded_by_node_count() {
        let m = TreeModel::paper_default(250_000);
        let total_nodes: f64 = (1..=m.levels()).map(|l| m.nodes_at(l)).sum::<f64>() + 1.0;
        assert!(m.knn_cost(250_000.0) <= total_nodes * 1.5);
    }
}
