//! Special functions: `lnΓ`, real-valued binomial coefficients, and the
//! Poisson CDF.

/// Natural log of the gamma function via the Lanczos approximation
/// (g = 7, n = 9 coefficients; |relative error| < 1e-13 for x > 0).
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    const G: f64 = 7.0;
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection: Γ(x)Γ(1−x) = π / sin(πx).
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = COEF[0];
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + G + 0.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// `ln C(x, a)` for real `x ≥ a ≥ 0` — the paper's §4.2 uses binomial
/// coefficients whose upper index is an *expected count* and therefore
/// non-integral.
pub fn ln_binomial(x: f64, a: f64) -> f64 {
    assert!(
        x + 1.0 > 0.0 && a >= 0.0 && x - a + 1.0 > 0.0,
        "ln_binomial out of domain: C({x}, {a})"
    );
    ln_gamma(x + 1.0) - ln_gamma(a + 1.0) - ln_gamma(x - a + 1.0)
}

/// `P{X ≤ k}` for `X ~ Poisson(rate)` (Equation 8 with `k = n − 1`).
///
/// Evaluated in log space to stay finite for large rates.
pub fn poisson_cdf(rate: f64, k: usize) -> f64 {
    assert!(rate >= 0.0, "Poisson rate must be non-negative");
    if rate == 0.0 {
        return 1.0;
    }
    let ln_rate = rate.ln();
    let mut cdf = 0.0f64;
    for i in 0..=k {
        let ln_pmf = -rate + i as f64 * ln_rate - ln_gamma(i as f64 + 1.0);
        cdf += ln_pmf.exp();
    }
    cdf.min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_matches_factorials() {
        // Γ(n) = (n−1)!
        let facts: [f64; 7] = [1.0, 1.0, 2.0, 6.0, 24.0, 120.0, 720.0];
        for (n, &f) in facts.iter().enumerate() {
            let got = ln_gamma(n as f64 + 1.0);
            assert!(
                (got - f.ln()).abs() < 1e-10,
                "Γ({}) mismatch: {got}",
                n + 1
            );
        }
    }

    #[test]
    fn ln_gamma_half() {
        // Γ(1/2) = √π.
        let want = std::f64::consts::PI.sqrt().ln();
        assert!((ln_gamma(0.5) - want).abs() < 1e-10);
    }

    #[test]
    fn binomial_matches_integers() {
        let cases = [(5.0, 2.0, 10.0), (10.0, 3.0, 120.0), (6.0, 0.0, 1.0), (6.0, 6.0, 1.0)];
        for (x, a, want) in cases {
            let got = ln_binomial(x, a).exp();
            assert!((got - want).abs() < 1e-8, "C({x},{a}) = {got}, want {want}");
        }
    }

    #[test]
    fn poisson_cdf_small_rate() {
        // rate 1.0: P{X ≤ 0} = e^{-1}, P{X ≤ 1} = 2e^{-1}.
        let e = std::f64::consts::E;
        assert!((poisson_cdf(1.0, 0) - 1.0 / e).abs() < 1e-12);
        assert!((poisson_cdf(1.0, 1) - 2.0 / e).abs() < 1e-12);
    }

    #[test]
    fn poisson_cdf_monotone_and_bounded() {
        for rate in [0.1, 1.0, 10.0, 500.0] {
            let mut prev = 0.0;
            for k in 0..40 {
                let c = poisson_cdf(rate, k);
                assert!((0.0..=1.0).contains(&c), "rate {rate}, k {k}: {c}");
                assert!(c >= prev);
                prev = c;
            }
        }
    }

    #[test]
    fn poisson_cdf_large_rate_stays_finite() {
        let c = poisson_cdf(10_000.0, 5);
        assert!((0.0..1e-100).contains(&c), "{c}");
    }

    #[test]
    fn zero_rate_is_certain() {
        assert_eq!(poisson_cdf(0.0, 0), 1.0);
        assert_eq!(poisson_cdf(0.0, 5), 1.0);
    }
}
