//! Cooperative cancellation for long-running traversals.
//!
//! A query over a disk-backed tree can run for an unbounded time (cold
//! pool, slow device, retry backoff). A serving layer needs two ways to
//! stop one without tearing anything down:
//!
//! - a **deadline** — the per-request latency budget, checked against
//!   the monotonic clock, and
//! - a **stop flag** — an external signal (client disconnected, request
//!   shed mid-batch, server draining) shared by any number of queries.
//!
//! Both ride in a [`CancelToken`]. The token is *cooperative*: nothing
//! is interrupted preemptively. The traversal checks it at its I/O
//! boundaries — [`Browser::try_expand`](crate::Browser::try_expand)
//! checks before every node expansion, and the NWC search loop in
//! `nwc-core` additionally checks before every window query — so
//! cancellation latency is bounded by one node access plus one window
//! query, and a cancelled search unwinds through the ordinary error
//! path: pins released, pool exact, the worker thread fully reusable.
//!
//! Checking costs one relaxed atomic load for the flag and one
//! `Instant::now()` for the deadline; with neither armed
//! ([`CancelToken::none`]) the check is two branch-predicted `None`
//! tests, which keeps the token out of the hot path's way for the
//! in-process batch workloads that never cancel.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Why a traversal was cancelled.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CancelKind {
    /// The token's deadline passed: the query exceeded its latency
    /// budget.
    Deadline,
    /// The token's stop flag was raised: the caller no longer wants the
    /// answer (disconnect, shed, shutdown).
    Stopped,
}

impl std::fmt::Display for CancelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CancelKind::Deadline => write!(f, "deadline exceeded"),
            CancelKind::Stopped => write!(f, "stopped by caller"),
        }
    }
}

/// A shared, clonable stop signal. Raise it once with
/// [`CancelFlag::stop`] and every [`CancelToken`] carrying a clone
/// observes it on its next check.
#[derive(Clone, Debug, Default)]
pub struct CancelFlag(Arc<AtomicBool>);

impl CancelFlag {
    /// A fresh, unraised flag.
    pub fn new() -> Self {
        Self::default()
    }

    /// Raises the flag. Idempotent; never blocks.
    pub fn stop(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// Whether the flag has been raised.
    pub fn is_stopped(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// A deadline and/or stop flag checked cooperatively by traversals.
/// See the module docs. `CancelToken::default()` (= [`CancelToken::none`])
/// never cancels.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    deadline: Option<Instant>,
    flag: Option<CancelFlag>,
}

impl CancelToken {
    /// A token that never cancels (the default for every in-process
    /// query API).
    pub fn none() -> Self {
        Self::default()
    }

    /// A token that cancels once the monotonic clock passes `deadline`.
    pub fn with_deadline(deadline: Instant) -> Self {
        CancelToken {
            deadline: Some(deadline),
            flag: None,
        }
    }

    /// A token observing an external stop flag.
    pub fn with_flag(flag: &CancelFlag) -> Self {
        CancelToken {
            deadline: None,
            flag: Some(flag.clone()),
        }
    }

    /// Adds (or replaces) a deadline on this token.
    #[must_use]
    pub fn deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Adds (or replaces) a stop flag on this token.
    #[must_use]
    pub fn flag(mut self, flag: &CancelFlag) -> Self {
        self.flag = Some(flag.clone());
        self
    }

    /// Whether the token can ever cancel (false for [`CancelToken::none`]).
    pub fn is_armed(&self) -> bool {
        self.deadline.is_some() || self.flag.is_some()
    }

    /// The armed deadline, if any.
    pub fn deadline_at(&self) -> Option<Instant> {
        self.deadline
    }

    /// Checks the token: `Some(kind)` when the traversal should stop.
    /// The stop flag wins over the deadline when both fire (a stop is
    /// an explicit instruction; the deadline is a budget).
    #[inline]
    pub fn cancelled(&self) -> Option<CancelKind> {
        if let Some(flag) = &self.flag {
            if flag.is_stopped() {
                return Some(CancelKind::Stopped);
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Some(CancelKind::Deadline);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn unarmed_token_never_cancels() {
        let t = CancelToken::none();
        assert!(!t.is_armed());
        assert_eq!(t.cancelled(), None);
    }

    #[test]
    fn deadline_fires_once_passed() {
        let t = CancelToken::with_deadline(Instant::now() + Duration::from_secs(600));
        assert!(t.is_armed());
        assert_eq!(t.cancelled(), None);
        let t = CancelToken::with_deadline(Instant::now() - Duration::from_millis(1));
        assert_eq!(t.cancelled(), Some(CancelKind::Deadline));
    }

    #[test]
    fn flag_fires_for_every_clone_and_wins_over_deadline() {
        let flag = CancelFlag::new();
        let t1 = CancelToken::with_flag(&flag);
        let t2 = t1.clone().deadline(Instant::now() - Duration::from_millis(1));
        assert_eq!(t1.cancelled(), None);
        flag.stop();
        assert_eq!(t1.cancelled(), Some(CancelKind::Stopped));
        // Both armed and fired: the explicit stop wins.
        assert_eq!(t2.cancelled(), Some(CancelKind::Stopped));
    }

    #[test]
    fn kinds_render() {
        assert!(CancelKind::Deadline.to_string().contains("deadline"));
        assert!(CancelKind::Stopped.to_string().contains("stopped"));
    }
}
