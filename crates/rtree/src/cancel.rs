//! Cooperative cancellation for long-running traversals.
//!
//! A query over a disk-backed tree can run for an unbounded time (cold
//! pool, slow device, retry backoff). A serving layer needs two ways to
//! stop one without tearing anything down:
//!
//! - a **deadline** — the per-request latency budget, checked against
//!   the monotonic clock, and
//! - a **stop flag** — an external signal (client disconnected, request
//!   shed mid-batch, server draining) shared by any number of queries.
//!
//! Both ride in a [`CancelToken`]. The token is *cooperative*: nothing
//! is interrupted preemptively. The traversal checks it at its I/O
//! boundaries — [`Browser::try_expand`](crate::Browser::try_expand)
//! checks before every node expansion, and the NWC search loop in
//! `nwc-core` additionally checks before every window query — so
//! cancellation latency is bounded by one node access plus one window
//! query, and a cancelled search unwinds through the ordinary error
//! path: pins released, pool exact, the worker thread fully reusable.
//!
//! Checking costs one relaxed atomic load for the flag and one
//! `Instant::now()` for the deadline; with neither armed
//! ([`CancelToken::none`]) the check is two branch-predicted `None`
//! tests, which keeps the token out of the hot path's way for the
//! in-process batch workloads that never cancel.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Why a traversal was cancelled (or, for a [`Budget`], which budget
/// dimension ran out).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CancelKind {
    /// The token's deadline passed: the query exceeded its latency
    /// budget.
    Deadline,
    /// The token's stop flag was raised: the caller no longer wants the
    /// answer (disconnect, shed, shutdown).
    Stopped,
    /// The budget's logical-I/O allowance was spent: the query charged
    /// as many node accesses as the caller was willing to pay for.
    IoBudget,
}

impl std::fmt::Display for CancelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CancelKind::Deadline => write!(f, "deadline exceeded"),
            CancelKind::Stopped => write!(f, "stopped by caller"),
            CancelKind::IoBudget => write!(f, "I/O budget exhausted"),
        }
    }
}

/// A shared, clonable stop signal. Raise it once with
/// [`CancelFlag::stop`] and every [`CancelToken`] carrying a clone
/// observes it on its next check.
#[derive(Clone, Debug, Default)]
pub struct CancelFlag(Arc<AtomicBool>);

impl CancelFlag {
    /// A fresh, unraised flag.
    pub fn new() -> Self {
        Self::default()
    }

    /// Raises the flag. Idempotent; never blocks.
    pub fn stop(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// Whether the flag has been raised.
    pub fn is_stopped(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// A deadline and/or stop flag checked cooperatively by traversals.
/// See the module docs. `CancelToken::default()` (= [`CancelToken::none`])
/// never cancels.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    deadline: Option<Instant>,
    flag: Option<CancelFlag>,
}

impl CancelToken {
    /// A token that never cancels (the default for every in-process
    /// query API).
    pub fn none() -> Self {
        Self::default()
    }

    /// A token that cancels once the monotonic clock passes `deadline`.
    pub fn with_deadline(deadline: Instant) -> Self {
        CancelToken {
            deadline: Some(deadline),
            flag: None,
        }
    }

    /// A token observing an external stop flag.
    pub fn with_flag(flag: &CancelFlag) -> Self {
        CancelToken {
            deadline: None,
            flag: Some(flag.clone()),
        }
    }

    /// Adds (or replaces) a deadline on this token.
    #[must_use]
    pub fn deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Adds (or replaces) a stop flag on this token.
    #[must_use]
    pub fn flag(mut self, flag: &CancelFlag) -> Self {
        self.flag = Some(flag.clone());
        self
    }

    /// Whether the token can ever cancel (false for [`CancelToken::none`]).
    pub fn is_armed(&self) -> bool {
        self.deadline.is_some() || self.flag.is_some()
    }

    /// The armed deadline, if any.
    pub fn deadline_at(&self) -> Option<Instant> {
        self.deadline
    }

    /// Checks the token: `Some(kind)` when the traversal should stop.
    /// The stop flag wins over the deadline when both fire (a stop is
    /// an explicit instruction; the deadline is a budget).
    #[inline]
    pub fn cancelled(&self) -> Option<CancelKind> {
        if let Some(flag) = &self.flag {
            if flag.is_stopped() {
                return Some(CancelKind::Stopped);
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Some(CancelKind::Deadline);
            }
        }
        None
    }
}

/// What a traversal may spend before it must stop: the generalization
/// of [`CancelToken`] behind the anytime/budgeted query APIs.
///
/// A budget carries up to three independent limits:
///
/// - a **wall-clock deadline** (the token's deadline),
/// - an **external stop flag** (the token's flag), and
/// - a **logical I/O allowance** — a maximum number of charged node
///   accesses, measured against the calling thread's access tally
///   (physical reads and buffer hits alike, the paper's metric).
///
/// Like the token it generalizes, a budget is cooperative: traversals
/// check it at their I/O boundaries, and an expired budget unwinds
/// through the ordinary error path with every pin released. The
/// difference is what the *caller* does with the trip: the legacy
/// `try_*_cancel` APIs turn it into a typed error, while the anytime
/// APIs catch it and return the best answer found so far together with
/// a proven error bound. `Budget::default()` (= [`Budget::none`])
/// never expires, and an unarmed budget costs the hot path nothing
/// beyond the unarmed token's two branch-predicted tests.
#[derive(Clone, Debug, Default)]
pub struct Budget {
    token: CancelToken,
    io_limit: Option<u64>,
}

impl Budget {
    /// A budget that never expires (the default for every in-process
    /// query API).
    pub fn none() -> Self {
        Self::default()
    }

    /// A budget expiring once the monotonic clock passes `deadline`.
    pub fn with_deadline(deadline: Instant) -> Self {
        Budget {
            token: CancelToken::with_deadline(deadline),
            io_limit: None,
        }
    }

    /// A budget observing an external stop flag.
    pub fn with_flag(flag: &CancelFlag) -> Self {
        Budget {
            token: CancelToken::with_flag(flag),
            io_limit: None,
        }
    }

    /// A budget allowing at most `limit` charged logical node accesses.
    /// A limit of 0 expires before the first access: the query returns
    /// an empty bounded answer without touching the tree.
    pub fn with_io_limit(limit: u64) -> Self {
        Budget {
            token: CancelToken::none(),
            io_limit: Some(limit),
        }
    }

    /// Adds (or replaces) a deadline on this budget.
    #[must_use]
    pub fn deadline(mut self, deadline: Instant) -> Self {
        self.token = self.token.deadline(deadline);
        self
    }

    /// Adds (or replaces) a stop flag on this budget.
    #[must_use]
    pub fn flag(mut self, flag: &CancelFlag) -> Self {
        self.token = self.token.flag(flag);
        self
    }

    /// Adds (or replaces) a logical-I/O allowance on this budget.
    #[must_use]
    pub fn io_limit(mut self, limit: u64) -> Self {
        self.io_limit = Some(limit);
        self
    }

    /// Whether the budget can ever expire (false for [`Budget::none`]).
    pub fn is_armed(&self) -> bool {
        self.token.is_armed() || self.io_limit.is_some()
    }

    /// The armed deadline, if any.
    pub fn deadline_at(&self) -> Option<Instant> {
        self.token.deadline_at()
    }

    /// The armed logical-I/O allowance, if any.
    pub fn io_allowance(&self) -> Option<u64> {
        self.io_limit
    }

    /// The flag/deadline portion of the budget, for code paths that
    /// only understand tokens.
    pub fn token(&self) -> &CancelToken {
        &self.token
    }

    /// Checks the budget: `Some(kind)` when the traversal should stop.
    /// `io_spent` reports the logical accesses charged so far; it is a
    /// closure so an unbudgeted check never pays for the tally read.
    /// The stop flag wins over both resource limits (a stop is an
    /// explicit instruction); the I/O check precedes the deadline
    /// because it costs one integer compare versus a clock read.
    #[inline]
    pub fn exceeded<F: FnOnce() -> u64>(&self, io_spent: F) -> Option<CancelKind> {
        if let Some(flag) = &self.token.flag {
            if flag.is_stopped() {
                return Some(CancelKind::Stopped);
            }
        }
        if let Some(limit) = self.io_limit {
            if io_spent() >= limit {
                return Some(CancelKind::IoBudget);
            }
        }
        if let Some(deadline) = self.token.deadline {
            if Instant::now() >= deadline {
                return Some(CancelKind::Deadline);
            }
        }
        None
    }
}

impl From<CancelToken> for Budget {
    fn from(token: CancelToken) -> Self {
        Budget {
            token,
            io_limit: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn unarmed_token_never_cancels() {
        let t = CancelToken::none();
        assert!(!t.is_armed());
        assert_eq!(t.cancelled(), None);
    }

    #[test]
    fn deadline_fires_once_passed() {
        let t = CancelToken::with_deadline(Instant::now() + Duration::from_secs(600));
        assert!(t.is_armed());
        assert_eq!(t.cancelled(), None);
        let t = CancelToken::with_deadline(Instant::now() - Duration::from_millis(1));
        assert_eq!(t.cancelled(), Some(CancelKind::Deadline));
    }

    #[test]
    fn flag_fires_for_every_clone_and_wins_over_deadline() {
        let flag = CancelFlag::new();
        let t1 = CancelToken::with_flag(&flag);
        let t2 = t1.clone().deadline(Instant::now() - Duration::from_millis(1));
        assert_eq!(t1.cancelled(), None);
        flag.stop();
        assert_eq!(t1.cancelled(), Some(CancelKind::Stopped));
        // Both armed and fired: the explicit stop wins.
        assert_eq!(t2.cancelled(), Some(CancelKind::Stopped));
    }

    #[test]
    fn kinds_render() {
        assert!(CancelKind::Deadline.to_string().contains("deadline"));
        assert!(CancelKind::Stopped.to_string().contains("stopped"));
        assert!(CancelKind::IoBudget.to_string().contains("budget"));
    }

    #[test]
    fn unarmed_budget_never_expires_and_never_reads_the_tally() {
        let b = Budget::none();
        assert!(!b.is_armed());
        assert_eq!(b.exceeded(|| panic!("tally read without an I/O limit")), None);
    }

    #[test]
    fn io_budget_trips_at_the_limit() {
        let b = Budget::with_io_limit(10);
        assert!(b.is_armed());
        assert_eq!(b.io_allowance(), Some(10));
        assert_eq!(b.exceeded(|| 9), None);
        assert_eq!(b.exceeded(|| 10), Some(CancelKind::IoBudget));
        // A zero allowance expires before the first access.
        assert_eq!(
            Budget::with_io_limit(0).exceeded(|| 0),
            Some(CancelKind::IoBudget)
        );
    }

    #[test]
    fn budget_composes_all_three_limits_with_flag_priority() {
        let flag = CancelFlag::new();
        let b = Budget::with_io_limit(5)
            .deadline(Instant::now() - Duration::from_millis(1))
            .flag(&flag);
        // Deadline already passed but the I/O check comes first.
        assert_eq!(b.exceeded(|| 5), Some(CancelKind::IoBudget));
        assert_eq!(b.exceeded(|| 0), Some(CancelKind::Deadline));
        flag.stop();
        assert_eq!(b.exceeded(|| 5), Some(CancelKind::Stopped));
    }

    #[test]
    fn budget_from_token_preserves_the_token_limits() {
        let t = CancelToken::with_deadline(Instant::now() - Duration::from_millis(1));
        let b = Budget::from(t);
        assert!(b.is_armed());
        assert!(b.deadline_at().is_some());
        assert_eq!(b.io_allowance(), None);
        assert_eq!(b.exceeded(|| 0), Some(CancelKind::Deadline));
    }
}
