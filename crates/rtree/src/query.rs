//! Window (range) queries and point lookups.
//!
//! Every query comes in two flavors: the legacy infallible form (the
//! right call on arena trees, where reads cannot fail) and a `try_*`
//! form that surfaces disk read failures as
//! [`TreeError::Io`](crate::TreeError) instead of panicking. The
//! infallible forms are thin wrappers that funnel any error through one
//! crate-level abort adapter — this module itself contains no panics.

use crate::node::{Branch, Node, NodeKind};
use crate::tree::{read_failure, RStarTree, TreeError};
use crate::{Entry, NodeId};
use nwc_geom::{Point, Rect};

/// Stack-buffer width for batched per-node intersection tests. A disk
/// page holds at most 112 branches, so one chunk covers a whole page.
const MASK_CHUNK: usize = 128;

/// Window-intersection flags for `branches[base..base + mask.len()]`,
/// written into `mask`: one batched kernel call over the node's SoA MBR
/// view when present (disk nodes), the scalar predicate otherwise.
/// Bit-identical either way, so traversal order and logical I/O never
/// depend on which path ran.
#[inline]
fn fill_intersect_mask(node: &Node, branches: &[Branch], base: usize, rect: &Rect, mask: &mut [bool]) {
    match &node.soa {
        Some(soa) => soa.intersects_range_into(base, rect, mask),
        None => {
            for (i, b) in branches[base..base + mask.len()].iter().enumerate() {
                mask[i] = b.mbr.intersects(rect);
            }
        }
    }
}

impl RStarTree {
    /// Returns every entry whose point lies inside the (closed) window
    /// `rect`, visiting the tree top-down and charging one node access
    /// per visited node.
    pub fn window_query(&self, rect: &Rect) -> Vec<Entry> {
        match self.try_window_query(rect) {
            Ok(out) => out,
            Err(e) => read_failure(e),
        }
    }

    /// As [`RStarTree::window_query`], surfacing disk read failures as
    /// a typed error instead of panicking.
    pub fn try_window_query(&self, rect: &Rect) -> Result<Vec<Entry>, TreeError> {
        let mut out = Vec::new();
        self.try_window_query_into(rect, &mut out)?;
        Ok(out)
    }

    /// As [`RStarTree::window_query`], appending into a reusable buffer.
    pub fn window_query_into(&self, rect: &Rect, out: &mut Vec<Entry>) {
        if let Err(e) = self.try_window_query_into(rect, out) {
            read_failure(e)
        }
    }

    /// As [`RStarTree::window_query_into`], surfacing disk read
    /// failures as a typed error. On `Err`, `out` may hold a partial
    /// result (the entries found before the failed page); every page
    /// pin taken by the descent has been released.
    pub fn try_window_query_into(&self, rect: &Rect, out: &mut Vec<Entry>) -> Result<(), TreeError> {
        if self.is_empty() {
            return Ok(());
        }
        self.try_window_query_from_into(self.root, rect, out)
    }

    /// Window query rooted at an arbitrary node — the primitive behind
    /// IWP's incremental window processing (paper Algorithm 3, line 12:
    /// "perform traditional window query processing … starting from N").
    ///
    /// The starting node is visited (and charged) even when its MBR
    /// does not intersect `rect`, mirroring a page read that turns out
    /// empty.
    pub fn window_query_from_into(&self, start: NodeId, rect: &Rect, out: &mut Vec<Entry>) {
        if let Err(e) = self.try_window_query_from_into(start, rect, out) {
            read_failure(e)
        }
    }

    /// As [`RStarTree::window_query_from_into`], surfacing disk read
    /// failures as a typed error (see
    /// [`RStarTree::try_window_query_into`] for the partial-result
    /// contract).
    ///
    /// Recursive descent instead of an explicit stack: window queries
    /// run once per visited object on the NWC hot path, and a per-call
    /// stack allocation there would dominate the allocation profile.
    /// The tree is shallow (fan-out ≥ 25), so recursion depth is tiny.
    /// The `read_node` guard stays live across the child recursion, so
    /// on a disk-backed tree the parent's page is pinned while its
    /// children are visited — and dropped on unwind, so an `Err` from a
    /// child leaves no pin behind.
    pub fn try_window_query_from_into(
        &self,
        start: NodeId,
        rect: &Rect,
        out: &mut Vec<Entry>,
    ) -> Result<(), TreeError> {
        let node = self.try_read_node(start)?;
        match &node.kind {
            NodeKind::Leaf(entries) => {
                out.extend(entries.iter().filter(|e| rect.contains_point(&e.point)));
            }
            NodeKind::Internal(branches) => {
                let mut budget = self.readahead();
                let mut mask = [false; MASK_CHUNK];
                let mut base = 0;
                while base < branches.len() {
                    let len = MASK_CHUNK.min(branches.len() - base);
                    fill_intersect_mask(&node, branches, base, rect, &mut mask[..len]);
                    self.prefetch_masked(&branches[base..base + len], &mask[..len], &mut budget);
                    for (i, b) in branches[base..base + len].iter().enumerate() {
                        if mask[i] {
                            self.try_window_query_from_into(b.child, rect, out)?;
                        }
                    }
                    base += len;
                }
            }
        }
        Ok(())
    }

    /// Readahead for window traversals: batch-read the children this
    /// node is about to recurse into (the masked-intersecting branches,
    /// in recursion order, up to the remaining `budget`). Advisory — a
    /// no-op on arena trees and when readahead is off, and logical I/O
    /// counters never move.
    fn prefetch_masked(&self, branches: &[Branch], mask: &[bool], budget: &mut usize) {
        if *budget == 0 {
            return;
        }
        let mut pages: Vec<u32> = branches
            .iter()
            .zip(mask)
            .filter(|(_, &hit)| hit)
            .take(*budget)
            .map(|(b, _)| b.child.0)
            .collect();
        *budget -= pages.len();
        if !pages.is_empty() {
            self.prefetch_pages(&mut pages);
        }
    }

    /// Counts the entries inside `rect` without materializing them.
    /// Charges the same node accesses as a full window query.
    pub fn window_count(&self, rect: &Rect) -> usize {
        match self.try_window_count(rect) {
            Ok(n) => n,
            Err(e) => read_failure(e),
        }
    }

    /// As [`RStarTree::window_count`], surfacing disk read failures as
    /// a typed error instead of panicking.
    pub fn try_window_count(&self, rect: &Rect) -> Result<usize, TreeError> {
        if self.is_empty() {
            return Ok(0);
        }
        self.window_count_under(self.root, rect)
    }

    fn window_count_under(&self, id: NodeId, rect: &Rect) -> Result<usize, TreeError> {
        let node = self.try_read_node(id)?;
        match &node.kind {
            NodeKind::Leaf(entries) => Ok(entries
                .iter()
                .filter(|e| rect.contains_point(&e.point))
                .count()),
            NodeKind::Internal(branches) => {
                let mut budget = self.readahead();
                let mut mask = [false; MASK_CHUNK];
                let mut total = 0;
                let mut base = 0;
                while base < branches.len() {
                    let len = MASK_CHUNK.min(branches.len() - base);
                    fill_intersect_mask(&node, branches, base, rect, &mut mask[..len]);
                    self.prefetch_masked(&branches[base..base + len], &mask[..len], &mut budget);
                    for (i, b) in branches[base..base + len].iter().enumerate() {
                        if mask[i] {
                            total += self.window_count_under(b.child, rect)?;
                        }
                    }
                    base += len;
                }
                Ok(total)
            }
        }
    }

    /// Whether any stored entry has exactly this point (ids ignored).
    ///
    /// Early-exit traversal: descends only into subtrees whose MBR
    /// contains `p`, stops at the first hit, and allocates nothing
    /// (recursion instead of an explicit stack; the tree is shallow).
    /// Only the nodes actually read are charged.
    pub fn contains_point(&self, p: &Point) -> bool {
        match self.try_contains_point(p) {
            Ok(hit) => hit,
            Err(e) => read_failure(e),
        }
    }

    /// As [`RStarTree::contains_point`], surfacing disk read failures
    /// as a typed error instead of panicking.
    pub fn try_contains_point(&self, p: &Point) -> Result<bool, TreeError> {
        if self.is_empty() {
            return Ok(false);
        }
        self.contains_point_under(self.root, p)
    }

    fn contains_point_under(&self, id: NodeId, p: &Point) -> Result<bool, TreeError> {
        let node = self.try_read_node(id)?;
        match &node.kind {
            NodeKind::Leaf(entries) => Ok(entries.iter().any(|e| e.point == *p)),
            NodeKind::Internal(branches) => {
                for b in branches {
                    if b.mbr.contains_point(p) && self.contains_point_under(b.child, p)? {
                        return Ok(true);
                    }
                }
                Ok(false)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nwc_geom::{pt, rect};

    fn sample_tree() -> (RStarTree, Vec<Point>) {
        let pts: Vec<Point> = (0..400)
            .map(|i| pt((i % 20) as f64, (i / 20) as f64))
            .collect();
        (RStarTree::bulk_load(&pts), pts)
    }

    #[test]
    fn window_query_matches_linear_scan() {
        let (t, pts) = sample_tree();
        let windows = [
            rect(0.0, 0.0, 5.0, 5.0),
            rect(3.5, 3.5, 3.6, 3.6),
            rect(-10.0, -10.0, -1.0, -1.0),
            rect(0.0, 0.0, 19.0, 19.0),
            rect(7.0, 7.0, 7.0, 7.0),
        ];
        for wq in windows {
            let mut got: Vec<u32> = t.window_query(&wq).iter().map(|e| e.id).collect();
            got.sort_unstable();
            let want: Vec<u32> = pts
                .iter()
                .enumerate()
                .filter(|(_, p)| wq.contains_point(p))
                .map(|(i, _)| i as u32)
                .collect();
            assert_eq!(got, want, "window {wq:?}");
        }
    }

    #[test]
    fn window_count_matches_query_len() {
        let (t, _) = sample_tree();
        for wq in [
            rect(1.0, 1.0, 8.0, 4.0),
            rect(0.0, 0.0, 19.0, 19.0),
            rect(100.0, 100.0, 101.0, 101.0),
        ] {
            assert_eq!(t.window_count(&wq), t.window_query(&wq).len());
        }
    }

    #[test]
    fn boundary_points_included() {
        let (t, _) = sample_tree();
        let hits = t.window_query(&rect(5.0, 5.0, 6.0, 6.0));
        assert_eq!(hits.len(), 4); // (5,5), (5,6), (6,5), (6,6)
    }

    #[test]
    fn io_is_charged() {
        let (t, _) = sample_tree();
        t.stats().reset();
        t.window_query(&rect(0.0, 0.0, 2.0, 2.0));
        let small = t.stats().node_reads();
        assert!(small >= 1);
        t.stats().reset();
        t.window_query(&rect(0.0, 0.0, 19.0, 19.0));
        let full = t.stats().node_reads();
        assert!(full > small, "full scan {full} should cost more than {small}");
        assert_eq!(full as usize, t.node_count());
    }

    #[test]
    fn empty_tree_queries() {
        let t = RStarTree::new();
        assert!(t.window_query(&rect(0.0, 0.0, 1.0, 1.0)).is_empty());
        assert_eq!(t.window_count(&rect(0.0, 0.0, 1.0, 1.0)), 0);
        assert!(!t.contains_point(&pt(0.0, 0.0)));
    }

    #[test]
    fn contains_point_exact() {
        let (t, _) = sample_tree();
        assert!(t.contains_point(&pt(3.0, 3.0)));
        assert!(!t.contains_point(&pt(3.5, 3.0)));
    }

    #[test]
    fn contains_point_costs_no_more_than_window_query() {
        let (t, pts) = sample_tree();
        for p in [pts[0], pts[123], pt(-5.0, 2.0), pt(9.25, 9.25)] {
            t.stats().reset();
            let hit = t.contains_point(&p);
            let direct = t.stats().node_reads();
            t.stats().reset();
            let via_window = !t.window_query(&rect(p.x, p.y, p.x, p.y)).is_empty();
            let window = t.stats().node_reads();
            assert_eq!(hit, via_window, "{p:?}");
            assert!(direct <= window, "{p:?}: {direct} > {window}");
        }
    }
}
