//! IWP — Incremental Window query Processing (paper §3.3.4).
//!
//! A window query issued by the NWC algorithm for the search region of an
//! object `p` is almost always covered by an intermediate node close to
//! the leaf that stores `p`. IWP exploits this by augmenting the tree:
//!
//! - every **leaf** gets `r` *backward pointers* `bp_1..bp_r` to selected
//!   ancestors, spaced exponentially like the Exponential Index: `bp_1`
//!   is the leaf itself, `bp_i` (1 < i < r) points to the ancestor at
//!   depth `h − 2^{i−2}` (leaf depth `h`), and `bp_r` is the root, with
//!   `r = ⌈log₂ h⌉ + 2`;
//! - every node pointed to by a backward pointer (except the root) gets
//!   *overlapping pointers* to the same-depth nodes whose MBRs overlap
//!   its own, because R-tree siblings may overlap and starting a window
//!   query below the root would otherwise miss results.
//!
//! An incremental window query then starts from the lowest backward
//! pointer whose MBR covers the query rectangle — plus the overlap
//! targets intersecting the rectangle — instead of the root.
//!
//! The index is built once over a static tree; mutating the tree
//! invalidates it (rebuild after updates).

use crate::node::NodeKind;
use crate::tree::RStarTree;
use crate::{Entry, NodeId};
use nwc_geom::{MbrSoa, Rect};
use std::collections::HashMap;

/// Stack-buffer width for the batched overlap-target intersection test
/// (matches the chunk width of the window-query kernels).
const MASK_CHUNK: usize = 128;

/// The overlapping pointers of one pointed node, stored as a
/// structure-of-arrays pair so the per-query "which overlap targets
/// intersect the window?" test runs as one batched kernel call.
struct OverlapList {
    /// Overlap targets (`op_j`), in sweep order.
    targets: Vec<NodeId>,
    /// The targets' MBRs (`mbr_j^o`), SoA-indexed in step with `targets`.
    mbrs: MbrSoa,
}

/// Storage overhead of the IWP augmentation, mirroring the paper's §5.2
/// accounting (4 bytes per pointer plus an MBR per pointer entry).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IwpStorage {
    /// Total number of backward pointers across all leaves.
    pub backward_pointers: usize,
    /// Total number of overlapping pointers across pointed nodes.
    pub overlapping_pointers: usize,
}

impl IwpStorage {
    /// Total pointers.
    pub fn total_pointers(&self) -> usize {
        self.backward_pointers + self.overlapping_pointers
    }

    /// Approximate bytes at the paper's 4 bytes/pointer accounting.
    pub fn bytes(&self) -> usize {
        self.total_pointers() * 4
    }
}

/// The IWP pointer augmentation of a (static) [`RStarTree`].
pub struct IwpIndex {
    /// `bp_1..bp_r` per leaf, ordered leaf-first, root-last; each entry
    /// carries the pointed node's MBR (the `mbr_i^b` of the paper).
    backward: HashMap<NodeId, Vec<(NodeId, Rect)>>,
    /// Overlapping pointers per pointed node (the `(op_j, mbr_j^o)`).
    overlaps: HashMap<NodeId, OverlapList>,
    storage: IwpStorage,
}

impl IwpIndex {
    /// Builds the augmentation over `tree`. Construction walks the whole
    /// tree but charges no query I/O (it models an offline index build),
    /// reading nodes through the uncharged peek path so a disk-backed
    /// tree's buffer counters stay untouched.
    pub fn build(tree: &RStarTree) -> Self {
        let h = tree.node_level(tree.root()) as usize; // leaf depth
        let depths = backward_depths(h);

        // Collect root-to-leaf paths (path[d] = ancestor at depth d) and
        // per-level node lists for overlap computation. The path carries
        // each ancestor's MBR so backward pointers need no second read;
        // pointed nodes remember (level, mbr) for the overlap phase (the
        // ancestor at depth d sits at level h − d).
        let mut backward: HashMap<NodeId, Vec<(NodeId, Rect)>> = HashMap::new();
        let mut pointed: Vec<NodeId> = Vec::new();
        let mut pointed_info: HashMap<NodeId, (u32, Rect)> = HashMap::new();
        let mut by_level: HashMap<u32, Vec<(NodeId, Rect)>> = HashMap::new();

        let mut path: Vec<(NodeId, Rect)> = Vec::new();
        let mut stack: Vec<(NodeId, usize)> = vec![(tree.root(), 0)];
        while let Some((id, depth)) = stack.pop() {
            path.truncate(depth);
            let node = tree.peek_node(id);
            path.push((id, node.mbr));
            by_level
                .entry(node.level)
                .or_default()
                .push((id, node.mbr));
            match &node.kind {
                NodeKind::Internal(branches) => {
                    for b in branches {
                        stack.push((b.child, depth + 1));
                    }
                }
                NodeKind::Leaf(_) => {
                    debug_assert_eq!(depth, h, "leaf at unexpected depth");
                    let bps: Vec<(NodeId, Rect)> = depths.iter().map(|&d| path[d]).collect();
                    for (&d, &(n, mbr)) in depths.iter().zip(&bps) {
                        if n != tree.root() {
                            pointed.push(n);
                            pointed_info.insert(n, ((h - d) as u32, mbr));
                        }
                    }
                    backward.insert(id, bps);
                }
            }
        }

        pointed.sort_unstable();
        pointed.dedup();

        // Overlapping pointers: same-level nodes with intersecting MBRs.
        // A per-level x-interval sweep keeps this near-linear.
        let mut overlaps: HashMap<NodeId, OverlapList> = HashMap::new();
        let mut overlap_count = 0usize;
        for level_nodes in by_level.values_mut() {
            level_nodes.sort_by(|a, b| a.1.min.x.total_cmp(&b.1.min.x));
        }
        for &n in &pointed {
            let (level, mbr) = pointed_info[&n];
            let peers = &by_level[&level];
            // Candidates: peers whose min.x ≤ mbr.max.x, scanned from the
            // first index; early-exit once min.x exceeds mbr.max.x.
            let mut ops = OverlapList {
                targets: Vec::new(),
                mbrs: MbrSoa::default(),
            };
            for &(peer, peer_mbr) in peers {
                if peer_mbr.min.x > mbr.max.x {
                    break;
                }
                if peer != n && peer_mbr.intersects(&mbr) {
                    ops.targets.push(peer);
                    ops.mbrs.push(&peer_mbr);
                }
            }
            overlap_count += ops.targets.len();
            overlaps.insert(n, ops);
        }

        let storage = IwpStorage {
            backward_pointers: backward.values().map(Vec::len).sum(),
            overlapping_pointers: overlap_count,
        };
        IwpIndex {
            backward,
            overlaps,
            storage,
        }
    }

    /// The storage overhead of the augmentation.
    pub fn storage(&self) -> IwpStorage {
        self.storage
    }

    /// Number of backward pointers per leaf (the paper's `r`), taken from
    /// an arbitrary leaf (all leaves share the same depth).
    pub fn pointers_per_leaf(&self) -> usize {
        self.backward.values().next().map_or(0, Vec::len)
    }

    /// Incremental window query (paper Algorithm 3): answers `rect`
    /// starting from the lowest backward pointer of `leaf` whose MBR
    /// covers `rect`, plus the overlap targets intersecting `rect`.
    ///
    /// `leaf` must be the leaf that stored the object whose search region
    /// is being queried (available from
    /// [`BrowseItem::Object::leaf`](crate::BrowseItem)).
    pub fn window_query_into(
        &self,
        tree: &RStarTree,
        leaf: NodeId,
        rect: &Rect,
        out: &mut Vec<Entry>,
    ) {
        if let Err(e) = self.try_window_query_into(tree, leaf, rect, out) {
            crate::tree::read_failure(e)
        }
    }

    /// As [`IwpIndex::window_query_into`], surfacing disk read failures
    /// as a typed error instead of panicking. On `Err`, `out` may hold
    /// a partial result; every page pin the traversal took has been
    /// released.
    pub fn try_window_query_into(
        &self,
        tree: &RStarTree,
        leaf: NodeId,
        rect: &Rect,
        out: &mut Vec<Entry>,
    ) -> Result<(), crate::TreeError> {
        let Some(bps) = self.backward.get(&leaf).filter(|b| !b.is_empty()) else {
            crate::tree::stale_iwp(leaf)
        };
        // Smallest i whose MBR covers the query; the root (always last)
        // covers everything by convention (objects outside it do not
        // exist).
        let mut start = bps[bps.len() - 1].0;
        for &(n, mbr) in bps {
            if mbr.contains_rect(rect) {
                start = n;
                break;
            }
        }

        tree.try_window_query_from_into(start, rect, out)?;
        if let Some(ops) = self.overlaps.get(&start) {
            // One batched kernel call per chunk decides which overlap
            // targets the window reaches; only those are traversed.
            let mut mask = [false; MASK_CHUNK];
            let mut base = 0;
            while base < ops.targets.len() {
                let len = MASK_CHUNK.min(ops.targets.len() - base);
                ops.mbrs.intersects_range_into(base, rect, &mut mask[..len]);
                for (i, &op) in ops.targets[base..base + len].iter().enumerate() {
                    if mask[i] {
                        tree.try_window_query_from_into(op, rect, out)?;
                    }
                }
                base += len;
            }
        }
        Ok(())
    }

    /// Convenience wrapper returning a fresh vector.
    pub fn window_query(&self, tree: &RStarTree, leaf: NodeId, rect: &Rect) -> Vec<Entry> {
        let mut out = Vec::new();
        self.window_query_into(tree, leaf, rect, &mut out);
        out
    }
}

/// The depths of the backward pointers for leaf depth `h`, ordered
/// leaf-first (depth `h`) to root-last (depth 0), deduplicated.
fn backward_depths(h: usize) -> Vec<usize> {
    let mut depths = vec![h];
    let mut i = 2usize;
    loop {
        let step = 1usize << (i - 2);
        if step >= h {
            break;
        }
        depths.push(h - step);
        i += 1;
    }
    if h > 0 {
        depths.push(0);
    }
    depths.dedup();
    depths
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{RStarTree, TreeParams};
    use nwc_geom::{pt, rect, Point};

    fn clustered_points(n: usize) -> Vec<Point> {
        (0..n)
            .map(|i| {
                let cluster = (i % 10) as f64;
                pt(
                    cluster * 100.0 + ((i * 17) % 23) as f64,
                    cluster * 80.0 + ((i * 31) % 29) as f64,
                )
            })
            .collect()
    }

    #[test]
    fn backward_depths_match_paper_example() {
        // Paper Figure 5: height-8 tree (leaf depth 8) has r = 5 pointers
        // at depths 8 (self), 7, 6, 4 and 0 (root).
        assert_eq!(backward_depths(8), vec![8, 7, 6, 4, 0]);
    }

    #[test]
    fn backward_depths_small_trees() {
        assert_eq!(backward_depths(0), vec![0]); // root is the leaf
        assert_eq!(backward_depths(1), vec![1, 0]);
        assert_eq!(backward_depths(2), vec![2, 1, 0]);
        assert_eq!(backward_depths(3), vec![3, 2, 1, 0]);
        assert_eq!(backward_depths(4), vec![4, 3, 2, 0]);
    }

    #[test]
    fn r_matches_formula() {
        // r = ⌈log₂ h⌉ + 2 for h ≥ 2 a power of two.
        for (h, r) in [(2usize, 3usize), (4, 4), (8, 5), (16, 6)] {
            assert_eq!(backward_depths(h).len(), r, "h={h}");
        }
    }

    #[test]
    fn iwp_query_matches_plain_window_query() {
        let points = clustered_points(3000);
        let tree =
            RStarTree::bulk_load_with_params(&points, TreeParams::with_max_entries(8));
        let iwp = IwpIndex::build(&tree);
        // For each of several objects, query its neighbourhood through the
        // object's own leaf, as the NWC algorithm does.
        for &probe in &[0usize, 57, 123, 999, 2500] {
            let p = points[probe];
            let (_, entry_leaf) = find_leaf_of(&tree, p);
            for size in [5.0, 50.0, 500.0] {
                let wq = rect(p.x - size, p.y - size, p.x + size, p.y + size);
                let mut got: Vec<u32> =
                    iwp.window_query(&tree, entry_leaf, &wq).iter().map(|e| e.id).collect();
                got.sort_unstable();
                let mut want: Vec<u32> =
                    tree.window_query(&wq).iter().map(|e| e.id).collect();
                want.sort_unstable();
                assert_eq!(got, want, "probe {probe} size {size}");
            }
        }
    }

    #[test]
    fn iwp_saves_io_for_local_queries() {
        let points = clustered_points(5000);
        let tree =
            RStarTree::bulk_load_with_params(&points, TreeParams::with_max_entries(8));
        let iwp = IwpIndex::build(&tree);
        let mut plain = 0u64;
        let mut incremental = 0u64;
        for probe in (0..5000).step_by(97) {
            let p = points[probe];
            let (_, leaf) = find_leaf_of(&tree, p);
            let wq = rect(p.x - 2.0, p.y - 2.0, p.x + 2.0, p.y + 2.0);

            tree.stats().reset();
            tree.window_query(&wq);
            plain += tree.stats().node_reads();

            tree.stats().reset();
            iwp.window_query(&tree, leaf, &wq);
            incremental += tree.stats().node_reads();
        }
        assert!(
            incremental < plain,
            "IWP total {incremental} should beat root descent total {plain}"
        );
    }

    #[test]
    fn storage_accounting_is_positive() {
        let points = clustered_points(2000);
        let tree =
            RStarTree::bulk_load_with_params(&points, TreeParams::with_max_entries(8));
        let iwp = IwpIndex::build(&tree);
        let s = iwp.storage();
        assert!(s.backward_pointers > 0);
        assert_eq!(s.bytes(), s.total_pointers() * 4);
        assert_eq!(iwp.pointers_per_leaf(), backward_depths(tree.height() - 1).len());
    }

    #[test]
    fn single_leaf_tree() {
        let points = clustered_points(10);
        let tree = RStarTree::bulk_load(&points);
        assert_eq!(tree.height(), 1);
        let iwp = IwpIndex::build(&tree);
        let wq = rect(0.0, 0.0, 1000.0, 1000.0);
        let got = iwp.window_query(&tree, tree.root(), &wq);
        assert_eq!(got.len(), 10);
    }

    /// Locates the leaf storing an exact point via root descent.
    fn find_leaf_of(tree: &RStarTree, p: Point) -> (u32, NodeId) {
        let mut browser = tree.browse(p);
        loop {
            match browser.next().expect("point must be found") {
                crate::BrowseItem::Node { id, .. } => browser.expand(id),
                crate::BrowseItem::Object { entry, dist, leaf } => {
                    if dist == 0.0 {
                        return (entry.id, leaf);
                    }
                }
            }
        }
    }
}
