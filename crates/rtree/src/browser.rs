//! Best-first incremental distance browsing (Hjaltason & Samet).
//!
//! The NWC algorithm "visits all data objects based on their distance to
//! the query location q in ascending order" while interleaving its own
//! node pruning (DIP/DEP) with the traversal. [`Browser`] exposes exactly
//! that control point: popping yields nodes *and* objects in ascending
//! `MINDIST` order, and the caller decides per node whether to
//! [`Browser::expand`] it (one charged node access) or drop it.
//!
//! The convenience kNN and full-ordering APIs are built on top.

use crate::node::NodeKind;
use crate::tree::RStarTree;
use crate::{Entry, NodeId};
use nwc_geom::{Point, Rect};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Stack-buffer width for batched per-node MINDIST evaluation. A disk
/// page holds at most 112 branches, so one chunk covers a whole page;
/// wider arena nodes simply take several chunks.
const MINDIST_CHUNK: usize = 128;

/// An item popped from the best-first priority queue.
#[derive(Clone, Copy, Debug)]
pub enum BrowseItem {
    /// An index node, with its MBR's `MINDIST` to the query point. The
    /// caller must call [`Browser::expand`] to descend into it.
    Node {
        /// Node id, usable with the tree's `node_*` accessors.
        id: NodeId,
        /// Node level (0 = leaf).
        level: u32,
        /// Node MBR.
        mbr: Rect,
        /// `MINDIST(q, mbr)`.
        mindist: f64,
    },
    /// A data object, with its distance to the query point and the leaf
    /// it was read from (needed by IWP's backward pointers).
    Object {
        /// The object entry.
        entry: Entry,
        /// `dist(q, entry.point)`.
        dist: f64,
        /// The leaf node that stored the entry.
        leaf: NodeId,
    },
}

impl BrowseItem {
    /// The priority-queue key of this item.
    pub fn key(&self) -> f64 {
        match self {
            BrowseItem::Node { mindist, .. } => *mindist,
            BrowseItem::Object { dist, .. } => *dist,
        }
    }
}

/// Heap wrapper ordering items by ascending key. Ties prefer objects over
/// nodes so an object at distance d surfaces before a node whose MINDIST
/// is also d (matching the classic incremental-NN formulation).
struct HeapItem {
    key: f64,
    object_first: bool,
    item: BrowseItem,
}

impl PartialEq for HeapItem {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for HeapItem {}
impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap: reverse for ascending keys.
        other
            .key
            .total_cmp(&self.key)
            .then_with(|| self.object_first.cmp(&other.object_first))
    }
}

/// Reusable storage for a [`Browser`]'s priority queue.
///
/// A best-first search grows its frontier heap to hundreds of entries;
/// allocating it anew per query dominates the allocation profile of
/// query-heavy workloads. A `BrowserScratch` keeps the heap's backing
/// buffer alive between searches: start each search with
/// [`RStarTree::browse_with`] and return the storage afterwards with
/// [`Browser::recycle`]. A warm scratch makes the whole traversal
/// allocation-free (until the frontier outgrows its previous high-water
/// mark). Forgetting to recycle only loses the retained capacity — it
/// never affects correctness.
#[derive(Default)]
pub struct BrowserScratch {
    heap: BinaryHeap<HeapItem>,
}

impl BrowserScratch {
    /// An empty scratch. The first search through it allocates; later
    /// ones reuse the grown buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Heap slots currently retained (diagnostics / tests).
    pub fn heap_capacity(&self) -> usize {
        self.heap.capacity()
    }
}

/// A best-first traversal cursor over an [`RStarTree`].
pub struct Browser<'t> {
    tree: &'t RStarTree,
    query: Point,
    heap: BinaryHeap<HeapItem>,
    /// Cooperative budget (deadline / stop flag / logical-I/O
    /// allowance), checked at every [`Browser::try_expand`] (the
    /// traversal's I/O boundary). Unarmed by default.
    budget: crate::Budget,
    /// The calling thread's access tally when the budget was armed; the
    /// I/O allowance is measured as accesses since this point.
    io_base: u64,
}

impl<'t> Browser<'t> {
    /// Starts a traversal from the root. The root node itself is the
    /// first item popped (unless the tree is empty).
    pub fn new(tree: &'t RStarTree, query: Point) -> Self {
        Self::new_with(tree, query, &mut BrowserScratch::default())
    }

    /// As [`Browser::new`], but the frontier heap takes its backing
    /// buffer from `scratch` instead of allocating. The scratch is left
    /// empty; hand the storage back with [`Browser::recycle`] when the
    /// search is over.
    pub fn new_with(tree: &'t RStarTree, query: Point, scratch: &mut BrowserScratch) -> Self {
        let mut heap = std::mem::take(&mut scratch.heap);
        heap.clear();
        if !tree.is_empty() {
            let root = tree.root();
            let mbr = tree.node_mbr(root);
            let mindist = mbr.mindist(&query);
            heap.push(HeapItem {
                key: mindist,
                object_first: false,
                item: BrowseItem::Node {
                    id: root,
                    level: tree.node_level(root),
                    mbr,
                    mindist,
                },
            });
        }
        Browser {
            tree,
            query,
            heap,
            budget: crate::Budget::none(),
            io_base: 0,
        }
    }

    /// Arms cooperative cancellation: every subsequent
    /// [`Browser::try_expand`] first checks `token` and returns
    /// [`TreeError`](crate::TreeError)`::Cancelled` — with no pin held
    /// and the frontier intact — once it fires. See
    /// [`CancelToken`](crate::CancelToken).
    pub fn set_cancel(&mut self, token: crate::CancelToken) {
        self.set_budget(crate::Budget::from(token));
    }

    /// Arms a cooperative [`Budget`](crate::Budget): deadline, stop
    /// flag, and/or logical-I/O allowance. The allowance is measured
    /// from this call (the calling thread's access tally), so arm the
    /// budget on the thread that runs the traversal, before it starts
    /// charging I/O.
    pub fn set_budget(&mut self, budget: crate::Budget) {
        self.io_base = self.tree.stats().snapshot();
        self.budget = budget;
    }

    /// Ends the traversal and returns the heap's storage to `scratch`
    /// for the next search.
    pub fn recycle(mut self, scratch: &mut BrowserScratch) {
        self.heap.clear();
        scratch.heap = self.heap;
    }

    /// The query point this browser orders by.
    pub fn query(&self) -> Point {
        self.query
    }

    /// Pops the next item in ascending distance order, or `None` when the
    /// frontier is exhausted. Popping charges no I/O by itself; node
    /// contents are only read by [`Browser::expand`].
    #[allow(clippy::should_implement_trait)] // cursor, deliberately not an Iterator (expand() interleaves)
    pub fn next(&mut self) -> Option<BrowseItem> {
        self.heap.pop().map(|h| h.item)
    }

    /// Key of the next item without popping it.
    pub fn peek_key(&self) -> Option<f64> {
        self.heap.peek().map(|h| h.key)
    }

    /// Reads a node's children into the frontier, charging one node
    /// access. Call after popping a `BrowseItem::Node` the caller chose
    /// not to prune. The parent's guard (and, disk-backed, its page pin)
    /// is held until all children are enqueued.
    pub fn expand(&mut self, id: NodeId) {
        if let Err(e) = self.try_expand(id) {
            crate::tree::read_failure(e)
        }
    }

    /// As [`Browser::expand`], surfacing a disk read failure as a typed
    /// error instead of panicking. On `Err`, no child was enqueued, no
    /// pin is held, and the browser remains usable — the caller can
    /// drop the failed subtree and keep draining the frontier, or abort
    /// the whole search.
    pub fn try_expand(&mut self, id: NodeId) -> Result<(), crate::TreeError> {
        if let Some(kind) = self.budget.exceeded(|| self.tree.stats().since(self.io_base)) {
            return Err(crate::TreeError::Cancelled(kind));
        }
        let node = self.tree.try_read_node(id)?;
        match &node.kind {
            NodeKind::Leaf(entries) => {
                for &e in entries {
                    self.heap.push(HeapItem {
                        key: e.point.dist(&self.query),
                        object_first: true,
                        item: BrowseItem::Object {
                            entry: e,
                            dist: e.point.dist(&self.query),
                            leaf: id,
                        },
                    });
                }
            }
            NodeKind::Internal(branches) => {
                let child_level = node.level - 1;
                let readahead = self.tree.readahead();
                // MINDIST for the whole node in chunked batches: the
                // kernel runs over the page's SoA MBR view when present
                // (disk nodes build one at decode time), falling back to
                // the scalar predicate on arena nodes. Each distance is
                // computed exactly once and reused for both the heap
                // push and prefetch ranking. The chunk buffer lives on
                // the stack so arena traversals stay allocation-free.
                let mut ranked: Vec<(f64, u32)> = if readahead > 0 {
                    Vec::with_capacity(branches.len())
                } else {
                    Vec::new()
                };
                let mut dists = [0.0f64; MINDIST_CHUNK];
                let mut base = 0;
                while base < branches.len() {
                    let len = MINDIST_CHUNK.min(branches.len() - base);
                    match &node.soa {
                        Some(soa) => {
                            soa.mindist_range_into(base, &self.query, &mut dists[..len])
                        }
                        None => {
                            for (i, b) in branches[base..base + len].iter().enumerate() {
                                dists[i] = b.mbr.mindist(&self.query);
                            }
                        }
                    }
                    for (i, b) in branches[base..base + len].iter().enumerate() {
                        let mindist = dists[i];
                        self.heap.push(HeapItem {
                            key: mindist,
                            object_first: false,
                            item: BrowseItem::Node {
                                id: b.child,
                                level: child_level,
                                mbr: b.mbr,
                                mindist,
                            },
                        });
                        if readahead > 0 {
                            ranked.push((mindist, b.child.0));
                        }
                    }
                    base += len;
                }
                if readahead > 0 {
                    // Best-first pops children in ascending MINDIST, so
                    // prefetch the nearest few now while the parent's
                    // page is still warm. Advisory: logical I/O counters
                    // never move.
                    ranked.sort_by(|a, b| a.0.total_cmp(&b.0));
                    let mut pages: Vec<u32> =
                        ranked.into_iter().take(readahead).map(|(_, p)| p).collect();
                    self.tree.prefetch_pages(&mut pages);
                }
            }
        }
        Ok(())
    }

    /// Drains the browser into a plain object stream, expanding every
    /// node (no pruning). Equivalent to Hjaltason–Samet incremental NN.
    pub fn objects(mut self) -> impl Iterator<Item = (f64, Entry)> + 't {
        std::iter::from_fn(move || loop {
            match self.next()? {
                BrowseItem::Node { id, .. } => self.expand(id),
                BrowseItem::Object { entry, dist, .. } => return Some((dist, entry)),
            }
        })
    }
}

impl RStarTree {
    /// Starts a best-first traversal ordered by distance from `query`.
    pub fn browse(&self, query: Point) -> Browser<'_> {
        Browser::new(self, query)
    }

    /// As [`RStarTree::browse`], reusing the heap storage held by
    /// `scratch` (see [`BrowserScratch`]).
    pub fn browse_with(&self, query: Point, scratch: &mut BrowserScratch) -> Browser<'_> {
        Browser::new_with(self, query, scratch)
    }

    /// The `k` nearest entries to `query` in ascending distance order
    /// (fewer when the tree is smaller). Charges the accesses of the
    /// best-first search.
    pub fn knn(&self, query: Point, k: usize) -> Vec<(f64, Entry)> {
        self.browse(query).objects().take(k).collect()
    }

    /// The nearest entry to `query`, if any.
    pub fn nearest(&self, query: Point) -> Option<(f64, Entry)> {
        self.browse(query).objects().next()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nwc_geom::pt;

    fn sample() -> (RStarTree, Vec<Point>) {
        let pts: Vec<Point> = (0..500)
            .map(|i| pt(((i * 37) % 101) as f64, ((i * 61) % 97) as f64))
            .collect();
        (RStarTree::bulk_load(&pts), pts)
    }

    #[test]
    fn knn_matches_sorting() {
        let (t, pts) = sample();
        let q = pt(40.0, 40.0);
        let got: Vec<u32> = t.knn(q, 10).iter().map(|(_, e)| e.id).collect();
        let mut want: Vec<(f64, u32)> = pts
            .iter()
            .enumerate()
            .map(|(i, p)| (p.dist(&q), i as u32))
            .collect();
        want.sort_by(|a, b| a.0.total_cmp(&b.0));
        // Distances must agree even when equidistant ids permute.
        let want_d: Vec<f64> = want[..10].iter().map(|&(d, _)| d).collect();
        let got_d: Vec<f64> = t.knn(q, 10).iter().map(|&(d, _)| d).collect();
        assert_eq!(got_d, want_d);
        assert_eq!(got.len(), 10);
    }

    #[test]
    fn browse_yields_ascending_distances() {
        let (t, _) = sample();
        let q = pt(13.0, 77.0);
        let mut last = 0.0;
        let mut count = 0;
        for (d, _) in t.browse(q).objects() {
            assert!(d >= last, "distance order violated: {d} < {last}");
            last = d;
            count += 1;
        }
        assert_eq!(count, 500);
    }

    #[test]
    fn nearest_on_exact_hit() {
        let (t, pts) = sample();
        let (d, e) = t.nearest(pts[42]).unwrap();
        assert_eq!(d, 0.0);
        assert_eq!(e.point, pts[42]);
    }

    #[test]
    fn knn_more_than_len_returns_all() {
        let (t, _) = sample();
        assert_eq!(t.knn(pt(0.0, 0.0), 10_000).len(), 500);
    }

    #[test]
    fn empty_tree_browse() {
        let t = RStarTree::new();
        assert!(t.nearest(pt(0.0, 0.0)).is_none());
        assert!(t.browse(pt(0.0, 0.0)).next().is_none());
    }

    #[test]
    fn pruned_nodes_cost_nothing() {
        let (t, _) = sample();
        t.stats().reset();
        let mut b = t.browse(pt(0.0, 0.0));
        // Expand only the root, prune everything else.
        let mut expanded = 0;
        while let Some(item) = b.next() {
            if let BrowseItem::Node { id, .. } = item {
                if expanded == 0 {
                    b.expand(id);
                    expanded += 1;
                }
            }
        }
        assert_eq!(t.stats().node_reads(), 1);
    }

    #[test]
    fn scratch_reuse_keeps_results_and_capacity() {
        let (t, _) = sample();
        let q = pt(40.0, 40.0);
        let plain: Vec<(f64, u32)> = t.browse(q).objects().map(|(d, e)| (d, e.id)).collect();

        let mut scratch = BrowserScratch::new();
        for _ in 0..3 {
            let mut got = Vec::new();
            let mut b = t.browse_with(q, &mut scratch);
            loop {
                match b.next() {
                    Some(BrowseItem::Node { id, .. }) => b.expand(id),
                    Some(BrowseItem::Object { entry, dist, .. }) => got.push((dist, entry.id)),
                    None => break,
                }
            }
            b.recycle(&mut scratch);
            assert_eq!(got.len(), plain.len());
            let gd: Vec<f64> = got.iter().map(|&(d, _)| d).collect();
            let pd: Vec<f64> = plain.iter().map(|&(d, _)| d).collect();
            assert_eq!(gd, pd);
            assert!(scratch.heap_capacity() > 0, "storage must be recycled");
        }
    }

    #[test]
    fn object_leaf_ids_are_correct() {
        let (t, _) = sample();
        let mut b = t.browse(pt(50.0, 50.0));
        let mut seen = 0;
        while let Some(item) = b.next() {
            match item {
                BrowseItem::Node { id, .. } => b.expand(id),
                BrowseItem::Object { entry, leaf, .. } => {
                    assert!(t.node_mbr(leaf).contains_point(&entry.point));
                    assert_eq!(t.node_level(leaf), 0);
                    seen += 1;
                    if seen > 20 {
                        break;
                    }
                }
            }
        }
    }
}
