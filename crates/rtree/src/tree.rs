//! The tree structure itself: arena management and shared plumbing.

use crate::node::{Node, NodeKind};
use crate::{Entry, IoStats, NodeId, TreeParams};
use nwc_geom::{Point, Rect};
use std::ops::Deref;
use std::sync::Arc;

/// An error from an [`RStarTree`] operation that could not proceed: a
/// mutation of a read-only tree, or a disk-backed read that failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TreeError {
    /// The tree is disk-backed over a store with no write path (a
    /// version-1 page file, a read-only backend, or a file opened
    /// without write permission): mutating the cached nodes would
    /// silently diverge from the page file. Save a writable file with
    /// [`RStarTree::save_to_path_writable`] and reopen it, or rebuild
    /// in memory.
    ReadOnly,
    /// A disk-backed page read failed after open (retry budget
    /// exhausted, corruption, or a quarantined page). Returned by the
    /// fallible `try_*` query APIs; never produced by an arena tree.
    Io(crate::disk::DiskReadError),
    /// The traversal's [`CancelToken`](crate::CancelToken) fired: the
    /// query's deadline passed or its stop flag was raised. The tree is
    /// untouched — no pin is held, the traversal simply stopped at a
    /// cancellation point.
    Cancelled(crate::CancelKind),
}

impl std::fmt::Display for TreeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TreeError::ReadOnly => write!(
                f,
                "disk-backed tree is read-only (reopen from a writable page file \
                 written by save_to_path_writable to mutate it)"
            ),
            TreeError::Io(e) => write!(f, "disk read failed: {e}"),
            TreeError::Cancelled(kind) => write!(f, "traversal cancelled: {kind}"),
        }
    }
}

impl std::error::Error for TreeError {}

impl From<crate::disk::DiskReadError> for TreeError {
    fn from(e: crate::disk::DiskReadError) -> Self {
        TreeError::Io(e)
    }
}

/// The one funnel through which the legacy *infallible* query APIs
/// (`window_query`, `Browser::expand`, …) abort on a disk read failure
/// the fallible `try_*` variants would have returned. Keeping the
/// `panic!` here — and only here — means the disk query read path
/// (`disk.rs`, `query.rs`, `browser.rs`, `iwp.rs`) contains no panics
/// at all, which `scripts/verify.sh` enforces by grep.
#[cold]
#[inline(never)]
pub(crate) fn read_failure(e: impl std::fmt::Display) -> ! {
    panic!("unrecoverable tree read failure (use the try_* APIs to handle this): {e}")
}

/// Companion funnel for an [`crate::IwpIndex`] used with a leaf it was
/// not built over (the tree mutated after the build).
#[cold]
#[inline(never)]
pub(crate) fn stale_iwp(leaf: NodeId) -> ! {
    panic!(
        "IWP index does not know leaf {} (tree mutated after build?)",
        leaf.0
    )
}

/// A guard over one node's contents, returned by the tree's internal
/// `read_node`/`peek_node`.
///
/// On an arena tree this is a plain borrow (no allocation — the warm
/// query path stays allocation-free). On a disk-backed tree it holds the
/// decoded node alive (`Arc`) and — for charged reads — keeps the
/// backing page **pinned** in the buffer pool until the guard drops, so
/// a parent's page cannot be evicted while a query still descends
/// through its children. Dereferences to [`Node`].
pub(crate) enum NodeRef<'t> {
    /// Direct arena borrow (in-memory tree).
    Arena(&'t Node),
    /// Demand-paged node (disk-backed tree); see
    /// [`crate::disk::PagedNode`].
    Paged(crate::disk::PagedNode<'t>),
}

impl Deref for NodeRef<'_> {
    type Target = Node;
    #[inline]
    fn deref(&self) -> &Node {
        match self {
            NodeRef::Arena(n) => n,
            NodeRef::Paged(p) => p.node(),
        }
    }
}

/// An in-memory R\*-tree over 2-D point objects with node-access
/// accounting.
///
/// Build one with [`RStarTree::bulk_load`] (STR packing, what the
/// experiments use) or incrementally via [`RStarTree::new`] +
/// [`RStarTree::insert`] (full R\* insertion with forced reinsert).
///
/// All query methods take `&self` and charge visited nodes to
/// [`RStarTree::stats`].
pub struct RStarTree {
    pub(crate) nodes: Vec<Node>,
    pub(crate) free: Vec<NodeId>,
    pub(crate) root: NodeId,
    pub(crate) len: usize,
    pub(crate) params: TreeParams,
    /// Shared (`Arc`) so overlapped-readahead completions can keep
    /// tallying into the same counters after the submitting call
    /// returned; everything else reaches it through `&`.
    pub(crate) stats: Arc<IoStats>,
    /// `Some` for a disk-backed tree (see [`crate::disk`]): the arena is
    /// empty, node ids are page ids, node accesses fault pages in
    /// through the buffer pool, and mutations require a writable store
    /// (rejected with [`TreeError::ReadOnly`] otherwise).
    pub(crate) storage: Option<Box<crate::disk::TreeStorage>>,
}

impl RStarTree {
    /// Creates an empty tree with the given parameters.
    pub fn with_params(params: TreeParams) -> Self {
        params.validate();
        let mut tree = RStarTree {
            nodes: Vec::new(),
            free: Vec::new(),
            root: NodeId(0),
            len: 0,
            params,
            stats: Arc::new(IoStats::new()),
            storage: None,
        };
        tree.root = tree.alloc(Node::new_leaf());
        tree
    }

    /// Creates an empty tree with the paper's default parameters
    /// (max 50 entries per node).
    pub fn new() -> Self {
        RStarTree::with_params(TreeParams::default())
    }

    /// Number of objects stored.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree holds no objects.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The tree's shape parameters.
    #[inline]
    pub fn params(&self) -> &TreeParams {
        &self.params
    }

    /// The I/O counters of this tree.
    #[inline]
    pub fn stats(&self) -> &IoStats {
        &self.stats
    }

    /// The root node id (exposed for traversals layered on this crate).
    #[inline]
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Height of the tree in levels: 1 for a lone leaf root, 2 when the
    /// root's children are leaves, and so on.
    #[inline]
    pub fn height(&self) -> usize {
        match &self.storage {
            Some(s) => s.root_level() as usize + 1,
            None => self.node(self.root).level as usize + 1,
        }
    }

    /// The MBR of the whole dataset, or `None` when empty.
    pub fn mbr(&self) -> Option<Rect> {
        if self.is_empty() {
            None
        } else {
            match &self.storage {
                Some(s) => Some(s.root_mbr()),
                None => Some(self.node(self.root).mbr),
            }
        }
    }

    /// Level of a node: 0 for leaves, increasing toward the root.
    /// Charges no I/O (bookkeeping read, like the arena's).
    #[inline]
    pub fn node_level(&self, id: NodeId) -> u32 {
        match &self.storage {
            Some(s) if id == self.root => s.root_level(),
            _ => self.peek_node(id).level,
        }
    }

    /// MBR of a node. Charges no I/O.
    #[inline]
    pub fn node_mbr(&self, id: NodeId) -> Rect {
        match &self.storage {
            Some(s) if id == self.root => s.root_mbr(),
            _ => self.peek_node(id).mbr,
        }
    }

    /// Number of direct children (entries or nodes) of a node. Charges
    /// no I/O.
    #[inline]
    pub fn node_len(&self, id: NodeId) -> usize {
        self.peek_node(id).len()
    }

    /// Total number of nodes currently allocated (for storage accounting).
    pub fn node_count(&self) -> usize {
        match &self.storage {
            Some(s) => s.node_count(),
            None => self.nodes.len() - self.free.len(),
        }
    }

    /// Iterates over every stored entry (no I/O is charged; this is a
    /// debugging/testing aid, not a simulated disk access path).
    pub fn iter_entries(&self) -> impl Iterator<Item = Entry> + '_ {
        let mut stack = vec![self.root];
        let mut buf: Vec<Entry> = Vec::new();
        std::iter::from_fn(move || loop {
            if let Some(e) = buf.pop() {
                return Some(e);
            }
            let id = stack.pop()?;
            match &self.peek_node(id).kind {
                NodeKind::Leaf(entries) => buf.extend(entries.iter().copied()),
                NodeKind::Internal(branches) => stack.extend(branches.iter().map(|b| b.child)),
            }
        })
    }

    // ------------------------------------------------------------------
    // Arena plumbing (crate-internal).
    // ------------------------------------------------------------------

    /// Direct mutable-path access to a node: the arena slot on an
    /// in-memory tree, the *write overlay* on a writable disk-backed
    /// tree. Mutation code must fault a disk node with
    /// [`RStarTree::fault_for_write`] before reaching it through here —
    /// an unfaulted id aborts through the crate's read-failure funnel.
    #[inline]
    pub(crate) fn node(&self, id: NodeId) -> &Node {
        match &self.storage {
            Some(s) => s.overlay_ref(id.0),
            None => &self.nodes[id.index()],
        }
    }

    #[inline]
    pub(crate) fn node_mut(&mut self, id: NodeId) -> &mut Node {
        match &mut self.storage {
            Some(s) => s.overlay_mut(id.0),
            None => &mut self.nodes[id.index()],
        }
    }

    /// Ensures `id` is mutable in place: a no-op on an arena tree or an
    /// already-dirty node, otherwise faults the committed node into the
    /// write overlay as a clone-on-write copy (see [`crate::disk`],
    /// "Writable mode").
    pub(crate) fn fault_for_write(&mut self, id: NodeId) -> Result<(), TreeError> {
        let Some(s) = self.storage.as_deref() else {
            return Ok(());
        };
        if s.overlay_contains(id.0) {
            return Ok(());
        }
        let arc = match self.try_peek_node(id)? {
            NodeRef::Paged(p) => p.arc(),
            NodeRef::Arena(_) => return Ok(()),
        };
        if let Some(s) = self.storage.as_deref_mut() {
            s.fault_node(id.0, arc);
        }
        Ok(())
    }

    /// Current MBR of a branch's child during mutation, without
    /// requiring the child to be resident: the overlay copy when the
    /// child is dirty, else the branch's stored MBR (exact for clean
    /// children — clean nodes never point at dirty ones, and every
    /// mutation sync point refreshes the branch copies).
    #[inline]
    pub(crate) fn child_mbr(&self, b: &crate::node::Branch) -> Rect {
        match &self.storage {
            Some(s) => s.overlay_mbr(b.child.0).unwrap_or(b.mbr),
            None => self.nodes[b.child.index()].mbr,
        }
    }

    /// Post-mutation sync point: rebuilds the SoA pruning views of
    /// dirty internal nodes and refreshes the cached root metadata of a
    /// disk-backed tree (queries read both). A no-op on arena trees.
    pub(crate) fn finish_mutation(&mut self) -> Result<(), TreeError> {
        if self.storage.is_none() {
            return Ok(());
        }
        let (level, mbr) = {
            let root = self.try_peek_node(self.root)?;
            (root.level, root.mbr)
        };
        if let Some(s) = self.storage.as_deref_mut() {
            s.rebuild_dirty_soa();
            s.set_root_meta(level, mbr);
        }
        Ok(())
    }

    /// Reads a node's contents for query purposes, charging one node
    /// access to the stats. On a disk-backed tree the access faults the
    /// node's page in through the buffer pool — a miss performs (and
    /// charges) a real page read plus a decode, a hit charges
    /// [`IoStats::record_buffer_hit`] and reuses the already-decoded
    /// node — and the returned guard pins the page until dropped. A
    /// disk read failure (retry budget exhausted, corruption, or a
    /// quarantined page) surfaces as [`TreeError::Io`]; arena reads are
    /// infallible and always return `Ok`.
    #[inline]
    pub(crate) fn try_read_node(&self, id: NodeId) -> Result<NodeRef<'_>, TreeError> {
        match &self.storage {
            Some(storage) => Ok(NodeRef::Paged(storage.try_fetch(id.0, &self.stats)?)),
            None => {
                self.stats.record_node_read();
                Ok(NodeRef::Arena(&self.nodes[id.index()]))
            }
        }
    }

    /// The readahead width configured for this tree (0 for arena trees
    /// and disk trees opened without prefetch). Query code checks this
    /// before assembling prefetch candidates, so the hot path stays
    /// allocation-free whenever readahead is off.
    #[inline]
    pub(crate) fn readahead(&self) -> usize {
        match &self.storage {
            Some(storage) => storage.prefetch_limit(),
            None => 0,
        }
    }

    /// Reads up to [`RStarTree::readahead`] of `candidates` (page ids in
    /// priority order) ahead of demand — a no-op on arena trees. See
    /// [`crate::disk::TreeStorage::prefetch_pages`] for the accounting
    /// contract (demand counters untouched).
    #[inline]
    pub(crate) fn prefetch_pages(&self, candidates: &mut Vec<u32>) {
        if let Some(storage) = &self.storage {
            storage.prefetch_pages(candidates, &self.stats);
        }
    }

    /// Reads a node's contents for bookkeeping purposes — builds,
    /// validation, entry iteration — charging **no** I/O, pinning
    /// nothing, and never touching the buffer pool counters. On a
    /// disk-backed tree a non-resident node is decoded from an uncounted
    /// store read; resident nodes are reused.
    #[inline]
    pub(crate) fn peek_node(&self, id: NodeId) -> NodeRef<'_> {
        match self.try_peek_node(id) {
            Ok(node) => node,
            Err(e) => read_failure(e),
        }
    }

    /// Fallible twin of `peek_node`: still uncharged and unpinned, but
    /// a disk-backed read failure surfaces as [`TreeError::Io`] after
    /// the storage layer's retry budget instead of panicking.
    #[inline]
    pub(crate) fn try_peek_node(&self, id: NodeId) -> Result<NodeRef<'_>, TreeError> {
        match &self.storage {
            Some(storage) => Ok(NodeRef::Paged(storage.try_peek(id.0, &self.stats)?)),
            None => Ok(NodeRef::Arena(&self.nodes[id.index()])),
        }
    }

    /// `Err(TreeError::ReadOnly)` when this tree is disk-backed over a
    /// store with no write path (see [`crate::disk`], "Writable mode").
    #[inline]
    pub(crate) fn check_mutable(&self) -> Result<(), TreeError> {
        match &self.storage {
            Some(s) if !s.is_writable() => Err(TreeError::ReadOnly),
            _ => Ok(()),
        }
    }

    pub(crate) fn alloc(&mut self, node: Node) -> NodeId {
        if let Some(s) = self.storage.as_deref_mut() {
            return NodeId(s.alloc_temp(node));
        }
        if let Some(id) = self.free.pop() {
            self.nodes[id.index()] = node;
            id
        } else {
            let id = NodeId(u32::try_from(self.nodes.len()).expect("node arena overflow"));
            self.nodes.push(node);
            id
        }
    }

    pub(crate) fn dealloc(&mut self, id: NodeId) {
        if let Some(s) = self.storage.as_deref_mut() {
            s.free_node(id.0);
            return;
        }
        // Leave a recognizably-empty husk; the slot is recycled later.
        self.nodes[id.index()] = Node::new_leaf();
        self.free.push(id);
    }

    /// Recomputes a node's MBR from its children, refreshing the child
    /// MBR stored in each branch on the way (the branch copies are the
    /// ones queries prune on, so every mutation sync point must keep
    /// them exact). Panics on an empty non-root node (mutations must not
    /// leave those behind).
    pub(crate) fn recompute_mbr(&mut self, id: NodeId) {
        let mbr = match &self.node(id).kind {
            NodeKind::Leaf(entries) => Rect::bounding(entries.iter().map(|e| e.point)),
            NodeKind::Internal(branches) => {
                let fresh: Vec<Rect> = branches.iter().map(|b| self.child_mbr(b)).collect();
                let union = fresh.iter().skip(1).fold(fresh.first().copied(), |acc, r| {
                    acc.map(|u| u.union(r))
                });
                for (b, m) in self.node_mut(id).branches_mut().iter_mut().zip(&fresh) {
                    b.mbr = *m;
                }
                union
            }
        };
        match mbr {
            Some(r) => self.node_mut(id).mbr = r,
            None => {
                assert_eq!(id, self.root, "non-root node left empty");
                self.node_mut(id).mbr = Rect::from_point(Point::ORIGIN);
            }
        }
    }
}

impl Default for RStarTree {
    fn default() -> Self {
        RStarTree::new()
    }
}

impl std::fmt::Debug for RStarTree {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RStarTree")
            .field("len", &self.len)
            .field("height", &self.height())
            .field("nodes", &self.node_count())
            .field("params", &self.params)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nwc_geom::pt;

    #[test]
    fn empty_tree_shape() {
        let t = RStarTree::new();
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert_eq!(t.height(), 1);
        assert!(t.mbr().is_none());
        assert_eq!(t.node_count(), 1);
    }

    #[test]
    fn iter_entries_covers_everything() {
        let pts: Vec<_> = (0..300).map(|i| pt(i as f64, (i * 7 % 50) as f64)).collect();
        let t = RStarTree::bulk_load(&pts);
        let mut ids: Vec<_> = t.iter_entries().map(|e| e.id).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..300).collect::<Vec<_>>());
    }

    #[test]
    fn read_only_error_displays_usefully() {
        let msg = TreeError::ReadOnly.to_string();
        assert!(msg.contains("read-only"), "{msg}");
    }
}
