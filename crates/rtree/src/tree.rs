//! The tree structure itself: arena management and shared plumbing.

use crate::node::{Node, NodeKind};
use crate::{Entry, IoStats, NodeId, TreeParams};
use nwc_geom::{Point, Rect};

/// An in-memory R\*-tree over 2-D point objects with node-access
/// accounting.
///
/// Build one with [`RStarTree::bulk_load`] (STR packing, what the
/// experiments use) or incrementally via [`RStarTree::new`] +
/// [`RStarTree::insert`] (full R\* insertion with forced reinsert).
///
/// All query methods take `&self` and charge visited nodes to
/// [`RStarTree::stats`].
pub struct RStarTree {
    pub(crate) nodes: Vec<Node>,
    pub(crate) free: Vec<NodeId>,
    pub(crate) root: NodeId,
    pub(crate) len: usize,
    pub(crate) params: TreeParams,
    pub(crate) stats: IoStats,
    /// `Some` for a disk-backed tree (see [`crate::disk`]): node
    /// accesses then run through the buffer pool and the tree is
    /// read-only.
    pub(crate) storage: Option<Box<crate::disk::TreeStorage>>,
}

impl RStarTree {
    /// Creates an empty tree with the given parameters.
    pub fn with_params(params: TreeParams) -> Self {
        params.validate();
        let mut tree = RStarTree {
            nodes: Vec::new(),
            free: Vec::new(),
            root: NodeId(0),
            len: 0,
            params,
            stats: IoStats::new(),
            storage: None,
        };
        tree.root = tree.alloc(Node::new_leaf());
        tree
    }

    /// Creates an empty tree with the paper's default parameters
    /// (max 50 entries per node).
    pub fn new() -> Self {
        RStarTree::with_params(TreeParams::default())
    }

    /// Number of objects stored.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree holds no objects.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The tree's shape parameters.
    #[inline]
    pub fn params(&self) -> &TreeParams {
        &self.params
    }

    /// The I/O counters of this tree.
    #[inline]
    pub fn stats(&self) -> &IoStats {
        &self.stats
    }

    /// The root node id (exposed for traversals layered on this crate).
    #[inline]
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Height of the tree in levels: 1 for a lone leaf root, 2 when the
    /// root's children are leaves, and so on.
    #[inline]
    pub fn height(&self) -> usize {
        self.node(self.root).level as usize + 1
    }

    /// The MBR of the whole dataset, or `None` when empty.
    pub fn mbr(&self) -> Option<Rect> {
        if self.is_empty() {
            None
        } else {
            Some(self.node(self.root).mbr)
        }
    }

    /// Level of a node: 0 for leaves, increasing toward the root.
    #[inline]
    pub fn node_level(&self, id: NodeId) -> u32 {
        self.node(id).level
    }

    /// MBR of a node.
    #[inline]
    pub fn node_mbr(&self, id: NodeId) -> Rect {
        self.node(id).mbr
    }

    /// Number of direct children (entries or nodes) of a node.
    #[inline]
    pub fn node_len(&self, id: NodeId) -> usize {
        self.node(id).len()
    }

    /// Total number of nodes currently allocated (for storage accounting).
    pub fn node_count(&self) -> usize {
        self.nodes.len() - self.free.len()
    }

    /// Iterates over every stored entry (no I/O is charged; this is a
    /// debugging/testing aid, not a simulated disk access path).
    pub fn iter_entries(&self) -> impl Iterator<Item = Entry> + '_ {
        let mut stack = vec![self.root];
        let mut buf: Vec<Entry> = Vec::new();
        std::iter::from_fn(move || loop {
            if let Some(e) = buf.pop() {
                return Some(e);
            }
            let id = stack.pop()?;
            match &self.node(id).kind {
                NodeKind::Leaf(entries) => buf.extend(entries.iter().copied()),
                NodeKind::Internal(children) => stack.extend(children.iter().copied()),
            }
        })
    }

    // ------------------------------------------------------------------
    // Arena plumbing (crate-internal).
    // ------------------------------------------------------------------

    #[inline]
    pub(crate) fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    #[inline]
    pub(crate) fn node_mut(&mut self, id: NodeId) -> &mut Node {
        &mut self.nodes[id.index()]
    }

    /// Reads a node's contents for query purposes, charging one node
    /// access to the stats. On a disk-backed tree the access first runs
    /// through the buffer pool: a miss performs (and charges) a real
    /// page read, a hit charges [`IoStats::record_buffer_hit`] instead.
    #[inline]
    pub(crate) fn read_node(&self, id: NodeId) -> &Node {
        match &self.storage {
            Some(storage) => storage.touch(id, &self.stats),
            None => self.stats.record_node_read(),
        }
        &self.nodes[id.index()]
    }

    pub(crate) fn alloc(&mut self, node: Node) -> NodeId {
        if let Some(id) = self.free.pop() {
            self.nodes[id.index()] = node;
            id
        } else {
            let id = NodeId(u32::try_from(self.nodes.len()).expect("node arena overflow"));
            self.nodes.push(node);
            id
        }
    }

    pub(crate) fn dealloc(&mut self, id: NodeId) {
        // Leave a recognizably-empty husk; the slot is recycled later.
        self.nodes[id.index()] = Node::new_leaf();
        self.free.push(id);
    }

    /// Recomputes a node's MBR from its children. Panics on an empty
    /// non-root node (mutations must not leave those behind).
    pub(crate) fn recompute_mbr(&mut self, id: NodeId) {
        let mbr = match &self.node(id).kind {
            NodeKind::Leaf(entries) => Rect::bounding(entries.iter().map(|e| e.point)),
            NodeKind::Internal(children) => {
                let mut it = children.iter();
                it.next().map(|&first| {
                    let mut r = self.node(first).mbr;
                    for &c in it {
                        r = r.union(&self.node(c).mbr);
                    }
                    r
                })
            }
        };
        match mbr {
            Some(r) => self.node_mut(id).mbr = r,
            None => {
                assert_eq!(id, self.root, "non-root node left empty");
                self.node_mut(id).mbr = Rect::from_point(Point::ORIGIN);
            }
        }
    }
}

impl Default for RStarTree {
    fn default() -> Self {
        RStarTree::new()
    }
}

impl std::fmt::Debug for RStarTree {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RStarTree")
            .field("len", &self.len)
            .field("height", &self.height())
            .field("nodes", &self.node_count())
            .field("params", &self.params)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nwc_geom::pt;

    #[test]
    fn empty_tree_shape() {
        let t = RStarTree::new();
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert_eq!(t.height(), 1);
        assert!(t.mbr().is_none());
        assert_eq!(t.node_count(), 1);
    }

    #[test]
    fn iter_entries_covers_everything() {
        let pts: Vec<_> = (0..300).map(|i| pt(i as f64, (i * 7 % 50) as f64)).collect();
        let t = RStarTree::bulk_load(&pts);
        let mut ids: Vec<_> = t.iter_entries().map(|e| e.id).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..300).collect::<Vec<_>>());
    }
}
