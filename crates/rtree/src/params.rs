//! Tree shape parameters.

/// Branching-factor and reinsertion parameters of the R\*-tree.
///
/// The defaults replicate the paper's setup: a 4096-byte page holding at
/// most 50 entries, a 40 % minimum fill (the R\* recommendation), and a
/// 30 % forced-reinsert fraction (Beckmann et al., SIGMOD 1990).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TreeParams {
    /// Maximum number of entries per node (`M`).
    pub max_entries: usize,
    /// Minimum number of entries per non-root node (`m`).
    pub min_entries: usize,
    /// Number of entries removed and reinserted on the first overflow of
    /// a level during one insertion (`p`, the R\* forced-reinsert count).
    pub reinsert_count: usize,
}

impl TreeParams {
    /// Parameters with the given maximum fanout, deriving `m = 40 % · M`
    /// and `p = 30 % · M` per the R\*-tree paper.
    pub fn with_max_entries(max_entries: usize) -> Self {
        assert!(max_entries >= 4, "R*-tree needs a fanout of at least 4");
        let min_entries = (max_entries * 2 / 5).max(2);
        let reinsert_count = (max_entries * 3 / 10).max(1);
        TreeParams {
            max_entries,
            min_entries,
            reinsert_count,
        }
    }

    /// Validates internal consistency (used by constructors and tests).
    pub fn validate(&self) {
        if let Err(what) = self.check() {
            panic!("{what}");
        }
    }

    /// Non-panicking consistency check, for parameters read from
    /// untrusted sources such as page-file headers.
    pub fn check(&self) -> Result<(), &'static str> {
        if self.max_entries < 4 {
            return Err("max_entries must be ≥ 4");
        }
        if !(self.min_entries >= 2 && self.min_entries <= self.max_entries / 2) {
            return Err("min_entries must lie in [2, max_entries/2]");
        }
        if !(self.reinsert_count >= 1 && self.reinsert_count < self.max_entries - self.min_entries)
        {
            return Err("reinsert_count must leave a legal node behind");
        }
        Ok(())
    }
}

impl Default for TreeParams {
    /// The paper's configuration: 50 entries per node.
    fn default() -> Self {
        TreeParams::with_max_entries(50)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let p = TreeParams::default();
        assert_eq!(p.max_entries, 50);
        assert_eq!(p.min_entries, 20);
        assert_eq!(p.reinsert_count, 15);
        p.validate();
    }

    #[test]
    fn derived_params_are_valid_across_fanouts() {
        for m in 4..=128 {
            TreeParams::with_max_entries(m).validate();
        }
    }

    #[test]
    #[should_panic]
    fn tiny_fanout_rejected() {
        TreeParams::with_max_entries(3);
    }
}
