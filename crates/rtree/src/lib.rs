//! An instrumented, in-memory R\*-tree built for reproducing the NWC
//! paper's experiments.
//!
//! The paper evaluates every algorithm by **I/O cost — the number of
//! R\*-tree nodes visited** — and its IWP optimization physically augments
//! the tree with *backward pointers* (leaf → selected ancestors) and
//! *overlapping pointers* (node → same-level overlapping nodes). Neither
//! is possible with an off-the-shelf spatial index, so this crate
//! implements the R\*-tree of Beckmann et al. (SIGMOD 1990) from scratch:
//!
//! - arena-based nodes with a configurable branching factor
//!   ([`TreeParams`]; the paper uses max 50 entries per 4096-byte page),
//! - R\* insertion: overlap-minimizing `ChooseSubtree`, forced reinsert,
//!   and the margin/overlap-driven R\* split,
//! - deletion with tree condensation,
//! - Sort-Tile-Recursive (STR) bulk loading,
//! - window (range) queries, point queries and window counting,
//! - best-first **incremental distance browsing** (Hjaltason & Samet,
//!   TODS 1999) exposed both as a kNN convenience and as the low-level
//!   [`Browser`] cursor that lets the NWC algorithm interleave its own
//!   pruning (DIP/DEP) with the traversal,
//! - per-tree [`IoStats`] counters that stand in for page reads,
//! - the [`IwpIndex`] augmentation and the incremental window query of
//!   paper §3.3.4.
//!
//! # Example
//!
//! ```
//! use nwc_geom::{pt, rect};
//! use nwc_rtree::RStarTree;
//!
//! let points = vec![pt(1.0, 1.0), pt(2.0, 2.0), pt(8.0, 8.0)];
//! let tree = RStarTree::bulk_load(&points);
//! let hits = tree.window_query(&rect(0.0, 0.0, 3.0, 3.0));
//! assert_eq!(hits.len(), 2);
//! assert!(tree.stats().node_reads() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod browser;
mod bulk;
mod cancel;
mod delete;
pub mod disk;
mod entry;
mod insert;
mod iwp;
mod node;
pub mod page;
mod params;
mod query;
mod split;
mod stats;
mod tree;
pub mod validate;

pub use browser::{BrowseItem, Browser, BrowserScratch};
pub use bulk::str_partition;
pub use cancel::{Budget, CancelFlag, CancelKind, CancelToken};
pub use disk::{DiskError, DiskOptions, DiskReadError, TreeStorage};
pub use entry::{Entry, ObjectId};
pub use iwp::{IwpIndex, IwpStorage};
pub use node::NodeId;
pub use page::{PageError, PageFile, PageLayout, PAGE_SIZE};
pub use params::TreeParams;
pub use stats::{ErrorCounters, IoStats};
pub use tree::{RStarTree, TreeError};

// Re-exported so downstream crates can configure [`DiskOptions::retry`]
// and supply custom page stores (fault injection, in-memory tests)
// without depending on `nwc-store` directly.
pub use nwc_store::{PageStore, RetryPolicy};
