//! Structural invariant checking, used pervasively by the test suites.

use crate::node::NodeKind;
use crate::tree::RStarTree;
use crate::NodeId;

/// A violated tree invariant, with a human-readable description.
#[derive(Debug, PartialEq, Eq)]
pub struct InvariantViolation(pub String);

impl std::fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "R*-tree invariant violated: {}", self.0)
    }
}

impl std::error::Error for InvariantViolation {}

fn err(msg: String) -> Result<(), InvariantViolation> {
    Err(InvariantViolation(msg))
}

/// Checks the structural invariants every R-tree must satisfy:
///
/// 1. every leaf sits at level 0 and all leaves share the same depth,
/// 2. internal children sit exactly one level below their parent,
/// 3. every node's MBR is exactly the union of its children, and every
///    branch's stored child MBR matches the child node it points to
///    (queries prune on the branch copy, so a stale copy is corruption),
/// 4. no node (except a lone root) exceeds `max_entries` or is empty,
/// 5. the stored length equals the number of reachable entries,
/// 6. the arena leaks no nodes (allocated = reachable + free).
///
/// Minimum-fill is checked separately by [`check_fill`] because STR
/// bulk loading legitimately leaves trailing nodes underfull.
///
/// Reads nodes through the uncharged peek path, so a disk-backed tree
/// can be validated without disturbing its I/O counters.
pub fn check_invariants(tree: &RStarTree) -> Result<(), InvariantViolation> {
    let mut reachable = 0usize;
    let mut entries = 0usize;
    // Each frame carries what the parent's branch declared about the
    // child: its level (parent level − 1) and its MBR copy.
    let mut stack: Vec<(NodeId, Option<(u32, nwc_geom::Rect)>)> = vec![(tree.root(), None)];
    while let Some((id, declared)) = stack.pop() {
        reachable += 1;
        let node = tree.peek_node(id);
        if let Some((level, mbr)) = declared {
            if node.level != level {
                return err(format!(
                    "node {id:?} at level {} but its parent declares level {level}",
                    node.level
                ));
            }
            if node.mbr != mbr {
                return err(format!(
                    "node {id:?} has MBR {:?} but its parent's branch declares {mbr:?}",
                    node.mbr
                ));
            }
        }
        if node.len() > tree.params().max_entries {
            return err(format!(
                "node {id:?} has {} children > max {}",
                node.len(),
                tree.params().max_entries
            ));
        }
        if node.len() == 0 && id != tree.root() {
            return err(format!("non-root node {id:?} is empty"));
        }
        match &node.kind {
            NodeKind::Leaf(es) => {
                if node.level != 0 {
                    return err(format!("leaf {id:?} at level {}", node.level));
                }
                entries += es.len();
                for e in es {
                    if !node.mbr.contains_point(&e.point) {
                        return err(format!("leaf {id:?} MBR misses entry {e:?}"));
                    }
                }
                if !es.is_empty() {
                    let exact =
                        nwc_geom::Rect::bounding(es.iter().map(|e| e.point)).unwrap();
                    if exact != node.mbr {
                        return err(format!(
                            "leaf {id:?} MBR {:?} is not tight (expected {exact:?})",
                            node.mbr
                        ));
                    }
                }
            }
            NodeKind::Internal(branches) => {
                let mut union: Option<nwc_geom::Rect> = None;
                for b in branches {
                    union = Some(match union {
                        None => b.mbr,
                        Some(u) => u.union(&b.mbr),
                    });
                    stack.push((b.child, Some((node.level - 1, b.mbr))));
                }
                if let Some(u) = union {
                    if u != node.mbr {
                        return err(format!(
                            "internal {id:?} MBR {:?} is not tight (expected {u:?})",
                            node.mbr
                        ));
                    }
                }
            }
        }
    }
    if entries != tree.len() {
        return err(format!(
            "len() = {} but {entries} entries reachable",
            tree.len()
        ));
    }
    if reachable != tree.node_count() {
        return err(format!(
            "{} nodes allocated but {reachable} reachable (leak)",
            tree.node_count()
        ));
    }
    Ok(())
}

/// Checks the R\*-tree minimum-fill invariant (`min_entries` per non-root
/// node). Applies to insertion-built trees; bulk-loaded trees may fail.
pub fn check_fill(tree: &RStarTree) -> Result<(), InvariantViolation> {
    let mut stack: Vec<NodeId> = vec![tree.root()];
    while let Some(id) = stack.pop() {
        let node = tree.peek_node(id);
        if id != tree.root() && node.len() < tree.params().min_entries {
            return err(format!(
                "node {id:?} has {} children < min {}",
                node.len(),
                tree.params().min_entries
            ));
        }
        if let NodeKind::Internal(branches) = &node.kind {
            stack.extend(branches.iter().map(|b| b.child));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RStarTree;
    use nwc_geom::pt;

    #[test]
    fn valid_trees_pass() {
        let pts: Vec<_> = (0..1000).map(|i| pt((i % 31) as f64, (i / 31) as f64)).collect();
        let bulk = RStarTree::bulk_load(&pts);
        check_invariants(&bulk).unwrap();
        let incremental = RStarTree::insert_all(&pts);
        check_invariants(&incremental).unwrap();
        check_fill(&incremental).unwrap();
    }

    #[test]
    fn corrupted_mbr_detected() {
        let pts: Vec<_> = (0..200).map(|i| pt(i as f64, 0.0)).collect();
        let mut t = RStarTree::bulk_load(&pts);
        // Shrink the root MBR illegally.
        let root = t.root();
        t.node_mut(root).mbr = nwc_geom::rect(0.0, 0.0, 1.0, 1.0);
        assert!(check_invariants(&t).is_err());
    }
}
