//! Structural invariant checking, used pervasively by the test suites.

use crate::node::NodeKind;
use crate::tree::RStarTree;
use crate::NodeId;

/// A violated tree invariant, with a human-readable description.
#[derive(Debug, PartialEq, Eq)]
pub struct InvariantViolation(pub String);

impl std::fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "R*-tree invariant violated: {}", self.0)
    }
}

impl std::error::Error for InvariantViolation {}

fn err(msg: String) -> Result<(), InvariantViolation> {
    Err(InvariantViolation(msg))
}

/// Checks the structural invariants every R-tree must satisfy:
///
/// 1. every leaf sits at level 0 and all leaves share the same depth,
/// 2. internal children sit exactly one level below their parent,
/// 3. every node's MBR is exactly the union of its children,
/// 4. no node (except a lone root) exceeds `max_entries` or is empty,
/// 5. the stored length equals the number of reachable entries,
/// 6. the arena leaks no nodes (allocated = reachable + free).
///
/// Minimum-fill is checked separately by [`check_fill`] because STR
/// bulk loading legitimately leaves trailing nodes underfull.
pub fn check_invariants(tree: &RStarTree) -> Result<(), InvariantViolation> {
    let mut reachable = 0usize;
    let mut entries = 0usize;
    let mut stack: Vec<NodeId> = vec![tree.root()];
    while let Some(id) = stack.pop() {
        reachable += 1;
        let node = tree.node(id);
        if node.len() > tree.params().max_entries {
            return err(format!(
                "node {id:?} has {} children > max {}",
                node.len(),
                tree.params().max_entries
            ));
        }
        if node.len() == 0 && id != tree.root() {
            return err(format!("non-root node {id:?} is empty"));
        }
        match &node.kind {
            NodeKind::Leaf(es) => {
                if node.level != 0 {
                    return err(format!("leaf {id:?} at level {}", node.level));
                }
                entries += es.len();
                for e in es {
                    if !node.mbr.contains_point(&e.point) {
                        return err(format!("leaf {id:?} MBR misses entry {e:?}"));
                    }
                }
                if !es.is_empty() {
                    let exact =
                        nwc_geom::Rect::bounding(es.iter().map(|e| e.point)).unwrap();
                    if exact != node.mbr {
                        return err(format!(
                            "leaf {id:?} MBR {:?} is not tight (expected {exact:?})",
                            node.mbr
                        ));
                    }
                }
            }
            NodeKind::Internal(children) => {
                let mut union: Option<nwc_geom::Rect> = None;
                for &c in children {
                    let child = tree.node(c);
                    if child.level + 1 != node.level {
                        return err(format!(
                            "child {c:?} level {} under parent {id:?} level {}",
                            child.level, node.level
                        ));
                    }
                    union = Some(match union {
                        None => child.mbr,
                        Some(u) => u.union(&child.mbr),
                    });
                    stack.push(c);
                }
                if let Some(u) = union {
                    if u != node.mbr {
                        return err(format!(
                            "internal {id:?} MBR {:?} is not tight (expected {u:?})",
                            node.mbr
                        ));
                    }
                }
            }
        }
    }
    if entries != tree.len() {
        return err(format!(
            "len() = {} but {entries} entries reachable",
            tree.len()
        ));
    }
    if reachable != tree.node_count() {
        return err(format!(
            "{} nodes allocated but {reachable} reachable (leak)",
            tree.node_count()
        ));
    }
    Ok(())
}

/// Checks the R\*-tree minimum-fill invariant (`min_entries` per non-root
/// node). Applies to insertion-built trees; bulk-loaded trees may fail.
pub fn check_fill(tree: &RStarTree) -> Result<(), InvariantViolation> {
    let mut stack: Vec<NodeId> = vec![tree.root()];
    while let Some(id) = stack.pop() {
        let node = tree.node(id);
        if id != tree.root() && node.len() < tree.params().min_entries {
            return err(format!(
                "node {id:?} has {} children < min {}",
                node.len(),
                tree.params().min_entries
            ));
        }
        if let NodeKind::Internal(children) = &node.kind {
            stack.extend(children.iter().copied());
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RStarTree;
    use nwc_geom::pt;

    #[test]
    fn valid_trees_pass() {
        let pts: Vec<_> = (0..1000).map(|i| pt((i % 31) as f64, (i / 31) as f64)).collect();
        let bulk = RStarTree::bulk_load(&pts);
        check_invariants(&bulk).unwrap();
        let incremental = RStarTree::insert_all(&pts);
        check_invariants(&incremental).unwrap();
        check_fill(&incremental).unwrap();
    }

    #[test]
    fn corrupted_mbr_detected() {
        let pts: Vec<_> = (0..200).map(|i| pt(i as f64, 0.0)).collect();
        let mut t = RStarTree::bulk_load(&pts);
        // Shrink the root MBR illegally.
        let root = t.root();
        t.node_mut(root).mbr = nwc_geom::rect(0.0, 0.0, 1.0, 1.0);
        assert!(check_invariants(&t).is_err());
    }
}
