//! R\* insertion: ChooseSubtree, forced reinsert, split propagation.

use crate::node::{Branch, Node, NodeKind};
use crate::split::{rstar_split, SplitItem};
use crate::tree::{RStarTree, TreeError};
use crate::{Entry, NodeId, ObjectId};
use nwc_geom::{Point, Rect};
use std::collections::VecDeque;

/// A child awaiting (re)insertion: either a leaf entry or a whole subtree
/// cut loose by forced reinsert (or by delete's condense).
///
/// A detached subtree carries its root's MBR and level, captured at
/// detach time. Detached nodes are unreachable until requeued, so the
/// metadata cannot go stale — and keeping it here means reinsertion
/// placement never reads the subtree root itself, which on a writable
/// disk-backed tree would otherwise fault a page just to plan a descent.
pub(crate) enum ChildItem {
    Entry(Entry),
    Node { id: NodeId, mbr: Rect, level: u32 },
}

impl RStarTree {
    /// Inserts one object using the full R\* algorithm (overlap-driven
    /// subtree choice, forced reinsert, R\* split).
    ///
    /// `id` is the caller-chosen object identifier; duplicates are not
    /// detected (the tree is a multiset, like the original structure).
    ///
    /// On a *writable* disk-backed tree (see [`crate::disk`], "Writable
    /// mode") the mutation lands in the in-memory overlay; call
    /// [`RStarTree::commit`] to make it durable. Returns
    /// [`TreeError::ReadOnly`] on a disk-backed tree whose store has no
    /// write path — the tree is untouched in that case. An
    /// [`TreeError::Io`] mid-mutation can leave the overlay partially
    /// updated: drop the tree without committing (the on-disk file
    /// still holds the last committed state) and reopen.
    ///
    /// # Panics
    ///
    /// Panics on a non-finite point.
    pub fn insert(&mut self, id: ObjectId, point: Point) -> Result<(), TreeError> {
        self.check_mutable()?;
        assert!(point.is_finite(), "cannot index non-finite point {point:?}");
        let mut pending: VecDeque<ChildItem> = VecDeque::new();
        pending.push_back(ChildItem::Entry(Entry::new(id, point)));
        // Forced reinsert fires at most once per level per insertion.
        let mut reinserted_levels: Vec<u32> = Vec::new();
        while let Some(item) = pending.pop_front() {
            self.insert_item(item, &mut reinserted_levels, &mut pending)?;
        }
        self.len += 1;
        self.finish_mutation()
    }

    /// Inserts every point of `points`, with ids `0..points.len()`.
    pub fn insert_all(points: &[Point]) -> Self {
        let mut tree = RStarTree::new();
        for (i, &p) in points.iter().enumerate() {
            tree.insert(i as ObjectId, p)
                .expect("fresh tree is never read-only");
        }
        tree
    }

    fn item_mbr(item: &ChildItem) -> Rect {
        match item {
            ChildItem::Entry(e) => Rect::from_point(e.point),
            ChildItem::Node { mbr, .. } => *mbr,
        }
    }

    /// Level of the node that should receive this item as a child.
    fn target_level(item: &ChildItem) -> u32 {
        match item {
            ChildItem::Entry(_) => 0,
            ChildItem::Node { level, .. } => level + 1,
        }
    }

    pub(crate) fn insert_item(
        &mut self,
        item: ChildItem,
        reinserted_levels: &mut Vec<u32>,
        pending: &mut VecDeque<ChildItem>,
    ) -> Result<(), TreeError> {
        let into_level = Self::target_level(&item);
        let mbr = Self::item_mbr(&item);
        // Every node the descent will touch becomes overlay-resident
        // before it is read: path nodes are faulted one step ahead, so
        // the mutation body below never reaches a clean disk node.
        self.fault_for_write(self.root)?;
        debug_assert!(
            self.node(self.root).level >= into_level,
            "root level sank below a pending item's level"
        );

        // Descend to the receiving node, remembering the path for MBR
        // maintenance and overflow propagation.
        let mut path = vec![self.root];
        while self.node(*path.last().unwrap()).level > into_level {
            let next = self.choose_subtree(*path.last().unwrap(), &mbr, into_level);
            self.fault_for_write(next)?;
            path.push(next);
        }
        let target = *path.last().unwrap();
        match item {
            ChildItem::Entry(e) => self.node_mut(target).entries_mut().push(e),
            ChildItem::Node { id, .. } => {
                let branch = Branch { child: id, mbr };
                self.node_mut(target).branches_mut().push(branch);
            }
        }

        // Overflow treatment, bottom-up along the insertion path.
        let mut depth = path.len() - 1;
        loop {
            let nid = path[depth];
            if self.node(nid).len() <= self.params.max_entries {
                break;
            }
            let level = self.node(nid).level;
            if nid != self.root && !reinserted_levels.contains(&level) {
                reinserted_levels.push(level);
                self.forced_reinsert(nid, pending);
                break;
            }
            let sibling = self.split_node(nid);
            if nid == self.root {
                let new_root = self.alloc(Node::new_internal(level + 1));
                let halves = [nid, sibling].map(|c| Branch {
                    child: c,
                    mbr: self.node(c).mbr,
                });
                self.node_mut(new_root).branches_mut().extend(halves);
                self.recompute_mbr(new_root);
                self.root = new_root;
                break;
            }
            let parent = path[depth - 1];
            // The split shrank nid's MBR: refresh the parent's branch
            // copy now, before the parent itself may split and carry
            // the stale copy into a sibling off the refresh path.
            let nid_mbr = self.node(nid).mbr;
            let sibling_mbr = self.node(sibling).mbr;
            let branches = self.node_mut(parent).branches_mut();
            if let Some(b) = branches.iter_mut().find(|b| b.child == nid) {
                b.mbr = nid_mbr;
            }
            branches.push(Branch {
                child: sibling,
                mbr: sibling_mbr,
            });
            depth -= 1;
        }

        // Refresh MBRs along the (possibly shortened) path, bottom-up.
        for &nid in path.iter().rev() {
            self.recompute_mbr(nid);
        }
        Ok(())
    }

    /// R\* ChooseSubtree: overlap-minimizing choice one level above the
    /// destination, area-enlargement-minimizing above that.
    fn choose_subtree(&self, node: NodeId, mbr: &Rect, into_level: u32) -> NodeId {
        let n = self.node(node);
        let branches = n.branches();
        debug_assert!(!branches.is_empty());

        if n.level == into_level + 1 {
            // Children receive the item directly: minimize overlap
            // enlargement, tie-break on area enlargement, then area.
            let mut best = 0usize;
            let mut best_key = (f64::INFINITY, f64::INFINITY, f64::INFINITY);
            for (i, b) in branches.iter().enumerate() {
                let cm = &b.mbr;
                let grown = cm.union(mbr);
                let mut overlap_delta = 0.0;
                for (j, s) in branches.iter().enumerate() {
                    if i != j {
                        overlap_delta += grown.overlap_area(&s.mbr) - cm.overlap_area(&s.mbr);
                    }
                }
                let key = (overlap_delta, cm.enlargement(mbr), cm.area());
                if key < best_key {
                    best_key = key;
                    best = i;
                }
            }
            branches[best].child
        } else {
            // Minimize area enlargement, tie-break on area.
            let mut best = branches[0].child;
            let mut best_key = (f64::INFINITY, f64::INFINITY);
            for b in branches {
                let key = (b.mbr.enlargement(mbr), b.mbr.area());
                if key < best_key {
                    best_key = key;
                    best = b.child;
                }
            }
            best
        }
    }

    /// Removes the `p` children farthest from the node's center and queues
    /// them for reinsertion, closest first (the R\* "close reinsert").
    fn forced_reinsert(&mut self, nid: NodeId, pending: &mut VecDeque<ChildItem>) {
        let center = self.node(nid).mbr.center();
        let node_level = self.node(nid).level;
        let p = self.params.reinsert_count;
        let removed: Vec<ChildItem> = match &mut self.node_mut(nid).kind {
            NodeKind::Leaf(entries) => {
                entries.sort_by(|a, b| {
                    a.point
                        .dist2(&center)
                        .partial_cmp(&b.point.dist2(&center))
                        .unwrap()
                });
                entries
                    .split_off(entries.len() - p)
                    .into_iter()
                    .map(ChildItem::Entry)
                    .collect()
            }
            NodeKind::Internal(branches) => {
                // Sort branches by their MBR center distance; the MBR is
                // right in the branch, no arena access needed.
                branches.sort_by(|a, b| {
                    a.mbr
                        .center()
                        .dist2(&center)
                        .partial_cmp(&b.mbr.center().dist2(&center))
                        .unwrap()
                });
                branches
                    .split_off(branches.len() - p)
                    .into_iter()
                    .map(|b| ChildItem::Node {
                        id: b.child,
                        mbr: b.mbr,
                        level: node_level - 1,
                    })
                    .collect()
            }
        };
        self.recompute_mbr(nid);
        // `removed` holds the p farthest children in ascending distance
        // order; queueing front-to-back realizes the R* "close reinsert".
        for item in removed {
            pending.push_back(item);
        }
    }

    /// Splits an overfull node in place; returns the new sibling holding
    /// the second group.
    fn split_node(&mut self, nid: NodeId) -> NodeId {
        let level = self.node(nid).level;
        let min = self.params.min_entries;
        match &mut self.node_mut(nid).kind {
            NodeKind::Leaf(entries) => {
                let items: Vec<SplitItem<Entry>> = entries
                    .drain(..)
                    .map(|e| SplitItem {
                        mbr: Rect::from_point(e.point),
                        item: e,
                    })
                    .collect();
                let result = rstar_split(items, min);
                let node = self.node_mut(nid);
                *node.entries_mut() = result.first;
                node.mbr = result.first_mbr;
                let mut sibling = Node::new_leaf();
                sibling.kind = NodeKind::Leaf(result.second);
                sibling.mbr = result.second_mbr;
                self.alloc(sibling)
            }
            NodeKind::Internal(branches) => {
                let items: Vec<SplitItem<Branch>> = branches
                    .drain(..)
                    .map(|b| SplitItem { mbr: b.mbr, item: b })
                    .collect();
                let result = rstar_split(items, min);
                let node = self.node_mut(nid);
                *node.branches_mut() = result.first;
                node.mbr = result.first_mbr;
                let mut sibling = Node::new_internal(level);
                sibling.kind = NodeKind::Internal(result.second);
                sibling.mbr = result.second_mbr;
                self.alloc(sibling)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::check_invariants;
    use crate::TreeParams;
    use nwc_geom::pt;

    fn grid_points(n: usize) -> Vec<Point> {
        (0..n)
            .map(|i| pt((i % 37) as f64 * 3.1, (i / 37) as f64 * 2.7))
            .collect()
    }

    #[test]
    fn insert_single() {
        let mut t = RStarTree::new();
        t.insert(0, pt(5.0, 5.0)).unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.height(), 1);
        check_invariants(&t).unwrap();
    }

    #[test]
    fn insert_grows_tree() {
        let pts = grid_points(500);
        let t = RStarTree::insert_all(&pts);
        assert_eq!(t.len(), 500);
        assert!(t.height() >= 2);
        check_invariants(&t).unwrap();
    }

    #[test]
    fn insert_small_fanout_deep_tree() {
        let pts = grid_points(400);
        let mut t = RStarTree::with_params(TreeParams::with_max_entries(4));
        for (i, &p) in pts.iter().enumerate() {
            t.insert(i as u32, p).unwrap();
            check_invariants(&t).unwrap();
        }
        assert!(t.height() >= 4);
    }

    #[test]
    fn insert_duplicate_points_allowed() {
        let mut t = RStarTree::with_params(TreeParams::with_max_entries(4));
        for i in 0..100 {
            t.insert(i, pt(1.0, 1.0)).unwrap();
        }
        assert_eq!(t.len(), 100);
        check_invariants(&t).unwrap();
    }

    #[test]
    #[should_panic]
    fn insert_nan_rejected() {
        let mut t = RStarTree::new();
        let _ = t.insert(0, pt(f64::NAN, 0.0));
    }

    #[test]
    fn all_entries_retrievable_after_inserts() {
        let pts = grid_points(777);
        let t = RStarTree::insert_all(&pts);
        let mut ids: Vec<_> = t.iter_entries().map(|e| e.id).collect();
        ids.sort_unstable();
        assert_eq!(ids.len(), 777);
        assert_eq!(ids, (0..777).collect::<Vec<_>>());
    }
}
