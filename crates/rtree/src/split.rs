//! The R\*-tree split algorithm (Beckmann et al., §4.2).
//!
//! The split is generic over "things with an MBR" so the same code
//! divides leaf entries and internal child pointers:
//!
//! 1. **ChooseSplitAxis** — for each axis, sort the `M+1` items by lower
//!    and by upper rectangle coordinate and sum the margins of all legal
//!    distributions; pick the axis with the smaller sum.
//! 2. **ChooseSplitIndex** — along the chosen axis, pick the distribution
//!    with minimal overlap area between the two groups, breaking ties by
//!    minimal total area.

use nwc_geom::Rect;

/// One item participating in a split: its MBR plus an opaque payload.
pub(crate) struct SplitItem<T> {
    pub mbr: Rect,
    pub item: T,
}

/// Outcome of a split: the two groups and their MBRs.
pub(crate) struct SplitResult<T> {
    pub first: Vec<T>,
    pub first_mbr: Rect,
    pub second: Vec<T>,
    pub second_mbr: Rect,
}

/// Bounding rectangle of a slice of split items.
fn group_mbr<T>(items: &[SplitItem<T>]) -> Rect {
    let mut mbr = items[0].mbr;
    for it in &items[1..] {
        mbr = mbr.union(&it.mbr);
    }
    mbr
}

/// Margin sum over every legal distribution of the (already sorted)
/// items, used to score a candidate axis.
fn margin_sum<T>(items: &[SplitItem<T>], min_entries: usize) -> f64 {
    let m = items.len();
    let mut sum = 0.0;
    // Prefix/suffix MBRs make each distribution O(1).
    let (prefix, suffix) = prefix_suffix_mbrs(items);
    for k in min_entries..=(m - min_entries) {
        sum += prefix[k - 1].margin() + suffix[k].margin();
    }
    sum
}

/// `prefix[i]` bounds items `0..=i`; `suffix[i]` bounds items `i..`.
fn prefix_suffix_mbrs<T>(items: &[SplitItem<T>]) -> (Vec<Rect>, Vec<Rect>) {
    let m = items.len();
    let mut prefix = Vec::with_capacity(m);
    let mut acc = items[0].mbr;
    prefix.push(acc);
    for it in &items[1..] {
        acc = acc.union(&it.mbr);
        prefix.push(acc);
    }
    let mut suffix = vec![items[m - 1].mbr; m];
    for i in (0..m - 1).rev() {
        suffix[i] = items[i].mbr.union(&suffix[i + 1]);
    }
    (prefix, suffix)
}

/// Splits `items` (which must number at least `2 * min_entries`) into two
/// groups per the R\* topology.
pub(crate) fn rstar_split<T>(mut items: Vec<SplitItem<T>>, min_entries: usize) -> SplitResult<T> {
    let m = items.len();
    assert!(
        m >= 2 * min_entries,
        "cannot split {m} items with min fill {min_entries}"
    );

    // ChooseSplitAxis: score both axes with both sort orders, keep the
    // best sort order per axis, pick the axis with the lower margin sum.
    // Sorting by (lower, upper) lexicographically merges the paper's two
    // sorts for point-like data and stays within its topology for MBRs.
    let score_axis = |items: &mut Vec<SplitItem<T>>, by_x: bool| -> f64 {
        if by_x {
            items.sort_by(|a, b| {
                (a.mbr.min.x, a.mbr.max.x)
                    .partial_cmp(&(b.mbr.min.x, b.mbr.max.x))
                    .unwrap()
            });
        } else {
            items.sort_by(|a, b| {
                (a.mbr.min.y, a.mbr.max.y)
                    .partial_cmp(&(b.mbr.min.y, b.mbr.max.y))
                    .unwrap()
            });
        }
        margin_sum(items, min_entries)
    };

    let x_score = score_axis(&mut items, true);
    let y_score = score_axis(&mut items, false);
    if x_score < y_score {
        // Re-sort by x (items are currently y-sorted).
        score_axis(&mut items, true);
    }

    // ChooseSplitIndex: minimal overlap, tie-break on minimal total area.
    let (prefix, suffix) = prefix_suffix_mbrs(&items);
    let mut best_k = min_entries;
    let mut best_overlap = f64::INFINITY;
    let mut best_area = f64::INFINITY;
    for k in min_entries..=(m - min_entries) {
        let a = prefix[k - 1];
        let b = suffix[k];
        let overlap = a.overlap_area(&b);
        let area = a.area() + b.area();
        if overlap < best_overlap || (overlap == best_overlap && area < best_area) {
            best_overlap = overlap;
            best_area = area;
            best_k = k;
        }
    }

    let second: Vec<SplitItem<T>> = items.split_off(best_k);
    let first_mbr = group_mbr(&items);
    let second_mbr = group_mbr(&second);
    SplitResult {
        first: items.into_iter().map(|i| i.item).collect(),
        first_mbr,
        second: second.into_iter().map(|i| i.item).collect(),
        second_mbr,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nwc_geom::{pt, Rect};

    fn items_from_points(pts: &[(f64, f64)]) -> Vec<SplitItem<usize>> {
        pts.iter()
            .enumerate()
            .map(|(i, &(x, y))| SplitItem {
                mbr: Rect::from_point(pt(x, y)),
                item: i,
            })
            .collect()
    }

    #[test]
    fn split_respects_min_fill() {
        let pts: Vec<(f64, f64)> = (0..11).map(|i| (i as f64, 0.0)).collect();
        let r = rstar_split(items_from_points(&pts), 4);
        assert!(r.first.len() >= 4 && r.second.len() >= 4);
        assert_eq!(r.first.len() + r.second.len(), 11);
    }

    #[test]
    fn split_separates_clear_clusters() {
        // Two tight clusters far apart must land in different groups.
        let mut pts = vec![];
        for i in 0..5 {
            pts.push((i as f64 * 0.1, 0.0));
        }
        for i in 0..5 {
            pts.push((100.0 + i as f64 * 0.1, 0.0));
        }
        let r = rstar_split(items_from_points(&pts), 4);
        assert_eq!(r.first_mbr.overlap_area(&r.second_mbr), 0.0);
        let left: Vec<usize> = if r.first_mbr.min.x < 50.0 { r.first } else { r.second };
        assert!(left.iter().all(|&i| i < 5));
    }

    #[test]
    fn split_mbrs_cover_groups() {
        let pts: Vec<(f64, f64)> = (0..20)
            .map(|i| ((i * 13 % 17) as f64, (i * 7 % 11) as f64))
            .collect();
        let items = items_from_points(&pts);
        let r = rstar_split(items, 8);
        for &i in &r.first {
            assert!(r.first_mbr.contains_point(&pt(pts[i].0, pts[i].1)));
        }
        for &i in &r.second {
            assert!(r.second_mbr.contains_point(&pt(pts[i].0, pts[i].1)));
        }
    }

    #[test]
    fn split_prefers_low_overlap_axis() {
        // Points on a vertical line: splitting by y gives zero overlap.
        let pts: Vec<(f64, f64)> = (0..10).map(|i| (5.0, i as f64)).collect();
        let r = rstar_split(items_from_points(&pts), 4);
        assert_eq!(r.first_mbr.overlap_area(&r.second_mbr), 0.0);
    }

    #[test]
    #[should_panic]
    fn split_too_few_items_panics() {
        let pts: Vec<(f64, f64)> = (0..5).map(|i| (i as f64, 0.0)).collect();
        rstar_split(items_from_points(&pts), 4);
    }
}
