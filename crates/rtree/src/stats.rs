//! Node-access accounting.
//!
//! The paper's performance metric is "the number of R\*-tree nodes
//! visited, since I/O cost dominates the total execution time". Every
//! read of a node's contents during a query — whether by a window query,
//! the best-first traversal or an IWP incremental window query — bumps
//! the counter here. Queries take `&self` and may run from several
//! threads at once, so the counters are relaxed atomics (the counter is
//! a tally, not a synchronization point).

use std::sync::atomic::{AtomicU64, Ordering};

/// Per-tree I/O counters standing in for page reads.
///
/// Counters only ever grow; callers attribute costs to phases by taking
/// [`IoStats::snapshot`]s and diffing. [`IoStats::reset`] rewinds to zero
/// between queries. When multiple threads query one tree concurrently
/// the counter aggregates across them — use per-thread snapshot diffs
/// only under external coordination.
#[derive(Debug, Default)]
pub struct IoStats {
    node_reads: AtomicU64,
}

impl IoStats {
    /// A fresh, zeroed counter set.
    pub fn new() -> Self {
        IoStats::default()
    }

    /// Records one node access.
    #[inline]
    pub fn record_node_read(&self) {
        self.node_reads.fetch_add(1, Ordering::Relaxed);
    }

    /// Total node accesses since construction or the last reset.
    #[inline]
    pub fn node_reads(&self) -> u64 {
        self.node_reads.load(Ordering::Relaxed)
    }

    /// Current counter value, for diff-based attribution.
    #[inline]
    pub fn snapshot(&self) -> u64 {
        self.node_reads.load(Ordering::Relaxed)
    }

    /// Node accesses since a previous [`IoStats::snapshot`].
    #[inline]
    pub fn since(&self, snapshot: u64) -> u64 {
        self.node_reads.load(Ordering::Relaxed) - snapshot
    }

    /// Rewinds all counters to zero.
    #[inline]
    pub fn reset(&self) {
        self.node_reads.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_and_reset() {
        let s = IoStats::new();
        assert_eq!(s.node_reads(), 0);
        s.record_node_read();
        s.record_node_read();
        assert_eq!(s.node_reads(), 2);
        let snap = s.snapshot();
        s.record_node_read();
        assert_eq!(s.since(snap), 1);
        s.reset();
        assert_eq!(s.node_reads(), 0);
    }

    #[test]
    fn concurrent_counting_is_lossless() {
        let s = std::sync::Arc::new(IoStats::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let s = s.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..10_000 {
                    s.record_node_read();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.node_reads(), 80_000);
    }
}
