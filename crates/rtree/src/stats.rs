//! Node-access accounting.
//!
//! The paper's performance metric is "the number of R\*-tree nodes
//! visited, since I/O cost dominates the total execution time". Every
//! read of a node's contents during a query — whether by a window query,
//! the best-first traversal or an IWP incremental window query — bumps
//! the counter here. Queries take `&self` and may run from several
//! threads at once, so the counters are relaxed atomics (the counter is
//! a tally, not a synchronization point).

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

thread_local! {
    /// The calling thread's running node-read tally, across all trees.
    /// Never reset — only diffed via snapshot pairs.
    static THREAD_READS: Cell<u64> = const { Cell::new(0) };
}

/// Per-tree I/O counters standing in for page reads.
///
/// The per-tree total ([`IoStats::node_reads`]) is a relaxed atomic that
/// aggregates across every thread querying the tree. Phase attribution
/// ([`IoStats::snapshot`] / [`IoStats::since`]) instead diffs a
/// *thread-local* tally, so a query attributing its own phases sees
/// exactly the reads it issued — identical whether it runs alone or
/// concurrently with other queries on the same tree.
#[derive(Debug, Default)]
pub struct IoStats {
    node_reads: AtomicU64,
}

impl IoStats {
    /// A fresh, zeroed counter set.
    pub fn new() -> Self {
        IoStats::default()
    }

    /// Records one node access.
    #[inline]
    pub fn record_node_read(&self) {
        self.node_reads.fetch_add(1, Ordering::Relaxed);
        THREAD_READS.with(|c| c.set(c.get() + 1));
    }

    /// Total node accesses since construction or the last reset.
    #[inline]
    pub fn node_reads(&self) -> u64 {
        self.node_reads.load(Ordering::Relaxed)
    }

    /// Current value of the calling thread's read tally, for diff-based
    /// phase attribution (pair with [`IoStats::since`] on this thread).
    #[inline]
    pub fn snapshot(&self) -> u64 {
        THREAD_READS.with(Cell::get)
    }

    /// Node accesses *by the calling thread* since a previous
    /// [`IoStats::snapshot`] taken on this thread. Reads issued by other
    /// threads never leak into the diff.
    #[inline]
    pub fn since(&self, snapshot: u64) -> u64 {
        THREAD_READS.with(Cell::get) - snapshot
    }

    /// Rewinds all counters to zero.
    #[inline]
    pub fn reset(&self) {
        self.node_reads.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_and_reset() {
        let s = IoStats::new();
        assert_eq!(s.node_reads(), 0);
        s.record_node_read();
        s.record_node_read();
        assert_eq!(s.node_reads(), 2);
        let snap = s.snapshot();
        s.record_node_read();
        assert_eq!(s.since(snap), 1);
        s.reset();
        assert_eq!(s.node_reads(), 0);
    }

    #[test]
    fn attribution_ignores_other_threads() {
        use std::sync::{Arc, Barrier};
        let s = Arc::new(IoStats::new());
        let barrier = Arc::new(Barrier::new(2));
        let (s2, b2) = (s.clone(), barrier.clone());
        let noisy = std::thread::spawn(move || {
            b2.wait();
            for _ in 0..50_000 {
                s2.record_node_read();
            }
        });
        barrier.wait();
        // While the other thread hammers the shared counter, this
        // thread's snapshot diff must count only its own reads.
        let snap = s.snapshot();
        for _ in 0..1_000 {
            s.record_node_read();
        }
        assert_eq!(s.since(snap), 1_000);
        noisy.join().unwrap();
        assert_eq!(s.node_reads(), 51_000);
    }

    #[test]
    fn concurrent_counting_is_lossless() {
        let s = std::sync::Arc::new(IoStats::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let s = s.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..10_000 {
                    s.record_node_read();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.node_reads(), 80_000);
    }
}
