//! Node-access accounting.
//!
//! The paper's performance metric is "the number of R\*-tree nodes
//! visited, since I/O cost dominates the total execution time". Every
//! read of a node's contents during a query — whether by a window query,
//! the best-first traversal or an IWP incremental window query — bumps
//! the counter here. Queries take `&self` and may run from several
//! threads at once, so the counters are relaxed atomics (the counter is
//! a tally, not a synchronization point).
//!
//! # Physical reads vs. buffer hits
//!
//! With a disk-backed tree (see [`crate::disk`]) a node access either
//! misses the buffer pool — a *physical* page read, recorded with
//! [`IoStats::record_node_read`] — or hits it, recorded with
//! [`IoStats::record_buffer_hit`]. The two are tallied separately at the
//! tree level ([`IoStats::node_reads`] / [`IoStats::buffer_hits`]), but
//! the per-thread attribution tallies ([`IoStats::snapshot`] /
//! [`IoStats::since`]) count **logical accesses** (physical + hits), so
//! a query's per-phase I/O breakdown is identical whether the tree runs
//! from the in-memory arena (where every access counts as a read) or
//! from disk — only the physical/hit split differs.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

thread_local! {
    /// The calling thread's running node-access tally (physical reads
    /// plus buffer hits), across all trees. Never reset — only diffed
    /// via snapshot pairs.
    static THREAD_ACCESSES: Cell<u64> = const { Cell::new(0) };
    /// The calling thread's running buffer-hit tally, across all trees.
    static THREAD_HITS: Cell<u64> = const { Cell::new(0) };
    /// The calling thread's running retry tally (re-attempted page
    /// reads), across all trees.
    static THREAD_RETRIES: Cell<u64> = const { Cell::new(0) };
    /// The calling thread's running recovered-transient-failure tally.
    static THREAD_TRANSIENT: Cell<u64> = const { Cell::new(0) };
    /// The calling thread's running quarantined-page tally.
    static THREAD_QUARANTINED: Cell<u64> = const { Cell::new(0) };
}

/// A point-in-time copy of the calling thread's error-path tallies, for
/// diff-based per-query attribution (pair [`IoStats::error_snapshot`]
/// with [`IoStats::errors_since`] on the same thread).
///
/// All three sit *outside* the logical-access accounting: a failed read
/// attempt is not a node visit, so injecting transient faults leaves a
/// query's logical I/O bit-identical to a fault-free run — only these
/// counters (and wall-clock time) move.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ErrorCounters {
    /// Re-attempted page reads (attempt 2 and beyond of a retry loop).
    pub retries: u64,
    /// Failed read attempts that a later attempt recovered from.
    pub transient_errors: u64,
    /// Pages newly quarantined (retry budget exhausted, or corruption).
    pub quarantined_pages: u64,
}

/// Per-tree I/O counters standing in for page reads.
///
/// The per-tree totals ([`IoStats::node_reads`],
/// [`IoStats::buffer_hits`]) are relaxed atomics that aggregate across
/// every thread querying the tree. Phase attribution
/// ([`IoStats::snapshot`] / [`IoStats::since`]) instead diffs a
/// *thread-local* tally, so a query attributing its own phases sees
/// exactly the accesses it issued — identical whether it runs alone or
/// concurrently with other queries on the same tree.
///
/// Readahead counters ([`IoStats::prefetch_reads`] /
/// [`IoStats::prefetch_hits`]) sit *outside* the logical-access
/// accounting: a prefetch read is a speculative physical page read the
/// query did not demand, so it moves neither [`IoStats::accesses`] nor
/// the per-thread attribution tallies. Logical I/O therefore stays
/// bit-identical with readahead on or off — only the demand
/// physical/hit split shifts.
#[derive(Debug, Default)]
pub struct IoStats {
    node_reads: AtomicU64,
    buffer_hits: AtomicU64,
    prefetch_reads: AtomicU64,
    prefetch_hits: AtomicU64,
    retries: AtomicU64,
    transient_errors: AtomicU64,
    quarantined_pages: AtomicU64,
    prefetch_errors: AtomicU64,
    inflight_hits: AtomicU64,
    overlap_us: AtomicU64,
}

impl IoStats {
    /// A fresh, zeroed counter set.
    pub fn new() -> Self {
        IoStats::default()
    }

    /// Records one physical node read (arena access, or a buffer-pool
    /// miss that fetched the page from the store).
    #[inline]
    pub fn record_node_read(&self) {
        self.node_reads.fetch_add(1, Ordering::Relaxed);
        THREAD_ACCESSES.with(|c| c.set(c.get() + 1));
    }

    /// Records one node access satisfied by the buffer pool: a logical
    /// access with no physical I/O behind it.
    #[inline]
    pub fn record_buffer_hit(&self) {
        self.buffer_hits.fetch_add(1, Ordering::Relaxed);
        THREAD_ACCESSES.with(|c| c.set(c.get() + 1));
        THREAD_HITS.with(|c| c.set(c.get() + 1));
    }

    /// Physical node reads since construction or the last reset. For an
    /// arena-only tree every access is counted here.
    #[inline]
    pub fn node_reads(&self) -> u64 {
        self.node_reads.load(Ordering::Relaxed)
    }

    /// Buffer-pool hits since construction or the last reset (always 0
    /// for an arena-only tree).
    #[inline]
    pub fn buffer_hits(&self) -> u64 {
        self.buffer_hits.load(Ordering::Relaxed)
    }

    /// Records one speculative page read issued by readahead. Not a
    /// logical access: neither [`IoStats::accesses`] nor the per-thread
    /// tallies move.
    #[inline]
    pub fn record_prefetch_read(&self) {
        self.prefetch_reads.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a demand access that landed on a page readahead had
    /// admitted. The access itself is recorded separately (as a buffer
    /// hit); this tally just attributes it to prefetching.
    #[inline]
    pub fn record_prefetch_hit(&self) {
        self.prefetch_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Pages read speculatively by readahead since construction or the
    /// last reset. Outside [`IoStats::accesses`].
    #[inline]
    pub fn prefetch_reads(&self) -> u64 {
        self.prefetch_reads.load(Ordering::Relaxed)
    }

    /// Demand accesses served from readahead-admitted pages since
    /// construction or the last reset. A subset of
    /// [`IoStats::buffer_hits`].
    #[inline]
    pub fn prefetch_hits(&self) -> u64 {
        self.prefetch_hits.load(Ordering::Relaxed)
    }

    /// Records one re-attempted page read (the retry loop going around
    /// again). Not a logical access.
    #[inline]
    pub fn record_retry(&self) {
        self.retries.fetch_add(1, Ordering::Relaxed);
        THREAD_RETRIES.with(|c| c.set(c.get() + 1));
    }

    /// Records `n` failed read attempts that a later attempt of the same
    /// read recovered from. Called once, on the eventual success, so the
    /// counter never includes the failures of a read that ultimately
    /// gave up (those end in a quarantine instead).
    #[inline]
    pub fn record_transient_errors(&self, n: u64) {
        if n > 0 {
            self.transient_errors.fetch_add(n, Ordering::Relaxed);
            THREAD_TRANSIENT.with(|c| c.set(c.get() + n));
        }
    }

    /// Records one page entering quarantine (first time only — a
    /// fast-failed access to an already-quarantined page records
    /// nothing).
    #[inline]
    pub fn record_quarantined(&self) {
        self.quarantined_pages.fetch_add(1, Ordering::Relaxed);
        THREAD_QUARANTINED.with(|c| c.set(c.get() + 1));
    }

    /// Records one failed readahead batch (swallowed by design — the
    /// demand path re-reads, counted and retried, if the pages are ever
    /// needed). No thread-local attribution: prefetching is advisory
    /// background work, not part of any query's I/O.
    #[inline]
    pub fn record_prefetch_error(&self) {
        self.prefetch_errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Re-attempted page reads since construction or the last reset.
    #[inline]
    pub fn retries(&self) -> u64 {
        self.retries.load(Ordering::Relaxed)
    }

    /// Failed-then-recovered read attempts since construction or the
    /// last reset.
    #[inline]
    pub fn transient_errors(&self) -> u64 {
        self.transient_errors.load(Ordering::Relaxed)
    }

    /// Pages quarantined since construction or the last reset.
    #[inline]
    pub fn quarantined_pages(&self) -> u64 {
        self.quarantined_pages.load(Ordering::Relaxed)
    }

    /// Failed (and swallowed) readahead batches since construction or
    /// the last reset.
    #[inline]
    pub fn prefetch_errors(&self) -> u64 {
        self.prefetch_errors.load(Ordering::Relaxed)
    }

    /// Records one demand fault that found its page's read already in
    /// flight (overlapped readahead) and waited for the pending
    /// completion instead of issuing a second physical read. The access
    /// itself is charged separately, as the pool hit/miss it resolves
    /// to — this tally only attributes the dedupe. No thread-local
    /// attribution: like the prefetch counters, it sits outside logical
    /// I/O.
    #[inline]
    pub fn record_inflight_hit(&self) {
        self.inflight_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Demand faults that waited on an in-flight overlapped read since
    /// construction or the last reset.
    #[inline]
    pub fn inflight_hits(&self) -> u64 {
        self.inflight_hits.load(Ordering::Relaxed)
    }

    /// Adds `elapsed` device time spent inside overlapped readahead
    /// workers — wall clock the query threads did *not* spend blocked on
    /// the store. Saturating at `u64::MAX` microseconds.
    #[inline]
    pub fn record_overlap(&self, elapsed: std::time::Duration) {
        let us = u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX);
        self.overlap_us.fetch_add(us, Ordering::Relaxed);
    }

    /// Total microseconds of device time overlapped with query work
    /// since construction or the last reset.
    #[inline]
    pub fn overlap_us(&self) -> u64 {
        self.overlap_us.load(Ordering::Relaxed)
    }

    /// Current values of the calling thread's error-path tallies (pair
    /// with [`IoStats::errors_since`] on this thread).
    #[inline]
    pub fn error_snapshot(&self) -> ErrorCounters {
        ErrorCounters {
            retries: THREAD_RETRIES.with(Cell::get),
            transient_errors: THREAD_TRANSIENT.with(Cell::get),
            quarantined_pages: THREAD_QUARANTINED.with(Cell::get),
        }
    }

    /// Error-path events *by the calling thread* since a previous
    /// [`IoStats::error_snapshot`] taken on this thread.
    #[inline]
    pub fn errors_since(&self, snapshot: ErrorCounters) -> ErrorCounters {
        ErrorCounters {
            retries: THREAD_RETRIES.with(Cell::get) - snapshot.retries,
            transient_errors: THREAD_TRANSIENT.with(Cell::get) - snapshot.transient_errors,
            quarantined_pages: THREAD_QUARANTINED.with(Cell::get) - snapshot.quarantined_pages,
        }
    }

    /// Total logical node accesses: physical reads plus buffer hits.
    /// This is the paper's "nodes visited" metric, independent of
    /// buffering.
    #[inline]
    pub fn accesses(&self) -> u64 {
        self.node_reads() + self.buffer_hits()
    }

    /// Current value of the calling thread's access tally, for
    /// diff-based phase attribution (pair with [`IoStats::since`] on
    /// this thread). Counts logical accesses (physical + hits).
    #[inline]
    pub fn snapshot(&self) -> u64 {
        THREAD_ACCESSES.with(Cell::get)
    }

    /// Node accesses *by the calling thread* since a previous
    /// [`IoStats::snapshot`] taken on this thread. Accesses issued by
    /// other threads never leak into the diff.
    #[inline]
    pub fn since(&self, snapshot: u64) -> u64 {
        THREAD_ACCESSES.with(Cell::get) - snapshot
    }

    /// Current value of the calling thread's buffer-hit tally (pair
    /// with [`IoStats::hits_since`] on this thread).
    #[inline]
    pub fn hits_snapshot(&self) -> u64 {
        THREAD_HITS.with(Cell::get)
    }

    /// Buffer hits *by the calling thread* since a previous
    /// [`IoStats::hits_snapshot`] taken on this thread.
    #[inline]
    pub fn hits_since(&self, snapshot: u64) -> u64 {
        THREAD_HITS.with(Cell::get) - snapshot
    }

    /// Rewinds all counters to zero.
    #[inline]
    pub fn reset(&self) {
        self.node_reads.store(0, Ordering::Relaxed);
        self.buffer_hits.store(0, Ordering::Relaxed);
        self.prefetch_reads.store(0, Ordering::Relaxed);
        self.prefetch_hits.store(0, Ordering::Relaxed);
        self.retries.store(0, Ordering::Relaxed);
        self.transient_errors.store(0, Ordering::Relaxed);
        self.quarantined_pages.store(0, Ordering::Relaxed);
        self.prefetch_errors.store(0, Ordering::Relaxed);
        self.inflight_hits.store(0, Ordering::Relaxed);
        self.overlap_us.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_and_reset() {
        let s = IoStats::new();
        assert_eq!(s.node_reads(), 0);
        s.record_node_read();
        s.record_node_read();
        assert_eq!(s.node_reads(), 2);
        let snap = s.snapshot();
        s.record_node_read();
        assert_eq!(s.since(snap), 1);
        s.reset();
        assert_eq!(s.node_reads(), 0);
    }

    #[test]
    fn hits_and_reads_split_but_attribute_together() {
        let s = IoStats::new();
        let snap = s.snapshot();
        let hits = s.hits_snapshot();
        s.record_node_read();
        s.record_buffer_hit();
        s.record_buffer_hit();
        // Tree-level: split.
        assert_eq!(s.node_reads(), 1);
        assert_eq!(s.buffer_hits(), 2);
        assert_eq!(s.accesses(), 3);
        // Thread-level: since() counts logical accesses; hits_since()
        // isolates the buffered share.
        assert_eq!(s.since(snap), 3);
        assert_eq!(s.hits_since(hits), 2);
        s.reset();
        assert_eq!(s.accesses(), 0);
    }

    #[test]
    fn prefetch_counters_stay_outside_logical_accounting() {
        let s = IoStats::new();
        let snap = s.snapshot();
        s.record_prefetch_read();
        s.record_prefetch_read();
        s.record_buffer_hit();
        s.record_prefetch_hit();
        assert_eq!(s.prefetch_reads(), 2);
        assert_eq!(s.prefetch_hits(), 1);
        // Only the demand buffer hit counts as a logical access.
        assert_eq!(s.accesses(), 1);
        assert_eq!(s.since(snap), 1);
        s.reset();
        assert_eq!((s.prefetch_reads(), s.prefetch_hits()), (0, 0));
    }

    #[test]
    fn overlap_counters_stay_outside_logical_accounting() {
        let s = IoStats::new();
        let snap = s.snapshot();
        s.record_inflight_hit();
        s.record_overlap(std::time::Duration::from_micros(250));
        s.record_overlap(std::time::Duration::from_micros(50));
        assert_eq!(s.inflight_hits(), 1);
        assert_eq!(s.overlap_us(), 300);
        assert_eq!(s.accesses(), 0);
        assert_eq!(s.since(snap), 0);
        s.reset();
        assert_eq!((s.inflight_hits(), s.overlap_us()), (0, 0));
    }

    #[test]
    fn error_counters_stay_outside_logical_accounting() {
        let s = IoStats::new();
        let snap = s.snapshot();
        let errs = s.error_snapshot();
        s.record_retry();
        s.record_retry();
        s.record_transient_errors(2);
        s.record_transient_errors(0); // no-op
        s.record_quarantined();
        s.record_prefetch_error();
        assert_eq!(s.retries(), 2);
        assert_eq!(s.transient_errors(), 2);
        assert_eq!(s.quarantined_pages(), 1);
        assert_eq!(s.prefetch_errors(), 1);
        // None of it is a logical access.
        assert_eq!(s.accesses(), 0);
        assert_eq!(s.since(snap), 0);
        let d = s.errors_since(errs);
        assert_eq!(
            d,
            ErrorCounters { retries: 2, transient_errors: 2, quarantined_pages: 1 }
        );
        s.reset();
        assert_eq!((s.retries(), s.transient_errors()), (0, 0));
        assert_eq!((s.quarantined_pages(), s.prefetch_errors()), (0, 0));
    }

    #[test]
    fn error_attribution_ignores_other_threads() {
        use std::sync::{Arc, Barrier};
        let s = Arc::new(IoStats::new());
        let barrier = Arc::new(Barrier::new(2));
        let (s2, b2) = (s.clone(), barrier.clone());
        let noisy = std::thread::spawn(move || {
            b2.wait();
            for _ in 0..10_000 {
                s2.record_retry();
                s2.record_transient_errors(1);
            }
        });
        barrier.wait();
        let errs = s.error_snapshot();
        for _ in 0..100 {
            s.record_retry();
        }
        assert_eq!(s.errors_since(errs).retries, 100);
        assert_eq!(s.errors_since(errs).transient_errors, 0);
        noisy.join().unwrap();
        assert_eq!(s.retries(), 10_100);
    }

    #[test]
    fn attribution_ignores_other_threads() {
        use std::sync::{Arc, Barrier};
        let s = Arc::new(IoStats::new());
        let barrier = Arc::new(Barrier::new(2));
        let (s2, b2) = (s.clone(), barrier.clone());
        let noisy = std::thread::spawn(move || {
            b2.wait();
            for _ in 0..50_000 {
                s2.record_node_read();
            }
        });
        barrier.wait();
        // While the other thread hammers the shared counter, this
        // thread's snapshot diff must count only its own reads.
        let snap = s.snapshot();
        for _ in 0..1_000 {
            s.record_node_read();
        }
        assert_eq!(s.since(snap), 1_000);
        noisy.join().unwrap();
        assert_eq!(s.node_reads(), 51_000);
    }

    #[test]
    fn concurrent_counting_is_lossless() {
        let s = std::sync::Arc::new(IoStats::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let s = s.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..10_000 {
                    s.record_node_read();
                    s.record_buffer_hit();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.node_reads(), 80_000);
        assert_eq!(s.buffer_hits(), 80_000);
        assert_eq!(s.accesses(), 160_000);
    }
}
