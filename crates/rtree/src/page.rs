//! Fixed-size disk-page serialization of the tree.
//!
//! The paper configures its R\*-tree with "the page size set to 4096
//! bytes" and at most 50 entries per node, and measures I/O as page
//! reads. The in-memory arena stands in for the buffer pool during
//! query processing; this module makes the disk layout itself concrete:
//! every node serializes into one fixed [`PAGE_SIZE`]-byte page, and a
//! whole tree round-trips through a [`PageFile`].
//!
//! # Page layout (little-endian)
//!
//! ```text
//! offset  size  field
//! 0       1     tag: 0 = leaf, 1 = internal
//! 1       4     level (u32)
//! 5       4     entry count (u32)
//! 9       32    node MBR (4 × f64: min.x, min.y, max.x, max.y)
//! 41      …     entries
//! ```
//!
//! Leaf entries are 20 bytes (`u32` id + 2 × `f64`); internal entries
//! are 36 bytes (`u32` child page + 4 × `f64` child MBR). 50 internal
//! entries need `41 + 50·36 = 1841 ≤ 4096` bytes, so the paper's fanout
//! fits with room to spare (checked by [`TreeParams`]-aware asserts at
//! write time).

use crate::node::{Branch, Node, NodeKind};
use crate::tree::RStarTree;
use crate::{Entry, NodeId, TreeParams};
use nwc_geom::{Point, Rect};
use std::collections::HashMap;

/// The simulated disk page size (bytes), as in the paper.
pub const PAGE_SIZE: usize = 4096;

// The page codec here and the page store underneath must agree on the
// page size; a drift would corrupt every file.
const _: () = assert!(PAGE_SIZE == nwc_store::PAGE_SIZE);

const HEADER: usize = 1 + 4 + 4 + 32;
const LEAF_ENTRY: usize = 4 + 16;
const INTERNAL_ENTRY: usize = 4 + 32;

/// Maximum entries per page for each node kind at [`PAGE_SIZE`].
pub fn page_capacity_leaf() -> usize {
    (PAGE_SIZE - HEADER) / LEAF_ENTRY
}
/// See [`page_capacity_leaf`].
pub fn page_capacity_internal() -> usize {
    (PAGE_SIZE - HEADER) / INTERNAL_ENTRY
}

/// An error produced while reading a page file.
///
/// Decoding is total: any byte sequence either reconstructs a valid
/// tree or returns one of these variants. In particular a corrupt file
/// can never send the decoder into unbounded recursion or allocation —
/// child pointers forming a cycle (or a DAG: two parents sharing a
/// page) are rejected via [`PageError::Cycle`].
#[derive(Debug, PartialEq, Eq)]
pub enum PageError {
    /// The page tag byte was neither 0 nor 1.
    BadTag(u8),
    /// A child pointer referenced a page beyond the file.
    DanglingChild(u32),
    /// The file is empty or the root page id is out of range.
    BadRoot,
    /// Entry count exceeds what fits in a page.
    Overflow(u32),
    /// A page was referenced as a child more than once: the pointer
    /// graph is not a tree.
    Cycle(u32),
    /// A structural invariant does not hold (level mismatch, leaf at a
    /// nonzero level, childless internal node, …).
    Invalid(&'static str),
}

impl std::fmt::Display for PageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PageError::BadTag(t) => write!(f, "invalid page tag {t}"),
            PageError::DanglingChild(p) => write!(f, "dangling child page {p}"),
            PageError::BadRoot => write!(f, "invalid root page"),
            PageError::Overflow(n) => write!(f, "page entry count {n} exceeds capacity"),
            PageError::Cycle(p) => write!(f, "page {p} referenced by more than one parent"),
            PageError::Invalid(what) => write!(f, "structurally invalid page file: {what}"),
        }
    }
}

impl std::error::Error for PageError {}

/// How page ids are assigned to nodes when a tree is serialized.
///
/// The choice relabels pages only: the branch arrays inside every node
/// keep their arena order, so traversal order — and with it the logical
/// I/O reference string — is bit-identical across layouts. What changes
/// is *where* on disk the pages a traversal touches together sit:
/// [`PageLayout::Clustered`] makes the children of one parent (the very
/// set readahead fetches on a fault) occupy consecutive page ids, so a
/// batched readahead collapses into few contiguous runs instead of many
/// scattered single-page reads. (Exactly contiguous for the leaf level,
/// where most faults land — a pre-order DFS places a level-1 node's
/// leaves back to back; higher siblings sit one subtree apart but stay
/// Hilbert-local.)
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum PageLayout {
    /// The legacy bottom-up (post-order) assignment: children get lower
    /// ids than their parents, siblings are separated by whole subtrees.
    #[default]
    BottomUp,
    /// Locality-preserving: pre-order DFS from the root, visiting each
    /// node's children in Hilbert-curve order of their MBR centers.
    /// Siblings become consecutive pages, and spatially nearby subtrees
    /// become nearby page ranges.
    Clustered,
}

impl PageLayout {
    /// The on-disk tag persisted in the file header (0 = bottom-up,
    /// matching pre-layout files; 1 = clustered).
    pub fn tag(self) -> u8 {
        match self {
            PageLayout::BottomUp => 0,
            PageLayout::Clustered => 1,
        }
    }

    /// Decodes a persisted tag; `None` for tags from the future.
    pub fn from_tag(tag: u8) -> Option<PageLayout> {
        match tag {
            0 => Some(PageLayout::BottomUp),
            1 => Some(PageLayout::Clustered),
            _ => None,
        }
    }
}

/// A serialized tree: fixed-size pages plus the root page id.
pub struct PageFile {
    pages: Vec<[u8; PAGE_SIZE]>,
    root: u32,
    params: TreeParams,
    layout: PageLayout,
}

impl PageFile {
    /// Wraps raw pages (e.g. read back from a
    /// [`PageStore`](nwc_store::PageStore)) as a decodable page file.
    /// No validation happens here; [`RStarTree::from_page_file`]
    /// rejects corrupt content. The layout is assumed bottom-up; it is
    /// metadata only and does not affect decoding.
    pub fn from_raw_pages(pages: Vec<[u8; PAGE_SIZE]>, root: u32, params: TreeParams) -> PageFile {
        PageFile {
            pages,
            root,
            params,
            layout: PageLayout::BottomUp,
        }
    }

    /// The id-assignment order the file was serialized with.
    pub fn layout(&self) -> PageLayout {
        self.layout
    }

    /// Number of pages.
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// Total bytes of the simulated file.
    pub fn bytes(&self) -> usize {
        self.pages.len() * PAGE_SIZE
    }

    /// The root page id.
    pub fn root_page(&self) -> u32 {
        self.root
    }

    /// Raw access to one page (for inspection/corruption tests).
    pub fn page(&self, id: u32) -> &[u8; PAGE_SIZE] {
        &self.pages[id as usize]
    }

    /// Mutable raw access (corruption-injection in tests).
    pub fn page_mut(&mut self, id: u32) -> &mut [u8; PAGE_SIZE] {
        &mut self.pages[id as usize]
    }
}

impl RStarTree {
    /// Serializes the tree into fixed-size pages.
    ///
    /// # Panics
    ///
    /// Panics when the tree's `max_entries` exceeds the page capacity
    /// (the paper's 50 always fits).
    pub fn to_page_file(&self) -> PageFile {
        self.to_page_file_with_layout(PageLayout::BottomUp)
    }

    /// As [`RStarTree::to_page_file`], assigning page ids according to
    /// `layout`. Only the id assignment differs between layouts — every
    /// node's content (branch order included) is byte-identical modulo
    /// the embedded child page ids, so queries traverse both files in
    /// the same order.
    ///
    /// # Panics
    ///
    /// Panics when the tree's `max_entries` exceeds the page capacity
    /// (the paper's 50 always fits).
    pub fn to_page_file_with_layout(&self, layout: PageLayout) -> PageFile {
        assert!(
            self.params.max_entries <= page_capacity_leaf().min(page_capacity_internal()),
            "fanout {} does not fit a {PAGE_SIZE}-byte page",
            self.params.max_entries
        );
        // Pre-assign every node's page id, then encode: parents embed
        // child page ids, so ids must be known before any encoding.
        // Node access goes through `peek_node` (uncharged) so a
        // disk-backed tree can be re-serialized too.
        let page_of = match layout {
            PageLayout::BottomUp => self.assign_pages_bottom_up(),
            PageLayout::Clustered => self.assign_pages_clustered(),
        };
        let mut pages: Vec<[u8; PAGE_SIZE]> = vec![[0u8; PAGE_SIZE]; page_of.len()];
        for (&id, &page_id) in &page_of {
            pages[page_id as usize] = encode_node(&self.peek_node(id), &page_of);
        }
        PageFile {
            root: page_of[&self.root()],
            pages,
            params: self.params,
            layout,
        }
    }

    /// Post-order DFS: children get lower page ids than their parents.
    /// This reproduces the pre-layout serialization order exactly, so
    /// old files and [`PageLayout::BottomUp`] files are byte-identical.
    fn assign_pages_bottom_up(&self) -> HashMap<NodeId, u32> {
        let mut page_of: HashMap<NodeId, u32> = HashMap::new();
        let mut next = 0u32;
        let mut stack: Vec<(NodeId, bool)> = vec![(self.root(), false)];
        while let Some((id, expanded)) = stack.pop() {
            if !expanded {
                stack.push((id, true));
                if let NodeKind::Internal(branches) = &self.peek_node(id).kind {
                    for b in branches {
                        stack.push((b.child, false));
                    }
                }
                continue;
            }
            page_of.insert(id, next);
            next += 1;
        }
        page_of
    }

    /// Pre-order DFS from the root, visiting each node's children in
    /// Hilbert-curve order of their MBR centers (normalized to the root
    /// MBR). A level-1 node's leaves land on consecutive page ids, and
    /// spatially adjacent subtrees land on adjacent page ranges.
    fn assign_pages_clustered(&self) -> HashMap<NodeId, u32> {
        let root = self.root();
        let frame = self.peek_node(root).mbr;
        let mut page_of: HashMap<NodeId, u32> = HashMap::new();
        let mut next = 0u32;
        let mut stack: Vec<NodeId> = vec![root];
        while let Some(id) = stack.pop() {
            page_of.insert(id, next);
            next += 1;
            if let NodeKind::Internal(branches) = &self.peek_node(id).kind {
                let mut order: Vec<(u64, NodeId)> = branches
                    .iter()
                    .map(|b| (hilbert_key(&frame, &b.mbr), b.child))
                    .collect();
                // Descending sort: the stack pops the smallest key —
                // i.e. the curve-first child and its subtree — next.
                order.sort_unstable_by(|a, b| b.0.cmp(&a.0).then(b.1.index().cmp(&a.1.index())));
                for (_, child) in order {
                    stack.push(child);
                }
            }
        }
        page_of
    }

    /// Reconstructs a tree from a page file, rejecting corrupt content
    /// with a typed [`PageError`].
    pub fn from_page_file(file: &PageFile) -> Result<RStarTree, PageError> {
        decode_page_file(file).map(|(tree, _)| tree)
    }
}

/// Bits per axis of the Hilbert grid: 2^16 cells per side is far finer
/// than any fanout-50 tree's MBR population, so ties are rare and the
/// curve order is effectively exact.
const HILBERT_ORDER: u32 = 16;

/// The Hilbert-curve index of `r`'s center within `frame` (normalized
/// to a `2^HILBERT_ORDER`-per-side grid). Degenerate frames (zero
/// extent, or the inverted MBR of an empty node) collapse an axis to
/// the grid midline rather than producing garbage.
fn hilbert_key(frame: &Rect, r: &Rect) -> u64 {
    let side = 1u32 << HILBERT_ORDER;
    let cell = |lo: f64, extent: f64, v: f64| -> u32 {
        let f = if extent > 0.0 && extent.is_finite() {
            ((v - lo) / extent).clamp(0.0, 1.0)
        } else {
            0.5
        };
        // `as` saturates, and NaN maps to 0 — both acceptable here: the
        // key only orders siblings.
        (f * (side - 1) as f64) as u32
    };
    let c = r.center();
    let x = cell(frame.min.x, frame.width(), c.x);
    let y = cell(frame.min.y, frame.height(), c.y);
    hilbert_d(side, x, y)
}

/// Classic xy→d Hilbert mapping for an `n × n` grid (`n` a power of
/// two): the index of cell `(x, y)` along the curve.
fn hilbert_d(n: u32, mut x: u32, mut y: u32) -> u64 {
    let mut d: u64 = 0;
    let mut s = n / 2;
    while s > 0 {
        let rx = u32::from((x & s) > 0);
        let ry = u32::from((y & s) > 0);
        d += (s as u64) * (s as u64) * ((3 * rx) ^ ry) as u64;
        // Rotate the quadrant so the curve stays continuous.
        if ry == 0 {
            if rx == 1 {
                x = (n - 1).wrapping_sub(x);
                y = (n - 1).wrapping_sub(y);
            }
            std::mem::swap(&mut x, &mut y);
        }
        s /= 2;
    }
    d
}

fn put_f64(buf: &mut [u8], off: &mut usize, v: f64) {
    buf[*off..*off + 8].copy_from_slice(&v.to_le_bytes());
    *off += 8;
}
fn put_u32(buf: &mut [u8], off: &mut usize, v: u32) {
    buf[*off..*off + 4].copy_from_slice(&v.to_le_bytes());
    *off += 4;
}
fn get_f64(buf: &[u8], off: &mut usize) -> f64 {
    let v = f64::from_le_bytes(buf[*off..*off + 8].try_into().unwrap());
    *off += 8;
    v
}
fn get_u32(buf: &[u8], off: &mut usize) -> u32 {
    let v = u32::from_le_bytes(buf[*off..*off + 4].try_into().unwrap());
    *off += 4;
    v
}

fn put_rect(buf: &mut [u8], off: &mut usize, r: &Rect) {
    put_f64(buf, off, r.min.x);
    put_f64(buf, off, r.min.y);
    put_f64(buf, off, r.max.x);
    put_f64(buf, off, r.max.y);
}
fn get_rect(buf: &[u8], off: &mut usize) -> Rect {
    let min_x = get_f64(buf, off);
    let min_y = get_f64(buf, off);
    let max_x = get_f64(buf, off);
    let max_y = get_f64(buf, off);
    Rect::new(Point::new(min_x, min_y), Point::new(max_x, max_y))
}

pub(crate) fn encode_node(node: &Node, page_of: &HashMap<NodeId, u32>) -> [u8; PAGE_SIZE] {
    let mut buf = [0u8; PAGE_SIZE];
    let mut off;
    match &node.kind {
        NodeKind::Leaf(entries) => {
            buf[0] = 0;
            off = 1;
            put_u32(&mut buf, &mut off, node.level);
            put_u32(&mut buf, &mut off, entries.len() as u32);
            put_rect(&mut buf, &mut off, &node.mbr);
            for e in entries {
                put_u32(&mut buf, &mut off, e.id);
                put_f64(&mut buf, &mut off, e.point.x);
                put_f64(&mut buf, &mut off, e.point.y);
            }
        }
        NodeKind::Internal(branches) => {
            buf[0] = 1;
            off = 1;
            put_u32(&mut buf, &mut off, node.level);
            put_u32(&mut buf, &mut off, branches.len() as u32);
            put_rect(&mut buf, &mut off, &node.mbr);
            for b in branches {
                put_u32(&mut buf, &mut off, page_of[&b.child]);
                // Child MBR kept in the parent page, as real R-trees
                // do, so a parent fetch suffices to route queries.
                put_rect(&mut buf, &mut off, &b.mbr);
            }
        }
    }
    debug_assert!(off <= PAGE_SIZE);
    buf
}

/// Decodes a single page into a [`Node`] whose branches reference child
/// **pages** (`NodeId` ≡ page id — the identity a demand-paged tree
/// runs on). Validation is per-page only: tag, level/kind consistency,
/// capacity, and child pointers in `0..n_pages`. Cross-page invariants
/// (acyclicity, level succession, parent-declared MBRs matching child
/// headers) are enforced by the open-time scan in [`crate::disk`].
pub(crate) fn decode_node(buf: &[u8], n_pages: u32) -> Result<Node, PageError> {
    let tag = buf[0];
    let mut off = 1usize;
    let level = get_u32(buf, &mut off);
    let count = get_u32(buf, &mut off);
    let mbr = get_rect(buf, &mut off);
    match tag {
        0 => {
            if level != 0 {
                return Err(PageError::Invalid("leaf page at nonzero level"));
            }
            if count as usize > page_capacity_leaf() {
                return Err(PageError::Overflow(count));
            }
            let mut entries = Vec::with_capacity(count as usize);
            for _ in 0..count {
                let id = get_u32(buf, &mut off);
                let x = get_f64(buf, &mut off);
                let y = get_f64(buf, &mut off);
                entries.push(Entry::new(id, Point::new(x, y)));
            }
            let mut node = Node::new_leaf();
            node.kind = NodeKind::Leaf(entries);
            node.mbr = mbr;
            Ok(node)
        }
        1 => {
            if level == 0 {
                return Err(PageError::Invalid("internal page at level 0"));
            }
            if count == 0 {
                return Err(PageError::Invalid("internal page with no children"));
            }
            if count as usize > page_capacity_internal() {
                return Err(PageError::Overflow(count));
            }
            let mut branches = Vec::with_capacity(count as usize);
            for _ in 0..count {
                let child_page = get_u32(buf, &mut off);
                let child_mbr = get_rect(buf, &mut off);
                if child_page >= n_pages {
                    return Err(PageError::DanglingChild(child_page));
                }
                branches.push(Branch {
                    child: NodeId(child_page),
                    mbr: child_mbr,
                });
            }
            let mut node = Node::new_internal(level);
            node.kind = NodeKind::Internal(branches);
            node.mbr = mbr;
            // Disk nodes are immutable after decode: build the SoA MBR
            // view once here so query-time pruning is one kernel call.
            node.build_branch_soa();
            Ok(node)
        }
        t => Err(PageError::BadTag(t)),
    }
}

/// Decodes a whole page file into a fresh tree, additionally returning
/// the `NodeId`-indexed page map (`page_of[node.index()]` = the page the
/// node was decoded from) that disk-backed trees use to route buffer
/// pool requests.
///
/// The walk is iterative — an explicit stack, one placeholder arena slot
/// allocated per discovered child — so adversarial pointer graphs cannot
/// overflow the call stack, and a `node_of` occupancy map rejects any
/// page reachable through two parents (cycles and DAGs) before the walk
/// would revisit it. Entry totals are recomputed from the leaves rather
/// than trusted from a header.
pub(crate) fn decode_page_file(file: &PageFile) -> Result<(RStarTree, Vec<u32>), PageError> {
    let n_pages = file.pages.len();
    if n_pages == 0 || file.root as usize >= n_pages {
        return Err(PageError::BadRoot);
    }
    let mut tree = RStarTree::with_params(file.params);
    // The constructor's empty root leaf doubles as the placeholder for
    // the root page, so the arena ends up with no dead slots.
    let root_id = tree.root();
    let mut node_of: Vec<Option<NodeId>> = vec![None; n_pages];
    node_of[file.root as usize] = Some(root_id);
    let mut len = 0usize;
    // (page to decode, its pre-allocated arena slot, level the parent
    // says it must have — `None` only for the root).
    let mut stack: Vec<(u32, NodeId, Option<u32>)> = vec![(file.root, root_id, None)];
    while let Some((page_id, nid, expected_level)) = stack.pop() {
        let buf = &file.pages[page_id as usize];
        let tag = buf[0];
        let mut off = 1usize;
        let level = get_u32(buf, &mut off);
        let count = get_u32(buf, &mut off);
        let mbr = get_rect(buf, &mut off);
        if expected_level.is_some_and(|exp| exp != level) {
            return Err(PageError::Invalid("child level is not parent level - 1"));
        }
        match tag {
            0 => {
                if level != 0 {
                    return Err(PageError::Invalid("leaf page at nonzero level"));
                }
                if count as usize > page_capacity_leaf() {
                    return Err(PageError::Overflow(count));
                }
                let mut entries = Vec::with_capacity(count as usize);
                for _ in 0..count {
                    let id = get_u32(buf, &mut off);
                    let x = get_f64(buf, &mut off);
                    let y = get_f64(buf, &mut off);
                    entries.push(Entry::new(id, Point::new(x, y)));
                }
                len += entries.len();
                let mut node = Node::new_leaf();
                node.kind = NodeKind::Leaf(entries);
                node.mbr = mbr;
                *tree.node_mut(nid) = node;
            }
            1 => {
                if level == 0 {
                    return Err(PageError::Invalid("internal page at level 0"));
                }
                if count == 0 {
                    return Err(PageError::Invalid("internal page with no children"));
                }
                if count as usize > page_capacity_internal() {
                    return Err(PageError::Overflow(count));
                }
                let mut branches = Vec::with_capacity(count as usize);
                for _ in 0..count {
                    let child_page = get_u32(buf, &mut off);
                    let child_mbr = get_rect(buf, &mut off);
                    if child_page as usize >= n_pages {
                        return Err(PageError::DanglingChild(child_page));
                    }
                    if node_of[child_page as usize].is_some() {
                        return Err(PageError::Cycle(child_page));
                    }
                    let child_id = tree.alloc(Node::new_leaf());
                    node_of[child_page as usize] = Some(child_id);
                    stack.push((child_page, child_id, Some(level - 1)));
                    branches.push(Branch {
                        child: child_id,
                        mbr: child_mbr,
                    });
                }
                let mut node = Node::new_internal(level);
                node.kind = NodeKind::Internal(branches);
                node.mbr = mbr;
                *tree.node_mut(nid) = node;
            }
            t => return Err(PageError::BadTag(t)),
        }
    }
    // Every child is decoded by now: the MBR each parent declared for a
    // branch must be the child's own header MBR, or routing decisions
    // made from the parent would diverge from the child's contents.
    for node in &tree.nodes {
        if let NodeKind::Internal(branches) = &node.kind {
            for b in branches {
                if tree.nodes[b.child.index()].mbr != b.mbr {
                    return Err(PageError::Invalid("parent-declared child MBR mismatch"));
                }
            }
        }
    }
    tree.len = len;
    let mut page_of = vec![u32::MAX; tree.nodes.len()];
    for (page, nid) in node_of.iter().enumerate() {
        if let Some(nid) = nid {
            page_of[nid.index()] = page as u32;
        }
    }
    Ok((tree, page_of))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::check_invariants;
    use nwc_geom::{pt, rect};

    fn sample_tree(n: usize) -> RStarTree {
        let pts: Vec<Point> = (0..n)
            .map(|i| pt(((i * 31) % 499) as f64, ((i * 57) % 491) as f64))
            .collect();
        RStarTree::bulk_load(&pts)
    }

    #[test]
    fn capacities_admit_paper_fanout() {
        assert!(page_capacity_leaf() >= 50, "{}", page_capacity_leaf());
        assert!(page_capacity_internal() >= 50, "{}", page_capacity_internal());
    }

    #[test]
    fn roundtrip_preserves_queries() {
        let tree = sample_tree(3000);
        let file = tree.to_page_file();
        assert_eq!(file.page_count(), tree.node_count());
        let back = RStarTree::from_page_file(&file).unwrap();
        check_invariants(&back).unwrap();
        assert_eq!(back.len(), tree.len());
        assert_eq!(back.height(), tree.height());
        for wq in [
            rect(0.0, 0.0, 100.0, 100.0),
            rect(250.0, 250.0, 260.0, 300.0),
            rect(-5.0, -5.0, 1000.0, 1000.0),
        ] {
            let mut a: Vec<u32> = tree.window_query(&wq).iter().map(|e| e.id).collect();
            let mut b: Vec<u32> = back.window_query(&wq).iter().map(|e| e.id).collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn roundtrip_single_leaf() {
        let tree = sample_tree(5);
        let back = RStarTree::from_page_file(&tree.to_page_file()).unwrap();
        assert_eq!(back.len(), 5);
        check_invariants(&back).unwrap();
    }

    #[test]
    fn hilbert_curve_is_a_bijective_unit_step_walk() {
        let n = 8u32;
        let mut cells = vec![None; (n * n) as usize];
        for x in 0..n {
            for y in 0..n {
                let d = hilbert_d(n, x, y) as usize;
                assert!(cells[d].is_none(), "index {d} assigned twice");
                cells[d] = Some((x, y));
            }
        }
        for w in cells.windows(2) {
            let (x0, y0) = w[0].unwrap();
            let (x1, y1) = w[1].unwrap();
            assert_eq!(
                x0.abs_diff(x1) + y0.abs_diff(y1),
                1,
                "consecutive curve cells must be grid neighbors"
            );
        }
    }

    #[test]
    fn clustered_layout_roundtrips_and_packs_sibling_leaves() {
        let tree = sample_tree(3000);
        assert!(tree.height() >= 2, "need internal levels to exercise the layout");
        let file = tree.to_page_file_with_layout(PageLayout::Clustered);
        assert_eq!(file.layout(), PageLayout::Clustered);
        assert_eq!(file.page_count(), tree.node_count());
        assert_eq!(file.root_page(), 0, "pre-order assigns the root page 0");

        let back = RStarTree::from_page_file(&file).unwrap();
        check_invariants(&back).unwrap();
        assert_eq!(back.len(), tree.len());
        assert_eq!(back.height(), tree.height());
        for wq in [
            rect(0.0, 0.0, 100.0, 100.0),
            rect(250.0, 250.0, 260.0, 300.0),
        ] {
            let mut a: Vec<u32> = tree.window_query(&wq).iter().map(|e| e.id).collect();
            let mut b: Vec<u32> = back.window_query(&wq).iter().map(|e| e.id).collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b);
        }

        // The layout's promise: a level-1 node's leaves occupy the
        // consecutive page-id range right after their parent.
        let n_pages = file.page_count() as u32;
        let mut level1 = 0;
        for page in 0..n_pages {
            let node = decode_node(file.page(page), n_pages).unwrap();
            if node.level != 1 {
                continue;
            }
            level1 += 1;
            if let NodeKind::Internal(branches) = &node.kind {
                let mut kids: Vec<u32> = branches.iter().map(|b| b.child.index() as u32).collect();
                kids.sort_unstable();
                assert_eq!(kids[0], page + 1, "first leaf follows its parent");
                for w in kids.windows(2) {
                    assert_eq!(w[1], w[0] + 1, "sibling leaves must be contiguous");
                }
            }
        }
        assert!(level1 > 1, "tree too small to check clustering");
    }

    #[test]
    fn bottom_up_layout_is_unchanged_by_the_layout_seam() {
        // `to_page_file()` must keep producing the exact legacy bytes.
        let tree = sample_tree(700);
        let legacy = tree.to_page_file();
        assert_eq!(legacy.layout(), PageLayout::BottomUp);
        let explicit = tree.to_page_file_with_layout(PageLayout::BottomUp);
        assert_eq!(legacy.root_page(), explicit.root_page());
        assert_eq!(legacy.page_count(), explicit.page_count());
        for p in 0..legacy.page_count() as u32 {
            assert_eq!(legacy.page(p)[..], explicit.page(p)[..], "page {p}");
        }
    }

    #[test]
    fn layout_tags_roundtrip_and_reject_the_future() {
        for layout in [PageLayout::BottomUp, PageLayout::Clustered] {
            assert_eq!(PageLayout::from_tag(layout.tag()), Some(layout));
        }
        assert_eq!(PageLayout::from_tag(2), None);
        assert_eq!(PageLayout::from_tag(255), None);
    }

    #[test]
    fn corrupted_tag_detected() {
        let tree = sample_tree(500);
        let mut file = tree.to_page_file();
        file.page_mut(file.root_page())[0] = 7;
        assert_eq!(
            RStarTree::from_page_file(&file).unwrap_err(),
            PageError::BadTag(7)
        );
    }

    #[test]
    fn corrupted_count_detected() {
        let tree = sample_tree(500);
        let mut file = tree.to_page_file();
        let root = file.root_page();
        // Overwrite the entry count with an impossible value.
        file.page_mut(root)[5..9].copy_from_slice(&10_000u32.to_le_bytes());
        assert!(matches!(
            RStarTree::from_page_file(&file).unwrap_err(),
            PageError::Overflow(10_000)
        ));
    }

    #[test]
    fn file_size_accounting() {
        let tree = sample_tree(3000);
        let file = tree.to_page_file();
        assert_eq!(file.bytes(), file.page_count() * PAGE_SIZE);
        // ~3000 points at 50/leaf ⇒ ~62 pages ≈ 254 KB.
        assert!(file.page_count() >= 60 && file.page_count() <= 75);
    }
}
