//! Fixed-size disk-page serialization of the tree.
//!
//! The paper configures its R\*-tree with "the page size set to 4096
//! bytes" and at most 50 entries per node, and measures I/O as page
//! reads. The in-memory arena stands in for the buffer pool during
//! query processing; this module makes the disk layout itself concrete:
//! every node serializes into one fixed [`PAGE_SIZE`]-byte page, and a
//! whole tree round-trips through a [`PageFile`].
//!
//! # Page layout (little-endian)
//!
//! ```text
//! offset  size  field
//! 0       1     tag: 0 = leaf, 1 = internal
//! 1       4     level (u32)
//! 5       4     entry count (u32)
//! 9       32    node MBR (4 × f64: min.x, min.y, max.x, max.y)
//! 41      …     entries
//! ```
//!
//! Leaf entries are 20 bytes (`u32` id + 2 × `f64`); internal entries
//! are 36 bytes (`u32` child page + 4 × `f64` child MBR). 50 internal
//! entries need `41 + 50·36 = 1841 ≤ 4096` bytes, so the paper's fanout
//! fits with room to spare (checked by [`TreeParams`]-aware asserts at
//! write time).

use crate::node::{Branch, Node, NodeKind};
use crate::tree::RStarTree;
use crate::{Entry, NodeId, TreeParams};
use nwc_geom::{Point, Rect};
use std::collections::HashMap;

/// The simulated disk page size (bytes), as in the paper.
pub const PAGE_SIZE: usize = 4096;

// The page codec here and the page store underneath must agree on the
// page size; a drift would corrupt every file.
const _: () = assert!(PAGE_SIZE == nwc_store::PAGE_SIZE);

const HEADER: usize = 1 + 4 + 4 + 32;
const LEAF_ENTRY: usize = 4 + 16;
const INTERNAL_ENTRY: usize = 4 + 32;

/// Maximum entries per page for each node kind at [`PAGE_SIZE`].
pub fn page_capacity_leaf() -> usize {
    (PAGE_SIZE - HEADER) / LEAF_ENTRY
}
/// See [`page_capacity_leaf`].
pub fn page_capacity_internal() -> usize {
    (PAGE_SIZE - HEADER) / INTERNAL_ENTRY
}

/// An error produced while reading a page file.
///
/// Decoding is total: any byte sequence either reconstructs a valid
/// tree or returns one of these variants. In particular a corrupt file
/// can never send the decoder into unbounded recursion or allocation —
/// child pointers forming a cycle (or a DAG: two parents sharing a
/// page) are rejected via [`PageError::Cycle`].
#[derive(Debug, PartialEq, Eq)]
pub enum PageError {
    /// The page tag byte was neither 0 nor 1.
    BadTag(u8),
    /// A child pointer referenced a page beyond the file.
    DanglingChild(u32),
    /// The file is empty or the root page id is out of range.
    BadRoot,
    /// Entry count exceeds what fits in a page.
    Overflow(u32),
    /// A page was referenced as a child more than once: the pointer
    /// graph is not a tree.
    Cycle(u32),
    /// A structural invariant does not hold (level mismatch, leaf at a
    /// nonzero level, childless internal node, …).
    Invalid(&'static str),
}

impl std::fmt::Display for PageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PageError::BadTag(t) => write!(f, "invalid page tag {t}"),
            PageError::DanglingChild(p) => write!(f, "dangling child page {p}"),
            PageError::BadRoot => write!(f, "invalid root page"),
            PageError::Overflow(n) => write!(f, "page entry count {n} exceeds capacity"),
            PageError::Cycle(p) => write!(f, "page {p} referenced by more than one parent"),
            PageError::Invalid(what) => write!(f, "structurally invalid page file: {what}"),
        }
    }
}

impl std::error::Error for PageError {}

/// A serialized tree: fixed-size pages plus the root page id.
pub struct PageFile {
    pages: Vec<[u8; PAGE_SIZE]>,
    root: u32,
    params: TreeParams,
}

impl PageFile {
    /// Wraps raw pages (e.g. read back from a
    /// [`PageStore`](nwc_store::PageStore)) as a decodable page file.
    /// No validation happens here; [`RStarTree::from_page_file`]
    /// rejects corrupt content.
    pub fn from_raw_pages(pages: Vec<[u8; PAGE_SIZE]>, root: u32, params: TreeParams) -> PageFile {
        PageFile { pages, root, params }
    }

    /// Number of pages.
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// Total bytes of the simulated file.
    pub fn bytes(&self) -> usize {
        self.pages.len() * PAGE_SIZE
    }

    /// The root page id.
    pub fn root_page(&self) -> u32 {
        self.root
    }

    /// Raw access to one page (for inspection/corruption tests).
    pub fn page(&self, id: u32) -> &[u8; PAGE_SIZE] {
        &self.pages[id as usize]
    }

    /// Mutable raw access (corruption-injection in tests).
    pub fn page_mut(&mut self, id: u32) -> &mut [u8; PAGE_SIZE] {
        &mut self.pages[id as usize]
    }
}

impl RStarTree {
    /// Serializes the tree into fixed-size pages.
    ///
    /// # Panics
    ///
    /// Panics when the tree's `max_entries` exceeds the page capacity
    /// (the paper's 50 always fits).
    pub fn to_page_file(&self) -> PageFile {
        assert!(
            self.params.max_entries <= page_capacity_leaf().min(page_capacity_internal()),
            "fanout {} does not fit a {PAGE_SIZE}-byte page",
            self.params.max_entries
        );
        let mut pages: Vec<[u8; PAGE_SIZE]> = Vec::with_capacity(self.node_count());
        let mut page_of: HashMap<NodeId, u32> = HashMap::new();
        // Bottom-up: children serialized before parents so parents can
        // embed child page ids. Post-order DFS. Node access goes through
        // `peek_node` (uncharged) so a disk-backed tree can be
        // re-serialized too.
        let mut stack: Vec<(NodeId, bool)> = vec![(self.root(), false)];
        while let Some((id, expanded)) = stack.pop() {
            let node = self.peek_node(id);
            if !expanded {
                stack.push((id, true));
                if let NodeKind::Internal(branches) = &node.kind {
                    for b in branches {
                        stack.push((b.child, false));
                    }
                }
                continue;
            }
            let page_id = pages.len() as u32;
            pages.push(encode_node(&node, &page_of));
            page_of.insert(id, page_id);
        }
        PageFile {
            root: page_of[&self.root()],
            pages,
            params: self.params,
        }
    }

    /// Reconstructs a tree from a page file, rejecting corrupt content
    /// with a typed [`PageError`].
    pub fn from_page_file(file: &PageFile) -> Result<RStarTree, PageError> {
        decode_page_file(file).map(|(tree, _)| tree)
    }
}

fn put_f64(buf: &mut [u8], off: &mut usize, v: f64) {
    buf[*off..*off + 8].copy_from_slice(&v.to_le_bytes());
    *off += 8;
}
fn put_u32(buf: &mut [u8], off: &mut usize, v: u32) {
    buf[*off..*off + 4].copy_from_slice(&v.to_le_bytes());
    *off += 4;
}
fn get_f64(buf: &[u8], off: &mut usize) -> f64 {
    let v = f64::from_le_bytes(buf[*off..*off + 8].try_into().unwrap());
    *off += 8;
    v
}
fn get_u32(buf: &[u8], off: &mut usize) -> u32 {
    let v = u32::from_le_bytes(buf[*off..*off + 4].try_into().unwrap());
    *off += 4;
    v
}

fn put_rect(buf: &mut [u8], off: &mut usize, r: &Rect) {
    put_f64(buf, off, r.min.x);
    put_f64(buf, off, r.min.y);
    put_f64(buf, off, r.max.x);
    put_f64(buf, off, r.max.y);
}
fn get_rect(buf: &[u8], off: &mut usize) -> Rect {
    let min_x = get_f64(buf, off);
    let min_y = get_f64(buf, off);
    let max_x = get_f64(buf, off);
    let max_y = get_f64(buf, off);
    Rect::new(Point::new(min_x, min_y), Point::new(max_x, max_y))
}

fn encode_node(node: &Node, page_of: &HashMap<NodeId, u32>) -> [u8; PAGE_SIZE] {
    let mut buf = [0u8; PAGE_SIZE];
    let mut off;
    match &node.kind {
        NodeKind::Leaf(entries) => {
            buf[0] = 0;
            off = 1;
            put_u32(&mut buf, &mut off, node.level);
            put_u32(&mut buf, &mut off, entries.len() as u32);
            put_rect(&mut buf, &mut off, &node.mbr);
            for e in entries {
                put_u32(&mut buf, &mut off, e.id);
                put_f64(&mut buf, &mut off, e.point.x);
                put_f64(&mut buf, &mut off, e.point.y);
            }
        }
        NodeKind::Internal(branches) => {
            buf[0] = 1;
            off = 1;
            put_u32(&mut buf, &mut off, node.level);
            put_u32(&mut buf, &mut off, branches.len() as u32);
            put_rect(&mut buf, &mut off, &node.mbr);
            for b in branches {
                put_u32(&mut buf, &mut off, page_of[&b.child]);
                // Child MBR kept in the parent page, as real R-trees
                // do, so a parent fetch suffices to route queries.
                put_rect(&mut buf, &mut off, &b.mbr);
            }
        }
    }
    debug_assert!(off <= PAGE_SIZE);
    buf
}

/// Decodes a single page into a [`Node`] whose branches reference child
/// **pages** (`NodeId` ≡ page id — the identity a demand-paged tree
/// runs on). Validation is per-page only: tag, level/kind consistency,
/// capacity, and child pointers in `0..n_pages`. Cross-page invariants
/// (acyclicity, level succession, parent-declared MBRs matching child
/// headers) are enforced by the open-time scan in [`crate::disk`].
pub(crate) fn decode_node(buf: &[u8], n_pages: u32) -> Result<Node, PageError> {
    let tag = buf[0];
    let mut off = 1usize;
    let level = get_u32(buf, &mut off);
    let count = get_u32(buf, &mut off);
    let mbr = get_rect(buf, &mut off);
    match tag {
        0 => {
            if level != 0 {
                return Err(PageError::Invalid("leaf page at nonzero level"));
            }
            if count as usize > page_capacity_leaf() {
                return Err(PageError::Overflow(count));
            }
            let mut entries = Vec::with_capacity(count as usize);
            for _ in 0..count {
                let id = get_u32(buf, &mut off);
                let x = get_f64(buf, &mut off);
                let y = get_f64(buf, &mut off);
                entries.push(Entry::new(id, Point::new(x, y)));
            }
            let mut node = Node::new_leaf();
            node.kind = NodeKind::Leaf(entries);
            node.mbr = mbr;
            Ok(node)
        }
        1 => {
            if level == 0 {
                return Err(PageError::Invalid("internal page at level 0"));
            }
            if count == 0 {
                return Err(PageError::Invalid("internal page with no children"));
            }
            if count as usize > page_capacity_internal() {
                return Err(PageError::Overflow(count));
            }
            let mut branches = Vec::with_capacity(count as usize);
            for _ in 0..count {
                let child_page = get_u32(buf, &mut off);
                let child_mbr = get_rect(buf, &mut off);
                if child_page >= n_pages {
                    return Err(PageError::DanglingChild(child_page));
                }
                branches.push(Branch {
                    child: NodeId(child_page),
                    mbr: child_mbr,
                });
            }
            let mut node = Node::new_internal(level);
            node.kind = NodeKind::Internal(branches);
            node.mbr = mbr;
            Ok(node)
        }
        t => Err(PageError::BadTag(t)),
    }
}

/// Decodes a whole page file into a fresh tree, additionally returning
/// the `NodeId`-indexed page map (`page_of[node.index()]` = the page the
/// node was decoded from) that disk-backed trees use to route buffer
/// pool requests.
///
/// The walk is iterative — an explicit stack, one placeholder arena slot
/// allocated per discovered child — so adversarial pointer graphs cannot
/// overflow the call stack, and a `node_of` occupancy map rejects any
/// page reachable through two parents (cycles and DAGs) before the walk
/// would revisit it. Entry totals are recomputed from the leaves rather
/// than trusted from a header.
pub(crate) fn decode_page_file(file: &PageFile) -> Result<(RStarTree, Vec<u32>), PageError> {
    let n_pages = file.pages.len();
    if n_pages == 0 || file.root as usize >= n_pages {
        return Err(PageError::BadRoot);
    }
    let mut tree = RStarTree::with_params(file.params);
    // The constructor's empty root leaf doubles as the placeholder for
    // the root page, so the arena ends up with no dead slots.
    let root_id = tree.root();
    let mut node_of: Vec<Option<NodeId>> = vec![None; n_pages];
    node_of[file.root as usize] = Some(root_id);
    let mut len = 0usize;
    // (page to decode, its pre-allocated arena slot, level the parent
    // says it must have — `None` only for the root).
    let mut stack: Vec<(u32, NodeId, Option<u32>)> = vec![(file.root, root_id, None)];
    while let Some((page_id, nid, expected_level)) = stack.pop() {
        let buf = &file.pages[page_id as usize];
        let tag = buf[0];
        let mut off = 1usize;
        let level = get_u32(buf, &mut off);
        let count = get_u32(buf, &mut off);
        let mbr = get_rect(buf, &mut off);
        if expected_level.is_some_and(|exp| exp != level) {
            return Err(PageError::Invalid("child level is not parent level - 1"));
        }
        match tag {
            0 => {
                if level != 0 {
                    return Err(PageError::Invalid("leaf page at nonzero level"));
                }
                if count as usize > page_capacity_leaf() {
                    return Err(PageError::Overflow(count));
                }
                let mut entries = Vec::with_capacity(count as usize);
                for _ in 0..count {
                    let id = get_u32(buf, &mut off);
                    let x = get_f64(buf, &mut off);
                    let y = get_f64(buf, &mut off);
                    entries.push(Entry::new(id, Point::new(x, y)));
                }
                len += entries.len();
                let mut node = Node::new_leaf();
                node.kind = NodeKind::Leaf(entries);
                node.mbr = mbr;
                *tree.node_mut(nid) = node;
            }
            1 => {
                if level == 0 {
                    return Err(PageError::Invalid("internal page at level 0"));
                }
                if count == 0 {
                    return Err(PageError::Invalid("internal page with no children"));
                }
                if count as usize > page_capacity_internal() {
                    return Err(PageError::Overflow(count));
                }
                let mut branches = Vec::with_capacity(count as usize);
                for _ in 0..count {
                    let child_page = get_u32(buf, &mut off);
                    let child_mbr = get_rect(buf, &mut off);
                    if child_page as usize >= n_pages {
                        return Err(PageError::DanglingChild(child_page));
                    }
                    if node_of[child_page as usize].is_some() {
                        return Err(PageError::Cycle(child_page));
                    }
                    let child_id = tree.alloc(Node::new_leaf());
                    node_of[child_page as usize] = Some(child_id);
                    stack.push((child_page, child_id, Some(level - 1)));
                    branches.push(Branch {
                        child: child_id,
                        mbr: child_mbr,
                    });
                }
                let mut node = Node::new_internal(level);
                node.kind = NodeKind::Internal(branches);
                node.mbr = mbr;
                *tree.node_mut(nid) = node;
            }
            t => return Err(PageError::BadTag(t)),
        }
    }
    // Every child is decoded by now: the MBR each parent declared for a
    // branch must be the child's own header MBR, or routing decisions
    // made from the parent would diverge from the child's contents.
    for node in &tree.nodes {
        if let NodeKind::Internal(branches) = &node.kind {
            for b in branches {
                if tree.nodes[b.child.index()].mbr != b.mbr {
                    return Err(PageError::Invalid("parent-declared child MBR mismatch"));
                }
            }
        }
    }
    tree.len = len;
    let mut page_of = vec![u32::MAX; tree.nodes.len()];
    for (page, nid) in node_of.iter().enumerate() {
        if let Some(nid) = nid {
            page_of[nid.index()] = page as u32;
        }
    }
    Ok((tree, page_of))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::check_invariants;
    use nwc_geom::{pt, rect};

    fn sample_tree(n: usize) -> RStarTree {
        let pts: Vec<Point> = (0..n)
            .map(|i| pt(((i * 31) % 499) as f64, ((i * 57) % 491) as f64))
            .collect();
        RStarTree::bulk_load(&pts)
    }

    #[test]
    fn capacities_admit_paper_fanout() {
        assert!(page_capacity_leaf() >= 50, "{}", page_capacity_leaf());
        assert!(page_capacity_internal() >= 50, "{}", page_capacity_internal());
    }

    #[test]
    fn roundtrip_preserves_queries() {
        let tree = sample_tree(3000);
        let file = tree.to_page_file();
        assert_eq!(file.page_count(), tree.node_count());
        let back = RStarTree::from_page_file(&file).unwrap();
        check_invariants(&back).unwrap();
        assert_eq!(back.len(), tree.len());
        assert_eq!(back.height(), tree.height());
        for wq in [
            rect(0.0, 0.0, 100.0, 100.0),
            rect(250.0, 250.0, 260.0, 300.0),
            rect(-5.0, -5.0, 1000.0, 1000.0),
        ] {
            let mut a: Vec<u32> = tree.window_query(&wq).iter().map(|e| e.id).collect();
            let mut b: Vec<u32> = back.window_query(&wq).iter().map(|e| e.id).collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn roundtrip_single_leaf() {
        let tree = sample_tree(5);
        let back = RStarTree::from_page_file(&tree.to_page_file()).unwrap();
        assert_eq!(back.len(), 5);
        check_invariants(&back).unwrap();
    }

    #[test]
    fn corrupted_tag_detected() {
        let tree = sample_tree(500);
        let mut file = tree.to_page_file();
        file.page_mut(file.root_page())[0] = 7;
        assert_eq!(
            RStarTree::from_page_file(&file).unwrap_err(),
            PageError::BadTag(7)
        );
    }

    #[test]
    fn corrupted_count_detected() {
        let tree = sample_tree(500);
        let mut file = tree.to_page_file();
        let root = file.root_page();
        // Overwrite the entry count with an impossible value.
        file.page_mut(root)[5..9].copy_from_slice(&10_000u32.to_le_bytes());
        assert!(matches!(
            RStarTree::from_page_file(&file).unwrap_err(),
            PageError::Overflow(10_000)
        ));
    }

    #[test]
    fn file_size_accounting() {
        let tree = sample_tree(3000);
        let file = tree.to_page_file();
        assert_eq!(file.bytes(), file.page_count() * PAGE_SIZE);
        // ~3000 points at 50/leaf ⇒ ~62 pages ≈ 254 KB.
        assert!(file.page_count() >= 60 && file.page_count() <= 75);
    }
}
