//! Fixed-size disk-page serialization of the tree.
//!
//! The paper configures its R\*-tree with "the page size set to 4096
//! bytes" and at most 50 entries per node, and measures I/O as page
//! reads. The in-memory arena stands in for the buffer pool during
//! query processing; this module makes the disk layout itself concrete:
//! every node serializes into one fixed [`PAGE_SIZE`]-byte page, and a
//! whole tree round-trips through a [`PageFile`].
//!
//! # Page layout (little-endian)
//!
//! ```text
//! offset  size  field
//! 0       1     tag: 0 = leaf, 1 = internal
//! 1       4     level (u32)
//! 5       4     entry count (u32)
//! 9       32    node MBR (4 × f64: min.x, min.y, max.x, max.y)
//! 41      …     entries
//! ```
//!
//! Leaf entries are 20 bytes (`u32` id + 2 × `f64`); internal entries
//! are 36 bytes (`u32` child page + 4 × `f64` child MBR). 50 internal
//! entries need `41 + 50·36 = 1841 ≤ 4096` bytes, so the paper's fanout
//! fits with room to spare (checked by [`TreeParams`]-aware asserts at
//! write time).

use crate::node::{Node, NodeKind};
use crate::tree::RStarTree;
use crate::{Entry, NodeId, TreeParams};
use nwc_geom::{Point, Rect};
use std::collections::HashMap;

/// The simulated disk page size (bytes), as in the paper.
pub const PAGE_SIZE: usize = 4096;

const HEADER: usize = 1 + 4 + 4 + 32;
const LEAF_ENTRY: usize = 4 + 16;
const INTERNAL_ENTRY: usize = 4 + 32;

/// Maximum entries per page for each node kind at [`PAGE_SIZE`].
pub fn page_capacity_leaf() -> usize {
    (PAGE_SIZE - HEADER) / LEAF_ENTRY
}
/// See [`page_capacity_leaf`].
pub fn page_capacity_internal() -> usize {
    (PAGE_SIZE - HEADER) / INTERNAL_ENTRY
}

/// An error produced while reading a page file.
#[derive(Debug, PartialEq, Eq)]
pub enum PageError {
    /// The page tag byte was neither 0 nor 1.
    BadTag(u8),
    /// A child pointer referenced a page beyond the file.
    DanglingChild(u32),
    /// The file is empty or the root page id is out of range.
    BadRoot,
    /// Entry count exceeds what fits in a page.
    Overflow(u32),
}

impl std::fmt::Display for PageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PageError::BadTag(t) => write!(f, "invalid page tag {t}"),
            PageError::DanglingChild(p) => write!(f, "dangling child page {p}"),
            PageError::BadRoot => write!(f, "invalid root page"),
            PageError::Overflow(n) => write!(f, "page entry count {n} exceeds capacity"),
        }
    }
}

impl std::error::Error for PageError {}

/// A serialized tree: fixed-size pages plus the root page id.
pub struct PageFile {
    pages: Vec<[u8; PAGE_SIZE]>,
    root: u32,
    params: TreeParams,
    len: usize,
}

impl PageFile {
    /// Number of pages.
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// Total bytes of the simulated file.
    pub fn bytes(&self) -> usize {
        self.pages.len() * PAGE_SIZE
    }

    /// The root page id.
    pub fn root_page(&self) -> u32 {
        self.root
    }

    /// Raw access to one page (for inspection/corruption tests).
    pub fn page(&self, id: u32) -> &[u8; PAGE_SIZE] {
        &self.pages[id as usize]
    }

    /// Mutable raw access (corruption-injection in tests).
    pub fn page_mut(&mut self, id: u32) -> &mut [u8; PAGE_SIZE] {
        &mut self.pages[id as usize]
    }
}

impl RStarTree {
    /// Serializes the tree into fixed-size pages.
    ///
    /// # Panics
    ///
    /// Panics when the tree's `max_entries` exceeds the page capacity
    /// (the paper's 50 always fits).
    pub fn to_page_file(&self) -> PageFile {
        assert!(
            self.params.max_entries <= page_capacity_leaf().min(page_capacity_internal()),
            "fanout {} does not fit a {PAGE_SIZE}-byte page",
            self.params.max_entries
        );
        let mut pages: Vec<[u8; PAGE_SIZE]> = Vec::with_capacity(self.node_count());
        let mut page_of: HashMap<NodeId, u32> = HashMap::new();
        // Bottom-up: children serialized before parents so parents can
        // embed child page ids. Post-order DFS.
        let mut stack: Vec<(NodeId, bool)> = vec![(self.root(), false)];
        while let Some((id, expanded)) = stack.pop() {
            let node = self.node(id);
            if !expanded {
                stack.push((id, true));
                if let NodeKind::Internal(children) = &node.kind {
                    for &c in children {
                        stack.push((c, false));
                    }
                }
                continue;
            }
            let page_id = pages.len() as u32;
            pages.push(self.encode_node(node, &page_of));
            page_of.insert(id, page_id);
        }
        PageFile {
            root: page_of[&self.root()],
            pages,
            params: self.params,
            len: self.len(),
        }
    }

    /// Reconstructs a tree from a page file.
    pub fn from_page_file(file: &PageFile) -> Result<RStarTree, PageError> {
        if file.pages.is_empty() || file.root as usize >= file.pages.len() {
            return Err(PageError::BadRoot);
        }
        let mut tree = RStarTree::with_params(file.params);
        let old_root = tree.root();
        let root = decode_into(&mut tree, file, file.root)?;
        tree.root = root;
        tree.dealloc(old_root);
        tree.len = file.len;
        Ok(tree)
    }
}

fn put_f64(buf: &mut [u8], off: &mut usize, v: f64) {
    buf[*off..*off + 8].copy_from_slice(&v.to_le_bytes());
    *off += 8;
}
fn put_u32(buf: &mut [u8], off: &mut usize, v: u32) {
    buf[*off..*off + 4].copy_from_slice(&v.to_le_bytes());
    *off += 4;
}
fn get_f64(buf: &[u8], off: &mut usize) -> f64 {
    let v = f64::from_le_bytes(buf[*off..*off + 8].try_into().unwrap());
    *off += 8;
    v
}
fn get_u32(buf: &[u8], off: &mut usize) -> u32 {
    let v = u32::from_le_bytes(buf[*off..*off + 4].try_into().unwrap());
    *off += 4;
    v
}

fn put_rect(buf: &mut [u8], off: &mut usize, r: &Rect) {
    put_f64(buf, off, r.min.x);
    put_f64(buf, off, r.min.y);
    put_f64(buf, off, r.max.x);
    put_f64(buf, off, r.max.y);
}
fn get_rect(buf: &[u8], off: &mut usize) -> Rect {
    let min_x = get_f64(buf, off);
    let min_y = get_f64(buf, off);
    let max_x = get_f64(buf, off);
    let max_y = get_f64(buf, off);
    Rect::new(Point::new(min_x, min_y), Point::new(max_x, max_y))
}

impl RStarTree {
    fn encode_node(&self, node: &Node, page_of: &HashMap<NodeId, u32>) -> [u8; PAGE_SIZE] {
        let mut buf = [0u8; PAGE_SIZE];
        let mut off;
        match &node.kind {
            NodeKind::Leaf(entries) => {
                buf[0] = 0;
                off = 1;
                put_u32(&mut buf, &mut off, node.level);
                put_u32(&mut buf, &mut off, entries.len() as u32);
                put_rect(&mut buf, &mut off, &node.mbr);
                for e in entries {
                    put_u32(&mut buf, &mut off, e.id);
                    put_f64(&mut buf, &mut off, e.point.x);
                    put_f64(&mut buf, &mut off, e.point.y);
                }
            }
            NodeKind::Internal(children) => {
                buf[0] = 1;
                off = 1;
                put_u32(&mut buf, &mut off, node.level);
                put_u32(&mut buf, &mut off, children.len() as u32);
                put_rect(&mut buf, &mut off, &node.mbr);
                for &c in children {
                    put_u32(&mut buf, &mut off, page_of[&c]);
                    // Child MBR kept in the parent page, as real R-trees
                    // do, so a parent fetch suffices to route queries.
                    put_rect(&mut buf, &mut off, &self.node(c).mbr);
                }
            }
        }
        debug_assert!(off <= PAGE_SIZE);
        buf
    }
}

/// Recursively decodes the subtree rooted at `page_id` into `tree`,
/// returning the new arena node id.
fn decode_into(tree: &mut RStarTree, file: &PageFile, page_id: u32) -> Result<NodeId, PageError> {
    let buf = &file.pages[page_id as usize];
    let tag = buf[0];
    let mut off = 1usize;
    let level = get_u32(buf, &mut off);
    let count = get_u32(buf, &mut off);
    let mbr = get_rect(buf, &mut off);
    match tag {
        0 => {
            if count as usize > page_capacity_leaf() {
                return Err(PageError::Overflow(count));
            }
            let mut entries = Vec::with_capacity(count as usize);
            for _ in 0..count {
                let id = get_u32(buf, &mut off);
                let x = get_f64(buf, &mut off);
                let y = get_f64(buf, &mut off);
                entries.push(Entry::new(id, Point::new(x, y)));
            }
            let mut node = Node::new_leaf();
            node.kind = NodeKind::Leaf(entries);
            node.mbr = mbr;
            node.level = level;
            Ok(tree.alloc(node))
        }
        1 => {
            if count as usize > page_capacity_internal() {
                return Err(PageError::Overflow(count));
            }
            let mut children = Vec::with_capacity(count as usize);
            for _ in 0..count {
                let child_page = get_u32(buf, &mut off);
                let child_mbr = get_rect(buf, &mut off);
                if child_page as usize >= file.pages.len() {
                    return Err(PageError::DanglingChild(child_page));
                }
                let child = decode_into(tree, file, child_page)?;
                debug_assert_eq!(
                    tree.node(child).mbr, child_mbr,
                    "parent-held child MBR out of sync with child page"
                );
                children.push(child);
            }
            let mut node = Node::new_internal(level);
            node.kind = NodeKind::Internal(children);
            node.mbr = mbr;
            Ok(tree.alloc(node))
        }
        t => Err(PageError::BadTag(t)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::check_invariants;
    use nwc_geom::{pt, rect};

    fn sample_tree(n: usize) -> RStarTree {
        let pts: Vec<Point> = (0..n)
            .map(|i| pt(((i * 31) % 499) as f64, ((i * 57) % 491) as f64))
            .collect();
        RStarTree::bulk_load(&pts)
    }

    #[test]
    fn capacities_admit_paper_fanout() {
        assert!(page_capacity_leaf() >= 50, "{}", page_capacity_leaf());
        assert!(page_capacity_internal() >= 50, "{}", page_capacity_internal());
    }

    #[test]
    fn roundtrip_preserves_queries() {
        let tree = sample_tree(3000);
        let file = tree.to_page_file();
        assert_eq!(file.page_count(), tree.node_count());
        let back = RStarTree::from_page_file(&file).unwrap();
        check_invariants(&back).unwrap();
        assert_eq!(back.len(), tree.len());
        assert_eq!(back.height(), tree.height());
        for wq in [
            rect(0.0, 0.0, 100.0, 100.0),
            rect(250.0, 250.0, 260.0, 300.0),
            rect(-5.0, -5.0, 1000.0, 1000.0),
        ] {
            let mut a: Vec<u32> = tree.window_query(&wq).iter().map(|e| e.id).collect();
            let mut b: Vec<u32> = back.window_query(&wq).iter().map(|e| e.id).collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn roundtrip_single_leaf() {
        let tree = sample_tree(5);
        let back = RStarTree::from_page_file(&tree.to_page_file()).unwrap();
        assert_eq!(back.len(), 5);
        check_invariants(&back).unwrap();
    }

    #[test]
    fn corrupted_tag_detected() {
        let tree = sample_tree(500);
        let mut file = tree.to_page_file();
        file.page_mut(file.root_page())[0] = 7;
        assert_eq!(
            RStarTree::from_page_file(&file).unwrap_err(),
            PageError::BadTag(7)
        );
    }

    #[test]
    fn corrupted_count_detected() {
        let tree = sample_tree(500);
        let mut file = tree.to_page_file();
        let root = file.root_page();
        // Overwrite the entry count with an impossible value.
        file.page_mut(root)[5..9].copy_from_slice(&10_000u32.to_le_bytes());
        assert!(matches!(
            RStarTree::from_page_file(&file).unwrap_err(),
            PageError::Overflow(10_000)
        ));
    }

    #[test]
    fn file_size_accounting() {
        let tree = sample_tree(3000);
        let file = tree.to_page_file();
        assert_eq!(file.bytes(), file.page_count() * PAGE_SIZE);
        // ~3000 points at 50/leaf ⇒ ~62 pages ≈ 254 KB.
        assert!(file.page_count() >= 60 && file.page_count() <= 75);
    }
}
