//! Arena-allocated tree nodes.

use crate::Entry;
use nwc_geom::{MbrSoa, Point, Rect};

/// Index of a node in the tree's arena. Stable across queries; recycled
/// by mutations through a free list.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    #[inline]
    pub(crate) fn index(self) -> usize {
        self.0 as usize
    }

    /// The raw identifier: on a disk-backed tree this is the page id
    /// backing the node (usable with a page store's fault-injection
    /// hooks); on an arena tree, the arena slot index.
    #[inline]
    pub fn raw(self) -> u32 {
        self.0
    }
}

/// One routing entry of an internal node: the child id plus the child's
/// MBR, exactly as a real R-tree page stores them. Keeping the MBR in
/// the parent means query descent can prune children without touching
/// (or charging) the child node itself — and on a disk-backed tree,
/// without faulting the child's page in at all.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Branch {
    pub child: NodeId,
    pub mbr: Rect,
}

/// The children of a node: leaf entries or child branches.
#[derive(Clone, Debug)]
pub(crate) enum NodeKind {
    /// Level-0 node holding point entries.
    Leaf(Vec<Entry>),
    /// Internal node holding child branches (children live one level
    /// below this node).
    Internal(Vec<Branch>),
}

/// A tree node. `level` is 0 for leaves and increases toward the root, so
/// every leaf sits at the same level by construction (the R-tree
/// balance invariant).
#[derive(Clone, Debug)]
pub(crate) struct Node {
    pub level: u32,
    pub mbr: Rect,
    pub kind: NodeKind,
    /// Structure-of-arrays view of the branch MBRs, built once at page
    /// decode time so per-node pruning runs as one batched kernel call.
    /// `None` on arena nodes (which mutate) and on leaves; disk-backed
    /// nodes are immutable after decode, so the view can never go stale.
    pub soa: Option<MbrSoa>,
}

/// Statically-dead arm filler for the mutable kind accessors: both
/// normalize `kind` immediately before matching, so this can never run.
/// It exists only because the borrow checker cannot prove the match
/// total after the normalization; abort (not unwind) keeps the file's
/// no-panic guarantee literal.
#[cold]
fn kind_mismatch() -> ! {
    std::process::abort()
}

impl Node {
    pub fn new_leaf() -> Self {
        Node {
            level: 0,
            mbr: Rect::from_point(Point::ORIGIN),
            kind: NodeKind::Leaf(Vec::new()),
            soa: None,
        }
    }

    pub fn new_internal(level: u32) -> Self {
        Node {
            level,
            mbr: Rect::from_point(Point::ORIGIN),
            kind: NodeKind::Internal(Vec::new()),
            soa: None,
        }
    }

    /// Builds the structure-of-arrays MBR view for an internal node.
    /// Called exactly once, by the page decoder, after the branch list
    /// is final.
    pub fn build_branch_soa(&mut self) {
        if let NodeKind::Internal(branches) = &self.kind {
            let mut soa = MbrSoa::with_capacity(branches.len());
            for b in branches {
                soa.push(&b.mbr);
            }
            self.soa = Some(soa);
        }
    }

    #[allow(dead_code)] // node API symmetry; exercised indirectly
    #[inline]
    pub fn is_leaf(&self) -> bool {
        self.level == 0
    }

    /// Number of direct children (entries or child nodes).
    #[inline]
    pub fn len(&self) -> usize {
        match &self.kind {
            NodeKind::Leaf(e) => e.len(),
            NodeKind::Internal(c) => c.len(),
        }
    }

    // The four kind accessors below are unreachable-by-construction on
    // the wrong kind: every caller dispatches on `level` (0 = leaf)
    // first, and `level`/`kind` are set together at construction and
    // decode. A mismatch is still asserted in debug builds; release
    // builds degrade — empty slice for the shared accessors, kind
    // normalization for the mutable ones — instead of aborting a
    // query-reachable path over decoded disk nodes.

    #[allow(dead_code)] // node API symmetry; exercised indirectly
    #[inline]
    pub fn entries(&self) -> &[Entry] {
        debug_assert!(matches!(self.kind, NodeKind::Leaf(_)), "entries() on internal node");
        match &self.kind {
            NodeKind::Leaf(e) => e,
            NodeKind::Internal(_) => &[],
        }
    }

    #[inline]
    pub fn entries_mut(&mut self) -> &mut Vec<Entry> {
        debug_assert!(
            matches!(self.kind, NodeKind::Leaf(_)),
            "entries_mut() on internal node"
        );
        if !matches!(self.kind, NodeKind::Leaf(_)) {
            self.kind = NodeKind::Leaf(Vec::new());
        }
        match &mut self.kind {
            NodeKind::Leaf(e) => e,
            NodeKind::Internal(_) => kind_mismatch(),
        }
    }

    #[inline]
    pub fn branches(&self) -> &[Branch] {
        debug_assert!(
            matches!(self.kind, NodeKind::Internal(_)),
            "branches() on leaf node"
        );
        match &self.kind {
            NodeKind::Internal(b) => b,
            NodeKind::Leaf(_) => &[],
        }
    }

    #[inline]
    pub fn branches_mut(&mut self) -> &mut Vec<Branch> {
        debug_assert!(
            matches!(self.kind, NodeKind::Internal(_)),
            "branches_mut() on leaf node"
        );
        // Mutation would desynchronize the SoA view; drop it. Arena
        // nodes never have one, and the write path rebuilds a dirty
        // disk node's view before the next query sees it.
        self.soa = None;
        if !matches!(self.kind, NodeKind::Internal(_)) {
            self.kind = NodeKind::Internal(Vec::new());
        }
        match &mut self.kind {
            NodeKind::Internal(b) => b,
            NodeKind::Leaf(_) => kind_mismatch(),
        }
    }
}
