//! Disk-backed storage mode: a [`PageStore`] + [`BufferPool`] under the
//! tree.
//!
//! [`RStarTree::save_to_path`] serializes a tree into an on-disk page
//! file ([`nwc_store::FileStore`] format: magic/version header,
//! per-page CRC-32 checksums). [`RStarTree::open_from_path`] opens such
//! a file and returns a tree whose node accesses run through a buffer
//! pool:
//!
//! - a **pool miss** performs a real, checksum-verified page read from
//!   the store and is charged to [`IoStats::node_reads`] — physical I/O;
//! - a **pool hit** costs no I/O and is charged to
//!   [`IoStats::buffer_hits`].
//!
//! Both count as one *logical* node access, so per-query I/O
//! attribution (`snapshot`/`since` diffs) — and therefore every
//! algorithm's "nodes visited" figure — is identical to the in-memory
//! arena's. With an unbounded pool the physical + hit split is the only
//! observable difference.
//!
//! # Residency model: demand paging
//!
//! The arena of a disk-backed tree is **empty**. Node ids are page ids
//! (the identity map), and a node access faults its page in through the
//! buffer pool and decodes the node *on the fault*:
//!
//! - a pool **hit** reuses the already-decoded node from the
//!   [`NodeCache`] (one decoded node per resident page, invariantly);
//! - a pool **miss** reads + decodes, caching both page and node;
//! - **eviction** drops the page *and* its decoded node in the same
//!   critical section (the pool's evict hook runs under the pool lock),
//!   so `pool capacity × (page + decoded node)` truly bounds resident
//!   memory. [`TreeStorage::peak_resident_nodes`] reports the high-water
//!   mark.
//!
//! ## Pin protocol
//!
//! Query descent holds a parent's node while visiting its children
//! (recursion, browser frontier expansion). Each charged node access
//! therefore returns a guard ([`PagedNode`]) that **pins** the page
//! until dropped; the decoded node is additionally kept alive by an
//! `Arc`, so even a page dropped by [`BufferPool::clear`] cannot
//! invalidate a live reference. When every frame is pinned (possible
//! only when the pool capacity is below the tree height), the access
//! falls back to an uncached scratch read: the node is decoded, used,
//! and dropped — counted as *transient* residency in the peak gauge,
//! never cached.
//!
//! Uncharged bookkeeping reads (validation, entry iteration,
//! re-serialization, IWP builds) bypass the pool entirely: they reuse a
//! cached node when one is resident and otherwise decode from an
//! **uncounted** store read, leaving every pool and I/O counter
//! untouched.
//!
//! ## Error policy after open
//!
//! The open-time scan is the integrity gate: it reads and
//! checksum-verifies every page and validates the whole tree structure.
//! After a successful open, a failed page read (device error, file
//! truncated behind our back) is handled by the configured
//! [`RetryPolicy`] ([`DiskOptions::retry`]): the read is re-attempted
//! with bounded, deterministically-jittered backoff, and every failed
//! attempt is counted in [`TreeStorage::io_errors`]. A read that
//! eventually succeeds records its failures as *transient*
//! ([`IoStats::transient_errors`], with the re-attempts in
//! [`IoStats::retries`]); failed attempts are **not** charged as node
//! accesses, so a query's logical I/O stays bit-identical to a
//! fault-free run. A read that exhausts its budget — or bytes that pass
//! their checksum but no longer decode (corruption, never retried) —
//! **quarantines** the page (id + last error, see
//! [`TreeStorage::quarantine`]) and surfaces as a typed
//! [`DiskReadError`] through the fallible `try_*` query APIs; later
//! accesses to a quarantined page fail fast without touching the
//! device. Nothing on this path panics: error returns release their
//! pins as the guards unwind, so the pool and node cache stay exact and
//! concurrent queries continue unharmed. The legacy infallible query
//! APIs funnel any surviving [`DiskReadError`] through one crate-level
//! adapter that panics — code that must keep serving under faults uses
//! the `try_*` variants instead.
//!
//! # Writable mode: dirty-node overlay + shadow paging
//!
//! A tree opened over a *writable* store (a version-2 page file opened
//! with write permission, or [`nwc_store::MemStore::new_writable`])
//! supports [`RStarTree::insert`] and [`RStarTree::delete`] through a
//! **dirty-node overlay** in [`TreeStorage`]:
//!
//! - the first mutation touching a node *faults* it into the overlay
//!   (an `Arc<Node>` clone-on-write of the decoded page — resident
//!   decodes are reused, nothing is copied until actually mutated);
//! - every read — charged fetch or bookkeeping peek — checks the
//!   overlay **first**, so uncommitted mutations are immediately
//!   visible to queries on the same tree, exactly like the arena;
//! - fresh nodes (splits, root growth) get temporary ids counted down
//!   from `u32::MAX`, which can never collide with committed page ids;
//! - [`RStarTree::commit`] writes each dirty node to a **shadow page**
//!   (a page id unreachable from the committed root, recycled from the
//!   free list or grown at the file tail), then atomically flips the
//!   store's header root. A crash at any point leaves the previous
//!   committed tree intact — see `nwc_store`'s dual-slot header format.
//!   After the flip, the pages the dirty nodes used to live on become
//!   free, their stale buffer-pool frames and cached decodes are
//!   evicted, and any page quarantine is dropped (the flip may recycle
//!   quarantined ids).
//!
//! Uncommitted mutations are **lost** on drop or crash: reopening the
//! file yields the last committed tree. A mutation that fails mid-way
//! with [`TreeError::Io`](crate::TreeError) may leave the overlay
//! logically inconsistent — discard the tree (reopen) rather than
//! commit after such an error.
//!
//! Trees over read-only stores (any version-1 file, or a v2 file
//! without write permission) still return
//! [`TreeError`](crate::TreeError)`::ReadOnly` from `insert`/`delete`
//! rather than silently diverge from the file.

use crate::node::{Node, NodeKind};
use crate::page::{decode_node, encode_node, PageLayout};
use crate::tree::{RStarTree, TreeError};
use crate::{IoStats, NodeId, PageError, TreeParams, PAGE_SIZE};
use nwc_geom::{Point, Rect};
use nwc_store::{
    Access, BufferPool, FileStore, InflightTable, IoExecutor, PageStore, PoolStats, RetryPolicy,
    StoreError,
};
use std::collections::HashMap;
use std::path::Path;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// An error produced while saving or opening a disk-backed tree.
#[derive(Debug)]
pub enum DiskError {
    /// The page store rejected the file (I/O failure, bad magic or
    /// version, checksum mismatch, truncation, …).
    Store(StoreError),
    /// The pages were readable but do not decode into a valid tree.
    Page(PageError),
    /// The file header carries tree parameters this build rejects.
    BadParams(&'static str),
}

impl std::fmt::Display for DiskError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DiskError::Store(e) => write!(f, "page store error: {e}"),
            DiskError::Page(e) => write!(f, "page decode error: {e}"),
            DiskError::BadParams(what) => write!(f, "invalid tree parameters in header: {what}"),
        }
    }
}

impl std::error::Error for DiskError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DiskError::Store(e) => Some(e),
            DiskError::Page(e) => Some(e),
            DiskError::BadParams(_) => None,
        }
    }
}

impl From<StoreError> for DiskError {
    fn from(e: StoreError) -> Self {
        DiskError::Store(e)
    }
}

impl From<PageError> for DiskError {
    fn from(e: PageError) -> Self {
        DiskError::Page(e)
    }
}

/// A page read that failed *after* a successful open: the retry budget
/// was exhausted, the page is corrupt, or it was already quarantined by
/// an earlier failure.
///
/// Carries the page id and a rendered description of the last
/// underlying error (a `String` rather than the source error, so the
/// type stays `Clone + Eq` and can ride inside query errors that batch
/// engines collect and compare). Surfaced by the tree's fallible
/// `try_*` query APIs via [`TreeError::Io`](crate::TreeError).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DiskReadError {
    /// The page (= node id) that could not be read.
    pub page: u32,
    /// Human-readable description of the last failure.
    pub detail: String,
}

impl std::fmt::Display for DiskReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "page {}: {}", self.page, self.detail)
    }
}

impl std::error::Error for DiskReadError {}

/// Configuration for opening a disk-backed tree. The `Default` value
/// reproduces `open_from_path(path, None)`: an unbounded single-shard
/// pool with readahead off.
#[derive(Clone, Copy, Debug, Default)]
pub struct DiskOptions {
    /// Buffer pool capacity in pages; `None` = unbounded (every page
    /// misses once, then always hits).
    pub pool_capacity: Option<usize>,
    /// Number of buffer-pool lock stripes; `None` picks automatically
    /// (1 on small pools or single-core hosts, up to 8 otherwise).
    /// Clamped so no shard ends up smaller than a root-to-leaf path.
    pub pool_shards: Option<usize>,
    /// Readahead width: on a query descent into an internal node, up to
    /// this many of its most promising children are read ahead in
    /// batched runs and admitted unpinned. 0 disables readahead.
    /// Prefetch reads never touch the demand I/O counters (see
    /// [`IoStats`]), so logical I/O is unaffected.
    pub prefetch: usize,
    /// Retry budget and backoff shape for post-open page reads (see the
    /// module docs, "Error policy after open"). The default retries
    /// transient failures a few times with capped backoff;
    /// [`RetryPolicy::no_retries`] restores fail-on-first-error.
    pub retry: RetryPolicy,
    /// I/O worker threads for overlapped readahead. 0 (the default)
    /// keeps readahead synchronous on the query thread; ≥ 1 moves every
    /// readahead run onto a completion thread pool so the query keeps
    /// descending while the device is busy (see the module docs,
    /// "Overlapped readahead"). No effect when `prefetch` is 0.
    pub io_threads: usize,
}

/// The automatic shard count: one stripe per core up to 8, but never so
/// many that a shard holds fewer than 16 frames — tiny shards turn the
/// all-frames-pinned fallback from a degenerate case into a common one
/// and break the `peak ≤ capacity` story users size pools by.
fn auto_shards(capacity: usize) -> usize {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let by_capacity = if capacity == usize::MAX { 8 } else { capacity / 16 };
    cores.min(by_capacity).clamp(1, 8)
}

/// What dropping a [`PagedNode`] must release.
enum Release {
    /// A charged access pinned the page: unpin it.
    Unpin,
    /// Scratch fallback (all frames pinned): decrement the transient
    /// residency counter.
    Transient,
    /// Uncharged peek: nothing to release.
    None,
}

/// A guard over one decoded node of a disk-backed tree.
///
/// Keeps the node alive (`Arc`) and — for charged accesses — the
/// backing page pinned in the buffer pool, so a parent's page cannot be
/// evicted mid-descent while children are visited.
pub(crate) struct PagedNode<'t> {
    storage: &'t TreeStorage,
    page: u32,
    node: Arc<Node>,
    release: Release,
}

impl PagedNode<'_> {
    #[inline]
    pub(crate) fn node(&self) -> &Node {
        &self.node
    }

    /// A shared handle to the decoded node, for faulting it into the
    /// write overlay without re-decoding.
    #[inline]
    pub(crate) fn arc(&self) -> Arc<Node> {
        Arc::clone(&self.node)
    }
}

impl Drop for PagedNode<'_> {
    fn drop(&mut self) {
        match self.release {
            Release::Unpin => {
                self.storage.pool.unpin(self.page);
            }
            Release::Transient => {
                self.storage.cache.transient.fetch_sub(1, Ordering::Relaxed);
            }
            Release::None => {}
        }
    }
}

/// The decoded-node side of the demand pager: one `Arc<Node>` per
/// pool-resident page, plus the residency gauges.
///
/// The map is mutated only in lock-step with pool residency: inserts
/// happen inside the pool's `pin_with_page` critical section, removals
/// inside the pool's evict hook (also under the pool lock). Lock order
/// is therefore always pool → cache, and the cache lock alone (peeks)
/// can never deadlock against it.
struct NodeCache {
    map: Mutex<HashMap<u32, Arc<Node>>>,
    /// High-water mark of `map.len() + transient`.
    resident_peak: AtomicUsize,
    /// Live scratch-decoded nodes (all-frames-pinned fallback).
    transient: AtomicUsize,
}

impl NodeCache {
    fn new() -> Self {
        NodeCache {
            map: Mutex::new(HashMap::new()),
            resident_peak: AtomicUsize::new(0),
            transient: AtomicUsize::new(0),
        }
    }

    /// Locks the map, recovering from poisoning (a panic elsewhere
    /// leaves the map consistent: every entry is a finished insert).
    fn lock_map(&self) -> MutexGuard<'_, HashMap<u32, Arc<Node>>> {
        self.map.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn note_peak(&self, resident: usize) {
        self.resident_peak.fetch_max(resident, Ordering::Relaxed);
    }
}

/// Overlapped readahead: the worker pool physical reads run on, plus
/// the in-flight table that dedupes them against each other and against
/// demand faults.
struct OverlappedIo {
    executor: IoExecutor,
    inflight: Arc<InflightTable>,
}

/// Copy-on-write mutation state of a *writable* disk-backed tree: the
/// dirty-node overlay plus the shadow allocator's free lists. `None`
/// when the underlying store is read-only. Mutated only through
/// `&mut RStarTree`, read (overlay-first) by the `&self` fetch/peek
/// paths.
struct WriteState {
    /// Dirty nodes by node id: clone-on-write copies of committed
    /// pages (ids `< n_pages`) and freshly allocated nodes (temp ids
    /// counted down from `u32::MAX`). Checked before the pool and the
    /// store on every read.
    overlay: HashMap<u32, Arc<Node>>,
    /// Next temporary node id, allocated downward so temps can never
    /// collide with committed page ids.
    next_temp: u32,
    /// Page ids unreachable from the *committed* root: writable now.
    free_now: Vec<u32>,
    /// Pages vacated by uncommitted mutations. Still reachable from
    /// the committed root, so they join `free_now` only after the next
    /// successful commit.
    freed_pending: Vec<u32>,
    /// Overlay ids whose SoA pruning view may be stale; rebuilt at the
    /// end of each public mutation.
    soa_dirty: Vec<u32>,
}

impl WriteState {
    fn new(free_now: Vec<u32>) -> Self {
        WriteState {
            overlay: HashMap::new(),
            next_temp: u32::MAX,
            free_now,
            freed_pending: Vec::new(),
            soa_dirty: Vec::new(),
        }
    }
}

/// The storage half of a disk-backed tree: the page store, the buffer
/// pool in front of it, the decoded-node cache evicted in lock-step
/// with the pool, and the root metadata captured by the open scan.
pub struct TreeStorage {
    store: Arc<dyn PageStore>,
    pool: Arc<BufferPool>,
    cache: Arc<NodeCache>,
    n_pages: u32,
    root_level: u32,
    root_mbr: Rect,
    node_count: usize,
    /// Page-id assignment order recorded in the file header.
    layout: PageLayout,
    /// Max pages read ahead per faulting internal node (0 = off).
    prefetch: usize,
    /// Vectored readahead calls issued (each covers ≥ 1 contiguous
    /// pages) — fewer batches per prefetched page means a better
    /// clustered layout. `Arc` so overlapped completions can tally
    /// after the submitting call returned.
    prefetch_batches: Arc<AtomicU64>,
    /// Overlapped-readahead machinery: present iff `io_threads > 0` and
    /// readahead is on. `None` keeps the synchronous PR-4 pipeline.
    io: Option<OverlappedIo>,
    /// Page reads that failed *after* a successful open (device errors,
    /// post-open truncation). Counts every failed attempt, whether or
    /// not a retry later recovered it. Failed attempts are *not*
    /// charged as node accesses — logical I/O stays fault-independent.
    io_errors: AtomicU64,
    /// Retry budget for post-open page reads.
    retry: RetryPolicy,
    /// Pages that exhausted their retry budget or failed to decode,
    /// with the rendered last error. Accesses fail fast here without
    /// touching the device; cleared by [`TreeStorage::reset`] and by a
    /// successful commit (the root flip can recycle quarantined ids).
    quarantine: Mutex<HashMap<u32, String>>,
    /// Copy-on-write mutation state; `Some` iff the store is writable
    /// (see the module docs, "Writable mode").
    write: Option<WriteState>,
}

impl TreeStorage {
    /// Faults one node in for a charged query access: pool hit reuses
    /// the cached decode, miss reads + decodes + caches, and the
    /// returned guard pins the page (see the module docs).
    ///
    /// Read failures follow the configured [`RetryPolicy`]: transient
    /// errors are re-attempted with backoff (counted in
    /// [`IoStats::retries`] / [`IoStats::transient_errors`], never as
    /// node accesses); a read that exhausts its budget — or a page that
    /// passes its checksum but no longer decodes, which is corruption
    /// and never retried — quarantines the page and returns a typed
    /// error with no pin held.
    pub(crate) fn try_fetch(
        &self,
        page: u32,
        stats: &IoStats,
    ) -> Result<PagedNode<'_>, DiskReadError> {
        // Dirty nodes shadow their committed page (and any quarantine
        // entry for it): the overlay is the truth until commit. An
        // overlay hit is a logical access like any other; it is charged
        // as a buffer hit since no physical I/O can back it.
        if let Some(node) = self.overlay_node(page) {
            stats.record_buffer_hit();
            return Ok(PagedNode {
                storage: self,
                page,
                node,
                release: Release::None,
            });
        }
        if let Some(detail) = self.quarantined_detail(page) {
            return Err(DiskReadError { page, detail });
        }
        if let Some(io) = &self.io {
            // An overlapped readahead for this very page may be mid
            // flight: wait for its completion (which admits the bytes
            // into the pool) instead of racing it with a second
            // physical read. The pool access below then classifies the
            // page as a prefetch hit — or, if the run failed, misses
            // and demand-reads it with full retry protection.
            if io.inflight.wait_done(page) {
                stats.record_inflight_hit();
            }
        }
        let attempts = self.retry.attempts();
        let mut failed = 0u64;
        let mut last_error = String::new();
        for attempt in 0..attempts {
            if attempt > 0 {
                stats.record_retry();
                let wait = self.retry.backoff(attempt - 1, u64::from(page));
                if !wait.is_zero() {
                    std::thread::sleep(wait);
                }
            }
            match self.pool.pin_with_page(
                page,
                |buf| self.store.read_page(page, buf),
                |bytes, cached| self.decode_under_lock(page, bytes, cached),
            ) {
                Ok((access, _cached, Ok((node, release)))) => {
                    match access {
                        Access::Hit => stats.record_buffer_hit(),
                        Access::PrefetchHit => {
                            // A logical hit like any other — plus an
                            // attribution tick for the readahead report.
                            stats.record_buffer_hit();
                            stats.record_prefetch_hit();
                        }
                        Access::Miss => stats.record_node_read(),
                    }
                    stats.record_transient_errors(failed);
                    return Ok(PagedNode {
                        storage: self,
                        page,
                        node,
                        release,
                    });
                }
                Ok((_, cached, Err(e))) => {
                    // The bytes passed their checksum but do not decode:
                    // corruption, not transient I/O. Release the pin the
                    // failed access took, quarantine, and refuse further
                    // attempts (retrying a deterministic decode cannot
                    // help).
                    if cached {
                        self.pool.unpin(page);
                    }
                    self.io_errors.fetch_add(1, Ordering::Relaxed);
                    let detail = format!("passed its checksum but does not decode: {e}");
                    self.quarantine_page(page, &detail, stats);
                    return Err(DiskReadError { page, detail });
                }
                Err(e) => {
                    // Physical read failure after open. The pool counted
                    // its miss but released the frame unmapped; no pin is
                    // held and nothing was charged to the stats — failed
                    // attempts are not node accesses.
                    failed += 1;
                    self.io_errors.fetch_add(1, Ordering::Relaxed);
                    last_error = e.to_string();
                }
            }
        }
        let detail = format!("unreadable after {attempts} attempts: {last_error}");
        self.quarantine_page(page, &detail, stats);
        Err(DiskReadError { page, detail })
    }

    /// Runs inside the pool's critical section: classify against the
    /// node cache and decode on first touch, so page residency and node
    /// residency can never diverge.
    fn decode_under_lock(
        &self,
        page: u32,
        bytes: &[u8],
        cached: bool,
    ) -> Result<(Arc<Node>, Release), PageError> {
        if cached {
            let mut map = self.cache.lock_map();
            if let Some(node) = map.get(&page) {
                return Ok((node.clone(), Release::Unpin));
            }
            let node = Arc::new(decode_node(bytes, self.n_pages)?);
            map.insert(page, node.clone());
            let resident = map.len() + self.cache.transient.load(Ordering::Relaxed);
            self.cache.note_peak(resident);
            Ok((node, Release::Unpin))
        } else {
            // All frames pinned: the bytes live in a scratch buffer and
            // the decode is transient — alive only while the guard is.
            let node = Arc::new(decode_node(bytes, self.n_pages)?);
            let transient = self.cache.transient.fetch_add(1, Ordering::Relaxed) + 1;
            let resident = self.cache.lock_map().len() + transient;
            self.cache.note_peak(resident);
            Ok((node, Release::Transient))
        }
    }

    /// Reads a node for bookkeeping (uncharged, unpinned): reuses a
    /// resident decode, otherwise decodes from an uncounted store read
    /// without touching the pool.
    ///
    /// Failures follow the same [`RetryPolicy`] + quarantine discipline
    /// as [`TreeStorage::try_fetch`]: uncharged does not mean
    /// unprotected — a transient blip during validation or IWP builds
    /// is retried, and a dead page surfaces as a typed error, never a
    /// panic. Retries are tallied in `stats` (the error counters sit
    /// outside the logical-access accounting, so the peek stays
    /// uncharged).
    pub(crate) fn try_peek(
        &self,
        page: u32,
        stats: &IoStats,
    ) -> Result<PagedNode<'_>, DiskReadError> {
        if let Some(node) = self.overlay_node(page) {
            return Ok(PagedNode {
                storage: self,
                page,
                node,
                release: Release::None,
            });
        }
        if let Some(node) = self.cache.lock_map().get(&page).cloned() {
            return Ok(PagedNode {
                storage: self,
                page,
                node,
                release: Release::None,
            });
        }
        if let Some(detail) = self.quarantined_detail(page) {
            return Err(DiskReadError { page, detail });
        }
        let attempts = self.retry.attempts();
        let mut failed = 0u64;
        let mut last_error = String::new();
        let mut buf = [0u8; PAGE_SIZE];
        for attempt in 0..attempts {
            if attempt > 0 {
                stats.record_retry();
                let wait = self.retry.backoff(attempt - 1, u64::from(page));
                if !wait.is_zero() {
                    std::thread::sleep(wait);
                }
            }
            match self.store.read_page_uncounted(page, &mut buf) {
                Ok(()) => {
                    let node = match decode_node(&buf, self.n_pages) {
                        Ok(node) => node,
                        Err(e) => {
                            self.io_errors.fetch_add(1, Ordering::Relaxed);
                            let detail =
                                format!("passed its checksum but does not decode: {e}");
                            self.quarantine_page(page, &detail, stats);
                            return Err(DiskReadError { page, detail });
                        }
                    };
                    stats.record_transient_errors(failed);
                    return Ok(PagedNode {
                        storage: self,
                        page,
                        node: Arc::new(node),
                        release: Release::None,
                    });
                }
                Err(e) => {
                    failed += 1;
                    self.io_errors.fetch_add(1, Ordering::Relaxed);
                    last_error = e.to_string();
                }
            }
        }
        let detail = format!("unreadable after {attempts} attempts: {last_error}");
        self.quarantine_page(page, &detail, stats);
        Err(DiskReadError { page, detail })
    }

    /// Locks the quarantine map, recovering from poisoning (entries are
    /// only ever whole inserts).
    fn lock_quarantine(&self) -> MutexGuard<'_, HashMap<u32, String>> {
        self.quarantine.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// The quarantine entry for `page`, if any.
    fn quarantined_detail(&self, page: u32) -> Option<String> {
        self.lock_quarantine().get(&page).cloned()
    }

    /// Quarantines `page` with its last error, counting the page in
    /// [`IoStats::quarantined_pages`] on first entry only.
    fn quarantine_page(&self, page: u32, detail: &str, stats: &IoStats) {
        if self.lock_quarantine().insert(page, detail.to_string()).is_none() {
            stats.record_quarantined();
        }
    }

    /// The quarantined pages (id + last error), sorted by page id.
    /// Empty on a healthy store; cleared by [`TreeStorage::reset`].
    pub fn quarantine(&self) -> Vec<(u32, String)> {
        let mut q: Vec<(u32, String)> =
            self.lock_quarantine().iter().map(|(&p, d)| (p, d.clone())).collect();
        q.sort_unstable_by_key(|&(p, _)| p);
        q
    }

    /// Reads up to [`DiskOptions::prefetch`] of the given candidate
    /// pages ahead of demand and admits them into the pool as unpinned
    /// prefetch frames. `candidates` must be in priority order (most
    /// likely to be visited first); already-resident pages are skipped,
    /// the survivors are coalesced into contiguous runs, and each run is
    /// one vectored, **uncounted** store read — demand `physical_reads`
    /// and the logical hit/miss accounting are untouched (the pages are
    /// tallied in [`IoStats::prefetch_reads`] instead). Readahead is
    /// advisory: a failed run is simply skipped (the demand path will
    /// re-read — counted, checksummed, retried — if the page is ever
    /// actually needed).
    pub(crate) fn prefetch_pages(&self, candidates: &mut Vec<u32>, stats: &Arc<IoStats>) {
        // Cap by half the pool so readahead can never flush the frames
        // the current descent path is actively using.
        let limit = self.prefetch.min(self.pool.capacity() / 2);
        if limit == 0 || candidates.is_empty() {
            return;
        }
        if let Some(w) = &self.write {
            // Overlay-resident nodes are served from memory, and temp
            // ids (>= n_pages) have no backing page at all: neither may
            // reach the device.
            candidates.retain(|&p| p < self.n_pages && !w.overlay.contains_key(&p));
            if candidates.is_empty() {
                return;
            }
        }
        candidates.truncate(limit);
        candidates.retain(|&p| !self.pool.contains(p));
        if candidates.is_empty() {
            return;
        }
        candidates.sort_unstable();
        candidates.dedup();
        if let Some(io) = &self.io {
            // Overlapped path: register the survivors as in flight
            // (dropping any page another thread is already reading),
            // then hand each coalesced run to the executor and return
            // without touching the device. Completions admit the pages
            // unpinned and tally exactly like the synchronous path.
            candidates.retain(|&p| io.inflight.begin(p));
            let mut i = 0;
            while i < candidates.len() {
                let mut j = i + 1;
                while j < candidates.len() && candidates[j] == candidates[j - 1] + 1 {
                    j += 1;
                }
                let run: Vec<u32> = candidates[i..j].to_vec();
                let pool = Arc::clone(&self.pool);
                let stats = Arc::clone(stats);
                let inflight = Arc::clone(&io.inflight);
                let batches = Arc::clone(&self.prefetch_batches);
                io.executor.submit_read_run(
                    Arc::clone(&self.store),
                    run[0],
                    run.len(),
                    Box::new(move |result, elapsed| match result {
                        Ok(bytes) => {
                            stats.record_overlap(elapsed);
                            batches.fetch_add(1, Ordering::Relaxed);
                            for (k, &page) in run.iter().enumerate() {
                                stats.record_prefetch_read();
                                // Admit before clearing the in-flight
                                // entry so a demand fault that waited on
                                // this page finds its bytes resident.
                                pool.admit_prefetched(
                                    page,
                                    &bytes[k * PAGE_SIZE..(k + 1) * PAGE_SIZE],
                                );
                                inflight.complete(page);
                            }
                        }
                        Err(_) => {
                            // Readahead never retries: tally the failed
                            // batch and release the waiters — a demand
                            // fault re-reads counted, checksummed and
                            // retried if the pages are ever needed.
                            stats.record_prefetch_error();
                            for &page in &run {
                                inflight.complete(page);
                            }
                        }
                    }),
                );
                i = j;
            }
            return;
        }
        let mut buf = vec![0u8; candidates.len() * PAGE_SIZE];
        let mut i = 0;
        while i < candidates.len() {
            let mut j = i + 1;
            while j < candidates.len() && candidates[j] == candidates[j - 1] + 1 {
                j += 1;
            }
            let run = &candidates[i..j];
            let bytes = &mut buf[..run.len() * PAGE_SIZE];
            if self.store.read_run_uncounted(run[0], bytes).is_ok() {
                self.prefetch_batches.fetch_add(1, Ordering::Relaxed);
                for (k, &page) in run.iter().enumerate() {
                    stats.record_prefetch_read();
                    self.pool
                        .admit_prefetched(page, &bytes[k * PAGE_SIZE..(k + 1) * PAGE_SIZE]);
                }
            } else {
                // Swallowed by design, but never silently: the failed
                // batch is tallied so a flaky device shows up in the
                // readahead report even though no query failed.
                stats.record_prefetch_error();
            }
            i = j;
        }
    }

    /// The configured readahead width (0 = off).
    pub(crate) fn prefetch_limit(&self) -> usize {
        self.prefetch
    }

    /// I/O worker threads serving overlapped readahead (0 = readahead
    /// is synchronous on the query thread).
    pub fn io_threads(&self) -> usize {
        self.io.as_ref().map_or(0, |io| io.executor.threads())
    }

    /// Blocks until every overlapped readahead submitted so far has
    /// completed (a no-op on the synchronous backend). Benchmarks call
    /// this before reading counters so trailing completions are not
    /// attributed to the next cell.
    pub fn wait_io_idle(&self) {
        if let Some(io) = &self.io {
            io.executor.wait_idle();
        }
    }

    /// The page-id assignment order recorded in the file header.
    pub fn layout(&self) -> PageLayout {
        self.layout
    }

    /// Vectored readahead reads issued since open or the last
    /// [`TreeStorage::reset`]. Divide [`IoStats::prefetch_reads`] by
    /// this for the mean run length — the figure a clustered layout
    /// improves.
    pub fn prefetch_batches(&self) -> u64 {
        self.prefetch_batches.load(Ordering::Relaxed)
    }

    /// Level of the root node (captured at open; leaves are level 0).
    pub(crate) fn root_level(&self) -> u32 {
        self.root_level
    }

    /// MBR of the root node (captured at open).
    pub(crate) fn root_mbr(&self) -> Rect {
        self.root_mbr
    }

    /// Number of pages = nodes in the file (captured at open).
    pub(crate) fn node_count(&self) -> usize {
        self.node_count
    }

    /// Buffer pool counters and occupancy.
    pub fn pool_stats(&self) -> PoolStats {
        self.pool.stats()
    }

    /// High-water mark of simultaneously resident decoded nodes (cached
    /// per pool residency + live transient decodes). With a pool of `C`
    /// frames and `C ≥` tree height this never exceeds `C` — the bound
    /// the demand pager exists to provide.
    pub fn peak_resident_nodes(&self) -> usize {
        self.cache.resident_peak.load(Ordering::Relaxed)
    }

    /// Physical page reads issued to the backing store (page fetches on
    /// pool misses; the open-time scan and bookkeeping reads are
    /// excluded).
    pub fn physical_reads(&self) -> u64 {
        self.store.physical_reads()
    }

    /// Page reads that failed after open (0 on a healthy store).
    pub fn io_errors(&self) -> u64 {
        self.io_errors.load(Ordering::Relaxed)
    }

    /// Drops every buffered page (and with each its decoded node) and
    /// zeroes the pool, store and residency counters: the next access
    /// sequence measures from a cold buffer.
    pub fn reset(&self) {
        // Let in-flight overlapped reads land first, so no completion
        // repopulates the pool or bumps a counter after the zeroing
        // below.
        if let Some(io) = &self.io {
            io.executor.wait_idle();
        }
        self.pool.clear();
        // The evict hook emptied the map page-by-page; the explicit
        // clear keeps the invariant obvious and drops nothing extra.
        self.cache.lock_map().clear();
        self.pool.reset_stats();
        self.store.reset_counters();
        self.io_errors.store(0, Ordering::Relaxed);
        self.prefetch_batches.store(0, Ordering::Relaxed);
        self.cache.resident_peak.store(0, Ordering::Relaxed);
        self.lock_quarantine().clear();
    }

    // ------------------------------------------------------------------
    // Writable mode: dirty-node overlay + shadow commit.
    // ------------------------------------------------------------------

    /// Whether this tree supports the mutation + commit path (the
    /// backing store is writable; see the module docs, "Writable
    /// mode").
    pub fn is_writable(&self) -> bool {
        self.write.is_some()
    }

    /// Dirty nodes awaiting [`RStarTree::commit`] (0 on a clean or
    /// read-only tree).
    pub fn dirty_nodes(&self) -> usize {
        self.write.as_ref().map_or(0, |w| w.overlay.len())
    }

    /// Pages recyclable by the next commit without growing the file.
    pub fn free_pages(&self) -> usize {
        self.write.as_ref().map_or(0, |w| w.free_now.len())
    }

    /// The overlay's copy of a node, if dirty.
    fn overlay_node(&self, page: u32) -> Option<Arc<Node>> {
        self.write.as_ref().and_then(|w| w.overlay.get(&page).cloned())
    }

    /// Whether `page` is dirty (overlay-resident).
    pub(crate) fn overlay_contains(&self, page: u32) -> bool {
        self.write.as_ref().is_some_and(|w| w.overlay.contains_key(&page))
    }

    /// MBR of a dirty node; `None` when the node is clean (its exact
    /// MBR then lives in the parent's branch, kept fresh by every
    /// mutation sync point).
    pub(crate) fn overlay_mbr(&self, page: u32) -> Option<Rect> {
        self.write
            .as_ref()
            .and_then(|w| w.overlay.get(&page).map(|n| n.mbr))
    }

    /// Borrows a dirty node. The mutation layer faults every node it
    /// touches *before* reading it through here; a miss is a bug in
    /// that discipline, funneled through the crate's read-failure
    /// adapter (this file stays panic-free).
    pub(crate) fn overlay_ref(&self, page: u32) -> &Node {
        match self.write.as_ref().and_then(|w| w.overlay.get(&page)) {
            Some(node) => node,
            None => crate::tree::read_failure(format!("node {page} was not faulted for write")),
        }
    }

    /// Mutably borrows a dirty node, cloning on first write while the
    /// decode is still shared with the node cache (clone-on-write).
    pub(crate) fn overlay_mut(&mut self, page: u32) -> &mut Node {
        match self.write.as_mut().and_then(|w| w.overlay.get_mut(&page)) {
            Some(arc) => Arc::make_mut(arc),
            None => crate::tree::read_failure(format!("node {page} was not faulted for write")),
        }
    }

    /// Admits a committed node into the overlay. The `Arc` stays
    /// shared with the node cache until the first real mutation; the
    /// node's committed page is marked for recycling after the next
    /// commit (shadow paging never overwrites it in place).
    pub(crate) fn fault_node(&mut self, page: u32, node: Arc<Node>) {
        if let Some(w) = self.write.as_mut() {
            debug_assert!(!w.overlay.contains_key(&page), "double fault of node {page}");
            w.overlay.insert(page, node);
            w.freed_pending.push(page);
            w.soa_dirty.push(page);
        }
    }

    /// Allocates a fresh dirty node under a temporary id (counted down
    /// from `u32::MAX`; committed page ids can never reach it).
    pub(crate) fn alloc_temp(&mut self, node: Node) -> u32 {
        self.node_count += 1;
        match self.write.as_mut() {
            Some(w) => {
                let id = w.next_temp;
                w.next_temp -= 1;
                w.overlay.insert(id, Arc::new(node));
                w.soa_dirty.push(id);
                id
            }
            None => crate::tree::read_failure("node allocation on a read-only disk tree"),
        }
    }

    /// Releases a node removed from the tree: a temp node vanishes, a
    /// committed page joins the pending free list.
    pub(crate) fn free_node(&mut self, page: u32) {
        self.node_count -= 1;
        let n_pages = self.n_pages;
        if let Some(w) = self.write.as_mut() {
            // A faulted page is already in `freed_pending` (pushed at
            // fault time); a clean page freed wholesale gets added now.
            if w.overlay.remove(&page).is_none() && page < n_pages {
                w.freed_pending.push(page);
            }
        }
    }

    /// Rebuilds the SoA pruning view of every dirty internal node that
    /// lost it to `branches_mut`. Called at the end of each public
    /// mutation so queries between mutations keep the batched-kernel
    /// pruning path.
    pub(crate) fn rebuild_dirty_soa(&mut self) {
        if let Some(w) = self.write.as_mut() {
            while let Some(id) = w.soa_dirty.pop() {
                if let Some(arc) = w.overlay.get_mut(&id) {
                    if matches!(arc.kind, NodeKind::Internal(_)) && arc.soa.is_none() {
                        Arc::make_mut(arc).build_branch_soa();
                    }
                }
            }
        }
    }

    /// Refreshes the cached root metadata after a mutation (the root
    /// id, level, and MBR can all change).
    pub(crate) fn set_root_meta(&mut self, level: u32, mbr: Rect) {
        self.root_level = level;
        self.root_mbr = mbr;
    }

    /// Writes every dirty node to a shadow page, atomically flips the
    /// store's committed root, and reconciles the caches. Returns the
    /// new root page id.
    ///
    /// On error nothing is lost: the committed tree on disk is intact,
    /// the overlay is untouched, and every shadow page written so far
    /// is unreachable from the committed root — the commit can simply
    /// be retried (or the tree discarded).
    pub(crate) fn commit_overlay(
        &mut self,
        root: u32,
        user: [u64; 4],
    ) -> Result<u32, DiskReadError> {
        if self.write.is_none() {
            return Err(DiskReadError {
                page: root,
                detail: "tree is not writable".to_string(),
            });
        }
        if self.write.as_ref().is_some_and(|w| w.overlay.is_empty()) {
            return Ok(root); // clean tree: nothing to flip
        }
        // Assign a shadow page to every dirty node: recycle the free
        // list first, grow the file tail for the shortfall. Both sides
        // sorted, so the assignment is deterministic for a given
        // mutation history.
        let mut ids: Vec<u32> = Vec::new();
        let mut pool: Vec<u32> = Vec::new();
        if let Some(w) = self.write.as_mut() {
            debug_assert!(w.overlay.contains_key(&root), "dirty tree with a clean root");
            ids.extend(w.overlay.keys().copied());
            pool = std::mem::take(&mut w.free_now);
        }
        ids.sort_unstable();
        pool.sort_unstable();
        let shortfall = ids.len().saturating_sub(pool.len());
        if shortfall > 0 {
            match self.store.grow(shortfall as u32) {
                Ok(first) => pool.extend(first..first + shortfall as u32),
                Err(e) => {
                    if let Some(w) = self.write.as_mut() {
                        w.free_now = pool;
                    }
                    return Err(DiskReadError {
                        page: root,
                        detail: format!("growing the file by {shortfall} pages: {e}"),
                    });
                }
            }
        }
        let remap: HashMap<u32, u32> = ids.iter().copied().zip(pool.iter().copied()).collect();
        let mut failed: Option<DiskReadError> = None;
        let mut new_root = root;
        if let Some(w) = self.write.as_ref() {
            // The encoder resolves every child pointer through one map:
            // dirty children to their shadow page, clean children to
            // the page they already live on.
            let mut page_of: HashMap<NodeId, u32> = HashMap::new();
            for node in w.overlay.values() {
                if let NodeKind::Internal(branches) = &node.kind {
                    for b in branches {
                        let dest = remap.get(&b.child.0).copied().unwrap_or(b.child.0);
                        page_of.insert(b.child, dest);
                    }
                }
            }
            for &old in &ids {
                let (Some(node), Some(&dest)) = (w.overlay.get(&old), remap.get(&old)) else {
                    continue;
                };
                let buf = encode_node(node, &page_of);
                if let Err(e) = self.store.write_page(dest, &buf) {
                    failed = Some(DiskReadError {
                        page: dest,
                        detail: format!("shadow page write: {e}"),
                    });
                    break;
                }
            }
            if failed.is_none() {
                new_root = remap.get(&root).copied().unwrap_or(root);
                if let Err(e) = self.store.commit(new_root, user) {
                    failed = Some(DiskReadError {
                        page: new_root,
                        detail: format!("root flip: {e}"),
                    });
                }
            }
        }
        if let Some(err) = failed {
            // Restore the allocator: the grown and already-written
            // shadow pages are unreachable from the committed root, so
            // all of them stay recyclable. The overlay is untouched.
            if let Some(w) = self.write.as_mut() {
                w.free_now = pool;
            }
            return Err(err);
        }
        // The flip is durable; reconcile the in-memory state.
        self.n_pages = self.store.meta().page_count;
        let leftover = pool.split_off(ids.len()); // unused allocations
        let mut freed: Vec<u32> = Vec::new();
        if let Some(w) = self.write.as_mut() {
            freed = std::mem::take(&mut w.freed_pending);
            w.free_now = leftover;
            w.free_now.extend(freed.iter().copied());
            w.overlay.clear();
            w.soa_dirty.clear();
            w.next_temp = u32::MAX;
        }
        // Cache coherence: frames and decodes for the vacated pages
        // describe the pre-commit tree — drop them (the pool's evict
        // hook removes the decoded node in the same critical section).
        // Shadow pages were written behind the pool, so recycled ids
        // must not survive there either.
        for &p in freed.iter().chain(pool.iter()) {
            self.pool.evict_page(p);
        }
        // A durable flip also invalidates the quarantine: vacated ids
        // can come back with fresh content (see ISSUE: recycled ids
        // must not fail fast on a stale entry).
        self.lock_quarantine().clear();
        Ok(new_root)
    }
}

impl RStarTree {
    /// Serializes this tree into an on-disk page file at `path`,
    /// with header + per-page checksums, and syncs it to stable
    /// storage. The replacement is atomic: the pages are staged in a
    /// sibling temp file and renamed over `path` only after a full
    /// sync, so a crash mid-save leaves any previous file intact.
    pub fn save_to_path(&self, path: impl AsRef<Path>) -> Result<(), DiskError> {
        self.save_to_path_with_layout(path, PageLayout::BottomUp)
    }

    /// As [`RStarTree::save_to_path`], assigning page ids according to
    /// `layout` (see [`PageLayout`]). The layout is recorded in the
    /// file header and round-trips through
    /// [`RStarTree::open_from_path`]; files written before the layout
    /// existed decode as [`PageLayout::BottomUp`].
    pub fn save_to_path_with_layout(
        &self,
        path: impl AsRef<Path>,
        layout: PageLayout,
    ) -> Result<(), DiskError> {
        let file = self.to_page_file_with_layout(layout);
        let pages: Vec<[u8; PAGE_SIZE]> =
            (0..file.page_count()).map(|i| *file.page(i as u32)).collect();
        let user = [
            self.params.max_entries as u64,
            self.params.min_entries as u64,
            // The layout tag rides in the top byte of the
            // reinsert-count word: reinsert counts are tiny (a fraction
            // of the fanout), pre-layout files have a zero top byte
            // (= BottomUp), and the format version stays 1.
            self.params.reinsert_count as u64 | ((layout.tag() as u64) << 56),
            self.len() as u64,
        ];
        FileStore::create(path.as_ref(), file.root_page(), user, &pages)?;
        Ok(())
    }

    /// As [`RStarTree::save_to_path`], but writes a *writable* (v2)
    /// page file: dual ping-pong header slots and per-page checksum
    /// trailers, so the file supports in-place mutation through
    /// shadow-paged commits when reopened (see the module docs,
    /// "Writable mode"). On a writable disk-backed tree this also
    /// snapshots any uncommitted overlay state into the new file.
    pub fn save_to_path_writable(&self, path: impl AsRef<Path>) -> Result<(), DiskError> {
        self.save_to_path_writable_with_layout(path, PageLayout::BottomUp)
    }

    /// As [`RStarTree::save_to_path_writable`], assigning page ids
    /// according to `layout` (see [`PageLayout`]).
    pub fn save_to_path_writable_with_layout(
        &self,
        path: impl AsRef<Path>,
        layout: PageLayout,
    ) -> Result<(), DiskError> {
        let file = self.to_page_file_with_layout(layout);
        let pages: Vec<[u8; PAGE_SIZE]> =
            (0..file.page_count()).map(|i| *file.page(i as u32)).collect();
        let user = [
            self.params.max_entries as u64,
            self.params.min_entries as u64,
            self.params.reinsert_count as u64 | ((layout.tag() as u64) << 56),
            self.len() as u64,
        ];
        FileStore::create_writable(path.as_ref(), file.root_page(), user, &pages)?;
        Ok(())
    }

    /// Durably commits every pending mutation of a writable disk-backed
    /// tree: dirty nodes are written to freshly allocated shadow pages,
    /// the committed root flips atomically in the file header, and the
    /// vacated pages become recyclable by the next commit. A crash at
    /// any point leaves the file opening as exactly the old or the new
    /// tree, never a torn mix.
    ///
    /// No-op `Ok` on an arena tree (arena mutations need no commit) and
    /// on a clean tree; [`TreeError::ReadOnly`] on a read-only
    /// disk-backed tree. On `Err(Io)` the on-disk tree and the
    /// in-memory overlay are both intact: the commit can be retried, or
    /// the tree dropped and reopened at the last committed state.
    pub fn commit(&mut self) -> Result<(), TreeError> {
        let root = self.root.0;
        let (max_e, min_e, reinsert, len) = (
            self.params.max_entries as u64,
            self.params.min_entries as u64,
            self.params.reinsert_count as u64,
            self.len as u64,
        );
        match self.storage.as_deref_mut() {
            None => Ok(()),
            Some(s) if !s.is_writable() => Err(TreeError::ReadOnly),
            Some(s) => {
                let user = [max_e, min_e, reinsert | ((s.layout().tag() as u64) << 56), len];
                let new_root = s.commit_overlay(root, user).map_err(TreeError::Io)?;
                self.root = NodeId(new_root);
                Ok(())
            }
        }
    }

    /// Opens a page file written by [`RStarTree::save_to_path`] as a
    /// disk-backed, read-only, demand-paged tree.
    ///
    /// `pool_capacity` bounds the buffer pool in pages — and with it
    /// the resident decoded nodes (see the module docs); `None` means
    /// unbounded (every page misses once, then always hits). The open
    /// itself reads and checksum-verifies every page and validates the
    /// tree structure; those reads are *not* counted — the store and
    /// pool counters start at zero so the first query measures a cold
    /// buffer.
    pub fn open_from_path(
        path: impl AsRef<Path>,
        pool_capacity: Option<usize>,
    ) -> Result<RStarTree, DiskError> {
        RStarTree::open_from_path_with(
            path,
            DiskOptions {
                pool_capacity,
                ..DiskOptions::default()
            },
        )
    }

    /// As [`RStarTree::open_from_path`], with full control over the
    /// buffer pool and readahead (see [`DiskOptions`]).
    pub fn open_from_path_with(
        path: impl AsRef<Path>,
        options: DiskOptions,
    ) -> Result<RStarTree, DiskError> {
        let store = FileStore::open(path.as_ref())?;
        RStarTree::open_from_store_with(Box::new(store), options)
    }

    /// As [`RStarTree::open_from_path`], over any [`PageStore`]
    /// implementation (e.g. a [`nwc_store::MemStore`] in tests).
    pub fn open_from_store(
        store: Box<dyn PageStore>,
        pool_capacity: Option<usize>,
    ) -> Result<RStarTree, DiskError> {
        RStarTree::open_from_store_with(
            store,
            DiskOptions {
                pool_capacity,
                ..DiskOptions::default()
            },
        )
    }

    /// As [`RStarTree::open_from_store`], with full control over the
    /// buffer pool and readahead (see [`DiskOptions`]).
    pub fn open_from_store_with(
        store: Box<dyn PageStore>,
        options: DiskOptions,
    ) -> Result<RStarTree, DiskError> {
        let meta = store.meta();
        let [max_entries, min_entries, packed_reinsert, stored_len] = meta.user;
        let layout = PageLayout::from_tag((packed_reinsert >> 56) as u8)
            .ok_or(DiskError::BadParams("unknown page layout tag"))?;
        let reinsert_count = packed_reinsert & ((1u64 << 56) - 1);
        let params = TreeParams {
            max_entries: usize::try_from(max_entries)
                .map_err(|_| DiskError::BadParams("max_entries overflows usize"))?,
            min_entries: usize::try_from(min_entries)
                .map_err(|_| DiskError::BadParams("min_entries overflows usize"))?,
            reinsert_count: usize::try_from(reinsert_count)
                .map_err(|_| DiskError::BadParams("reinsert_count overflows usize"))?,
        };
        params.check().map_err(DiskError::BadParams)?;

        let n_pages = meta.page_count;
        if n_pages == 0 || meta.root_page >= n_pages {
            return Err(DiskError::Page(PageError::BadRoot));
        }

        // Validation scan: decode every reachable page once (checksummed
        // read), checking the cross-page invariants the per-page decoder
        // cannot — level succession, parent-declared child MBRs matching
        // the child's header, acyclicity — and capturing the root
        // metadata + entry count. Nothing is retained: the tree starts
        // with zero resident nodes.
        let mut seen = vec![false; n_pages as usize];
        let mut buf = [0u8; PAGE_SIZE];
        let mut len = 0usize;
        let mut node_count = 0usize;
        let mut root_level = 0u32;
        let mut root_mbr = Rect::from_point(Point::ORIGIN);
        // (page, what the parent's branch declared: level and MBR).
        let mut stack: Vec<(u32, Option<(u32, Rect)>)> = vec![(meta.root_page, None)];
        while let Some((page, declared)) = stack.pop() {
            if seen[page as usize] {
                return Err(DiskError::Page(PageError::Cycle(page)));
            }
            seen[page as usize] = true;
            store.read_page(page, &mut buf)?;
            let node = decode_node(&buf, n_pages)?;
            match declared {
                Some((level, mbr)) => {
                    if node.level != level {
                        return Err(DiskError::Page(PageError::Invalid(
                            "child level is not parent level - 1",
                        )));
                    }
                    if node.mbr != mbr {
                        return Err(DiskError::Page(PageError::Invalid(
                            "parent-declared child MBR mismatch",
                        )));
                    }
                }
                None => {
                    root_level = node.level;
                    root_mbr = node.mbr;
                }
            }
            node_count += 1;
            match &node.kind {
                NodeKind::Leaf(entries) => len += entries.len(),
                NodeKind::Internal(branches) => {
                    for b in branches {
                        stack.push((b.child.0, Some((node.level - 1, b.mbr))));
                    }
                }
            }
        }
        // On a writable store, unreachable pages are the *free list*:
        // recyclable slack that may hold torn bytes from a crashed
        // shadow commit. They are never read, only overwritten, so they
        // are exempt from the integrity gate. A read-only page file has
        // no legitimate unreachable pages; checksum-verify any
        // stragglers so the open remains the integrity gate for the
        // whole file.
        let writable = store.is_writable();
        if !writable {
            for page in 0..n_pages {
                if !seen[page as usize] {
                    store.read_page(page, &mut buf)?;
                }
            }
        }
        if stored_len != len as u64 {
            return Err(DiskError::Page(PageError::Invalid(
                "stored object count does not match leaf entries",
            )));
        }
        // The open scan is setup cost, not query I/O.
        store.reset_counters();

        let mut tree = RStarTree::with_params(params);
        tree.nodes.clear();
        tree.free.clear();
        tree.root = NodeId(meta.root_page);
        tree.len = len;
        let capacity = options.pool_capacity.unwrap_or(usize::MAX);
        let shards = options.pool_shards.unwrap_or_else(|| auto_shards(capacity));
        let pool = BufferPool::with_shards(capacity, shards.max(1));
        let cache = Arc::new(NodeCache::new());
        let hook_cache = Arc::clone(&cache);
        pool.set_evict_hook(Box::new(move |page| {
            hook_cache.lock_map().remove(&page);
        }));
        // Overlapped readahead only makes sense when there is readahead
        // to overlap; with prefetch off the executor would sit idle.
        let io = (options.io_threads > 0 && options.prefetch > 0).then(|| OverlappedIo {
            executor: IoExecutor::new(options.io_threads),
            inflight: Arc::new(InflightTable::new()),
        });
        tree.storage = Some(Box::new(TreeStorage {
            store: Arc::from(store),
            pool: Arc::new(pool),
            cache,
            n_pages,
            root_level,
            root_mbr,
            node_count,
            layout,
            prefetch: options.prefetch,
            prefetch_batches: Arc::new(AtomicU64::new(0)),
            io,
            io_errors: AtomicU64::new(0),
            retry: options.retry,
            quarantine: Mutex::new(HashMap::new()),
            write: writable.then(|| {
                WriteState::new((0..n_pages).filter(|&p| !seen[p as usize]).collect())
            }),
        }));
        Ok(tree)
    }

    /// The storage layer of a disk-backed tree, or `None` for an
    /// arena-only tree.
    pub fn storage(&self) -> Option<&TreeStorage> {
        self.storage.as_deref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::TreeError;
    use nwc_geom::{pt, rect};
    use nwc_store::MemStore;

    fn sample_tree(n: usize) -> RStarTree {
        let pts: Vec<_> = (0..n)
            .map(|i| pt(((i * 31) % 499) as f64, ((i * 57) % 491) as f64))
            .collect();
        RStarTree::bulk_load(&pts)
    }

    fn mem_store_of(tree: &RStarTree) -> MemStore {
        mem_store_of_layout(tree, PageLayout::BottomUp)
    }

    fn mem_store_of_layout(tree: &RStarTree, layout: PageLayout) -> MemStore {
        let file = tree.to_page_file_with_layout(layout);
        let pages: Vec<[u8; PAGE_SIZE]> =
            (0..file.page_count()).map(|i| *file.page(i as u32)).collect();
        let user = [
            tree.params().max_entries as u64,
            tree.params().min_entries as u64,
            tree.params().reinsert_count as u64 | ((layout.tag() as u64) << 56),
            tree.len() as u64,
        ];
        MemStore::new(pages, file.root_page(), user).unwrap()
    }

    #[test]
    fn save_open_roundtrip_on_disk() {
        let dir = std::env::temp_dir().join("nwc-disk-roundtrip");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tree.nwc");
        let tree = sample_tree(2000);
        tree.save_to_path(&path).unwrap();
        let disk = RStarTree::open_from_path(&path, None).unwrap();
        assert_eq!(disk.len(), tree.len());
        assert_eq!(disk.height(), tree.height());
        crate::validate::check_invariants(&disk).unwrap();
        // Validation peeks charge nothing: counters still pristine.
        let s = disk.storage().unwrap().pool_stats();
        assert_eq!((s.hits, s.misses), (0, 0));
        assert_eq!(disk.storage().unwrap().physical_reads(), 0);
        let w = rect(100.0, 100.0, 300.0, 280.0);
        let mut a: Vec<u32> = tree.window_query(&w).iter().map(|e| e.id).collect();
        let mut b: Vec<u32> = disk.window_query(&w).iter().map(|e| e.id).collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn unbounded_pool_misses_each_page_once() {
        let tree = sample_tree(3000);
        let pages = tree.to_page_file().page_count();
        let disk = RStarTree::open_from_store(Box::new(mem_store_of(&tree)), None).unwrap();
        // Open-time scan must not pollute the counters.
        assert_eq!(disk.storage().unwrap().physical_reads(), 0);
        let w = rect(0.0, 0.0, 499.0, 491.0); // covers everything
        disk.window_query(&w);
        disk.window_query(&w);
        let s = disk.storage().unwrap().pool_stats();
        assert_eq!(s.misses as usize, pages, "each page faults exactly once");
        assert_eq!(s.hits as usize, pages, "second pass all hits");
        assert_eq!(disk.storage().unwrap().physical_reads(), s.misses);
        // Logical access counts match the arena tree's.
        tree.stats().reset();
        tree.window_query(&w);
        tree.window_query(&w);
        assert_eq!(disk.stats().accesses(), tree.stats().node_reads());
    }

    #[test]
    fn tiny_pool_thrashes_but_answers_identically() {
        // Capacity 2: the pinned root occupies one frame, the second
        // churns through the rest of this height-3 tree.
        let tree = sample_tree(3000);
        let disk = RStarTree::open_from_store(Box::new(mem_store_of(&tree)), Some(2)).unwrap();
        for w in [
            rect(0.0, 0.0, 120.0, 120.0),
            rect(200.0, 150.0, 340.0, 400.0),
        ] {
            let mut a: Vec<u32> = tree.window_query(&w).iter().map(|e| e.id).collect();
            let mut b: Vec<u32> = disk.window_query(&w).iter().map(|e| e.id).collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b);
        }
        let s = disk.storage().unwrap().pool_stats();
        assert!(s.evictions > 0, "capacity 2 on a deep descent must evict");
        assert_eq!(disk.storage().unwrap().io_errors(), 0);
    }

    #[test]
    fn pool_capacity_bounds_resident_nodes() {
        let tree = sample_tree(3000);
        assert!(tree.height() <= 4, "test assumes capacity >= height");
        let cap = 4usize;
        let disk =
            RStarTree::open_from_store(Box::new(mem_store_of(&tree)), Some(cap)).unwrap();
        for w in [
            rect(0.0, 0.0, 499.0, 491.0),
            rect(10.0, 10.0, 250.0, 250.0),
            rect(300.0, 5.0, 480.0, 470.0),
        ] {
            disk.window_query(&w);
        }
        let storage = disk.storage().unwrap();
        let peak = storage.peak_resident_nodes();
        assert!(peak > 0, "queries must have decoded something");
        assert!(peak <= cap, "peak resident nodes {peak} exceeds pool capacity {cap}");
        assert!(storage.pool_stats().evictions > 0, "the tree outsizes the pool");
    }

    #[test]
    fn reset_restores_cold_buffer() {
        let tree = sample_tree(1000);
        let disk = RStarTree::open_from_store(Box::new(mem_store_of(&tree)), None).unwrap();
        let w = rect(0.0, 0.0, 499.0, 491.0);
        disk.window_query(&w);
        let storage = disk.storage().unwrap();
        let warm = storage.pool_stats();
        assert!(warm.misses > 0);
        assert!(storage.peak_resident_nodes() > 0);
        storage.reset();
        let cold = storage.pool_stats();
        assert_eq!((cold.hits, cold.misses, cold.resident), (0, 0, 0));
        assert_eq!(storage.peak_resident_nodes(), 0);
        disk.window_query(&w);
        assert_eq!(storage.pool_stats().misses, warm.misses, "cold again");
    }

    #[test]
    fn bad_params_in_header_rejected() {
        let tree = sample_tree(100);
        let file = tree.to_page_file();
        let pages: Vec<[u8; PAGE_SIZE]> =
            (0..file.page_count()).map(|i| *file.page(i as u32)).collect();
        // max_entries = 1 is not a legal R*-tree fanout.
        let store = MemStore::new(pages, file.root_page(), [1, 0, 0, 0]).unwrap();
        match RStarTree::open_from_store(Box::new(store), None) {
            Err(DiskError::BadParams(_)) => {}
            other => panic!("expected BadParams, got {other:?}", other = other.err()),
        }
    }

    #[test]
    fn corrupt_page_rejected_at_open() {
        let tree = sample_tree(500);
        let mut store = mem_store_of(&tree);
        store.page_mut(0)[0] = 9; // neither leaf nor internal
        match RStarTree::open_from_store(Box::new(store), None) {
            Err(DiskError::Page(PageError::BadTag(9))) => {}
            other => panic!("expected BadTag, got {other:?}", other = other.err()),
        }
    }

    #[test]
    fn wrong_stored_len_rejected_at_open() {
        let tree = sample_tree(300);
        let file = tree.to_page_file();
        let pages: Vec<[u8; PAGE_SIZE]> =
            (0..file.page_count()).map(|i| *file.page(i as u32)).collect();
        let user = [
            tree.params().max_entries as u64,
            tree.params().min_entries as u64,
            tree.params().reinsert_count as u64,
            tree.len() as u64 + 1,
        ];
        let store = MemStore::new(pages, file.root_page(), user).unwrap();
        match RStarTree::open_from_store(Box::new(store), None) {
            Err(DiskError::Page(PageError::Invalid(_))) => {}
            other => panic!("expected Invalid, got {other:?}", other = other.err()),
        }
    }

    #[test]
    fn clustered_layout_roundtrips_through_store() {
        let tree = sample_tree(3000);
        let store = mem_store_of_layout(&tree, PageLayout::Clustered);
        let disk = RStarTree::open_from_store(Box::new(store), None).unwrap();
        assert_eq!(disk.storage().unwrap().layout(), PageLayout::Clustered);
        crate::validate::check_invariants(&disk).unwrap();
        let w = rect(50.0, 40.0, 350.0, 300.0);
        let mut a: Vec<u32> = tree.window_query(&w).iter().map(|e| e.id).collect();
        let mut b: Vec<u32> = disk.window_query(&w).iter().map(|e| e.id).collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
        // Relabeling pages must not change logical I/O.
        tree.stats().reset();
        tree.window_query(&w);
        assert_eq!(disk.stats().accesses(), tree.stats().node_reads());
    }

    #[test]
    fn readahead_converts_demand_misses_into_prefetch_hits() {
        let tree = sample_tree(3000);
        let w = rect(0.0, 0.0, 499.0, 491.0); // covers everything
        tree.stats().reset();
        tree.window_query(&w);
        let arena_io = tree.stats().node_reads();

        // Bounded pool (big enough not to thrash), readahead on, over a
        // clustered file so runs coalesce.
        let disk = RStarTree::open_from_store_with(
            Box::new(mem_store_of_layout(&tree, PageLayout::Clustered)),
            DiskOptions {
                pool_capacity: Some(64),
                pool_shards: Some(1),
                prefetch: 16,
                ..DiskOptions::default()
            },
        )
        .unwrap();
        let mut got: Vec<u32> = disk.window_query(&w).iter().map(|e| e.id).collect();
        got.sort_unstable();
        assert_eq!(got.len(), tree.len());

        let storage = disk.storage().unwrap();
        let s = storage.pool_stats();
        // Logical I/O is bit-identical to the arena.
        assert_eq!(disk.stats().accesses(), arena_io);
        assert_eq!(s.hits + s.misses, arena_io);
        // Demand physical reads stay aligned with pool misses (prefetch
        // reads go through the uncounted store path).
        assert_eq!(storage.physical_reads(), s.misses);
        // The full-coverage scan visits every child it prefetched, so
        // readahead must have converted a healthy share of would-be
        // misses into hits.
        assert!(s.prefetch_hits > 0, "readahead produced no hits: {s:?}");
        assert_eq!(disk.stats().prefetch_hits(), s.prefetch_hits);
        assert_eq!(disk.stats().buffer_hits(), s.hits);
        assert!(
            disk.stats().prefetch_reads() >= s.prefetched,
            "every admitted frame was read by a prefetch batch"
        );
        // A healthy store swallows nothing.
        assert_eq!(disk.stats().prefetch_errors(), 0);
        // Clustered sibling leaves are contiguous: batches must coalesce
        // (strictly fewer vectored calls than pages prefetched).
        let batches = storage.prefetch_batches();
        assert!(batches > 0);
        assert!(
            batches < disk.stats().prefetch_reads(),
            "clustered runs should coalesce: {batches} batches for {} pages",
            disk.stats().prefetch_reads()
        );
        // Fewer demand misses than a readahead-off open at the same
        // capacity.
        let baseline = RStarTree::open_from_store_with(
            Box::new(mem_store_of_layout(&tree, PageLayout::Clustered)),
            DiskOptions {
                pool_capacity: Some(64),
                pool_shards: Some(1),
                prefetch: 0,
                ..DiskOptions::default()
            },
        )
        .unwrap();
        baseline.window_query(&w);
        let b = baseline.storage().unwrap().pool_stats();
        assert_eq!(b.hits + b.misses, arena_io);
        assert!(
            s.misses < b.misses,
            "readahead should cut demand misses: {} vs baseline {}",
            s.misses,
            b.misses
        );
        // The two resets rewind the readahead counters with everything
        // else (storage owns the pool/batch tallies, IoStats the
        // per-tree ones).
        storage.reset();
        disk.stats().reset();
        let z = storage.pool_stats();
        assert_eq!((z.prefetched, z.prefetch_hits, z.prefetch_waste), (0, 0, 0));
        assert_eq!(storage.prefetch_batches(), 0);
        assert_eq!(disk.stats().prefetch_reads(), 0);
    }

    #[test]
    fn readahead_is_disabled_when_the_pool_is_too_small_to_share() {
        let tree = sample_tree(3000);
        let disk = RStarTree::open_from_store_with(
            Box::new(mem_store_of(&tree)),
            DiskOptions {
                pool_capacity: Some(1),
                pool_shards: Some(1),
                prefetch: 16,
                ..DiskOptions::default()
            },
        )
        .unwrap();
        let w = rect(10.0, 10.0, 200.0, 200.0);
        let mut a: Vec<u32> = tree.window_query(&w).iter().map(|e| e.id).collect();
        let mut b: Vec<u32> = disk.window_query(&w).iter().map(|e| e.id).collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
        // capacity/2 == 0: no speculative read may ever be issued.
        assert_eq!(disk.stats().prefetch_reads(), 0);
        assert_eq!(disk.storage().unwrap().pool_stats().prefetched, 0);
        assert_eq!(disk.storage().unwrap().prefetch_batches(), 0);
    }

    #[test]
    fn best_first_browse_prefetches_too() {
        let tree = sample_tree(3000);
        tree.stats().reset();
        let arena_knn = tree.knn(pt(250.0, 250.0), 40);
        let arena_io = tree.stats().node_reads();
        let disk = RStarTree::open_from_store_with(
            Box::new(mem_store_of_layout(&tree, PageLayout::Clustered)),
            DiskOptions {
                pool_capacity: Some(64),
                pool_shards: Some(1),
                prefetch: 8,
                ..DiskOptions::default()
            },
        )
        .unwrap();
        let disk_knn = disk.knn(pt(250.0, 250.0), 40);
        let ad: Vec<f64> = arena_knn.iter().map(|&(d, _)| d).collect();
        let dd: Vec<f64> = disk_knn.iter().map(|&(d, _)| d).collect();
        assert_eq!(ad, dd);
        assert_eq!(disk.stats().accesses(), arena_io, "logical I/O unchanged");
        assert!(
            disk.stats().prefetch_reads() > 0,
            "browser expansion should issue readahead"
        );
    }

    #[test]
    fn transient_fault_is_retried_and_recovered() {
        use nwc_store::{FaultPlan, FaultStore, RetryPolicy};
        let tree = sample_tree(2000);
        let fault = std::sync::Arc::new(FaultStore::new(mem_store_of(&tree), FaultPlan::default()));
        let disk = RStarTree::open_from_store_with(
            Box::new(std::sync::Arc::clone(&fault)),
            DiskOptions {
                retry: RetryPolicy { base_backoff: std::time::Duration::ZERO, ..RetryPolicy::default() },
                ..DiskOptions::default()
            },
        )
        .unwrap();
        // Fail the root page twice: attempts 1 and 2 error, attempt 3
        // succeeds within the default budget of 4.
        let root = disk.root().0;
        fault.fail_page_transiently(root, 2);
        let w = rect(0.0, 0.0, 499.0, 491.0);
        let mut got: Vec<u32> = disk.window_query(&w).iter().map(|e| e.id).collect();
        got.sort_unstable();
        assert_eq!(got.len(), tree.len(), "answers survive transient faults");
        assert_eq!(disk.stats().retries(), 2);
        assert_eq!(disk.stats().transient_errors(), 2);
        assert_eq!(disk.stats().quarantined_pages(), 0);
        assert_eq!(disk.storage().unwrap().io_errors(), 2);
        assert!(disk.storage().unwrap().quarantine().is_empty());
        // Logical I/O is what the arena charges — failed attempts are
        // not node accesses.
        tree.stats().reset();
        tree.window_query(&w);
        assert_eq!(disk.stats().accesses(), tree.stats().node_reads());
    }

    #[test]
    fn permanent_fault_returns_typed_error_and_quarantines() {
        use nwc_store::{FaultPlan, FaultStore, RetryPolicy};
        let tree = sample_tree(2000);
        let fault = std::sync::Arc::new(FaultStore::new(mem_store_of(&tree), FaultPlan::default()));
        let disk = RStarTree::open_from_store_with(
            Box::new(std::sync::Arc::clone(&fault)),
            DiskOptions {
                retry: RetryPolicy {
                    max_attempts: 3,
                    base_backoff: std::time::Duration::ZERO,
                    max_backoff: std::time::Duration::ZERO,
                },
                ..DiskOptions::default()
            },
        )
        .unwrap();
        let root = disk.root().0;
        fault.fail_page_permanently(root);
        let w = rect(0.0, 0.0, 499.0, 491.0);
        let err = disk.try_window_query(&w).unwrap_err();
        match &err {
            TreeError::Io(e) => {
                assert_eq!(e.page, root);
                assert!(e.detail.contains("after 3 attempts"), "{}", e.detail);
            }
            other => panic!("expected Io error, got {other:?}"),
        }
        // Budget: 1 first attempt + 2 retries, all failed, none
        // recovered; the page is quarantined.
        assert_eq!(disk.stats().retries(), 2);
        assert_eq!(disk.stats().transient_errors(), 0);
        assert_eq!(disk.stats().quarantined_pages(), 1);
        assert_eq!(disk.storage().unwrap().io_errors(), 3);
        let q = disk.storage().unwrap().quarantine();
        assert_eq!(q.len(), 1);
        assert_eq!(q[0].0, root);
        // A second query fails fast: no new device attempts, no new
        // quarantine tick.
        let before = fault.stats().errors();
        assert!(disk.try_window_query(&w).is_err());
        assert_eq!(fault.stats().errors(), before, "quarantine fails fast");
        assert_eq!(disk.stats().quarantined_pages(), 1);
        // No pins leaked on the error path.
        assert_eq!(disk.storage().unwrap().pool_stats().pinned, 0);
        // reset() lifts the quarantine; with the fault cleared the tree
        // serves again.
        fault.clear_faults();
        disk.storage().unwrap().reset();
        disk.stats().reset();
        assert!(disk.storage().unwrap().quarantine().is_empty());
        let mut got: Vec<u32> = disk.window_query(&w).iter().map(|e| e.id).collect();
        got.sort_unstable();
        assert_eq!(got.len(), tree.len());
    }

    #[test]
    fn bit_rot_is_quarantined_without_retry() {
        use nwc_store::{FaultPlan, FaultStore, RetryPolicy};
        let tree = sample_tree(2000);
        let fault = std::sync::Arc::new(FaultStore::new(mem_store_of(&tree), FaultPlan::default()));
        let disk = RStarTree::open_from_store_with(
            Box::new(std::sync::Arc::clone(&fault)),
            DiskOptions {
                retry: RetryPolicy { base_backoff: std::time::Duration::ZERO, ..RetryPolicy::default() },
                ..DiskOptions::default()
            },
        )
        .unwrap();
        let root = disk.root().0;
        fault.rot_page(root);
        let err = disk.try_window_query(&rect(0.0, 0.0, 499.0, 491.0)).unwrap_err();
        match &err {
            TreeError::Io(e) => {
                assert_eq!(e.page, root);
                assert!(e.detail.contains("does not decode"), "{}", e.detail);
            }
            other => panic!("expected Io error, got {other:?}"),
        }
        // Corruption is deterministic: no retry spent on it.
        assert_eq!(disk.stats().retries(), 0);
        assert_eq!(disk.stats().quarantined_pages(), 1);
        assert_eq!(disk.storage().unwrap().pool_stats().pinned, 0, "pin released");
    }

    #[test]
    fn bookkeeping_peek_retries_instead_of_panicking() {
        // Regression: the peek path used to fail on the first error with
        // no retry. IWP builds and validation go through peek, so a
        // single transient blip would have killed them.
        use nwc_store::{FaultPlan, FaultStore, RetryPolicy};
        let tree = sample_tree(2000);
        let fault = std::sync::Arc::new(FaultStore::new(mem_store_of(&tree), FaultPlan::default()));
        let disk = RStarTree::open_from_store_with(
            Box::new(std::sync::Arc::clone(&fault)),
            DiskOptions {
                retry: RetryPolicy { base_backoff: std::time::Duration::ZERO, ..RetryPolicy::default() },
                ..DiskOptions::default()
            },
        )
        .unwrap();
        let root = disk.root().0;
        // Nothing is resident (no query ran), so the peek must hit the
        // store — and survive two transient failures.
        fault.fail_page_transiently(root, 2);
        // `node_len` always goes through the peek path (unlike
        // `node_level`, which answers for the root from bookkeeping).
        assert!(disk.node_len(disk.root()) > 0);
        assert_eq!(disk.stats().retries(), 2);
        assert_eq!(disk.stats().transient_errors(), 2);
        // Peeks stay uncharged even when they retry.
        assert_eq!(disk.stats().accesses(), 0);
    }

    #[test]
    fn failed_prefetch_runs_are_counted_not_fatal() {
        use nwc_store::{FaultPlan, FaultStore};
        let tree = sample_tree(3000);
        // A 30% seeded transient rate fails a healthy share of the
        // readahead runs (each run spends one decision and is never
        // retried) while the demand reads behind them recover via the
        // 8-attempt budget. Deterministic: the seed fixes the schedule.
        let fault = std::sync::Arc::new(FaultStore::new(
            mem_store_of_layout(&tree, PageLayout::Clustered),
            FaultPlan::default(),
        ));
        // Open clean (the open path has no retry in front of it), then
        // arm the rate before the first query.
        let disk = RStarTree::open_from_store_with(
            Box::new(std::sync::Arc::clone(&fault)),
            DiskOptions {
                pool_capacity: Some(64),
                pool_shards: Some(1),
                prefetch: 16,
                retry: nwc_store::RetryPolicy {
                    max_attempts: 8,
                    base_backoff: std::time::Duration::ZERO,
                    max_backoff: std::time::Duration::ZERO,
                },
                ..DiskOptions::default()
            },
        )
        .unwrap();
        fault.set_plan(FaultPlan { transient_rate: 0.3, transient_burst: 1, ..FaultPlan::default() });
        let w = rect(0.0, 0.0, 499.0, 491.0);
        let mut got: Vec<u32> = disk.window_query(&w).iter().map(|e| e.id).collect();
        got.sort_unstable();
        assert_eq!(got.len(), tree.len());
        assert!(
            disk.stats().prefetch_errors() > 0,
            "swallowed readahead failures must be tallied"
        );
    }

    #[test]
    fn disk_backed_tree_rejects_insert_with_typed_error() {
        let tree = sample_tree(100);
        let mut disk = RStarTree::open_from_store(Box::new(mem_store_of(&tree)), None).unwrap();
        assert_eq!(disk.insert(999, pt(1.0, 1.0)), Err(TreeError::ReadOnly));
        assert_eq!(disk.len(), 100, "failed insert must not change the tree");
    }

    #[test]
    fn disk_backed_tree_rejects_delete_with_typed_error() {
        let tree = sample_tree(100);
        let mut disk = RStarTree::open_from_store(Box::new(mem_store_of(&tree)), None).unwrap();
        assert_eq!(disk.delete(0, pt(0.0, 0.0)), Err(TreeError::ReadOnly));
        assert_eq!(disk.len(), 100, "failed delete must not change the tree");
    }

    /// A writable `MemStore` sharing the committed pages of `tree`,
    /// wrapped in `Arc` so tests can reopen the same store after a
    /// commit (simulating a process restart without a filesystem).
    fn writable_store_of(tree: &RStarTree) -> Arc<MemStore> {
        let file = tree.to_page_file_with_layout(PageLayout::BottomUp);
        let pages: Vec<[u8; PAGE_SIZE]> =
            (0..file.page_count()).map(|i| *file.page(i as u32)).collect();
        let user = [
            tree.params().max_entries as u64,
            tree.params().min_entries as u64,
            tree.params().reinsert_count as u64,
            tree.len() as u64,
        ];
        Arc::new(MemStore::new_writable(pages, file.root_page(), user).unwrap())
    }

    fn ids_in(tree: &RStarTree, w: &Rect) -> Vec<u32> {
        let mut ids: Vec<u32> = tree.window_query(w).iter().map(|e| e.id).collect();
        ids.sort_unstable();
        ids
    }

    #[test]
    fn writable_tree_insert_delete_commit_reopen() {
        let base = sample_tree(400);
        let store = writable_store_of(&base);
        let mut disk =
            RStarTree::open_from_store(Box::new(Arc::clone(&store)), None).unwrap();
        assert!(disk.storage().unwrap().is_writable());

        // Mirror every mutation on an arena twin built from the same
        // base so answers can be compared against ground truth.
        let mut twin = RStarTree::bulk_load(
            &(0..400)
                .map(|i| pt(((i * 31) % 499) as f64, ((i * 57) % 491) as f64))
                .collect::<Vec<_>>(),
        );
        for i in 0..80u32 {
            let p = pt(600.0 + i as f64, 600.0 + ((i * 7) % 50) as f64);
            disk.insert(10_000 + i, p).unwrap();
            twin.insert(10_000 + i, p).unwrap();
        }
        for i in 0..40u32 {
            let p = pt(((i * 31) % 499) as f64, ((i * 57) % 491) as f64);
            assert!(disk.delete(i, p).unwrap());
            assert!(twin.delete(i, p).unwrap());
        }
        crate::validate::check_invariants(&disk).unwrap();
        let everything = rect(-10.0, -10.0, 1000.0, 1000.0);
        assert_eq!(ids_in(&disk, &everything), ids_in(&twin, &everything));

        disk.commit().unwrap();
        crate::validate::check_invariants(&disk).unwrap();
        assert_eq!(disk.storage().unwrap().dirty_nodes(), 0, "commit clears the overlay");
        assert_eq!(ids_in(&disk, &everything), ids_in(&twin, &everything));

        // "Restart": reopen the committed store from scratch.
        drop(disk);
        let reopened =
            RStarTree::open_from_store(Box::new(Arc::clone(&store)), None).unwrap();
        assert_eq!(reopened.len(), twin.len());
        crate::validate::check_invariants(&reopened).unwrap();
        assert_eq!(ids_in(&reopened, &everything), ids_in(&twin, &everything));
        for w in [
            rect(0.0, 0.0, 120.0, 120.0),
            rect(200.0, 150.0, 340.0, 400.0),
            rect(590.0, 590.0, 700.0, 700.0),
        ] {
            assert_eq!(ids_in(&reopened, &w), ids_in(&twin, &w));
        }
    }

    #[test]
    fn uncommitted_mutations_are_invisible_after_reopen() {
        let base = sample_tree(300);
        let store = writable_store_of(&base);
        let mut disk =
            RStarTree::open_from_store(Box::new(Arc::clone(&store)), None).unwrap();
        disk.insert(9999, pt(777.0, 777.0)).unwrap();
        assert!(disk.storage().unwrap().dirty_nodes() > 0);
        drop(disk); // no commit

        let reopened = RStarTree::open_from_store(Box::new(store), None).unwrap();
        assert_eq!(reopened.len(), 300, "uncommitted insert must vanish");
        assert!(ids_in(&reopened, &rect(770.0, 770.0, 780.0, 780.0)).is_empty());
        crate::validate::check_invariants(&reopened).unwrap();
    }

    #[test]
    fn commit_on_clean_tree_is_a_noop_and_read_only_rejects() {
        let base = sample_tree(120);
        let store = writable_store_of(&base);
        let mut disk = RStarTree::open_from_store(Box::new(store), None).unwrap();
        disk.commit().unwrap();
        disk.commit().unwrap();

        let mut ro = RStarTree::open_from_store(Box::new(mem_store_of(&base)), None).unwrap();
        assert!(!ro.storage().unwrap().is_writable());
        assert_eq!(ro.commit(), Err(TreeError::ReadOnly));

        // Arena trees accept commit as a no-op (mutations are always
        // live), so generic code can call it unconditionally.
        let mut arena = sample_tree(10);
        arena.commit().unwrap();
    }

    #[test]
    fn commit_recycles_pages_instead_of_growing_forever() {
        let base = sample_tree(500);
        let store = writable_store_of(&base);
        let mut disk =
            RStarTree::open_from_store(Box::new(Arc::clone(&store)), None).unwrap();
        let mut peak = 0u32;
        for round in 0..6u32 {
            for i in 0..20u32 {
                let p = pt(900.0 + i as f64, 900.0 + round as f64);
                disk.insert(50_000 + round * 100 + i, p).unwrap();
            }
            for i in 0..20u32 {
                let p = pt(900.0 + i as f64, 900.0 + round as f64);
                assert!(disk.delete(50_000 + round * 100 + i, p).unwrap());
            }
            disk.commit().unwrap();
            peak = peak.max(store.meta().page_count);
        }
        // Every round ends at the same logical tree; shadow paging may
        // grow the file once to double-buffer the dirty set, but the
        // free list must absorb later rounds instead of growing again.
        assert_eq!(store.meta().page_count, peak, "file stopped growing");
        assert!(disk.storage().unwrap().free_pages() > 0);
        assert_eq!(disk.len(), 500);
        crate::validate::check_invariants(&disk).unwrap();
    }

    #[test]
    fn overlapped_readahead_preserves_answers_and_logical_io() {
        let tree = sample_tree(3000);
        let w = rect(0.0, 0.0, 499.0, 491.0);
        tree.stats().reset();
        tree.window_query(&w);
        let arena_io = tree.stats().node_reads();

        let overlapped = RStarTree::open_from_store_with(
            Box::new(mem_store_of_layout(&tree, PageLayout::Clustered)),
            DiskOptions {
                pool_capacity: Some(64),
                pool_shards: Some(1),
                prefetch: 16,
                io_threads: 2,
                ..DiskOptions::default()
            },
        )
        .unwrap();
        let storage = overlapped.storage().unwrap();
        assert_eq!(storage.io_threads(), 2);

        let mut got: Vec<u32> = overlapped.window_query(&w).iter().map(|e| e.id).collect();
        got.sort_unstable();
        let mut want: Vec<u32> = tree.window_query(&w).iter().map(|e| e.id).collect();
        want.sort_unstable();
        assert_eq!(got, want);

        // Quiesce any still-airborne runs before reading counters.
        storage.wait_io_idle();
        // Logical I/O is bit-identical to the arena regardless of which
        // thread performed the physical reads.
        assert_eq!(overlapped.stats().accesses(), arena_io);
        let s = storage.pool_stats();
        assert_eq!(s.hits + s.misses, arena_io);
        assert_eq!(s.pinned, 0, "queries must not leak pins");
        // The executor actually carried readahead work, and its wall
        // clock landed in the overlap counter.
        assert!(overlapped.stats().prefetch_reads() > 0);
        assert!(storage.prefetch_batches() > 0);
        assert!(overlapped.stats().overlap_us() > 0 || overlapped.stats().prefetch_reads() == 0);
        assert_eq!(overlapped.stats().prefetch_errors(), 0);
    }

    #[test]
    fn overlapped_and_sync_readahead_answer_identically() {
        let tree = sample_tree(2500);
        let open = |io_threads: usize| {
            RStarTree::open_from_store_with(
                Box::new(mem_store_of_layout(&tree, PageLayout::Clustered)),
                DiskOptions {
                    pool_capacity: Some(48),
                    pool_shards: Some(1),
                    prefetch: 8,
                    io_threads,
                    ..DiskOptions::default()
                },
            )
            .unwrap()
        };
        let sync = open(0);
        let over = open(2);
        let windows = [
            rect(0.0, 0.0, 499.0, 491.0),
            rect(100.0, 100.0, 250.0, 300.0),
            rect(400.0, 0.0, 499.0, 50.0),
        ];
        for w in &windows {
            let mut a: Vec<u32> = sync.window_query(w).iter().map(|e| e.id).collect();
            let mut b: Vec<u32> = over.window_query(w).iter().map(|e| e.id).collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b);
            // Logical accounting never depends on the physical backend.
            assert_eq!(sync.stats().accesses(), over.stats().accesses());
        }
        let storage = over.storage().unwrap();
        storage.wait_io_idle();
        assert_eq!(storage.pool_stats().pinned, 0);
    }

    #[test]
    fn overlapped_reset_quiesces_and_restores_cold_state() {
        let tree = sample_tree(2000);
        let disk = RStarTree::open_from_store_with(
            Box::new(mem_store_of_layout(&tree, PageLayout::Clustered)),
            DiskOptions {
                pool_capacity: Some(32),
                pool_shards: Some(1),
                prefetch: 8,
                io_threads: 2,
                ..DiskOptions::default()
            },
        )
        .unwrap();
        let w = rect(0.0, 0.0, 499.0, 491.0);
        disk.window_query(&w);
        let storage = disk.storage().unwrap();
        storage.reset();
        // Storage reset waits out in-flight completions, so nothing can
        // land in the pool or bump a counter after the stats reset below.
        disk.stats().reset();
        assert_eq!(disk.stats().accesses(), 0);
        assert_eq!(disk.stats().overlap_us(), 0);
        assert_eq!(disk.stats().inflight_hits(), 0);
        let s = storage.pool_stats();
        assert_eq!(s.resident, 0);
        assert_eq!(s.pinned, 0);
        // The tree still answers after the cold restart.
        assert_eq!(disk.window_query(&w).len(), tree.len());
    }

    #[test]
    fn overlapped_backend_survives_faults_without_retrying_readahead() {
        use nwc_store::{FaultPlan, FaultStore};
        let tree = sample_tree(3000);
        let fault = std::sync::Arc::new(FaultStore::new(
            mem_store_of_layout(&tree, PageLayout::Clustered),
            FaultPlan::default(),
        ));
        let disk = RStarTree::open_from_store_with(
            Box::new(std::sync::Arc::clone(&fault)),
            DiskOptions {
                pool_capacity: Some(64),
                pool_shards: Some(1),
                prefetch: 16,
                io_threads: 2,
                retry: nwc_store::RetryPolicy {
                    max_attempts: 8,
                    base_backoff: std::time::Duration::ZERO,
                    max_backoff: std::time::Duration::ZERO,
                },
            },
        )
        .unwrap();
        fault.set_plan(FaultPlan { transient_rate: 0.3, transient_burst: 1, ..FaultPlan::default() });
        let w = rect(0.0, 0.0, 499.0, 491.0);
        let mut got: Vec<u32> = disk.window_query(&w).iter().map(|e| e.id).collect();
        got.sort_unstable();
        assert_eq!(got.len(), tree.len());
        let storage = disk.storage().unwrap();
        storage.wait_io_idle();
        assert!(
            disk.stats().prefetch_errors() > 0,
            "swallowed readahead failures must be tallied on the overlapped path too"
        );
        assert_eq!(storage.pool_stats().pinned, 0);
    }
}
