//! Disk-backed storage mode: a [`PageStore`] + [`BufferPool`] under the
//! tree.
//!
//! [`RStarTree::save_to_path`] serializes a tree into an on-disk page
//! file ([`nwc_store::FileStore`] format: magic/version header,
//! per-page CRC-32 checksums). [`RStarTree::open_from_path`] opens such
//! a file and returns a tree whose node accesses run through a buffer
//! pool:
//!
//! - a **pool miss** performs a real, checksum-verified page read from
//!   the store and is charged to [`IoStats::node_reads`] — physical I/O;
//! - a **pool hit** costs no I/O and is charged to
//!   [`IoStats::buffer_hits`].
//!
//! Both count as one *logical* node access, so per-query I/O
//! attribution (`snapshot`/`since` diffs) — and therefore every
//! algorithm's "nodes visited" figure — is identical to the in-memory
//! arena's. With an unbounded pool the physical + hit split is the only
//! observable difference.
//!
//! # Residency model
//!
//! Nodes are decoded into the arena eagerly at open (the open scan also
//! verifies every page checksum); at query time the pool governs *page
//! residency* and drives the physical re-reads on misses, while node
//! *decoding* is not repeated. This keeps the paper's I/O accounting
//! exact under the crate's `&self`, multi-thread query API without a
//! page-latching layer; the trade-off — resident memory is the full
//! arena, not `pool capacity × page size` — is documented in DESIGN.md
//! § Storage engine.
//!
//! Disk-backed trees are **read-only**: [`RStarTree::insert`] and
//! [`RStarTree::delete`] panic rather than silently diverge from the
//! file.

use crate::page::decode_page_file;
use crate::tree::RStarTree;
use crate::{IoStats, NodeId, PageError, PageFile, TreeParams, PAGE_SIZE};
use nwc_store::{Access, BufferPool, FileStore, PageStore, PoolStats, StoreError};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

/// An error produced while saving or opening a disk-backed tree.
#[derive(Debug)]
pub enum DiskError {
    /// The page store rejected the file (I/O failure, bad magic or
    /// version, checksum mismatch, truncation, …).
    Store(StoreError),
    /// The pages were readable but do not decode into a valid tree.
    Page(PageError),
    /// The file header carries tree parameters this build rejects.
    BadParams(&'static str),
}

impl std::fmt::Display for DiskError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DiskError::Store(e) => write!(f, "page store error: {e}"),
            DiskError::Page(e) => write!(f, "page decode error: {e}"),
            DiskError::BadParams(what) => write!(f, "invalid tree parameters in header: {what}"),
        }
    }
}

impl std::error::Error for DiskError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DiskError::Store(e) => Some(e),
            DiskError::Page(e) => Some(e),
            DiskError::BadParams(_) => None,
        }
    }
}

impl From<StoreError> for DiskError {
    fn from(e: StoreError) -> Self {
        DiskError::Store(e)
    }
}

impl From<PageError> for DiskError {
    fn from(e: PageError) -> Self {
        DiskError::Page(e)
    }
}

/// The storage half of a disk-backed tree: the page store, the buffer
/// pool in front of it, and the node → page map.
pub struct TreeStorage {
    store: Box<dyn PageStore>,
    pool: BufferPool,
    /// `page_of[node.index()]` = page id backing that arena node.
    page_of: Vec<u32>,
    /// Page reads that failed *after* a successful open (device errors,
    /// post-open corruption). The access is still counted as a miss so
    /// I/O totals stay comparable; queries proceed on the decoded node.
    io_errors: AtomicU64,
}

impl TreeStorage {
    /// Routes one node access through the buffer pool, charging `stats`
    /// with a physical read (miss) or a buffer hit.
    #[inline]
    pub(crate) fn touch(&self, id: NodeId, stats: &IoStats) {
        let page = self.page_of[id.index()];
        match self.pool.access(page, |buf| self.store.read_page(page, buf)) {
            Ok(Access::Hit) => stats.record_buffer_hit(),
            Ok(Access::Miss) => stats.record_node_read(),
            Err(_) => {
                // The page bytes are unavailable but the decoded node is
                // not: record the physical read attempt and the failure,
                // and let the query finish.
                stats.record_node_read();
                self.io_errors.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Buffer pool counters and occupancy.
    pub fn pool_stats(&self) -> PoolStats {
        self.pool.stats()
    }

    /// Physical page reads issued to the backing store (page fetches on
    /// pool misses; the open-time scan is excluded).
    pub fn physical_reads(&self) -> u64 {
        self.store.physical_reads()
    }

    /// Page reads that failed after open (0 on a healthy store).
    pub fn io_errors(&self) -> u64 {
        self.io_errors.load(Ordering::Relaxed)
    }

    /// Drops every buffered page and zeroes the pool and store
    /// counters: the next access sequence measures from a cold buffer.
    pub fn reset(&self) {
        self.pool.clear();
        self.pool.reset_stats();
        self.store.reset_counters();
        self.io_errors.store(0, Ordering::Relaxed);
    }
}

impl RStarTree {
    /// Serializes this tree into an on-disk page file at `path`
    /// (created or truncated), with header + per-page checksums, and
    /// syncs it to stable storage.
    pub fn save_to_path(&self, path: impl AsRef<Path>) -> Result<(), DiskError> {
        let file = self.to_page_file();
        let pages: Vec<[u8; PAGE_SIZE]> =
            (0..file.page_count()).map(|i| *file.page(i as u32)).collect();
        let user = [
            self.params.max_entries as u64,
            self.params.min_entries as u64,
            self.params.reinsert_count as u64,
            self.len() as u64,
        ];
        FileStore::create(path.as_ref(), file.root_page(), user, &pages)?;
        Ok(())
    }

    /// Opens a page file written by [`RStarTree::save_to_path`] as a
    /// disk-backed, read-only tree.
    ///
    /// `pool_capacity` bounds the buffer pool in pages; `None` means
    /// unbounded (every page misses once, then always hits). The open
    /// itself reads and checksum-verifies every page; those reads are
    /// *not* counted — the store and pool counters start at zero so the
    /// first query measures a cold buffer.
    pub fn open_from_path(
        path: impl AsRef<Path>,
        pool_capacity: Option<usize>,
    ) -> Result<RStarTree, DiskError> {
        let store = FileStore::open(path.as_ref())?;
        RStarTree::open_from_store(Box::new(store), pool_capacity)
    }

    /// As [`RStarTree::open_from_path`], over any [`PageStore`]
    /// implementation (e.g. a [`nwc_store::MemStore`] in tests).
    pub fn open_from_store(
        store: Box<dyn PageStore>,
        pool_capacity: Option<usize>,
    ) -> Result<RStarTree, DiskError> {
        let meta = store.meta();
        let [max_entries, min_entries, reinsert_count, _len] = meta.user;
        let params = TreeParams {
            max_entries: usize::try_from(max_entries)
                .map_err(|_| DiskError::BadParams("max_entries overflows usize"))?,
            min_entries: usize::try_from(min_entries)
                .map_err(|_| DiskError::BadParams("min_entries overflows usize"))?,
            reinsert_count: usize::try_from(reinsert_count)
                .map_err(|_| DiskError::BadParams("reinsert_count overflows usize"))?,
        };
        params.check().map_err(DiskError::BadParams)?;

        let mut pages = vec![[0u8; PAGE_SIZE]; meta.page_count as usize];
        for (i, page) in pages.iter_mut().enumerate() {
            store.read_page(i as u32, page)?;
        }
        let file = PageFile::from_raw_pages(pages, meta.root_page, params);
        let (mut tree, page_of) = decode_page_file(&file)?;
        // The open scan is setup cost, not query I/O.
        store.reset_counters();
        tree.storage = Some(Box::new(TreeStorage {
            store,
            pool: match pool_capacity {
                Some(cap) => BufferPool::new(cap),
                None => BufferPool::unbounded(),
            },
            page_of,
            io_errors: AtomicU64::new(0),
        }));
        Ok(tree)
    }

    /// The storage layer of a disk-backed tree, or `None` for an
    /// arena-only tree.
    pub fn storage(&self) -> Option<&TreeStorage> {
        self.storage.as_deref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nwc_geom::{pt, rect};
    use nwc_store::MemStore;

    fn sample_tree(n: usize) -> RStarTree {
        let pts: Vec<_> = (0..n)
            .map(|i| pt(((i * 31) % 499) as f64, ((i * 57) % 491) as f64))
            .collect();
        RStarTree::bulk_load(&pts)
    }

    fn mem_store_of(tree: &RStarTree) -> MemStore {
        let file = tree.to_page_file();
        let pages: Vec<[u8; PAGE_SIZE]> =
            (0..file.page_count()).map(|i| *file.page(i as u32)).collect();
        let user = [
            tree.params().max_entries as u64,
            tree.params().min_entries as u64,
            tree.params().reinsert_count as u64,
            tree.len() as u64,
        ];
        MemStore::new(pages, file.root_page(), user).unwrap()
    }

    #[test]
    fn save_open_roundtrip_on_disk() {
        let dir = std::env::temp_dir().join("nwc-disk-roundtrip");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tree.nwc");
        let tree = sample_tree(2000);
        tree.save_to_path(&path).unwrap();
        let disk = RStarTree::open_from_path(&path, None).unwrap();
        assert_eq!(disk.len(), tree.len());
        assert_eq!(disk.height(), tree.height());
        crate::validate::check_invariants(&disk).unwrap();
        let w = rect(100.0, 100.0, 300.0, 280.0);
        let mut a: Vec<u32> = tree.window_query(&w).iter().map(|e| e.id).collect();
        let mut b: Vec<u32> = disk.window_query(&w).iter().map(|e| e.id).collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn unbounded_pool_misses_each_page_once() {
        let tree = sample_tree(3000);
        let pages = tree.to_page_file().page_count();
        let disk = RStarTree::open_from_store(Box::new(mem_store_of(&tree)), None).unwrap();
        // Open-time scan must not pollute the counters.
        assert_eq!(disk.storage().unwrap().physical_reads(), 0);
        let w = rect(0.0, 0.0, 499.0, 491.0); // covers everything
        disk.window_query(&w);
        disk.window_query(&w);
        let s = disk.storage().unwrap().pool_stats();
        assert_eq!(s.misses as usize, pages, "each page faults exactly once");
        assert_eq!(s.hits as usize, pages, "second pass all hits");
        assert_eq!(disk.storage().unwrap().physical_reads(), s.misses);
        // Logical access counts match the arena tree's.
        tree.stats().reset();
        tree.window_query(&w);
        tree.window_query(&w);
        assert_eq!(disk.stats().accesses(), tree.stats().node_reads());
    }

    #[test]
    fn tiny_pool_thrashes_but_answers_identically() {
        let tree = sample_tree(3000);
        let disk = RStarTree::open_from_store(Box::new(mem_store_of(&tree)), Some(1)).unwrap();
        for w in [
            rect(0.0, 0.0, 120.0, 120.0),
            rect(200.0, 150.0, 340.0, 400.0),
        ] {
            let mut a: Vec<u32> = tree.window_query(&w).iter().map(|e| e.id).collect();
            let mut b: Vec<u32> = disk.window_query(&w).iter().map(|e| e.id).collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b);
        }
        let s = disk.storage().unwrap().pool_stats();
        assert!(s.evictions > 0, "capacity 1 must evict");
        assert_eq!(disk.storage().unwrap().io_errors(), 0);
    }

    #[test]
    fn reset_restores_cold_buffer() {
        let tree = sample_tree(1000);
        let disk = RStarTree::open_from_store(Box::new(mem_store_of(&tree)), None).unwrap();
        let w = rect(0.0, 0.0, 499.0, 491.0);
        disk.window_query(&w);
        let storage = disk.storage().unwrap();
        let warm = storage.pool_stats();
        assert!(warm.misses > 0);
        storage.reset();
        let cold = storage.pool_stats();
        assert_eq!((cold.hits, cold.misses, cold.resident), (0, 0, 0));
        disk.window_query(&w);
        assert_eq!(storage.pool_stats().misses, warm.misses, "cold again");
    }

    #[test]
    fn bad_params_in_header_rejected() {
        let tree = sample_tree(100);
        let file = tree.to_page_file();
        let pages: Vec<[u8; PAGE_SIZE]> =
            (0..file.page_count()).map(|i| *file.page(i as u32)).collect();
        // max_entries = 1 is not a legal R*-tree fanout.
        let store = MemStore::new(pages, file.root_page(), [1, 0, 0, 0]).unwrap();
        match RStarTree::open_from_store(Box::new(store), None) {
            Err(DiskError::BadParams(_)) => {}
            other => panic!("expected BadParams, got {other:?}", other = other.err()),
        }
    }

    #[test]
    fn corrupt_page_rejected_at_open() {
        let tree = sample_tree(500);
        let mut store = mem_store_of(&tree);
        store.page_mut(0)[0] = 9; // neither leaf nor internal
        match RStarTree::open_from_store(Box::new(store), None) {
            Err(DiskError::Page(PageError::BadTag(9))) => {}
            other => panic!("expected BadTag, got {other:?}", other = other.err()),
        }
    }

    #[test]
    #[should_panic(expected = "read-only")]
    fn disk_backed_tree_rejects_insert() {
        let tree = sample_tree(100);
        let mut disk = RStarTree::open_from_store(Box::new(mem_store_of(&tree)), None).unwrap();
        disk.insert(999, pt(1.0, 1.0));
    }

    #[test]
    #[should_panic(expected = "read-only")]
    fn disk_backed_tree_rejects_delete() {
        let tree = sample_tree(100);
        let mut disk = RStarTree::open_from_store(Box::new(mem_store_of(&tree)), None).unwrap();
        disk.delete(0, pt(0.0, 0.0));
    }
}
