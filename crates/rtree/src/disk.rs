//! Disk-backed storage mode: a [`PageStore`] + [`BufferPool`] under the
//! tree.
//!
//! [`RStarTree::save_to_path`] serializes a tree into an on-disk page
//! file ([`nwc_store::FileStore`] format: magic/version header,
//! per-page CRC-32 checksums). [`RStarTree::open_from_path`] opens such
//! a file and returns a tree whose node accesses run through a buffer
//! pool:
//!
//! - a **pool miss** performs a real, checksum-verified page read from
//!   the store and is charged to [`IoStats::node_reads`] — physical I/O;
//! - a **pool hit** costs no I/O and is charged to
//!   [`IoStats::buffer_hits`].
//!
//! Both count as one *logical* node access, so per-query I/O
//! attribution (`snapshot`/`since` diffs) — and therefore every
//! algorithm's "nodes visited" figure — is identical to the in-memory
//! arena's. With an unbounded pool the physical + hit split is the only
//! observable difference.
//!
//! # Residency model: demand paging
//!
//! The arena of a disk-backed tree is **empty**. Node ids are page ids
//! (the identity map), and a node access faults its page in through the
//! buffer pool and decodes the node *on the fault*:
//!
//! - a pool **hit** reuses the already-decoded node from the
//!   [`NodeCache`] (one decoded node per resident page, invariantly);
//! - a pool **miss** reads + decodes, caching both page and node;
//! - **eviction** drops the page *and* its decoded node in the same
//!   critical section (the pool's evict hook runs under the pool lock),
//!   so `pool capacity × (page + decoded node)` truly bounds resident
//!   memory. [`TreeStorage::peak_resident_nodes`] reports the high-water
//!   mark.
//!
//! ## Pin protocol
//!
//! Query descent holds a parent's node while visiting its children
//! (recursion, browser frontier expansion). Each charged node access
//! therefore returns a guard ([`PagedNode`]) that **pins** the page
//! until dropped; the decoded node is additionally kept alive by an
//! `Arc`, so even a page dropped by [`BufferPool::clear`] cannot
//! invalidate a live reference. When every frame is pinned (possible
//! only when the pool capacity is below the tree height), the access
//! falls back to an uncached scratch read: the node is decoded, used,
//! and dropped — counted as *transient* residency in the peak gauge,
//! never cached.
//!
//! Uncharged bookkeeping reads (validation, entry iteration,
//! re-serialization, IWP builds) bypass the pool entirely: they reuse a
//! cached node when one is resident and otherwise decode from an
//! **uncounted** store read, leaving every pool and I/O counter
//! untouched.
//!
//! ## Error policy after open
//!
//! The open-time scan is the integrity gate: it reads and
//! checksum-verifies every page and validates the whole tree structure.
//! After a successful open, a failed page read (device error, file
//! truncated behind our back) is counted in
//! [`TreeStorage::io_errors`], charged as a physical read, and retried
//! once; a second failure panics — there is no arena copy to fall back
//! on, and silently wrong answers are worse than a dead query thread.
//! (The pool recovers poisoned locks, so one panicking query does not
//! brick concurrent ones.) A page that passes its checksum but no
//! longer decodes panics immediately: that is memory or store
//! corruption, not transient I/O.
//!
//! Disk-backed trees are **read-only**: [`RStarTree::insert`] and
//! [`RStarTree::delete`] return [`TreeError`](crate::TreeError)
//! `::ReadOnly` rather than silently diverge from the file.

use crate::node::{Node, NodeKind};
use crate::page::decode_node;
use crate::tree::RStarTree;
use crate::{IoStats, NodeId, PageError, TreeParams, PAGE_SIZE};
use nwc_geom::{Point, Rect};
use nwc_store::{Access, BufferPool, FileStore, PageStore, PoolStats, StoreError};
use std::collections::HashMap;
use std::path::Path;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// An error produced while saving or opening a disk-backed tree.
#[derive(Debug)]
pub enum DiskError {
    /// The page store rejected the file (I/O failure, bad magic or
    /// version, checksum mismatch, truncation, …).
    Store(StoreError),
    /// The pages were readable but do not decode into a valid tree.
    Page(PageError),
    /// The file header carries tree parameters this build rejects.
    BadParams(&'static str),
}

impl std::fmt::Display for DiskError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DiskError::Store(e) => write!(f, "page store error: {e}"),
            DiskError::Page(e) => write!(f, "page decode error: {e}"),
            DiskError::BadParams(what) => write!(f, "invalid tree parameters in header: {what}"),
        }
    }
}

impl std::error::Error for DiskError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DiskError::Store(e) => Some(e),
            DiskError::Page(e) => Some(e),
            DiskError::BadParams(_) => None,
        }
    }
}

impl From<StoreError> for DiskError {
    fn from(e: StoreError) -> Self {
        DiskError::Store(e)
    }
}

impl From<PageError> for DiskError {
    fn from(e: PageError) -> Self {
        DiskError::Page(e)
    }
}

/// What dropping a [`PagedNode`] must release.
enum Release {
    /// A charged access pinned the page: unpin it.
    Unpin,
    /// Scratch fallback (all frames pinned): decrement the transient
    /// residency counter.
    Transient,
    /// Uncharged peek: nothing to release.
    None,
}

/// A guard over one decoded node of a disk-backed tree.
///
/// Keeps the node alive (`Arc`) and — for charged accesses — the
/// backing page pinned in the buffer pool, so a parent's page cannot be
/// evicted mid-descent while children are visited.
pub(crate) struct PagedNode<'t> {
    storage: &'t TreeStorage,
    page: u32,
    node: Arc<Node>,
    release: Release,
}

impl PagedNode<'_> {
    #[inline]
    pub(crate) fn node(&self) -> &Node {
        &self.node
    }
}

impl Drop for PagedNode<'_> {
    fn drop(&mut self) {
        match self.release {
            Release::Unpin => {
                self.storage.pool.unpin(self.page);
            }
            Release::Transient => {
                self.storage.cache.transient.fetch_sub(1, Ordering::Relaxed);
            }
            Release::None => {}
        }
    }
}

/// The decoded-node side of the demand pager: one `Arc<Node>` per
/// pool-resident page, plus the residency gauges.
///
/// The map is mutated only in lock-step with pool residency: inserts
/// happen inside the pool's `pin_with_page` critical section, removals
/// inside the pool's evict hook (also under the pool lock). Lock order
/// is therefore always pool → cache, and the cache lock alone (peeks)
/// can never deadlock against it.
struct NodeCache {
    map: Mutex<HashMap<u32, Arc<Node>>>,
    /// High-water mark of `map.len() + transient`.
    resident_peak: AtomicUsize,
    /// Live scratch-decoded nodes (all-frames-pinned fallback).
    transient: AtomicUsize,
}

impl NodeCache {
    fn new() -> Self {
        NodeCache {
            map: Mutex::new(HashMap::new()),
            resident_peak: AtomicUsize::new(0),
            transient: AtomicUsize::new(0),
        }
    }

    /// Locks the map, recovering from poisoning (a panic elsewhere
    /// leaves the map consistent: every entry is a finished insert).
    fn lock_map(&self) -> MutexGuard<'_, HashMap<u32, Arc<Node>>> {
        self.map.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn note_peak(&self, resident: usize) {
        self.resident_peak.fetch_max(resident, Ordering::Relaxed);
    }
}

/// The storage half of a disk-backed tree: the page store, the buffer
/// pool in front of it, the decoded-node cache evicted in lock-step
/// with the pool, and the root metadata captured by the open scan.
pub struct TreeStorage {
    store: Box<dyn PageStore>,
    pool: BufferPool,
    cache: Arc<NodeCache>,
    n_pages: u32,
    root_level: u32,
    root_mbr: Rect,
    node_count: usize,
    /// Page reads that failed *after* a successful open (device errors,
    /// post-open truncation). Each failed attempt is still charged as a
    /// physical read so I/O totals stay aligned with the pool's miss
    /// counter; the access is retried once, then panics.
    io_errors: AtomicU64,
}

impl TreeStorage {
    /// Faults one node in for a charged query access: pool hit reuses
    /// the cached decode, miss reads + decodes + caches, and the
    /// returned guard pins the page (see the module docs).
    pub(crate) fn fetch(&self, page: u32, stats: &IoStats) -> PagedNode<'_> {
        for attempt in 0..2 {
            match self.pool.pin_with_page(
                page,
                |buf| self.store.read_page(page, buf),
                |bytes, cached| self.decode_under_lock(page, bytes, cached),
            ) {
                Ok((access, _cached, Ok((node, release)))) => {
                    match access {
                        Access::Hit => stats.record_buffer_hit(),
                        Access::Miss => stats.record_node_read(),
                    }
                    return PagedNode {
                        storage: self,
                        page,
                        node,
                        release,
                    };
                }
                Ok((_, cached, Err(e))) => {
                    // The bytes passed their checksum but do not decode:
                    // corruption, not transient I/O. Release the pin the
                    // failed access took, then refuse to continue.
                    if cached {
                        self.pool.unpin(page);
                    }
                    panic!("page {page} passed its checksum but does not decode: {e}");
                }
                Err(e) => {
                    // Physical read failure after open. Charge the
                    // attempt (the pool counted its miss), note the
                    // error, retry once.
                    stats.record_node_read();
                    self.io_errors.fetch_add(1, Ordering::Relaxed);
                    if attempt == 1 {
                        panic!("page {page} unreadable after open (retried): {e}");
                    }
                }
            }
        }
        unreachable!("fetch loop exits by return or panic");
    }

    /// Runs inside the pool's critical section: classify against the
    /// node cache and decode on first touch, so page residency and node
    /// residency can never diverge.
    fn decode_under_lock(
        &self,
        page: u32,
        bytes: &[u8],
        cached: bool,
    ) -> Result<(Arc<Node>, Release), PageError> {
        if cached {
            let mut map = self.cache.lock_map();
            if let Some(node) = map.get(&page) {
                return Ok((node.clone(), Release::Unpin));
            }
            let node = Arc::new(decode_node(bytes, self.n_pages)?);
            map.insert(page, node.clone());
            let resident = map.len() + self.cache.transient.load(Ordering::Relaxed);
            self.cache.note_peak(resident);
            Ok((node, Release::Unpin))
        } else {
            // All frames pinned: the bytes live in a scratch buffer and
            // the decode is transient — alive only while the guard is.
            let node = Arc::new(decode_node(bytes, self.n_pages)?);
            let transient = self.cache.transient.fetch_add(1, Ordering::Relaxed) + 1;
            let resident = self.cache.lock_map().len() + transient;
            self.cache.note_peak(resident);
            Ok((node, Release::Transient))
        }
    }

    /// Reads a node for bookkeeping (uncharged, unpinned): reuses a
    /// resident decode, otherwise decodes from an uncounted store read
    /// without touching the pool.
    pub(crate) fn peek(&self, page: u32) -> PagedNode<'_> {
        if let Some(node) = self.cache.lock_map().get(&page).cloned() {
            return PagedNode {
                storage: self,
                page,
                node,
                release: Release::None,
            };
        }
        let mut buf = [0u8; PAGE_SIZE];
        if let Err(e) = self.store.read_page_uncounted(page, &mut buf) {
            panic!("page {page} unreadable during bookkeeping read: {e}");
        }
        let node = decode_node(&buf, self.n_pages)
            .unwrap_or_else(|e| panic!("page {page} does not decode during bookkeeping read: {e}"));
        PagedNode {
            storage: self,
            page,
            node: Arc::new(node),
            release: Release::None,
        }
    }

    /// Level of the root node (captured at open; leaves are level 0).
    pub(crate) fn root_level(&self) -> u32 {
        self.root_level
    }

    /// MBR of the root node (captured at open).
    pub(crate) fn root_mbr(&self) -> Rect {
        self.root_mbr
    }

    /// Number of pages = nodes in the file (captured at open).
    pub(crate) fn node_count(&self) -> usize {
        self.node_count
    }

    /// Buffer pool counters and occupancy.
    pub fn pool_stats(&self) -> PoolStats {
        self.pool.stats()
    }

    /// High-water mark of simultaneously resident decoded nodes (cached
    /// per pool residency + live transient decodes). With a pool of `C`
    /// frames and `C ≥` tree height this never exceeds `C` — the bound
    /// the demand pager exists to provide.
    pub fn peak_resident_nodes(&self) -> usize {
        self.cache.resident_peak.load(Ordering::Relaxed)
    }

    /// Physical page reads issued to the backing store (page fetches on
    /// pool misses; the open-time scan and bookkeeping reads are
    /// excluded).
    pub fn physical_reads(&self) -> u64 {
        self.store.physical_reads()
    }

    /// Page reads that failed after open (0 on a healthy store).
    pub fn io_errors(&self) -> u64 {
        self.io_errors.load(Ordering::Relaxed)
    }

    /// Drops every buffered page (and with each its decoded node) and
    /// zeroes the pool, store and residency counters: the next access
    /// sequence measures from a cold buffer.
    pub fn reset(&self) {
        self.pool.clear();
        // The evict hook emptied the map page-by-page; the explicit
        // clear keeps the invariant obvious and drops nothing extra.
        self.cache.lock_map().clear();
        self.pool.reset_stats();
        self.store.reset_counters();
        self.io_errors.store(0, Ordering::Relaxed);
        self.cache.resident_peak.store(0, Ordering::Relaxed);
    }
}

impl RStarTree {
    /// Serializes this tree into an on-disk page file at `path`,
    /// with header + per-page checksums, and syncs it to stable
    /// storage. The replacement is atomic: the pages are staged in a
    /// sibling temp file and renamed over `path` only after a full
    /// sync, so a crash mid-save leaves any previous file intact.
    pub fn save_to_path(&self, path: impl AsRef<Path>) -> Result<(), DiskError> {
        let file = self.to_page_file();
        let pages: Vec<[u8; PAGE_SIZE]> =
            (0..file.page_count()).map(|i| *file.page(i as u32)).collect();
        let user = [
            self.params.max_entries as u64,
            self.params.min_entries as u64,
            self.params.reinsert_count as u64,
            self.len() as u64,
        ];
        FileStore::create(path.as_ref(), file.root_page(), user, &pages)?;
        Ok(())
    }

    /// Opens a page file written by [`RStarTree::save_to_path`] as a
    /// disk-backed, read-only, demand-paged tree.
    ///
    /// `pool_capacity` bounds the buffer pool in pages — and with it
    /// the resident decoded nodes (see the module docs); `None` means
    /// unbounded (every page misses once, then always hits). The open
    /// itself reads and checksum-verifies every page and validates the
    /// tree structure; those reads are *not* counted — the store and
    /// pool counters start at zero so the first query measures a cold
    /// buffer.
    pub fn open_from_path(
        path: impl AsRef<Path>,
        pool_capacity: Option<usize>,
    ) -> Result<RStarTree, DiskError> {
        let store = FileStore::open(path.as_ref())?;
        RStarTree::open_from_store(Box::new(store), pool_capacity)
    }

    /// As [`RStarTree::open_from_path`], over any [`PageStore`]
    /// implementation (e.g. a [`nwc_store::MemStore`] in tests).
    pub fn open_from_store(
        store: Box<dyn PageStore>,
        pool_capacity: Option<usize>,
    ) -> Result<RStarTree, DiskError> {
        let meta = store.meta();
        let [max_entries, min_entries, reinsert_count, stored_len] = meta.user;
        let params = TreeParams {
            max_entries: usize::try_from(max_entries)
                .map_err(|_| DiskError::BadParams("max_entries overflows usize"))?,
            min_entries: usize::try_from(min_entries)
                .map_err(|_| DiskError::BadParams("min_entries overflows usize"))?,
            reinsert_count: usize::try_from(reinsert_count)
                .map_err(|_| DiskError::BadParams("reinsert_count overflows usize"))?,
        };
        params.check().map_err(DiskError::BadParams)?;

        let n_pages = meta.page_count;
        if n_pages == 0 || meta.root_page >= n_pages {
            return Err(DiskError::Page(PageError::BadRoot));
        }

        // Validation scan: decode every reachable page once (checksummed
        // read), checking the cross-page invariants the per-page decoder
        // cannot — level succession, parent-declared child MBRs matching
        // the child's header, acyclicity — and capturing the root
        // metadata + entry count. Nothing is retained: the tree starts
        // with zero resident nodes.
        let mut seen = vec![false; n_pages as usize];
        let mut buf = [0u8; PAGE_SIZE];
        let mut len = 0usize;
        let mut node_count = 0usize;
        let mut root_level = 0u32;
        let mut root_mbr = Rect::from_point(Point::ORIGIN);
        // (page, what the parent's branch declared: level and MBR).
        let mut stack: Vec<(u32, Option<(u32, Rect)>)> = vec![(meta.root_page, None)];
        while let Some((page, declared)) = stack.pop() {
            if seen[page as usize] {
                return Err(DiskError::Page(PageError::Cycle(page)));
            }
            seen[page as usize] = true;
            store.read_page(page, &mut buf)?;
            let node = decode_node(&buf, n_pages)?;
            match declared {
                Some((level, mbr)) => {
                    if node.level != level {
                        return Err(DiskError::Page(PageError::Invalid(
                            "child level is not parent level - 1",
                        )));
                    }
                    if node.mbr != mbr {
                        return Err(DiskError::Page(PageError::Invalid(
                            "parent-declared child MBR mismatch",
                        )));
                    }
                }
                None => {
                    root_level = node.level;
                    root_mbr = node.mbr;
                }
            }
            node_count += 1;
            match &node.kind {
                NodeKind::Leaf(entries) => len += entries.len(),
                NodeKind::Internal(branches) => {
                    for b in branches {
                        stack.push((b.child.0, Some((node.level - 1, b.mbr))));
                    }
                }
            }
        }
        // A page file written by `save_to_path` has no unreachable
        // pages; checksum-verify any stragglers anyway so the open
        // remains the integrity gate for the whole file.
        for page in 0..n_pages {
            if !seen[page as usize] {
                store.read_page(page, &mut buf)?;
            }
        }
        if stored_len != len as u64 {
            return Err(DiskError::Page(PageError::Invalid(
                "stored object count does not match leaf entries",
            )));
        }
        // The open scan is setup cost, not query I/O.
        store.reset_counters();

        let mut tree = RStarTree::with_params(params);
        tree.nodes.clear();
        tree.free.clear();
        tree.root = NodeId(meta.root_page);
        tree.len = len;
        let pool = match pool_capacity {
            Some(cap) => BufferPool::new(cap),
            None => BufferPool::unbounded(),
        };
        let cache = Arc::new(NodeCache::new());
        let hook_cache = Arc::clone(&cache);
        pool.set_evict_hook(Box::new(move |page| {
            hook_cache.lock_map().remove(&page);
        }));
        tree.storage = Some(Box::new(TreeStorage {
            store,
            pool,
            cache,
            n_pages,
            root_level,
            root_mbr,
            node_count,
            io_errors: AtomicU64::new(0),
        }));
        Ok(tree)
    }

    /// The storage layer of a disk-backed tree, or `None` for an
    /// arena-only tree.
    pub fn storage(&self) -> Option<&TreeStorage> {
        self.storage.as_deref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::TreeError;
    use nwc_geom::{pt, rect};
    use nwc_store::MemStore;

    fn sample_tree(n: usize) -> RStarTree {
        let pts: Vec<_> = (0..n)
            .map(|i| pt(((i * 31) % 499) as f64, ((i * 57) % 491) as f64))
            .collect();
        RStarTree::bulk_load(&pts)
    }

    fn mem_store_of(tree: &RStarTree) -> MemStore {
        let file = tree.to_page_file();
        let pages: Vec<[u8; PAGE_SIZE]> =
            (0..file.page_count()).map(|i| *file.page(i as u32)).collect();
        let user = [
            tree.params().max_entries as u64,
            tree.params().min_entries as u64,
            tree.params().reinsert_count as u64,
            tree.len() as u64,
        ];
        MemStore::new(pages, file.root_page(), user).unwrap()
    }

    #[test]
    fn save_open_roundtrip_on_disk() {
        let dir = std::env::temp_dir().join("nwc-disk-roundtrip");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tree.nwc");
        let tree = sample_tree(2000);
        tree.save_to_path(&path).unwrap();
        let disk = RStarTree::open_from_path(&path, None).unwrap();
        assert_eq!(disk.len(), tree.len());
        assert_eq!(disk.height(), tree.height());
        crate::validate::check_invariants(&disk).unwrap();
        // Validation peeks charge nothing: counters still pristine.
        let s = disk.storage().unwrap().pool_stats();
        assert_eq!((s.hits, s.misses), (0, 0));
        assert_eq!(disk.storage().unwrap().physical_reads(), 0);
        let w = rect(100.0, 100.0, 300.0, 280.0);
        let mut a: Vec<u32> = tree.window_query(&w).iter().map(|e| e.id).collect();
        let mut b: Vec<u32> = disk.window_query(&w).iter().map(|e| e.id).collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn unbounded_pool_misses_each_page_once() {
        let tree = sample_tree(3000);
        let pages = tree.to_page_file().page_count();
        let disk = RStarTree::open_from_store(Box::new(mem_store_of(&tree)), None).unwrap();
        // Open-time scan must not pollute the counters.
        assert_eq!(disk.storage().unwrap().physical_reads(), 0);
        let w = rect(0.0, 0.0, 499.0, 491.0); // covers everything
        disk.window_query(&w);
        disk.window_query(&w);
        let s = disk.storage().unwrap().pool_stats();
        assert_eq!(s.misses as usize, pages, "each page faults exactly once");
        assert_eq!(s.hits as usize, pages, "second pass all hits");
        assert_eq!(disk.storage().unwrap().physical_reads(), s.misses);
        // Logical access counts match the arena tree's.
        tree.stats().reset();
        tree.window_query(&w);
        tree.window_query(&w);
        assert_eq!(disk.stats().accesses(), tree.stats().node_reads());
    }

    #[test]
    fn tiny_pool_thrashes_but_answers_identically() {
        // Capacity 2: the pinned root occupies one frame, the second
        // churns through the rest of this height-3 tree.
        let tree = sample_tree(3000);
        let disk = RStarTree::open_from_store(Box::new(mem_store_of(&tree)), Some(2)).unwrap();
        for w in [
            rect(0.0, 0.0, 120.0, 120.0),
            rect(200.0, 150.0, 340.0, 400.0),
        ] {
            let mut a: Vec<u32> = tree.window_query(&w).iter().map(|e| e.id).collect();
            let mut b: Vec<u32> = disk.window_query(&w).iter().map(|e| e.id).collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b);
        }
        let s = disk.storage().unwrap().pool_stats();
        assert!(s.evictions > 0, "capacity 2 on a deep descent must evict");
        assert_eq!(disk.storage().unwrap().io_errors(), 0);
    }

    #[test]
    fn pool_capacity_bounds_resident_nodes() {
        let tree = sample_tree(3000);
        assert!(tree.height() <= 4, "test assumes capacity >= height");
        let cap = 4usize;
        let disk =
            RStarTree::open_from_store(Box::new(mem_store_of(&tree)), Some(cap)).unwrap();
        for w in [
            rect(0.0, 0.0, 499.0, 491.0),
            rect(10.0, 10.0, 250.0, 250.0),
            rect(300.0, 5.0, 480.0, 470.0),
        ] {
            disk.window_query(&w);
        }
        let storage = disk.storage().unwrap();
        let peak = storage.peak_resident_nodes();
        assert!(peak > 0, "queries must have decoded something");
        assert!(peak <= cap, "peak resident nodes {peak} exceeds pool capacity {cap}");
        assert!(storage.pool_stats().evictions > 0, "the tree outsizes the pool");
    }

    #[test]
    fn reset_restores_cold_buffer() {
        let tree = sample_tree(1000);
        let disk = RStarTree::open_from_store(Box::new(mem_store_of(&tree)), None).unwrap();
        let w = rect(0.0, 0.0, 499.0, 491.0);
        disk.window_query(&w);
        let storage = disk.storage().unwrap();
        let warm = storage.pool_stats();
        assert!(warm.misses > 0);
        assert!(storage.peak_resident_nodes() > 0);
        storage.reset();
        let cold = storage.pool_stats();
        assert_eq!((cold.hits, cold.misses, cold.resident), (0, 0, 0));
        assert_eq!(storage.peak_resident_nodes(), 0);
        disk.window_query(&w);
        assert_eq!(storage.pool_stats().misses, warm.misses, "cold again");
    }

    #[test]
    fn bad_params_in_header_rejected() {
        let tree = sample_tree(100);
        let file = tree.to_page_file();
        let pages: Vec<[u8; PAGE_SIZE]> =
            (0..file.page_count()).map(|i| *file.page(i as u32)).collect();
        // max_entries = 1 is not a legal R*-tree fanout.
        let store = MemStore::new(pages, file.root_page(), [1, 0, 0, 0]).unwrap();
        match RStarTree::open_from_store(Box::new(store), None) {
            Err(DiskError::BadParams(_)) => {}
            other => panic!("expected BadParams, got {other:?}", other = other.err()),
        }
    }

    #[test]
    fn corrupt_page_rejected_at_open() {
        let tree = sample_tree(500);
        let mut store = mem_store_of(&tree);
        store.page_mut(0)[0] = 9; // neither leaf nor internal
        match RStarTree::open_from_store(Box::new(store), None) {
            Err(DiskError::Page(PageError::BadTag(9))) => {}
            other => panic!("expected BadTag, got {other:?}", other = other.err()),
        }
    }

    #[test]
    fn wrong_stored_len_rejected_at_open() {
        let tree = sample_tree(300);
        let file = tree.to_page_file();
        let pages: Vec<[u8; PAGE_SIZE]> =
            (0..file.page_count()).map(|i| *file.page(i as u32)).collect();
        let user = [
            tree.params().max_entries as u64,
            tree.params().min_entries as u64,
            tree.params().reinsert_count as u64,
            tree.len() as u64 + 1,
        ];
        let store = MemStore::new(pages, file.root_page(), user).unwrap();
        match RStarTree::open_from_store(Box::new(store), None) {
            Err(DiskError::Page(PageError::Invalid(_))) => {}
            other => panic!("expected Invalid, got {other:?}", other = other.err()),
        }
    }

    #[test]
    fn disk_backed_tree_rejects_insert_with_typed_error() {
        let tree = sample_tree(100);
        let mut disk = RStarTree::open_from_store(Box::new(mem_store_of(&tree)), None).unwrap();
        assert_eq!(disk.insert(999, pt(1.0, 1.0)), Err(TreeError::ReadOnly));
        assert_eq!(disk.len(), 100, "failed insert must not change the tree");
    }

    #[test]
    fn disk_backed_tree_rejects_delete_with_typed_error() {
        let tree = sample_tree(100);
        let mut disk = RStarTree::open_from_store(Box::new(mem_store_of(&tree)), None).unwrap();
        assert_eq!(disk.delete(0, pt(0.0, 0.0)), Err(TreeError::ReadOnly));
        assert_eq!(disk.len(), 100, "failed delete must not change the tree");
    }
}
