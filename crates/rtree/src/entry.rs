//! Leaf entries: indexed point objects.

use nwc_geom::Point;

/// Identifier of a data object, typically its index in the caller's
/// dataset vector. `u32` keeps entries compact (16 bytes apiece).
pub type ObjectId = u32;

/// A leaf-level entry of the R\*-tree: a point object and its identifier.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Entry {
    /// The object identifier.
    pub id: ObjectId,
    /// The object location.
    pub point: Point,
}

impl Entry {
    /// Creates an entry.
    #[inline]
    pub const fn new(id: ObjectId, point: Point) -> Self {
        Entry { id, point }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entry_is_compact() {
        // id + point + padding; the paper packs 50 of these per 4 KiB page.
        assert!(std::mem::size_of::<Entry>() <= 24);
    }

    #[test]
    fn construction() {
        let e = Entry::new(7, Point::new(1.0, 2.0));
        assert_eq!(e.id, 7);
        assert_eq!(e.point, Point::new(1.0, 2.0));
    }
}
