//! Sort-Tile-Recursive (STR) bulk loading (Leutenegger et al., ICDE 1997).
//!
//! The experiments index datasets of up to 255 k points; STR builds the
//! tree level by level with ~100 % leaf fill, which is both dramatically
//! faster than repeated insertion and produces well-clustered pages. A
//! paper-faithful alternative build (one-by-one R\* insert) remains
//! available through [`RStarTree::insert_all`] and is compared in the
//! `ablation_build` benchmark.

use crate::node::{Branch, Node, NodeKind};
use crate::tree::RStarTree;
use crate::{Entry, NodeId, ObjectId, TreeParams};
use nwc_geom::Point;

impl RStarTree {
    /// Bulk-loads `points` (ids `0..points.len()`) with the paper's
    /// default parameters.
    pub fn bulk_load(points: &[Point]) -> Self {
        RStarTree::bulk_load_with_params(points, TreeParams::default())
    }

    /// Bulk-loads with explicit parameters using STR packing.
    pub fn bulk_load_with_params(points: &[Point], params: TreeParams) -> Self {
        params.validate();
        let entries: Vec<Entry> = points
            .iter()
            .enumerate()
            .map(|(i, &p)| {
                assert!(p.is_finite(), "cannot index non-finite point {p:?}");
                Entry::new(i as ObjectId, p)
            })
            .collect();
        RStarTree::bulk_load_entries(entries, params)
    }

    /// Bulk-loads pre-built entries (callers controlling object ids).
    pub fn bulk_load_entries(mut entries: Vec<Entry>, params: TreeParams) -> Self {
        params.validate();
        let mut tree = RStarTree::with_params(params);
        if entries.is_empty() {
            return tree;
        }
        tree.len = entries.len();
        let cap = params.max_entries;

        // --- Leaf level: STR tiling. ---
        // Partition into vertical slabs of ~sqrt(#leaves) leaves each,
        // sorting by x across slabs and by y within a slab.
        let n_leaves = entries.len().div_ceil(cap);
        let slabs = (n_leaves as f64).sqrt().ceil() as usize;
        let per_slab = entries.len().div_ceil(slabs);
        entries.sort_by(|a, b| a.point.x.total_cmp(&b.point.x));

        let mut leaf_ids: Vec<NodeId> = Vec::with_capacity(n_leaves);
        for slab in entries.chunks_mut(per_slab) {
            slab.sort_by(|a, b| a.point.y.total_cmp(&b.point.y));
            for run in slab.chunks(cap) {
                let mut node = Node::new_leaf();
                node.kind = NodeKind::Leaf(run.to_vec());
                let id = tree.alloc(node);
                tree.recompute_mbr(id);
                leaf_ids.push(id);
            }
        }

        // --- Upper levels: pack children by center, same STR tiling. ---
        let mut level_ids = leaf_ids;
        let mut level = 1u32;
        while level_ids.len() > 1 {
            let mut keyed: Vec<(Point, NodeId)> = level_ids
                .iter()
                .map(|&id| (tree.node(id).mbr.center(), id))
                .collect();
            let n_nodes = keyed.len().div_ceil(cap);
            let slabs = (n_nodes as f64).sqrt().ceil() as usize;
            let per_slab = keyed.len().div_ceil(slabs);
            keyed.sort_by(|a, b| a.0.x.total_cmp(&b.0.x));

            let mut next: Vec<NodeId> = Vec::with_capacity(n_nodes);
            for slab in keyed.chunks_mut(per_slab) {
                slab.sort_by(|a, b| a.0.y.total_cmp(&b.0.y));
                for run in slab.chunks(cap) {
                    let mut node = Node::new_internal(level);
                    node.kind = NodeKind::Internal(
                        run.iter()
                            .map(|&(_, id)| Branch {
                                child: id,
                                mbr: tree.node(id).mbr,
                            })
                            .collect(),
                    );
                    let id = tree.alloc(node);
                    tree.recompute_mbr(id);
                    next.push(id);
                }
            }
            level_ids = next;
            level += 1;
        }

        // The pre-allocated empty root from `with_params` is replaced.
        let old_root = tree.root;
        tree.root = level_ids[0];
        if old_root != tree.root {
            tree.dealloc(old_root);
        }
        tree
    }
}

/// Cuts `entries` into at most `k` spatially coherent tiles using the
/// same Sort-Tile-Recursive discipline as the bulk loader: vertical
/// slabs by `x`, then horizontal runs by `y` within each slab. Tiles
/// are disjoint, cover every entry exactly once, and are returned in
/// slab-major order; empty tiles are dropped, so the result holds
/// `min(k, …)` non-empty tiles (fewer than `k` when there are fewer
/// entries than tiles). `k == 0` is treated as `k == 1`.
///
/// With `k == 1` the input is returned as the single tile **unchanged**
/// (same order), so a 1-shard build is bit-identical to an unsharded
/// one — sharded-index code relies on this for its K=1 fast path.
///
/// All sorts use `total_cmp` and are stable, so the tiling is fully
/// deterministic in the input order (non-finite coordinates tile
/// safely, as in [`RStarTree::bulk_load_entries`]).
pub fn str_partition(entries: Vec<Entry>, k: usize) -> Vec<Vec<Entry>> {
    let k = k.max(1);
    if k == 1 || entries.len() <= 1 {
        return if entries.is_empty() {
            Vec::new()
        } else {
            vec![entries]
        };
    }
    let mut entries = entries;
    // Same slab shape as the bulk loader: ~sqrt(k) vertical slabs, each
    // carrying an equal share of the requested tiles (monotone split —
    // the first `k % slabs` slabs take one extra tile).
    let slabs = (k as f64).sqrt().ceil() as usize;
    let slabs = slabs.clamp(1, k);
    let per_slab = entries.len().div_ceil(slabs);
    entries.sort_by(|a, b| a.point.x.total_cmp(&b.point.x));

    let base_tiles = k / slabs;
    let extra_tiles = k % slabs;
    let mut tiles: Vec<Vec<Entry>> = Vec::with_capacity(k);
    for (i, slab) in entries.chunks_mut(per_slab).enumerate() {
        let want = base_tiles + usize::from(i < extra_tiles);
        let want = want.clamp(1, slab.len().max(1));
        slab.sort_by(|a, b| a.point.y.total_cmp(&b.point.y));
        let per_tile = slab.len().div_ceil(want);
        for run in slab.chunks(per_tile) {
            tiles.push(run.to_vec());
        }
    }
    tiles
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::check_invariants;
    use nwc_geom::pt;

    fn grid_points(n: usize) -> Vec<Point> {
        (0..n)
            .map(|i| pt((i % 53) as f64 * 1.7, (i / 53) as f64 * 2.3))
            .collect()
    }

    #[test]
    fn bulk_load_empty() {
        let t = RStarTree::bulk_load(&[]);
        assert!(t.is_empty());
        check_invariants(&t).unwrap();
    }

    #[test]
    fn bulk_load_single() {
        let t = RStarTree::bulk_load(&[pt(3.0, 4.0)]);
        assert_eq!(t.len(), 1);
        assert_eq!(t.height(), 1);
        check_invariants(&t).unwrap();
    }

    #[test]
    fn bulk_load_exact_capacity() {
        let t = RStarTree::bulk_load(&grid_points(50));
        assert_eq!(t.height(), 1);
        check_invariants(&t).unwrap();
    }

    #[test]
    fn bulk_load_two_levels() {
        let t = RStarTree::bulk_load(&grid_points(51));
        assert_eq!(t.height(), 2);
        assert_eq!(t.len(), 51);
        check_invariants(&t).unwrap();
    }

    #[test]
    fn bulk_load_large_checks_out() {
        let t = RStarTree::bulk_load(&grid_points(20_000));
        assert_eq!(t.len(), 20_000);
        assert!(t.height() >= 3);
        check_invariants(&t).unwrap();
        let mut ids: Vec<_> = t.iter_entries().map(|e| e.id).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..20_000).collect::<Vec<_>>());
    }

    #[test]
    fn bulk_load_extreme_coordinates() {
        // `bulk_load_entries` skips the finiteness assert, and even
        // finite extremes can feed the sorts values `partial_cmp` used
        // to choke on indirectly (the upper-level keys come from MBR
        // centers, where huge magnitudes round and overflow). The sorts
        // use `total_cmp`, so the build must succeed and stay sound.
        let mut points = vec![
            pt(1e150, -1e150),
            pt(-1e150, 1e150),
            pt(5e-324, -5e-324), // subnormals
            pt(-0.0, 0.0),
            pt(0.0, -0.0),
            pt(f64::MAX, f64::MIN),
        ];
        for i in 0..120 {
            let sign = if i % 2 == 0 { 1.0 } else { -1.0 };
            points.push(pt(sign * 10f64.powi(i - 60), (i as f64) * 1e100));
        }
        let entries: Vec<Entry> = points
            .iter()
            .enumerate()
            .map(|(i, &p)| Entry::new(i as ObjectId, p))
            .collect();
        let t = RStarTree::bulk_load_entries(entries, TreeParams::with_max_entries(8));
        assert_eq!(t.len(), points.len());
        check_invariants(&t).unwrap();
        let mut ids: Vec<_> = t.iter_entries().map(|e| e.id).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..points.len() as u32).collect::<Vec<_>>());
    }

    #[test]
    fn bulk_load_small_fanout() {
        let t =
            RStarTree::bulk_load_with_params(&grid_points(1000), TreeParams::with_max_entries(4));
        assert_eq!(t.len(), 1000);
        check_invariants(&t).unwrap();
    }

    fn partition_entries(n: usize) -> Vec<Entry> {
        grid_points(n)
            .iter()
            .enumerate()
            .map(|(i, &p)| Entry::new(i as ObjectId, p))
            .collect()
    }

    fn assert_exact_cover(tiles: &[Vec<Entry>], n: usize) {
        let mut ids: Vec<u32> = tiles.iter().flatten().map(|e| e.id).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..n as u32).collect::<Vec<_>>());
        assert!(tiles.iter().all(|t| !t.is_empty()), "empty tile returned");
    }

    #[test]
    fn str_partition_k1_is_identity() {
        let entries = partition_entries(100);
        let tiles = str_partition(entries.clone(), 1);
        assert_eq!(tiles.len(), 1);
        assert_eq!(tiles[0], entries, "k=1 must not reorder");
        assert!(str_partition(Vec::new(), 1).is_empty());
        // k=0 behaves as k=1.
        assert_eq!(str_partition(entries.clone(), 0), vec![entries]);
    }

    #[test]
    fn str_partition_covers_exactly_once() {
        for k in [2, 3, 4, 7, 16] {
            let tiles = str_partition(partition_entries(500), k);
            assert!(tiles.len() <= k, "k={k} produced {} tiles", tiles.len());
            assert!(!tiles.is_empty());
            assert_exact_cover(&tiles, 500);
        }
    }

    #[test]
    fn str_partition_more_tiles_than_entries() {
        let tiles = str_partition(partition_entries(3), 8);
        assert!(tiles.len() <= 3);
        assert_exact_cover(&tiles, 3);
    }

    #[test]
    fn str_partition_degenerate_all_same_point() {
        // Every point identical: all cuts are degenerate but the cover
        // must still be exact and tiles non-empty.
        let entries: Vec<Entry> = (0..64)
            .map(|i| Entry::new(i as ObjectId, pt(5.0, 5.0)))
            .collect();
        let tiles = str_partition(entries, 4);
        assert!(tiles.len() <= 4 && !tiles.is_empty());
        assert_exact_cover(&tiles, 64);
    }

    #[test]
    fn str_partition_tiles_are_spatially_disjointish() {
        // STR slabs are x-disjoint by construction: every entry of an
        // earlier slab has x <= every entry of a later slab.
        let tiles = str_partition(partition_entries(1000), 4);
        // With k=4 -> 2 slabs of 2 tiles each.
        assert_eq!(tiles.len(), 4);
        let max_x = |t: &Vec<Entry>| t.iter().map(|e| e.point.x).fold(f64::MIN, f64::max);
        let min_x = |t: &Vec<Entry>| t.iter().map(|e| e.point.x).fold(f64::MAX, f64::min);
        assert!(max_x(&tiles[1]) <= min_x(&tiles[2]) || min_x(&tiles[2]) == min_x(&tiles[1]));
    }
}
