//! Deletion with tree condensation (Guttman's `CondenseTree`).
//!
//! The NWC experiments run on static datasets, but a credible R\*-tree
//! must support removal: underfull nodes are dissolved and their
//! children reinserted at their original level, and a root with a single
//! internal child is collapsed.

use crate::insert::ChildItem;
use crate::node::NodeKind;
use crate::tree::{RStarTree, TreeError};
use crate::{NodeId, ObjectId};
use nwc_geom::Point;
use std::collections::VecDeque;

impl RStarTree {
    /// Removes one entry matching `id` *and* `point`. Returns
    /// `Ok(true)` when an entry was found and removed, `Ok(false)` when
    /// nothing matched, and [`TreeError::ReadOnly`] on a disk-backed
    /// tree (see [`crate::disk`]): the cached nodes would silently
    /// diverge from the page file. The tree is untouched on error.
    pub fn delete(&mut self, id: ObjectId, point: Point) -> Result<bool, TreeError> {
        self.check_mutable()?;
        let Some(path) = self.find_leaf_path(self.root, id, &point) else {
            return Ok(false);
        };
        let leaf = *path.last().unwrap();
        let entries = self.node_mut(leaf).entries_mut();
        let pos = entries
            .iter()
            .position(|e| e.id == id && e.point == point)
            .expect("find_leaf_path returned a leaf without the entry");
        entries.swap_remove(pos);
        self.len -= 1;
        self.condense(path);
        Ok(true)
    }

    /// Root-to-leaf path to a leaf containing the entry, if any.
    fn find_leaf_path(&self, node: NodeId, id: ObjectId, point: &Point) -> Option<Vec<NodeId>> {
        match &self.node(node).kind {
            NodeKind::Leaf(entries) => entries
                .iter()
                .any(|e| e.id == id && e.point == *point)
                .then(|| vec![node]),
            NodeKind::Internal(branches) => {
                for b in branches {
                    if b.mbr.contains_point(point) {
                        if let Some(mut path) = self.find_leaf_path(b.child, id, point) {
                            path.insert(0, node);
                            return Some(path);
                        }
                    }
                }
                None
            }
        }
    }

    /// Dissolves underfull nodes along `path` (leaf last), reinserts
    /// their orphans, and collapses a single-child internal root.
    fn condense(&mut self, path: Vec<NodeId>) {
        let mut orphans: Vec<ChildItem> = Vec::new();
        // Walk the path bottom-up, excluding the root.
        for idx in (1..path.len()).rev() {
            let nid = path[idx];
            if self.node(nid).len() < self.params.min_entries {
                // Remove from parent, orphan the children.
                let parent = path[idx - 1];
                let branches = self.node_mut(parent).branches_mut();
                let pos = branches.iter().position(|b| b.child == nid).unwrap();
                branches.swap_remove(pos);
                match &mut self.node_mut(nid).kind {
                    NodeKind::Leaf(entries) => {
                        orphans.extend(entries.drain(..).map(ChildItem::Entry));
                    }
                    NodeKind::Internal(branches) => {
                        orphans.extend(branches.drain(..).map(|b| ChildItem::Node(b.child)));
                    }
                }
                self.dealloc(nid);
            } else {
                self.recompute_mbr(nid);
            }
        }
        self.recompute_mbr(self.root);

        // Reinsert orphans, deepest (leaf entries) first so the tree
        // regains height before higher-level subtrees are re-attached.
        let mut items: Vec<ChildItem> = orphans;
        items.sort_by_key(|i| match i {
            ChildItem::Entry(_) => 0u32,
            ChildItem::Node(n) => self.node(*n).level + 1,
        });
        for item in items {
            let mut pending: VecDeque<ChildItem> = VecDeque::new();
            pending.push_back(item);
            let mut reinserted_levels: Vec<u32> = Vec::new();
            while let Some(it) = pending.pop_front() {
                self.insert_item(it, &mut reinserted_levels, &mut pending);
            }
        }

        // Collapse a root chain: internal root with one child.
        while self.node(self.root).level > 0 && self.node(self.root).len() == 1 {
            let old = self.root;
            self.root = self.node(old).branches()[0].child;
            self.dealloc(old);
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::validate::check_invariants;
    use crate::{RStarTree, TreeParams};
    use nwc_geom::{pt, rect, Point};

    fn pts(n: usize) -> Vec<Point> {
        (0..n)
            .map(|i| pt(((i * 13) % 89) as f64, ((i * 29) % 83) as f64))
            .collect()
    }

    #[test]
    fn delete_missing_returns_false() {
        let mut t = RStarTree::insert_all(&pts(50));
        assert!(!t.delete(999, pt(0.0, 0.0)).unwrap());
        assert_eq!(t.len(), 50);
    }

    #[test]
    fn delete_requires_matching_id() {
        let mut t = RStarTree::insert_all(&pts(50));
        let p = pts(50)[7];
        assert!(!t.delete(999, p).unwrap());
        assert!(t.delete(7, p).unwrap());
        assert_eq!(t.len(), 49);
    }

    #[test]
    fn delete_everything_small_fanout() {
        let points = pts(300);
        let mut t =
            RStarTree::bulk_load_with_params(&points, TreeParams::with_max_entries(5));
        for (i, &p) in points.iter().enumerate() {
            assert!(t.delete(i as u32, p).unwrap(), "missing object {i}");
            check_invariants(&t).unwrap();
        }
        assert!(t.is_empty());
        assert_eq!(t.height(), 1);
    }

    #[test]
    fn delete_half_then_query() {
        let points = pts(400);
        let mut t = RStarTree::insert_all(&points);
        for (i, &p) in points.iter().enumerate() {
            if i % 2 == 0 {
                assert!(t.delete(i as u32, p).unwrap());
            }
        }
        check_invariants(&t).unwrap();
        assert_eq!(t.len(), 200);
        let all = t.window_query(&rect(-1000.0, -1000.0, 1000.0, 1000.0));
        assert_eq!(all.len(), 200);
        assert!(all.iter().all(|e| e.id % 2 == 1));
    }

    #[test]
    fn delete_then_reinsert() {
        let points = pts(120);
        let mut t = RStarTree::insert_all(&points);
        for (i, &p) in points.iter().enumerate().take(60) {
            t.delete(i as u32, p).unwrap();
        }
        for (i, &p) in points.iter().enumerate().take(60) {
            t.insert(i as u32, p).unwrap();
        }
        check_invariants(&t).unwrap();
        assert_eq!(t.len(), 120);
    }
}
