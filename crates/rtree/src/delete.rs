//! Deletion with tree condensation (Guttman's `CondenseTree`).
//!
//! The NWC experiments run on static datasets, but a credible R\*-tree
//! must support removal: underfull nodes are dissolved and their
//! children reinserted at their original level, and a root with a single
//! internal child is collapsed.

use crate::insert::ChildItem;
use crate::node::NodeKind;
use crate::tree::{RStarTree, TreeError};
use crate::{NodeId, ObjectId};
use nwc_geom::Point;
use std::collections::VecDeque;

impl RStarTree {
    /// Removes one entry matching `id` *and* `point`. Returns
    /// `Ok(true)` when an entry was found and removed and `Ok(false)`
    /// when nothing matched.
    ///
    /// On a *writable* disk-backed tree (see [`crate::disk`], "Writable
    /// mode") the mutation lands in the in-memory overlay; call
    /// [`RStarTree::commit`] to make it durable. Returns
    /// [`TreeError::ReadOnly`] on a disk-backed tree whose store has no
    /// write path — the tree is untouched in that case. An
    /// [`TreeError::Io`] mid-mutation can leave the overlay partially
    /// updated: drop the tree without committing and reopen.
    pub fn delete(&mut self, id: ObjectId, point: Point) -> Result<bool, TreeError> {
        self.check_mutable()?;
        let Some(path) = self.find_leaf_path(self.root, id, &point)? else {
            return Ok(false);
        };
        // Fault the whole found path before mutating anything, so the
        // mutation body below only ever touches overlay-resident nodes.
        for &nid in &path {
            self.fault_for_write(nid)?;
        }
        let leaf = *path.last().unwrap();
        let entries = self.node_mut(leaf).entries_mut();
        let pos = entries
            .iter()
            .position(|e| e.id == id && e.point == point)
            .expect("find_leaf_path returned a leaf without the entry");
        entries.swap_remove(pos);
        self.len -= 1;
        self.condense(path)?;
        self.finish_mutation()?;
        Ok(true)
    }

    /// Root-to-leaf path to a leaf containing the entry, if any. A
    /// read-only search: nodes are peeked (uncharged, unpinned), never
    /// faulted for write.
    fn find_leaf_path(
        &self,
        node: NodeId,
        id: ObjectId,
        point: &Point,
    ) -> Result<Option<Vec<NodeId>>, TreeError> {
        let n = self.try_peek_node(node)?;
        match &n.kind {
            NodeKind::Leaf(entries) => Ok(entries
                .iter()
                .any(|e| e.id == id && e.point == *point)
                .then(|| vec![node])),
            NodeKind::Internal(branches) => {
                // The guard borrows the storage layer, so clone the
                // branch list before recursing (short: ≤ max_entries).
                let children: Vec<_> = branches
                    .iter()
                    .filter(|b| b.mbr.contains_point(point))
                    .map(|b| b.child)
                    .collect();
                drop(n);
                for child in children {
                    if let Some(mut path) = self.find_leaf_path(child, id, point)? {
                        path.insert(0, node);
                        return Ok(Some(path));
                    }
                }
                Ok(None)
            }
        }
    }

    /// Dissolves underfull nodes along `path` (leaf last), reinserts
    /// their orphans, and collapses a single-child internal root.
    fn condense(&mut self, path: Vec<NodeId>) -> Result<(), TreeError> {
        let mut orphans: Vec<ChildItem> = Vec::new();
        // Walk the path bottom-up, excluding the root.
        for idx in (1..path.len()).rev() {
            let nid = path[idx];
            if self.node(nid).len() < self.params.min_entries {
                // Remove from parent, orphan the children. Orphaned
                // subtree roots are detached with their branch metadata
                // (MBR + level) so reinsertion never reads them.
                let node_level = self.node(nid).level;
                let parent = path[idx - 1];
                let branches = self.node_mut(parent).branches_mut();
                let pos = branches.iter().position(|b| b.child == nid).unwrap();
                branches.swap_remove(pos);
                match &mut self.node_mut(nid).kind {
                    NodeKind::Leaf(entries) => {
                        orphans.extend(entries.drain(..).map(ChildItem::Entry));
                    }
                    NodeKind::Internal(branches) => {
                        let detached = std::mem::take(branches);
                        // A detached branch's MBR copy is stale when
                        // its child sits on the delete path (the walk
                        // below already shrank it); capture the child's
                        // *current* MBR instead.
                        for b in detached {
                            let mbr = self.child_mbr(&b);
                            orphans.push(ChildItem::Node {
                                id: b.child,
                                mbr,
                                level: node_level - 1,
                            });
                        }
                    }
                }
                self.dealloc(nid);
            } else {
                self.recompute_mbr(nid);
            }
        }
        self.recompute_mbr(self.root);

        // Reinsert orphans, deepest (leaf entries) first so the tree
        // regains height before higher-level subtrees are re-attached.
        let mut items: Vec<ChildItem> = orphans;
        items.sort_by_key(|i| match i {
            ChildItem::Entry(_) => 0u32,
            ChildItem::Node { level, .. } => level + 1,
        });
        for item in items {
            let mut pending: VecDeque<ChildItem> = VecDeque::new();
            pending.push_back(item);
            let mut reinserted_levels: Vec<u32> = Vec::new();
            while let Some(it) = pending.pop_front() {
                self.insert_item(it, &mut reinserted_levels, &mut pending)?;
            }
        }

        // Collapse a root chain: internal root with one child.
        loop {
            let next = {
                let root = self.try_peek_node(self.root)?;
                match &root.kind {
                    NodeKind::Internal(b) if root.level > 0 && b.len() == 1 => Some(b[0].child),
                    _ => None,
                }
            };
            let Some(child) = next else { break };
            let old = self.root;
            self.root = child;
            self.dealloc(old);
            // The new root may be a clean disk node while other state
            // (the old root's page, the entry count) changed: fault it
            // so the overlay is never empty after a real mutation and
            // the next commit rewrites the header root.
            self.fault_for_write(child)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::validate::check_invariants;
    use crate::{RStarTree, TreeParams};
    use nwc_geom::{pt, rect, Point};

    fn pts(n: usize) -> Vec<Point> {
        (0..n)
            .map(|i| pt(((i * 13) % 89) as f64, ((i * 29) % 83) as f64))
            .collect()
    }

    #[test]
    fn delete_missing_returns_false() {
        let mut t = RStarTree::insert_all(&pts(50));
        assert!(!t.delete(999, pt(0.0, 0.0)).unwrap());
        assert_eq!(t.len(), 50);
    }

    #[test]
    fn delete_requires_matching_id() {
        let mut t = RStarTree::insert_all(&pts(50));
        let p = pts(50)[7];
        assert!(!t.delete(999, p).unwrap());
        assert!(t.delete(7, p).unwrap());
        assert_eq!(t.len(), 49);
    }

    #[test]
    fn delete_everything_small_fanout() {
        let points = pts(300);
        let mut t =
            RStarTree::bulk_load_with_params(&points, TreeParams::with_max_entries(5));
        for (i, &p) in points.iter().enumerate() {
            assert!(t.delete(i as u32, p).unwrap(), "missing object {i}");
            check_invariants(&t).unwrap();
        }
        assert!(t.is_empty());
        assert_eq!(t.height(), 1);
    }

    #[test]
    fn delete_half_then_query() {
        let points = pts(400);
        let mut t = RStarTree::insert_all(&points);
        for (i, &p) in points.iter().enumerate() {
            if i % 2 == 0 {
                assert!(t.delete(i as u32, p).unwrap());
            }
        }
        check_invariants(&t).unwrap();
        assert_eq!(t.len(), 200);
        let all = t.window_query(&rect(-1000.0, -1000.0, 1000.0, 1000.0));
        assert_eq!(all.len(), 200);
        assert!(all.iter().all(|e| e.id % 2 == 1));
    }

    #[test]
    fn delete_then_reinsert() {
        let points = pts(120);
        let mut t = RStarTree::insert_all(&points);
        for (i, &p) in points.iter().enumerate().take(60) {
            t.delete(i as u32, p).unwrap();
        }
        for (i, &p) in points.iter().enumerate().take(60) {
            t.insert(i as u32, p).unwrap();
        }
        check_invariants(&t).unwrap();
        assert_eq!(t.len(), 120);
    }
}
