//! 2-D points and Euclidean distance.

use std::fmt;

/// A point in two-dimensional Euclidean space.
///
/// Data objects in the NWC problem are points; the query location `q` is a
/// point as well. Coordinates are `f64` because the paper's datasets are
/// normalized to a continuous `10,000 × 10,000` space.
#[derive(Clone, Copy, PartialEq, Default)]
pub struct Point {
    /// Horizontal coordinate.
    pub x: f64,
    /// Vertical coordinate.
    pub y: f64,
}

impl Point {
    /// The origin `(0, 0)`.
    pub const ORIGIN: Point = Point { x: 0.0, y: 0.0 };

    /// Creates a point from its coordinates.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Squared Euclidean distance to `other`.
    ///
    /// Prefer this over [`Point::dist`] in comparisons — it avoids the
    /// square root and is monotone in the true distance.
    #[inline]
    pub fn dist2(&self, other: &Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Euclidean distance to `other`.
    #[inline]
    pub fn dist(&self, other: &Point) -> f64 {
        self.dist2(other).sqrt()
    }

    /// Component-wise minimum of two points.
    #[inline]
    pub fn min(&self, other: &Point) -> Point {
        Point::new(self.x.min(other.x), self.y.min(other.y))
    }

    /// Component-wise maximum of two points.
    #[inline]
    pub fn max(&self, other: &Point) -> Point {
        Point::new(self.x.max(other.x), self.y.max(other.y))
    }

    /// Returns `true` when both coordinates are finite (no NaN/∞).
    #[inline]
    pub fn is_finite(&self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }

    /// Translates the point by `(dx, dy)`.
    #[inline]
    pub fn translate(&self, dx: f64, dy: f64) -> Point {
        Point::new(self.x + dx, self.y + dy)
    }
}

impl fmt::Debug for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.3}, {:.3})", self.x, self.y)
    }
}

impl From<(f64, f64)> for Point {
    #[inline]
    fn from((x, y): (f64, f64)) -> Self {
        Point::new(x, y)
    }
}

impl From<Point> for (f64, f64) {
    #[inline]
    fn from(p: Point) -> Self {
        (p.x, p.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dist_is_euclidean() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.dist(&b), 5.0);
        assert_eq!(a.dist2(&b), 25.0);
    }

    #[test]
    fn dist_is_symmetric() {
        let a = Point::new(-1.5, 2.0);
        let b = Point::new(7.25, -3.0);
        assert_eq!(a.dist(&b), b.dist(&a));
    }

    #[test]
    fn dist_to_self_is_zero() {
        let a = Point::new(123.456, -789.0);
        assert_eq!(a.dist(&a), 0.0);
    }

    #[test]
    fn min_max_are_componentwise() {
        let a = Point::new(1.0, 9.0);
        let b = Point::new(5.0, 2.0);
        assert_eq!(a.min(&b), Point::new(1.0, 2.0));
        assert_eq!(a.max(&b), Point::new(5.0, 9.0));
    }

    #[test]
    fn translate_moves_point() {
        let a = Point::new(1.0, 2.0).translate(-3.0, 0.5);
        assert_eq!(a, Point::new(-2.0, 2.5));
    }

    #[test]
    fn finite_detects_nan() {
        assert!(Point::new(0.0, 0.0).is_finite());
        assert!(!Point::new(f64::NAN, 0.0).is_finite());
        assert!(!Point::new(0.0, f64::INFINITY).is_finite());
    }

    #[test]
    fn tuple_conversions_roundtrip() {
        let p: Point = (2.0, 3.0).into();
        let t: (f64, f64) = p.into();
        assert_eq!(t, (2.0, 3.0));
    }
}
