//! 2-D computational geometry primitives shared by every crate in the
//! Nearest Window Cluster (NWC) workspace.
//!
//! The NWC paper (Huang et al., EDBT 2016) works in two-dimensional
//! Euclidean space with axis-aligned rectangles throughout: data objects
//! are points, R\*-tree nodes carry minimum bounding rectangles (MBRs),
//! query windows are `l × w` rectangles, and the search regions and
//! pruning regions of the optimization techniques are all rectangle
//! (or rectangle-plus-quarter-disc) constructions.
//!
//! This crate provides those primitives:
//!
//! - [`Point`] — a 2-D point with distance helpers,
//! - [`Rect`] — a closed axis-aligned rectangle with the MBR algebra an
//!   R-tree needs (union, enlargement, overlap, margin) and the
//!   `MINDIST`/`MAXDIST` metrics spatial search needs,
//! - [`Quadrant`] — the lying quadrant of an object with respect to the
//!   query point, which the NWC algorithm uses to decide on which window
//!   edge an object must sit (paper §3.1),
//! - [`window`] — the search-region and candidate-window constructions of
//!   the NWC algorithm itself (paper §3.2–3.3).
//!
//! Everything is `f64`-based, allocation-free and `Copy` where possible.
//! The [`kernels`] module adds batched structure-of-arrays versions of
//! the two hot predicates (`MINDIST`, window intersection) that are
//! bit-identical to their scalar counterparts.

// `deny` rather than `forbid`: the AVX2 kernels in `kernels` are the
// one intentionally `unsafe` island (scoped `#[allow(unsafe_code)]`);
// everything else stays unsafe-free.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod kernels;
mod point;
mod quadrant;
mod rect;
pub mod window;

pub use kernels::{intersects_window_batch, kernel_backend, mindist_batch, MbrSoa};
pub use point::Point;
pub use quadrant::Quadrant;
pub use rect::Rect;

/// Convenience constructor for a [`Point`].
#[inline]
pub fn pt(x: f64, y: f64) -> Point {
    Point::new(x, y)
}

/// Convenience constructor for a [`Rect`] from min/max corner coordinates.
#[inline]
pub fn rect(min_x: f64, min_y: f64, max_x: f64, max_y: f64) -> Rect {
    Rect::new(Point::new(min_x, min_y), Point::new(max_x, max_y))
}
