//! Closed axis-aligned rectangles with MBR algebra and spatial metrics.

use crate::Point;
use std::fmt;

/// A closed axis-aligned rectangle `[min.x, max.x] × [min.y, max.y]`.
///
/// `Rect` doubles as the *minimum bounding rectangle* (MBR) of R-tree
/// nodes and as the *window* / *search region* / *query rectangle* of the
/// NWC algorithm. All predicates treat the boundary as inclusive, matching
/// the paper's closed windows (an object lying exactly on a window edge is
/// inside the window — Lemma 1 depends on this).
#[derive(Clone, Copy, PartialEq)]
pub struct Rect {
    /// Bottom-left corner.
    pub min: Point,
    /// Top-right corner.
    pub max: Point,
}

impl Rect {
    /// Creates a rectangle from its corners.
    ///
    /// # Panics
    ///
    /// Panics in debug builds when `min` is not component-wise ≤ `max`.
    #[inline]
    pub fn new(min: Point, max: Point) -> Self {
        debug_assert!(
            min.x <= max.x && min.y <= max.y,
            "invalid rect: min {min:?} must be <= max {max:?}"
        );
        Rect { min, max }
    }

    /// The degenerate rectangle covering exactly one point.
    #[inline]
    pub fn from_point(p: Point) -> Self {
        Rect { min: p, max: p }
    }

    /// Creates a rectangle from two arbitrary corner points, normalizing
    /// their order.
    #[inline]
    pub fn from_corners(a: Point, b: Point) -> Self {
        Rect {
            min: a.min(&b),
            max: a.max(&b),
        }
    }

    /// The smallest rectangle covering every point in `points`.
    ///
    /// Returns `None` for an empty iterator.
    pub fn bounding<I: IntoIterator<Item = Point>>(points: I) -> Option<Self> {
        let mut it = points.into_iter();
        let first = it.next()?;
        let mut r = Rect::from_point(first);
        for p in it {
            r = r.expand_to(p);
        }
        Some(r)
    }

    /// Width (`x` extent).
    #[inline]
    pub fn width(&self) -> f64 {
        self.max.x - self.min.x
    }

    /// Height (`y` extent).
    #[inline]
    pub fn height(&self) -> f64 {
        self.max.y - self.min.y
    }

    /// Area of the rectangle.
    #[inline]
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Half-perimeter (the R\*-tree "margin" heuristic).
    #[inline]
    pub fn margin(&self) -> f64 {
        self.width() + self.height()
    }

    /// Center point.
    #[inline]
    pub fn center(&self) -> Point {
        Point::new(
            (self.min.x + self.max.x) * 0.5,
            (self.min.y + self.max.y) * 0.5,
        )
    }

    /// Whether `p` lies inside the (closed) rectangle.
    #[inline]
    pub fn contains_point(&self, p: &Point) -> bool {
        self.min.x <= p.x && p.x <= self.max.x && self.min.y <= p.y && p.y <= self.max.y
    }

    /// Whether `other` is entirely inside `self` (boundaries may touch).
    #[inline]
    pub fn contains_rect(&self, other: &Rect) -> bool {
        self.min.x <= other.min.x
            && self.min.y <= other.min.y
            && other.max.x <= self.max.x
            && other.max.y <= self.max.y
    }

    /// Whether the two (closed) rectangles share at least one point.
    #[inline]
    pub fn intersects(&self, other: &Rect) -> bool {
        self.min.x <= other.max.x
            && other.min.x <= self.max.x
            && self.min.y <= other.max.y
            && other.min.y <= self.max.y
    }

    /// The intersection rectangle, or `None` when disjoint.
    pub fn intersection(&self, other: &Rect) -> Option<Rect> {
        if !self.intersects(other) {
            return None;
        }
        Some(Rect::new(
            self.min.max(&other.min),
            self.max.min(&other.max),
        ))
    }

    /// Area of overlap with `other` (0 when disjoint). Used by the R\*
    /// split algorithm.
    #[inline]
    pub fn overlap_area(&self, other: &Rect) -> f64 {
        let w = (self.max.x.min(other.max.x) - self.min.x.max(other.min.x)).max(0.0);
        let h = (self.max.y.min(other.max.y) - self.min.y.max(other.min.y)).max(0.0);
        w * h
    }

    /// The smallest rectangle covering both `self` and `other`.
    #[inline]
    pub fn union(&self, other: &Rect) -> Rect {
        Rect {
            min: self.min.min(&other.min),
            max: self.max.max(&other.max),
        }
    }

    /// The smallest rectangle covering `self` and the point `p`.
    #[inline]
    pub fn expand_to(&self, p: Point) -> Rect {
        Rect {
            min: self.min.min(&p),
            max: self.max.max(&p),
        }
    }

    /// Area increase needed to absorb `other` (the classic R-tree
    /// *enlargement* criterion for choosing a subtree).
    #[inline]
    pub fn enlargement(&self, other: &Rect) -> f64 {
        self.union(other).area() - self.area()
    }

    /// Grows the rectangle by `dx` on both horizontal sides and `dy` on
    /// both vertical sides.
    #[inline]
    pub fn inflate(&self, dx: f64, dy: f64) -> Rect {
        Rect::new(
            Point::new(self.min.x - dx, self.min.y - dy),
            Point::new(self.max.x + dx, self.max.y + dy),
        )
    }

    /// Translates the rectangle by `(dx, dy)`.
    #[inline]
    pub fn translate(&self, dx: f64, dy: f64) -> Rect {
        Rect {
            min: self.min.translate(dx, dy),
            max: self.max.translate(dx, dy),
        }
    }

    /// Squared `MINDIST`: the squared Euclidean distance from `p` to the
    /// closest point of the rectangle (0 when `p` is inside).
    ///
    /// This is the standard R-tree lower bound of Roussopoulos et al. and
    /// the paper's `MINDIST(q, qwin)`.
    #[inline]
    pub fn mindist2(&self, p: &Point) -> f64 {
        let dx = (self.min.x - p.x).max(0.0).max(p.x - self.max.x);
        let dy = (self.min.y - p.y).max(0.0).max(p.y - self.max.y);
        dx * dx + dy * dy
    }

    /// `MINDIST(p, self)` — Euclidean distance from `p` to the closest
    /// point of the rectangle.
    #[inline]
    pub fn mindist(&self, p: &Point) -> f64 {
        self.mindist2(p).sqrt()
    }

    /// Squared `MAXDIST`: squared distance from `p` to the farthest point
    /// of the rectangle (always one of the four corners).
    #[inline]
    pub fn maxdist2(&self, p: &Point) -> f64 {
        let dx = (p.x - self.min.x).abs().max((p.x - self.max.x).abs());
        let dy = (p.y - self.min.y).abs().max((p.y - self.max.y).abs());
        dx * dx + dy * dy
    }

    /// Distance from `p` to the farthest point of the rectangle.
    #[inline]
    pub fn maxdist(&self, p: &Point) -> f64 {
        self.maxdist2(p).sqrt()
    }

    /// The four corner points, counter-clockwise from the bottom-left.
    #[inline]
    pub fn corners(&self) -> [Point; 4] {
        [
            self.min,
            Point::new(self.max.x, self.min.y),
            self.max,
            Point::new(self.min.x, self.max.y),
        ]
    }

    /// Whether the rectangle has zero area (degenerate line or point).
    #[inline]
    pub fn is_degenerate(&self) -> bool {
        self.width() == 0.0 || self.height() == 0.0
    }
}

impl fmt::Debug for Rect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}..{}, {}..{}]",
            self.min.x, self.max.x, self.min.y, self.max.y
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rect;

    #[test]
    fn basic_measures() {
        let r = rect(1.0, 2.0, 4.0, 8.0);
        assert_eq!(r.width(), 3.0);
        assert_eq!(r.height(), 6.0);
        assert_eq!(r.area(), 18.0);
        assert_eq!(r.margin(), 9.0);
        assert_eq!(r.center(), Point::new(2.5, 5.0));
    }

    #[test]
    fn containment_is_closed() {
        let r = rect(0.0, 0.0, 10.0, 10.0);
        assert!(r.contains_point(&Point::new(0.0, 0.0)));
        assert!(r.contains_point(&Point::new(10.0, 10.0)));
        assert!(r.contains_point(&Point::new(10.0, 5.0)));
        assert!(!r.contains_point(&Point::new(10.0001, 5.0)));
    }

    #[test]
    fn rect_containment() {
        let outer = rect(0.0, 0.0, 10.0, 10.0);
        assert!(outer.contains_rect(&rect(0.0, 0.0, 10.0, 10.0)));
        assert!(outer.contains_rect(&rect(2.0, 3.0, 4.0, 5.0)));
        assert!(!outer.contains_rect(&rect(2.0, 3.0, 11.0, 5.0)));
    }

    #[test]
    fn intersection_edges_touch() {
        let a = rect(0.0, 0.0, 5.0, 5.0);
        let b = rect(5.0, 5.0, 9.0, 9.0);
        assert!(a.intersects(&b));
        let i = a.intersection(&b).unwrap();
        assert!(i.is_degenerate());
        assert_eq!(i.min, Point::new(5.0, 5.0));
    }

    #[test]
    fn disjoint_rects() {
        let a = rect(0.0, 0.0, 1.0, 1.0);
        let b = rect(2.0, 2.0, 3.0, 3.0);
        assert!(!a.intersects(&b));
        assert!(a.intersection(&b).is_none());
        assert_eq!(a.overlap_area(&b), 0.0);
    }

    #[test]
    fn overlap_area_partial() {
        let a = rect(0.0, 0.0, 4.0, 4.0);
        let b = rect(2.0, 2.0, 6.0, 6.0);
        assert_eq!(a.overlap_area(&b), 4.0);
        assert_eq!(b.overlap_area(&a), 4.0);
    }

    #[test]
    fn union_and_enlargement() {
        let a = rect(0.0, 0.0, 2.0, 2.0);
        let b = rect(3.0, 3.0, 4.0, 4.0);
        let u = a.union(&b);
        assert_eq!(u, rect(0.0, 0.0, 4.0, 4.0));
        assert_eq!(a.enlargement(&b), 16.0 - 4.0);
        // A contained rect requires no enlargement.
        assert_eq!(u.enlargement(&a), 0.0);
    }

    #[test]
    fn mindist_matches_cases() {
        let r = rect(2.0, 2.0, 4.0, 4.0);
        // Inside → 0.
        assert_eq!(r.mindist(&Point::new(3.0, 3.0)), 0.0);
        // Straight left of the rect → horizontal gap.
        assert_eq!(r.mindist(&Point::new(0.0, 3.0)), 2.0);
        // Below-left corner → diagonal distance to the corner.
        assert_eq!(r.mindist(&Point::new(-1.0, -2.0)), 5.0);
        // On the boundary → 0.
        assert_eq!(r.mindist(&Point::new(2.0, 3.0)), 0.0);
    }

    #[test]
    fn maxdist_is_farthest_corner() {
        let r = rect(0.0, 0.0, 2.0, 2.0);
        let p = Point::new(-1.0, -1.0);
        // Farthest corner is (2,2), distance sqrt(9+9).
        assert_eq!(r.maxdist2(&p), 18.0);
        // From the center the corners are equidistant.
        assert_eq!(r.maxdist2(&r.center()), 2.0);
    }

    #[test]
    fn bounding_of_points() {
        let pts = [
            Point::new(1.0, 5.0),
            Point::new(-2.0, 0.0),
            Point::new(3.0, 2.0),
        ];
        let r = Rect::bounding(pts).unwrap();
        assert_eq!(r, rect(-2.0, 0.0, 3.0, 5.0));
        assert!(Rect::bounding(std::iter::empty()).is_none());
    }

    #[test]
    fn inflate_and_translate() {
        let r = rect(2.0, 2.0, 4.0, 4.0);
        assert_eq!(r.inflate(1.0, 2.0), rect(1.0, 0.0, 5.0, 6.0));
        assert_eq!(r.translate(1.0, -1.0), rect(3.0, 1.0, 5.0, 3.0));
    }

    #[test]
    fn from_corners_normalizes() {
        let r = Rect::from_corners(Point::new(4.0, 1.0), Point::new(1.0, 4.0));
        assert_eq!(r, rect(1.0, 1.0, 4.0, 4.0));
    }

    #[test]
    fn corners_order() {
        let r = rect(0.0, 0.0, 1.0, 2.0);
        let c = r.corners();
        assert_eq!(c[0], Point::new(0.0, 0.0));
        assert_eq!(c[1], Point::new(1.0, 0.0));
        assert_eq!(c[2], Point::new(1.0, 2.0));
        assert_eq!(c[3], Point::new(0.0, 2.0));
    }
}
