//! Lying quadrants of data objects with respect to the query point.
//!
//! Lemma 1 of the paper shows the nearest qualified window (or an
//! equivalent one) has an object on a vertical edge and an object on a
//! horizontal edge. Section 3.1 refines this: *which* vertical/horizontal
//! edge an object generates windows from is fully determined by the
//! quadrant the object lies in when the query point is taken as origin.

use crate::Point;

/// The quadrant of a data object `p` with the query point `q` as origin.
///
/// Boundary convention: objects exactly on the axes are assigned to the
/// quadrant as if they were infinitesimally inside the closed right/top
/// half-planes (`x ≥ x_q` counts as right, `y ≥ y_q` counts as top). Any
/// consistent convention yields a correct algorithm because windows are
/// closed sets; this one matches the paper's "first quadrant" running
/// example where `p = q` is treated as quadrant I.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum Quadrant {
    /// `x ≥ x_q, y ≥ y_q` — object generates windows with itself on the
    /// **right** edge and partners on the **top** edge.
    I,
    /// `x < x_q, y ≥ y_q` — **left** edge, partners on the **top** edge.
    II,
    /// `x < x_q, y < y_q` — **left** edge, partners on the **bottom** edge.
    III,
    /// `x ≥ x_q, y < y_q` — **right** edge, partners on the **bottom** edge.
    IV,
}

impl Quadrant {
    /// Determines the lying quadrant of `p` with respect to origin `q`.
    #[inline]
    pub fn of(q: &Point, p: &Point) -> Quadrant {
        match (p.x >= q.x, p.y >= q.y) {
            (true, true) => Quadrant::I,
            (false, true) => Quadrant::II,
            (false, false) => Quadrant::III,
            (true, false) => Quadrant::IV,
        }
    }

    /// Whether objects in this quadrant sit on the **right** vertical edge
    /// of the windows they generate (quadrants I and IV; paper §3.1
    /// observation 1).
    #[inline]
    pub fn on_right_edge(&self) -> bool {
        matches!(self, Quadrant::I | Quadrant::IV)
    }

    /// Whether partner objects in this quadrant's search region sit on the
    /// **top** horizontal edge of candidate windows (quadrants I and II;
    /// paper §3.1 observation 2).
    #[inline]
    pub fn partner_on_top_edge(&self) -> bool {
        matches!(self, Quadrant::I | Quadrant::II)
    }

    /// All four quadrants, for exhaustive iteration in tests.
    pub const ALL: [Quadrant; 4] = [Quadrant::I, Quadrant::II, Quadrant::III, Quadrant::IV];
}

#[cfg(test)]
mod tests {
    use super::*;

    const Q: Point = Point::new(10.0, 10.0);

    #[test]
    fn strict_interior_points() {
        assert_eq!(Quadrant::of(&Q, &Point::new(11.0, 12.0)), Quadrant::I);
        assert_eq!(Quadrant::of(&Q, &Point::new(9.0, 12.0)), Quadrant::II);
        assert_eq!(Quadrant::of(&Q, &Point::new(9.0, 8.0)), Quadrant::III);
        assert_eq!(Quadrant::of(&Q, &Point::new(11.0, 8.0)), Quadrant::IV);
    }

    #[test]
    fn axis_points_use_closed_right_top_convention() {
        assert_eq!(Quadrant::of(&Q, &Point::new(10.0, 15.0)), Quadrant::I);
        assert_eq!(Quadrant::of(&Q, &Point::new(10.0, 5.0)), Quadrant::IV);
        assert_eq!(Quadrant::of(&Q, &Point::new(15.0, 10.0)), Quadrant::I);
        assert_eq!(Quadrant::of(&Q, &Point::new(5.0, 10.0)), Quadrant::II);
        assert_eq!(Quadrant::of(&Q, &Q), Quadrant::I);
    }

    #[test]
    fn edge_assignment_matches_paper_observations() {
        // Observation 1: quadrants I/IV → right edge, II/III → left edge.
        assert!(Quadrant::I.on_right_edge());
        assert!(Quadrant::IV.on_right_edge());
        assert!(!Quadrant::II.on_right_edge());
        assert!(!Quadrant::III.on_right_edge());
        // Observation 2: quadrants I/II → top edge, III/IV → bottom edge.
        assert!(Quadrant::I.partner_on_top_edge());
        assert!(Quadrant::II.partner_on_top_edge());
        assert!(!Quadrant::III.partner_on_top_edge());
        assert!(!Quadrant::IV.partner_on_top_edge());
    }
}
